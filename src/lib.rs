//! # nice — Network-Integrated Cluster-Efficient Storage
//!
//! A full-system reproduction of *NICE: Network-Integrated
//! Cluster-Efficient Storage* (Al-Kiswany, Yang, Arpaci-Dusseau,
//! Arpaci-Dusseau — HPDC 2017), built in Rust on a deterministic
//! packet-level datacenter simulator.
//!
//! The paper co-designs a key-value store with an OpenFlow fabric:
//! clients address *virtual* consistent-hashing rings whose IP-prefix
//! subgroups the switch rewrites to physical nodes (single-hop routing),
//! puts are replicated *by the switch* through multicast groups, failed
//! or inconsistent nodes are hidden by removing them from the mappings,
//! and get load balancing happens in-network via source-prefix rules.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | role |
//! |---|---|
//! | [`rt`] | the NodeIo host boundary + the real threaded UDP loopback runtime |
//! | [`sim`] | deterministic packet-level network simulator (hosts, switches, links) |
//! | [`flow`] | OpenFlow-style flow/group tables + learning controller |
//! | [`ring`] | consistent hashing, virtual rings, client divisions |
//! | [`kv_core`] | shared protocol engine: store, 2PC, client core, chaos plans, history checker |
//! | [`transport`] | reliable UDP (multicast/any-k) and TCP-like transports |
//! | [`kv`] | **NICEKV** — the paper's system (servers, metadata service, clients) |
//! | [`noob`] | the network-oblivious baseline (ROG/RAG/RAC × primary/2PC/quorum/chain) |
//! | [`workload`] | zipfian + YCSB workload generators |
//!
//! ## Quick start
//!
//! ```
//! use nice::kv::{ClientOp, ClusterCfg, NiceCluster, Value};
//! use nice::sim::Time;
//!
//! let ops = vec![
//!     ClientOp::Put { key: "greeting".into(), value: Value::from_bytes(b"hello".to_vec()) },
//!     ClientOp::Get { key: "greeting".into() },
//! ];
//! let mut cluster = NiceCluster::build(ClusterCfg::new(5, 3, vec![ops]));
//! assert!(cluster.run_until_done(Time::from_secs(10)));
//! assert!(cluster.client(0).records.iter().all(|r| r.ok()));
//! ```

#![warn(missing_docs)]

pub use kv_core;
pub use nice_flow as flow;
pub use nice_kv as kv;
pub use nice_noob as noob;
pub use nice_ring as ring;
pub use nice_sim as sim;
pub use nice_transport as transport;
pub use nice_workload as workload;
pub use node_rt as rt;

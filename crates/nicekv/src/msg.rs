//! The NICEKV wire protocol: every message exchanged between clients,
//! storage nodes, and the metadata service. The value and ordering types
//! they carry ([`Value`], [`Timestamp`], [`OpId`]) are protocol, not
//! policy, and live in `kv-core`; they are re-exported here because they
//! appear in the wire format.

use nice_ring::{NodeIdx, PartitionId};
use node_rt::{Ipv4, Time};

pub use kv_core::{OpId, Timestamp, Value};

/// Per-node load statistics shipped in heartbeats (§4.5: "the metadata
/// service collects, through heartbeats, periodic workload statistics,
/// including the range of client IP addresses accessing each partition").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Gets served since the last heartbeat.
    pub gets: u64,
    /// Puts served since the last heartbeat.
    pub puts: u64,
    /// Bytes sent to clients since the last heartbeat.
    pub bytes_out: u64,
    /// Gets per (partition, client source-range base): the raw material
    /// for workload-informed load balancing. Source ranges are /26
    /// buckets of the client space.
    pub gets_by_range: Vec<(PartitionId, Ipv4, u64)>,
}

/// Everything that travels between NICEKV processes.
#[derive(Debug, Clone)]
pub enum KvMsg {
    // ------------------------- client data path -------------------------
    /// Client put, sent to the *multicast* vring address of the key's
    /// partition; the switch replicates it to every replica (§4.2).
    PutRequest {
        /// The key.
        key: String,
        /// The value.
        value: Value,
        /// Identifies the attempt (stable across client retries).
        op: OpId,
    },
    /// Client get, sent to the *unicast* vring address (rewritten by the
    /// switch to the primary, or to a per-client-division replica when
    /// load balancing is on).
    GetRequest {
        /// The key.
        key: String,
        /// Identifies the attempt.
        op: OpId,
    },
    /// Server → client put acknowledgment (over TCP, §5).
    PutReply {
        /// The attempt this answers.
        op: OpId,
        /// Whether the put committed.
        ok: bool,
    },
    /// Server → client get response.
    GetReply {
        /// The attempt this answers.
        op: OpId,
        /// The committed value, if present.
        value: Option<Value>,
        /// Its commit timestamp.
        ts: Option<Timestamp>,
    },

    // ------------------------- 2PC (Figure 3) ---------------------------
    /// Secondary → primary: object locked, logged, and written.
    PutAck1 {
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
        /// Reporting node.
        from: NodeIdx,
    },
    /// Primary → replicas (via the multicast vring): commit with this
    /// timestamp — the "timestamp message" of Figure 3.
    Commit {
        /// The key.
        key: String,
        /// The attempt being committed.
        op: OpId,
        /// The commit timestamp.
        ts: Timestamp,
    },
    /// Secondary → primary: commit applied, lock released.
    PutAck2 {
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
        /// Reporting node.
        from: NodeIdx,
    },
    /// Primary → replicas: abandon a pending put (failure handling).
    Abort {
        /// The key.
        key: String,
        /// The attempt being aborted.
        op: OpId,
        /// When the abort was decided: a replica whose lock for `op` is
        /// newer (a client retry re-locked it) drops the abort — it
        /// belongs to the abandoned earlier round.
        issued: Time,
    },

    // -------------------- membership & fault tolerance ------------------
    /// Storage node → metadata service, periodic (UDP).
    Heartbeat {
        /// Reporting node.
        node: NodeIdx,
        /// Load since last heartbeat.
        stats: LoadStats,
    },
    /// Storage node → metadata service: peer looks dead ("a node reports
    /// to the metadata service that another node is irresponsive").
    FailureReport {
        /// The suspect.
        suspect: NodeIdx,
        /// The reporter.
        from: NodeIdx,
    },
    /// Metadata service → storage node: your authoritative view of the
    /// partitions you participate in.
    Membership {
        /// One entry per partition the node serves.
        views: Vec<PartitionView>,
    },
    /// Restarted node → metadata service: let me rejoin.
    RejoinRequest {
        /// The node rejoining.
        node: NodeIdx,
    },
    /// Metadata → rejoining node: fetch missed objects from these handoff
    /// nodes, then report consistency.
    RejoinPlan {
        /// `(partition, handoff ip)` pairs to sync from (handoff may be
        /// absent if nothing was written during the outage).
        sources: Vec<(PartitionId, Option<Ipv4>)>,
    },
    /// Rejoining node → handoff node: send me what I missed.
    HandoffFetch {
        /// Partition to drain.
        partition: PartitionId,
        /// Requesting node.
        from: NodeIdx,
    },
    /// Handoff node → rejoining node: the missed objects.
    HandoffData {
        /// Partition these belong to.
        partition: PartitionId,
        /// `(key, value, timestamp)` triples.
        objects: Vec<(String, Value, Timestamp)>,
    },
    /// Rejoining node → metadata: I hold consistent data; open the get
    /// path (§4.4 "Node Recovery", step 3).
    RecoveryDone {
        /// The recovered node.
        node: NodeIdx,
    },

    // ------------------------ handoff get path --------------------------
    /// Handoff node → primary: a get for an object the handoff does not
    /// have ("the handoff node will forward the request to the primary").
    GetForward {
        /// The key.
        key: String,
        /// The original attempt (reply goes straight to the client).
        op: OpId,
    },

    // ------------------ metadata high availability (§4.1) ---------------
    /// Active metadata service → hot standby: full replicated state.
    /// "the stored metadata is small and changes infrequently … These two
    /// characteristics make maintaining a hot standby server feasible."
    MetaSync {
        /// Every partition view.
        views: Vec<PartitionView>,
        /// Handoff bookkeeping, per partition (see [`HandoffRecord`]).
        handoffs: Vec<(PartitionId, Vec<HandoffRecord>)>,
        /// Node liveness.
        states: Vec<(NodeIdx, NodeState)>,
        /// Current hash-ring membership. Admin reconfigurations mutate
        /// the ring, and a promoted standby computes `partitions_of` /
        /// `replica_set` from *its* ring — without this the two rings
        /// diverge after a failover and rejoins re-add nodes to the
        /// wrong partitions.
        ring_nodes: Vec<NodeIdx>,
    },
    /// Promoted standby → everyone: report to me from now on.
    MetaFailover {
        /// The standby's address.
        new_meta: Ipv4,
    },

    // ---------------------- primary failover (§4.4) ---------------------
    /// Metadata → promoted secondary: you are now the primary of this
    /// partition; run lock resolution.
    BecomePrimary {
        /// Partition being taken over.
        partition: PartitionId,
    },
    /// Secondary → primary: a prepared object's lock went stale (its
    /// commit or abort never arrived, e.g. the node left the multicast
    /// group mid-round) — please re-run lock resolution for the
    /// partition so the orphan is settled one way or the other.
    ResolveRequest {
        /// Partition holding the stale lock.
        partition: PartitionId,
    },
    /// New primary → secondaries: report your locked objects.
    LockQuery {
        /// Partition being resolved.
        partition: PartitionId,
    },
    /// Secondary → new primary: lock table for the partition.
    LockReport {
        /// Partition reported.
        partition: PartitionId,
        /// Reporting node.
        from: NodeIdx,
        /// `(key, op, committed_ts)`: committed_ts is set if this node
        /// already committed that attempt.
        locked: Vec<(String, OpId, Option<Timestamp>)>,
        /// Highest primary_seq this node has ever applied (the new
        /// primary's sequence floor).
        max_seq: u64,
    },
}

/// One handoff bookkeeping record: `(failed original, stand-in, chain
/// complete)`. `complete` is false when a previous stand-in died, so the
/// original's rejoin must drain from the primary instead.
pub type HandoffRecord = (NodeIdx, NodeIdx, bool);

/// Liveness state of a storage node, as tracked (and replicated to the
/// hot standby) by the metadata service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving both rings.
    Up,
    /// Hidden from both rings (§4.4 failure hiding).
    Down,
    /// In the multicast (put) ring only — receiving writes but not yet
    /// consistent (§4.4 node recovery, phase 1).
    Rejoining,
}

/// A node's role in one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Primary replica.
    Primary,
    /// Secondary replica.
    Secondary,
    /// Temporary handoff replica (§4.4).
    Handoff,
}

/// The authoritative description of one partition, as distributed by the
/// metadata service. Nodes only ever receive views for partitions they
/// participate in — the O(R) membership knowledge of §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionView {
    /// The partition.
    pub partition: PartitionId,
    /// Current primary.
    pub primary: NodeIdx,
    /// All *currently active* members (primary, live secondaries, and any
    /// handoff), with their addresses. This is the multicast group.
    pub members: Vec<(NodeIdx, Ipv4)>,
    /// Handoff members currently standing in for failed originals (§4.4).
    pub handoffs: Vec<NodeIdx>,
    /// Members still retrieving data (admin ring reconfiguration, §4.4):
    /// they participate in puts but are not yet get-visible.
    pub syncing: Vec<NodeIdx>,
}

impl PartitionView {
    /// The address of `node` within this view.
    pub fn addr_of(&self, node: NodeIdx) -> Option<Ipv4> {
        self.members
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, ip)| ip)
    }

    /// The primary's address. `None` when the primary is missing from
    /// the member list — a malformed view, which callers treat like a
    /// stale one (drop the message) rather than crashing the server.
    pub fn primary_addr(&self) -> Option<Ipv4> {
        self.addr_of(self.primary)
    }

    /// Number of active members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the view has no members (never happens in a live system).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_view_lookup() {
        let v = PartitionView {
            partition: PartitionId(3),
            primary: NodeIdx(1),
            members: vec![
                (NodeIdx(1), Ipv4::new(10, 0, 0, 11)),
                (NodeIdx(2), Ipv4::new(10, 0, 0, 12)),
            ],
            handoffs: Vec::new(),
            syncing: Vec::new(),
        };
        assert_eq!(v.primary_addr(), Some(Ipv4::new(10, 0, 0, 11)));
        assert_eq!(v.addr_of(NodeIdx(2)), Some(Ipv4::new(10, 0, 0, 12)));
        assert_eq!(v.addr_of(NodeIdx(9)), None);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }
}

//! System-wide configuration shared by clients, storage nodes, and the
//! metadata service.

use kv_core::{RetryPolicy, TelemetryCfg};
use nice_ring::VRing;
use node_rt::{Ipv4, Time};

/// Optional exponential-backoff upgrade for the client retry schedule.
/// `None` keeps the paper's fixed period (§6.6), which is what fig11
/// plots; the chaos harness switches it on to decorrelate retry storms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBackoff {
    /// Upper bound any single delay is clamped to.
    pub cap: Time,
    /// Jitter strength in percent (see [`RetryPolicy::jitter_pct`]).
    pub jitter_pct: u32,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

/// How puts replicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutMode {
    /// The NICE-2PC protocol of §4.3 / Figure 3: multicast data, lock,
    /// log, write, timestamp round, sequential consistency.
    TwoPc,
    /// Quorum replication (§6.3): the put completes when any `k` replicas
    /// hold the data (the any-k multicast transport); no 2PC rounds.
    Quorum {
        /// The write-set size.
        k: usize,
    },
}

/// Static configuration every NICEKV process is deployed with. Clients
/// know *only* what this struct holds — virtual rings and the replication
/// level — never physical placement (§3.2).
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Number of hash partitions (power of two).
    pub partitions: u32,
    /// Replication level R.
    pub replication: usize,
    /// The unicast vring (get path).
    pub unicast: VRing,
    /// The multicast vring (put path).
    pub multicast: VRing,
    /// The transport port every NICEKV process listens on.
    pub port: u16,
    /// Heartbeat period (§4.1). Failure is declared after three misses.
    pub hb_interval: Time,
    /// Primary-side per-round 2PC timeout; two expiries trigger a failure
    /// report (§4.4 "if a node time-outs twice").
    pub op_timeout: Time,
    /// Client retry delay ("the client will retry after waiting for 2
    /// seconds", §6.6).
    pub client_retry: Time,
    /// Exponential backoff + jitter on top of `client_retry`; `None`
    /// (the default) keeps the fixed §6.6 period.
    pub retry_backoff: Option<RetryBackoff>,
    /// **Checker-validation fault, never enable outside tests**: break
    /// the §3.3 get-ring-hiding rule by letting rejoining (not yet
    /// caught-up) replicas serve gets. The chaos suite's mutation test
    /// flips this on and asserts the linearizability checker notices.
    pub break_rejoin_get_hiding: bool,
    /// Replication mode.
    pub put_mode: PutMode,
    /// Whether the in-network get load balancer (§4.5) is enabled.
    pub load_balancing: bool,
    /// Workload-informed adaptive rebalancing (the paper's stated future
    /// work): reassign client divisions to replicas using the per-range
    /// get statistics from heartbeats, instead of static round-robin.
    pub adaptive_lb: bool,
    /// The client source-address space the load balancer divides.
    pub client_space: (Ipv4, u8),
    /// Telemetry configuration handed to every server engine.
    pub telemetry: TelemetryCfg,
}

impl KvConfig {
    /// A configuration for `partitions` partitions at replication `r`,
    /// with the paper's deployment defaults.
    pub fn new(partitions: u32, r: usize) -> KvConfig {
        KvConfig {
            partitions,
            replication: r,
            unicast: VRing::unicast(partitions),
            multicast: VRing::multicast(partitions),
            port: 9000,
            hb_interval: Time::from_ms(500),
            op_timeout: Time::from_ms(500),
            client_retry: Time::from_secs(2),
            retry_backoff: None,
            break_rejoin_get_hiding: false,
            put_mode: PutMode::TwoPc,
            load_balancing: true,
            adaptive_lb: false,
            client_space: (Ipv4::new(10, 0, 1, 0), 24),
            telemetry: TelemetryCfg::default(),
        }
    }

    /// The client retry schedule this config describes: the fixed §6.6
    /// period, or exponential backoff when `retry_backoff` is set.
    pub fn retry_policy(&self) -> RetryPolicy {
        match self.retry_backoff {
            None => RetryPolicy::fixed(self.client_retry),
            Some(b) => RetryPolicy {
                base: self.client_retry,
                cap: b.cap,
                exponential: true,
                jitter_pct: b.jitter_pct,
                seed: b.seed,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = KvConfig::new(16, 3);
        assert_eq!(c.unicast.num_subgroups(), 16);
        assert_eq!(c.multicast.num_subgroups(), 16);
        assert_ne!(c.unicast.base(), c.multicast.base());
        assert_eq!(c.put_mode, PutMode::TwoPc);
        // three missed heartbeats must be under the client retry period,
        // or Figure 11's <2 s re-availability window cannot hold.
        assert!(c.hb_interval * 3 < c.client_retry);
        // the chaos knobs must default off so fig11 keeps the paper's
        // fixed-period retries and the §3.3 rule stays intact.
        assert_eq!(c.retry_backoff, None);
        assert!(!c.break_rejoin_get_hiding);
        assert_eq!(c.retry_policy(), RetryPolicy::fixed(c.client_retry));
    }

    #[test]
    fn backoff_knob_switches_the_policy() {
        let mut c = KvConfig::new(16, 3);
        c.retry_backoff = Some(RetryBackoff {
            cap: Time::from_secs(8),
            jitter_pct: 30,
            seed: 5,
        });
        let p = c.retry_policy();
        assert!(p.exponential);
        assert_eq!(p.base, c.client_retry);
        assert_eq!(p.cap, Time::from_secs(8));
    }
}

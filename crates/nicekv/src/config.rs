//! System-wide configuration shared by clients, storage nodes, and the
//! metadata service.

use nice_ring::VRing;
use nice_sim::{Ipv4, Time};

/// How puts replicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutMode {
    /// The NICE-2PC protocol of §4.3 / Figure 3: multicast data, lock,
    /// log, write, timestamp round, sequential consistency.
    TwoPc,
    /// Quorum replication (§6.3): the put completes when any `k` replicas
    /// hold the data (the any-k multicast transport); no 2PC rounds.
    Quorum {
        /// The write-set size.
        k: usize,
    },
}

/// Static configuration every NICEKV process is deployed with. Clients
/// know *only* what this struct holds — virtual rings and the replication
/// level — never physical placement (§3.2).
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Number of hash partitions (power of two).
    pub partitions: u32,
    /// Replication level R.
    pub replication: usize,
    /// The unicast vring (get path).
    pub unicast: VRing,
    /// The multicast vring (put path).
    pub multicast: VRing,
    /// The transport port every NICEKV process listens on.
    pub port: u16,
    /// Heartbeat period (§4.1). Failure is declared after three misses.
    pub hb_interval: Time,
    /// Primary-side per-round 2PC timeout; two expiries trigger a failure
    /// report (§4.4 "if a node time-outs twice").
    pub op_timeout: Time,
    /// Client retry delay ("the client will retry after waiting for 2
    /// seconds", §6.6).
    pub client_retry: Time,
    /// Replication mode.
    pub put_mode: PutMode,
    /// Whether the in-network get load balancer (§4.5) is enabled.
    pub load_balancing: bool,
    /// Workload-informed adaptive rebalancing (the paper's stated future
    /// work): reassign client divisions to replicas using the per-range
    /// get statistics from heartbeats, instead of static round-robin.
    pub adaptive_lb: bool,
    /// The client source-address space the load balancer divides.
    pub client_space: (Ipv4, u8),
}

impl KvConfig {
    /// A configuration for `partitions` partitions at replication `r`,
    /// with the paper's deployment defaults.
    pub fn new(partitions: u32, r: usize) -> KvConfig {
        KvConfig {
            partitions,
            replication: r,
            unicast: VRing::unicast(partitions),
            multicast: VRing::multicast(partitions),
            port: 9000,
            hb_interval: Time::from_ms(500),
            op_timeout: Time::from_ms(500),
            client_retry: Time::from_secs(2),
            put_mode: PutMode::TwoPc,
            load_balancing: true,
            adaptive_lb: false,
            client_space: (Ipv4::new(10, 0, 1, 0), 24),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = KvConfig::new(16, 3);
        assert_eq!(c.unicast.num_subgroups(), 16);
        assert_eq!(c.multicast.num_subgroups(), 16);
        assert_ne!(c.unicast.base(), c.multicast.base());
        assert_eq!(c.put_mode, PutMode::TwoPc);
        // three missed heartbeats must be under the client retry period,
        // or Figure 11's <2 s re-availability window cannot hold.
        assert!(c.hb_interval * 3 < c.client_retry);
    }
}

//! Typed internal errors for the NICEKV request paths.
//!
//! The server request path must never panic (`xtask lint` rule
//! `panic-path`): lookups that "cannot fail" under correct operation are
//! still total functions here. When one does fail — a coordinator record
//! vanishing mid-2PC, an in-flight slot missing while a token arrives —
//! the failure surfaces as a [`KvError`] that is counted
//! ([`crate::Counters::internal_errors`]) and retained
//! ([`crate::ServerApp::last_internal_error`]) so the node degrades one
//! operation instead of crashing the process.

use crate::msg::OpId;
use std::error::Error;
use std::fmt;

/// An internal invariant violation in the KV request path.
///
/// Every variant describes a state that is unreachable when the protocol
/// state machines are correct; producing one is a bug, but a bug that
/// should fail a single operation, not the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The 2PC coordinator record for `(key, op)` disappeared while the
    /// operation was still advancing (between ack collection, commit, and
    /// the deadline continuation).
    CoordinatorMissing {
        /// Key of the put being coordinated.
        key: String,
        /// Operation id of the put.
        op: OpId,
    },
    /// A transport token arrived for a client slot that holds no
    /// in-flight operation.
    InflightMissing {
        /// Operation id the token was issued for.
        op: OpId,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::CoordinatorMissing { key, op } => {
                write!(
                    f,
                    "2PC coordinator record missing for key {key:?} op {op:?}"
                )
            }
            KvError::InflightMissing { op } => {
                write!(f, "no in-flight client operation for op {op:?}")
            }
        }
    }
}

impl Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_sim::Ipv4;

    fn op() -> OpId {
        OpId {
            client: Ipv4::new(10, 0, 0, 1),
            client_seq: 7,
        }
    }

    #[test]
    fn display_names_the_key_and_op() {
        let e = KvError::CoordinatorMissing {
            key: "user1".to_owned(),
            op: op(),
        };
        let s = e.to_string();
        assert!(s.contains("user1"), "{s}");
        assert!(s.contains("coordinator"), "{s}");
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn Error> = Box::new(KvError::InflightMissing { op: op() });
        assert!(e.to_string().contains("in-flight"));
    }
}

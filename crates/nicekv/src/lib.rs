//! # nice-kv — the NICEKV network-integrated key-value store
//!
//! The paper's primary contribution (§3–§5), built on the simulated
//! OpenFlow fabric: storage virtualization over unicast/multicast virtual
//! rings, switch-multicast replication, the NICE-2PC consistency protocol
//! with consistency-aware fault tolerance, in-network get load balancing,
//! handoff-based failure handling, and two-phase node recovery.
//!
//! ## Quick start
//!
//! ```
//! use nice_kv::{ClientOp, ClusterCfg, NiceCluster, Value};
//! use node_rt::Time;
//!
//! let ops = vec![
//!     ClientOp::Put { key: "hello".into(), value: Value::from_bytes(b"world".to_vec()) },
//!     ClientOp::Get { key: "hello".into() },
//! ];
//! let mut cluster = NiceCluster::build(ClusterCfg::new(5, 3, vec![ops]));
//! assert!(cluster.run_until_done(Time::from_secs(10)));
//! let records = &cluster.client(0).records;
//! assert!(records.iter().all(|r| r.ok()));
//! assert_eq!(records[1].bytes.as_deref(), Some(b"world".as_slice()));
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod config;
pub mod metadata;
pub mod msg;
pub mod server;

pub use client::{ClientApp, ClientOp, OpRecord};
pub use cluster::{ClusterCfg, NiceCluster, SimHostCfg};
pub use config::{KvConfig, PutMode, RetryBackoff};
pub use kv_core::ClusterSpec;
pub use kv_core::{Counters, KvClient, KvError, MetricsRegistry, ObjectStore, StorageCfg};
pub use metadata::{AdminOp, MetaEvent, MetaRole, MetadataApp, SwitchHandle};
pub use msg::{HandoffRecord, NodeState};
pub use msg::{KvMsg, LoadStats, OpId, PartitionView, Role, Timestamp, Value};
pub use server::ServerApp;

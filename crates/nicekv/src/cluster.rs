//! Assembles a complete NICE deployment inside one simulation: an
//! OpenFlow switch, the metadata service (SDN controller), storage nodes,
//! and clients — the §6 testbed in a box.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowSwitch, FlowTable, L3Learner};
use nice_ring::{hash_str, NodeIdx, PartitionId, PhysicalRing};
use nice_sim::{
    ChannelCfg, FaultPlan, HostCfg, HostId, Ipv4, Mac, Simulation, SwitchCfg, SwitchId, Time,
};

use crate::client::{ClientApp, ClientOp};
use crate::config::KvConfig;
use crate::metadata::{MetadataApp, SwitchHandle};
use crate::server::ServerApp;
use kv_core::StorageCfg;

/// Everything needed to build a cluster.
#[derive(Clone)]
pub struct ClusterCfg {
    /// Determinism seed.
    pub seed: u64,
    /// Storage node count (the paper deploys 15 + 1 mapping node).
    pub storage_nodes: usize,
    /// Extra provisioned-but-idle nodes available for admin ring
    /// reconfiguration (§4.4): they run and heartbeat but start outside
    /// the ring.
    pub spare_nodes: usize,
    /// Deploy a hot-standby metadata replica (§4.1): it shadows the
    /// active service's state and takes over if it fails.
    pub metadata_standby: bool,
    /// Replication level R.
    pub replication: usize,
    /// Partition count; defaults to the node count rounded up to a power
    /// of two (min 16).
    pub partitions: Option<u32>,
    /// KV-level knobs (put mode, load balancing, timeouts); ring fields
    /// are overwritten by the builder.
    pub kv: KvConfig,
    /// Storage device model.
    pub storage: StorageCfg,
    /// Link configuration (rate applies to every host).
    pub link: ChannelCfg,
    /// Switch parameters.
    pub switch: SwitchCfg,
    /// When clients start issuing operations (rules must be in place).
    pub client_start: Time,
    /// The operation list of each client (one entry per client host).
    pub client_ops: Vec<Vec<ClientOp>>,
    /// Clients retry NotFound gets with a short backoff (hot-object
    /// benchmarks where readers race the first write).
    pub retry_not_found: bool,
    /// Deterministic fault plan, applied at the simulator's packet
    /// delivery choke point. Outage indices address storage nodes.
    pub fault_plan: Option<FaultPlan>,
}

impl ClusterCfg {
    /// The paper's deployment shape: `storage_nodes` servers, replication
    /// `r`, and the given per-client op lists.
    pub fn new(storage_nodes: usize, r: usize, client_ops: Vec<Vec<ClientOp>>) -> ClusterCfg {
        ClusterCfg {
            seed: 42,
            storage_nodes,
            spare_nodes: 0,
            metadata_standby: false,
            replication: r,
            partitions: None,
            kv: KvConfig::new(16, r),
            storage: StorageCfg::default(),
            link: ChannelCfg::gigabit(),
            switch: SwitchCfg::default(),
            client_start: Time::from_ms(50),
            client_ops,
            retry_not_found: false,
            fault_plan: None,
        }
    }
}

/// Fluent cluster construction — the one setup API the NICE and NOOB
/// harnesses share. NICE callers finish with [`ClusterBuilder::build`];
/// NOOB callers hand the same builder to `NoobClusterCfg::from_builder`,
/// so an A/B experiment configures both systems identically and differs
/// only in access mechanism:
///
/// ```
/// use nice_kv::ClusterBuilder;
/// let c = ClusterBuilder::new().nodes(5).replication(3).build();
/// assert_eq!(c.servers.len(), 5);
/// ```
#[derive(Clone)]
pub struct ClusterBuilder {
    cfg: ClusterCfg,
}

impl Default for ClusterBuilder {
    fn default() -> ClusterBuilder {
        ClusterBuilder::new()
    }
}

impl ClusterBuilder {
    /// The default deployment shape: 8 storage nodes, R = 3, no clients.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder {
            cfg: ClusterCfg::new(8, 3, Vec::new()),
        }
    }

    /// Storage node count.
    pub fn nodes(mut self, n: usize) -> ClusterBuilder {
        self.cfg.storage_nodes = n;
        self
    }

    /// Provisioned-but-idle spare nodes (§4.4 ring reconfiguration).
    pub fn spares(mut self, n: usize) -> ClusterBuilder {
        self.cfg.spare_nodes = n;
        self
    }

    /// Replication level R.
    pub fn replication(mut self, r: usize) -> ClusterBuilder {
        self.cfg.replication = r;
        self.cfg.kv.replication = r;
        self
    }

    /// Determinism seed.
    pub fn seed(mut self, seed: u64) -> ClusterBuilder {
        self.cfg.seed = seed;
        self
    }

    /// Partition count override (default: nodes rounded up to a power of
    /// two, min 16).
    pub fn partitions(mut self, parts: u32) -> ClusterBuilder {
        self.cfg.partitions = Some(parts);
        self
    }

    /// Deploy a hot-standby metadata replica (§4.1).
    pub fn metadata_standby(mut self) -> ClusterBuilder {
        self.cfg.metadata_standby = true;
        self
    }

    /// Inject faults from `plan`: loss, duplication, extra delay,
    /// partitions, and node outages, all applied deterministically at the
    /// packet-delivery choke point. Outage indices address storage nodes.
    pub fn fault_plan(mut self, plan: FaultPlan) -> ClusterBuilder {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Adjust KV-level knobs in place (timeouts, put mode, LB).
    pub fn kv(mut self, f: impl FnOnce(&mut KvConfig)) -> ClusterBuilder {
        f(&mut self.cfg.kv);
        self
    }

    /// Storage device model.
    pub fn storage(mut self, storage: StorageCfg) -> ClusterBuilder {
        self.cfg.storage = storage;
        self
    }

    /// When clients start issuing operations.
    pub fn client_start(mut self, at: Time) -> ClusterBuilder {
        self.cfg.client_start = at;
        self
    }

    /// Replace the per-client op lists (one entry per client host).
    pub fn clients(mut self, ops: Vec<Vec<ClientOp>>) -> ClusterBuilder {
        self.cfg.client_ops = ops;
        self
    }

    /// Append one more client running `ops`.
    pub fn client(mut self, ops: Vec<ClientOp>) -> ClusterBuilder {
        self.cfg.client_ops.push(ops);
        self
    }

    /// Retry NotFound gets with a short backoff.
    pub fn retry_not_found(mut self) -> ClusterBuilder {
        self.cfg.retry_not_found = true;
        self
    }

    /// The assembled configuration (NOOB conversion, or field-level
    /// tweaks the fluent surface does not cover).
    pub fn into_cfg(self) -> ClusterCfg {
        self.cfg
    }

    /// Build and wire the NICE deployment.
    pub fn build(self) -> NiceCluster {
        NiceCluster::build(self.cfg)
    }
}

/// A fully-wired NICE deployment.
pub struct NiceCluster {
    /// The simulation world.
    pub sim: Simulation,
    /// Resolved system configuration.
    pub cfg: KvConfig,
    /// The static placement.
    pub ring: PhysicalRing,
    /// The metadata-service host.
    pub meta: HostId,
    /// The hot-standby metadata host, if deployed.
    pub meta_standby: Option<HostId>,
    /// Storage-node hosts (index = `NodeIdx`).
    pub servers: Vec<HostId>,
    /// Storage-node addresses.
    pub server_ips: Vec<Ipv4>,
    /// Client hosts.
    pub clients: Vec<HostId>,
    /// Client addresses.
    pub client_ips: Vec<Ipv4>,
    /// The switch.
    pub switch: SwitchId,
    /// Its flow table (inspection).
    pub table: Rc<RefCell<FlowTable>>,
}

impl NiceCluster {
    /// Build and wire a cluster.
    pub fn build(cfg: ClusterCfg) -> NiceCluster {
        let parts = cfg
            .partitions
            .unwrap_or_else(|| (cfg.storage_nodes.next_power_of_two() as u32).max(16));
        let mut kv = cfg.kv;
        kv.partitions = parts;
        kv.replication = cfg.replication;
        kv.unicast = nice_ring::VRing::unicast(parts);
        kv.multicast = nice_ring::VRing::multicast(parts);

        let mut sim = Simulation::new(cfg.seed);
        let table = Rc::new(RefCell::new(FlowTable::new()));
        let switch = sim.add_switch(Box::new(FlowSwitch::new(Rc::clone(&table))), cfg.switch);

        let meta_ip = Ipv4::new(10, 0, 0, 1);
        let meta_mac = Mac(0x100);
        let mut ports: BTreeMap<Ipv4, nice_sim::Port> = BTreeMap::new();

        // Storage nodes (including spares, which start outside the ring).
        let total_nodes = cfg.storage_nodes + cfg.spare_nodes;
        let mut servers = Vec::new();
        let mut server_ips = Vec::new();
        for i in 0..total_nodes {
            let ip = Ipv4::new(10, 0, 0, 10 + i as u8);
            let mac = Mac(0x200 + i as u64);
            let app = ServerApp::new(kv, NodeIdx(i as u32), meta_ip, cfg.storage);
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.link.host_uplink(), cfg.link);
            ports.insert(ip, port);
            servers.push(h);
            server_ips.push(ip);
        }

        // Clients: addresses inside kv.client_space, spread so that
        // consecutive clients land in *different* LB divisions (§4.5) —
        // client j sits in division j mod D.
        let divisions = (cfg.replication as u32).next_power_of_two().min(16);
        let space_size = 1u32 << (32 - kv.client_space.1);
        let stride = space_size / divisions;
        let mut clients = Vec::new();
        let mut client_ips = Vec::new();
        for (j, ops) in cfg.client_ops.iter().enumerate() {
            let j32 = j as u32;
            let ip =
                Ipv4(kv.client_space.0 .0 + (j32 % divisions) * stride + (j32 / divisions) + 1);
            let mac = Mac(0x300 + j as u64);
            let start = cfg.client_start + Time::from_us(97) * j as u64;
            let mut app = ClientApp::new(kv, ops.clone(), start);
            app.retry_not_found = cfg.retry_not_found;
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.link.host_uplink(), cfg.link);
            ports.insert(ip, port);
            clients.push(h);
            client_ips.push(ip);
        }

        // Static physical provisioning: the operator knows the wiring, so
        // unicast physical rules are installed up front (the reactive
        // learning path of §5 still exists for anything unknown).
        for (&ip, &port) in &ports {
            let mac = if let Some(i) = server_ips.iter().position(|&s| s == ip) {
                Mac(0x200 + i as u64)
            } else if let Some(j) = client_ips.iter().position(|&c| c == ip) {
                Mac(0x300 + j as u64)
            } else {
                continue;
            };
            table.borrow_mut().install(
                FlowRule::new(
                    prio::PHYS,
                    FlowMatch::any().dst_ip(ip),
                    vec![Action::SetMacDst(mac), Action::Output(port)],
                ),
                Time::ZERO,
            );
        }

        // The metadata service + controller.
        let ring = PhysicalRing::new(
            parts,
            (0..cfg.storage_nodes as u32).map(NodeIdx).collect(),
            cfg.replication,
        );
        let node_addrs: Vec<(Ipv4, Mac)> = server_ips
            .iter()
            .enumerate()
            .map(|(i, &ip)| (ip, Mac(0x200 + i as u64)))
            .collect();
        let handle = SwitchHandle {
            id: switch,
            table: Rc::clone(&table),
            ctrl_latency: cfg.switch.ctrl_latency,
            ports: ports.clone(),
        };
        let standby_ip = Ipv4::new(10, 0, 0, 2);
        let mut meta_app = MetadataApp::new(
            kv,
            ring.clone(),
            node_addrs.clone(),
            vec![handle],
            L3Learner::new(),
        );
        if cfg.metadata_standby {
            meta_app = meta_app.with_standby(standby_ip);
        }
        let meta = sim.add_host(Box::new(meta_app), HostCfg::new(meta_ip, meta_mac));
        let meta_port = sim.connect_asym(meta, switch, cfg.link.host_uplink(), cfg.link);
        table.borrow_mut().install(
            FlowRule::new(
                prio::PHYS,
                FlowMatch::any().dst_ip(meta_ip),
                vec![Action::SetMacDst(meta_mac), Action::Output(meta_port)],
            ),
            Time::ZERO,
        );
        sim.set_controller(switch, meta);

        let meta_standby = if cfg.metadata_standby {
            let standby_mac = Mac(0x101);
            let handle = SwitchHandle {
                id: switch,
                table: Rc::clone(&table),
                ctrl_latency: cfg.switch.ctrl_latency,
                ports,
            };
            let app =
                MetadataApp::new(kv, ring.clone(), node_addrs, vec![handle], L3Learner::new())
                    .into_standby(meta_ip);
            let h = sim.add_host(Box::new(app), HostCfg::new(standby_ip, standby_mac));
            let port = sim.connect_asym(h, switch, cfg.link.host_uplink(), cfg.link);
            table.borrow_mut().install(
                FlowRule::new(
                    prio::PHYS,
                    FlowMatch::any().dst_ip(standby_ip),
                    vec![Action::SetMacDst(standby_mac), Action::Output(port)],
                ),
                Time::ZERO,
            );
            Some(h)
        } else {
            None
        };

        // Fault injection: one plan at the delivery choke point; outage
        // indices map onto the storage-node slice.
        if let Some(plan) = cfg.fault_plan {
            sim.install_fault_plan(plan, &servers);
        }

        NiceCluster {
            sim,
            cfg: kv,
            ring,
            meta,
            meta_standby,
            servers,
            server_ips,
            clients,
            client_ips,
            switch,
            table,
        }
    }

    /// Borrow client `i`'s app.
    pub fn client(&self, i: usize) -> &ClientApp {
        self.sim.app::<ClientApp>(self.clients[i])
    }

    /// Borrow server `i`'s app.
    pub fn server(&self, i: usize) -> &ServerApp {
        self.sim.app::<ServerApp>(self.servers[i])
    }

    /// Borrow the metadata app.
    pub fn meta_app(&self) -> &MetadataApp {
        self.sim.app::<MetadataApp>(self.meta)
    }

    /// Run until every client drained its op queue (or `deadline`).
    /// Returns true if all clients finished.
    pub fn run_until_done(&mut self, deadline: Time) -> bool {
        loop {
            let all_done = self
                .clients
                .iter()
                .all(|&c| self.sim.app::<ClientApp>(c).done_at.is_some());
            if all_done {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let step = Time::from_ms(10).min(deadline - self.sim.now());
            self.sim.run_for(step);
        }
    }

    /// When the last client finished.
    pub fn finish_time(&self) -> Option<Time> {
        self.clients
            .iter()
            .map(|&c| self.sim.app::<ClientApp>(c).done_at)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(Time::ZERO))
    }

    /// The partition a key hashes into (static: independent of membership).
    pub fn partition_of_key(&self, key: &str) -> PartitionId {
        PartitionId((hash_str(key) >> (64 - self.cfg.partitions.trailing_zeros())) as u32)
    }

    /// Queue an administrator ring-reconfiguration command (§4.4); it is
    /// applied at the metadata service's next heartbeat tick.
    pub fn admin(&mut self, op: crate::metadata::AdminOp) {
        self.sim.app_mut::<MetadataApp>(self.meta).queue_admin(op);
    }

    /// Generate `count` distinct keys that all hash into partition `p` —
    /// how experiments pin "all objects in the same partition" (§6.6).
    pub fn keys_in_partition(&self, p: PartitionId, count: usize) -> Vec<String> {
        let bits = self.cfg.partitions.trailing_zeros();
        let mut keys = Vec::with_capacity(count);
        let mut i = 0u64;
        while keys.len() < count {
            let k = format!("pinned-{i}");
            if PartitionId((hash_str(&k) >> (64 - bits)) as u32) == p {
                keys.push(k);
            }
            i += 1;
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_in_partition_pins_correctly() {
        let c = NiceCluster::build(ClusterCfg::new(4, 3, vec![]));
        let keys = c.keys_in_partition(PartitionId(5), 10);
        assert_eq!(keys.len(), 10);
        let bits = c.cfg.partitions.trailing_zeros();
        for k in &keys {
            assert_eq!((hash_str(k) >> (64 - bits)) as u32, 5);
        }
    }

    #[test]
    fn fluent_builder_matches_cfg_and_installs_faults() {
        let c = ClusterBuilder::new()
            .nodes(6)
            .replication(3)
            .seed(7)
            .client(vec![])
            .fault_plan(FaultPlan::new(7).loss(0.5))
            .build();
        assert_eq!(c.servers.len(), 6);
        assert_eq!(c.clients.len(), 1);
        assert!(
            c.sim.fault_stats().is_some(),
            "fault plan reached the simulator"
        );
    }

    #[test]
    fn builder_wires_everything() {
        let c = NiceCluster::build(ClusterCfg::new(5, 3, vec![vec![], vec![]]));
        assert_eq!(c.servers.len(), 5);
        assert_eq!(c.clients.len(), 2);
        assert_eq!(c.cfg.partitions, 16);
        assert_eq!(c.ring.replication(), 3);
        // client IPs sit inside the LB client space
        for ip in &c.client_ips {
            assert!(ip.in_prefix(c.cfg.client_space.0, c.cfg.client_space.1));
        }
    }
}

//! Assembles a complete NICE deployment inside one simulation: an
//! OpenFlow switch, the metadata service (SDN controller), storage nodes,
//! and clients — the §6 testbed in a box.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowSwitch, FlowTable, L3Learner};
use nice_ring::{hash_str, NodeIdx, PartitionId, PhysicalRing};
use nice_sim::{
    ChannelCfg, FaultPlan, HostCfg, HostId, Ipv4, Mac, Simulation, SwitchCfg, SwitchId, Time,
};

use crate::client::{ClientApp, ClientOp};
use crate::config::KvConfig;
use crate::metadata::{MetadataApp, SwitchHandle};
use crate::server::ServerApp;
use kv_core::{ClusterSpec, KvClient, MetricsRegistry, Telemetry};

/// Simulator host-layer configuration — the `SimHostCfg` half of the
/// layered cluster config ([`ClusterSpec`] + host config + system
/// config). Shared by the NICE and NOOB simulated deployments; the real
/// UDP runtime's counterpart is `node_rt::UdpHostCfg`.
#[derive(Clone)]
pub struct SimHostCfg {
    /// Link configuration (rate applies to every host).
    pub link: ChannelCfg,
    /// Switch parameters.
    pub switch: SwitchCfg,
    /// When clients start issuing operations (rules must be in place).
    pub client_start: Time,
    /// Deterministic fault plan, applied at the simulator's packet
    /// delivery choke point. Outage indices address storage nodes.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for SimHostCfg {
    fn default() -> SimHostCfg {
        SimHostCfg {
            link: ChannelCfg::gigabit(),
            switch: SwitchCfg::default(),
            client_start: Time::from_ms(50),
            fault_plan: None,
        }
    }
}

/// Everything needed to build a NICE cluster, in the workspace's layered
/// config shape: the system-agnostic [`ClusterSpec`], the simulator's
/// [`SimHostCfg`], and NICE's own [`KvConfig`]. An A/B experiment against
/// NOOB hands the *same* finished `ClusterCfg` to
/// `NoobClusterCfg::from_nice`, so the two systems differ only in the
/// access mechanism and consistency mode.
#[derive(Clone)]
pub struct ClusterCfg {
    /// System-agnostic deployment shape (nodes, replication, storage,
    /// retry/deadline behaviour, telemetry).
    pub spec: ClusterSpec,
    /// Simulator host layer (links, switch, fault plan, client start).
    pub host: SimHostCfg,
    /// Deploy a hot-standby metadata replica (§4.1): it shadows the
    /// active service's state and takes over if it fails.
    pub metadata_standby: bool,
    /// KV-level knobs (put mode, load balancing, timeouts); ring fields
    /// are overwritten at build time from `spec`.
    pub kv: KvConfig,
    /// The operation list of each client (one entry per client host).
    pub client_ops: Vec<Vec<ClientOp>>,
}

impl ClusterCfg {
    /// The paper's deployment shape: `storage_nodes` servers, replication
    /// `r`, and the given per-client op lists.
    pub fn new(storage_nodes: usize, r: usize, client_ops: Vec<Vec<ClientOp>>) -> ClusterCfg {
        ClusterCfg::from_spec(ClusterSpec::new(storage_nodes, r), client_ops)
    }

    /// A cluster from an explicit [`ClusterSpec`] (the entry point for
    /// A/B experiments that feed the same spec to both systems).
    pub fn from_spec(spec: ClusterSpec, client_ops: Vec<Vec<ClientOp>>) -> ClusterCfg {
        ClusterCfg {
            kv: KvConfig::new(spec.partition_count(), spec.replication),
            spec,
            host: SimHostCfg::default(),
            metadata_standby: false,
            client_ops,
        }
    }
}

/// A fully-wired NICE deployment.
pub struct NiceCluster {
    /// The simulation world.
    pub sim: Simulation,
    /// Resolved system configuration.
    pub cfg: KvConfig,
    /// The static placement.
    pub ring: PhysicalRing,
    /// The metadata-service host.
    pub meta: HostId,
    /// The hot-standby metadata host, if deployed.
    pub meta_standby: Option<HostId>,
    /// Storage-node hosts (index = `NodeIdx`).
    pub servers: Vec<HostId>,
    /// Storage-node addresses.
    pub server_ips: Vec<Ipv4>,
    /// Client hosts.
    pub clients: Vec<HostId>,
    /// Client addresses.
    pub client_ips: Vec<Ipv4>,
    /// The switch.
    pub switch: SwitchId,
    /// Its flow table (inspection).
    pub table: Rc<RefCell<FlowTable>>,
}

impl NiceCluster {
    /// Build and wire a cluster.
    pub fn build(cfg: ClusterCfg) -> NiceCluster {
        let spec = cfg.spec;
        let parts = spec.partition_count();
        let mut kv = cfg.kv;
        kv.partitions = parts;
        kv.replication = spec.replication;
        kv.unicast = nice_ring::VRing::unicast(parts);
        kv.multicast = nice_ring::VRing::multicast(parts);
        kv.telemetry = spec.telemetry;

        let mut sim = Simulation::new(spec.seed);
        let table = Rc::new(RefCell::new(FlowTable::new()));
        let switch = sim.add_switch(
            Box::new(FlowSwitch::new(Rc::clone(&table))),
            cfg.host.switch,
        );

        let meta_ip = Ipv4::new(10, 0, 0, 1);
        let meta_mac = Mac(0x100);
        let mut ports: BTreeMap<Ipv4, nice_sim::Port> = BTreeMap::new();

        // Storage nodes (including spares, which start outside the ring).
        let total_nodes = spec.nodes + spec.spares;
        let mut servers = Vec::new();
        let mut server_ips = Vec::new();
        for i in 0..total_nodes {
            let ip = Ipv4::new(10, 0, 0, 10 + i as u8);
            let mac = Mac(0x200 + i as u64);
            let app = ServerApp::new(kv, NodeIdx(i as u32), meta_ip, spec.storage);
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.host.link.host_uplink(), cfg.host.link);
            ports.insert(ip, port);
            servers.push(h);
            server_ips.push(ip);
        }

        // Clients: addresses inside kv.client_space, spread so that
        // consecutive clients land in *different* LB divisions (§4.5) —
        // client j sits in division j mod D.
        let divisions = (spec.replication as u32).next_power_of_two().min(16);
        let space_size = 1u32 << (32 - kv.client_space.1);
        let stride = space_size / divisions;
        let mut clients = Vec::new();
        let mut client_ips = Vec::new();
        for (j, ops) in cfg.client_ops.iter().enumerate() {
            let j32 = j as u32;
            let ip =
                Ipv4(kv.client_space.0 .0 + (j32 % divisions) * stride + (j32 / divisions) + 1);
            let mac = Mac(0x300 + j as u64);
            let start = cfg.host.client_start + Time::from_us(97) * j as u64;
            let mut app = ClientApp::new(kv, ops.clone(), start);
            app.retry_not_found = spec.retry_not_found;
            if let Some(retry) = spec.retry {
                app.retry = retry;
            }
            app.op_deadline = spec.op_deadline;
            app.tel = Telemetry::new(&spec.telemetry);
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.host.link.host_uplink(), cfg.host.link);
            ports.insert(ip, port);
            clients.push(h);
            client_ips.push(ip);
        }

        // Static physical provisioning: the operator knows the wiring, so
        // unicast physical rules are installed up front (the reactive
        // learning path of §5 still exists for anything unknown).
        for (&ip, &port) in &ports {
            let mac = if let Some(i) = server_ips.iter().position(|&s| s == ip) {
                Mac(0x200 + i as u64)
            } else if let Some(j) = client_ips.iter().position(|&c| c == ip) {
                Mac(0x300 + j as u64)
            } else {
                continue;
            };
            table.borrow_mut().install(
                FlowRule::new(
                    prio::PHYS,
                    FlowMatch::any().dst_ip(ip),
                    vec![Action::SetMacDst(mac), Action::Output(port)],
                ),
                Time::ZERO,
            );
        }

        // The metadata service + controller.
        let ring = PhysicalRing::new(
            parts,
            (0..spec.nodes as u32).map(NodeIdx).collect(),
            spec.replication,
        );
        let node_addrs: Vec<(Ipv4, Mac)> = server_ips
            .iter()
            .enumerate()
            .map(|(i, &ip)| (ip, Mac(0x200 + i as u64)))
            .collect();
        let handle = SwitchHandle {
            id: switch,
            table: Rc::clone(&table),
            ctrl_latency: cfg.host.switch.ctrl_latency,
            ports: ports.clone(),
        };
        let standby_ip = Ipv4::new(10, 0, 0, 2);
        let mut meta_app = MetadataApp::new(
            kv,
            ring.clone(),
            node_addrs.clone(),
            vec![handle],
            L3Learner::new(),
        );
        if cfg.metadata_standby {
            meta_app = meta_app.with_standby(standby_ip);
        }
        let meta = sim.add_host(Box::new(meta_app), HostCfg::new(meta_ip, meta_mac));
        let meta_port = sim.connect_asym(meta, switch, cfg.host.link.host_uplink(), cfg.host.link);
        table.borrow_mut().install(
            FlowRule::new(
                prio::PHYS,
                FlowMatch::any().dst_ip(meta_ip),
                vec![Action::SetMacDst(meta_mac), Action::Output(meta_port)],
            ),
            Time::ZERO,
        );
        sim.set_controller(switch, meta);

        let meta_standby = if cfg.metadata_standby {
            let standby_mac = Mac(0x101);
            let handle = SwitchHandle {
                id: switch,
                table: Rc::clone(&table),
                ctrl_latency: cfg.host.switch.ctrl_latency,
                ports,
            };
            let app =
                MetadataApp::new(kv, ring.clone(), node_addrs, vec![handle], L3Learner::new())
                    .into_standby(meta_ip);
            let h = sim.add_host(Box::new(app), HostCfg::new(standby_ip, standby_mac));
            let port = sim.connect_asym(h, switch, cfg.host.link.host_uplink(), cfg.host.link);
            table.borrow_mut().install(
                FlowRule::new(
                    prio::PHYS,
                    FlowMatch::any().dst_ip(standby_ip),
                    vec![Action::SetMacDst(standby_mac), Action::Output(port)],
                ),
                Time::ZERO,
            );
            Some(h)
        } else {
            None
        };

        // Fault injection: one plan at the delivery choke point; outage
        // indices map onto the storage-node slice.
        if let Some(plan) = cfg.host.fault_plan {
            sim.install_fault_plan(plan, &servers);
        }

        NiceCluster {
            sim,
            cfg: kv,
            ring,
            meta,
            meta_standby,
            servers,
            server_ips,
            clients,
            client_ips,
            switch,
            table,
        }
    }

    /// Borrow client `i`'s app.
    pub fn client(&self, i: usize) -> &ClientApp {
        self.sim.app::<ClientApp>(self.clients[i])
    }

    /// Borrow server `i`'s app.
    pub fn server(&self, i: usize) -> &ServerApp {
        self.sim.app::<ServerApp>(self.servers[i])
    }

    /// Borrow the metadata app.
    pub fn meta_app(&self) -> &MetadataApp {
        self.sim.app::<MetadataApp>(self.meta)
    }

    /// Run until every client drained its op queue (or `deadline`).
    /// Returns true if all clients finished.
    pub fn run_until_done(&mut self, deadline: Time) -> bool {
        loop {
            let all_done = self
                .clients
                .iter()
                .all(|&c| self.sim.app::<ClientApp>(c).done_at.is_some());
            if all_done {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let step = Time::from_ms(10).min(deadline - self.sim.now());
            self.sim.run_for(step);
        }
    }

    /// When the last client finished.
    pub fn finish_time(&self) -> Option<Time> {
        self.clients
            .iter()
            .map(|&c| self.sim.app::<ClientApp>(c).done_at)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(Time::ZERO))
    }

    /// The partition a key hashes into (static: independent of membership).
    pub fn partition_of_key(&self, key: &str) -> PartitionId {
        PartitionId((hash_str(key) >> (64 - self.cfg.partitions.trailing_zeros())) as u32)
    }

    /// Queue an administrator ring-reconfiguration command (§4.4); it is
    /// applied at the metadata service's next heartbeat tick.
    pub fn admin(&mut self, op: crate::metadata::AdminOp) {
        self.sim.app_mut::<MetadataApp>(self.meta).queue_admin(op);
    }

    /// Cluster-wide telemetry snapshot: every server's registry (engine
    /// counters, WAL/store totals, transport repair stats, phase
    /// histograms) merged with every client's (end-to-end latency,
    /// retries). Deterministic under a fixed seed — the simulator clock
    /// feeds every instrumentation point.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::default();
        for i in 0..self.servers.len() {
            m.merge(&self.server(i).metrics());
        }
        for i in 0..self.clients.len() {
            m.merge(&self.client(i).metrics());
        }
        m
    }

    /// Generate `count` distinct keys that all hash into partition `p` —
    /// how experiments pin "all objects in the same partition" (§6.6).
    pub fn keys_in_partition(&self, p: PartitionId, count: usize) -> Vec<String> {
        let bits = self.cfg.partitions.trailing_zeros();
        let mut keys = Vec::with_capacity(count);
        let mut i = 0u64;
        while keys.len() < count {
            let k = format!("pinned-{i}");
            if PartitionId((hash_str(&k) >> (64 - bits)) as u32) == p {
                keys.push(k);
            }
            i += 1;
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_in_partition_pins_correctly() {
        let c = NiceCluster::build(ClusterCfg::new(4, 3, vec![]));
        let keys = c.keys_in_partition(PartitionId(5), 10);
        assert_eq!(keys.len(), 10);
        let bits = c.cfg.partitions.trailing_zeros();
        for k in &keys {
            assert_eq!((hash_str(k) >> (64 - bits)) as u32, 5);
        }
    }

    #[test]
    fn layered_cfg_matches_spec_and_installs_faults() {
        let mut cfg = ClusterCfg::new(6, 3, vec![vec![]]);
        cfg.spec.seed = 7;
        cfg.host.fault_plan = Some(FaultPlan::new(7).loss(0.5));
        let c = NiceCluster::build(cfg);
        assert_eq!(c.servers.len(), 6);
        assert_eq!(c.clients.len(), 1);
        assert!(
            c.sim.fault_stats().is_some(),
            "fault plan reached the simulator"
        );
    }

    #[test]
    fn builder_wires_everything() {
        let c = NiceCluster::build(ClusterCfg::new(5, 3, vec![vec![], vec![]]));
        assert_eq!(c.servers.len(), 5);
        assert_eq!(c.clients.len(), 2);
        assert_eq!(c.cfg.partitions, 16);
        assert_eq!(c.ring.replication(), 3);
        // client IPs sit inside the LB client space
        for ip in &c.client_ips {
            assert!(ip.in_prefix(c.cfg.client_space.0, c.cfg.client_space.1));
        }
    }
}

//! The NICEKV storage node — the *policy adapter* over the shared
//! [`kv_core::ReplicationEngine`].
//!
//! All protocol state (object store, locks, 2PC coordinator records,
//! waiting writers, lock resolution) lives in the engine; this file owns
//! what makes NICE *NICE*: vring addressing, switch multicast for data
//! and timestamp distribution, partition views from the metadata
//! service, handoff get-forwarding, failure reports, heartbeats, and
//! node recovery (§4.2–§4.5). Engine transitions return
//! [`Effect`]s that this adapter turns into wire messages and timers:
//!
//! * the NICE-2PC put protocol of §4.3 / Figure 3 (multicast data, lock,
//!   forced log write, object write, timestamp round, client reply),
//! * get serving, including the handoff get-forwarding of §4.4,
//! * failure detection (2PC ack timeouts → failure reports; stale locks →
//!   primary-suspect reports) and heartbeats,
//! * node recovery (rejoin plan, handoff drain, recovery-done),
//! * primary failover lock resolution (commit-if-committed-anywhere,
//!   abort-if-locked-everywhere).
//!
//! Storage nodes hold O(R) membership knowledge only: the
//! [`PartitionView`]s the metadata service pushes for the partitions they
//! participate in (§4.1).

use std::collections::{BTreeMap, BTreeSet};

use kv_core::{
    Counters, Effect, EngineCfg, EngineRole, Group, KvError, LockResolution, MetricsRegistry,
    ObjectStore, ReplicationEngine, StorageCfg, TwoPcEngine, CTRL_COST, CTRL_MSG_BYTES,
    DATA_SEND_COST, DATA_SEND_THRESHOLD, REQ_COST,
};
use nice_ring::{hash_str, NodeIdx, PartitionId};
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};
use node_rt::{Ipv4, NodeApp, NodeIo, Packet, Time};

use crate::config::{KvConfig, PutMode};
use crate::msg::{KvMsg, LoadStats, OpId, PartitionView, Role, Timestamp, Value};

const TOK_HEARTBEAT: u64 = 1;
const TOK_SWEEP: u64 = 2;
const TOK_REJOIN_RETRY: u64 = 3;
const TOK_CONT_BASE: u64 = 1000;

/// Deferred work resumed by a timer (storage-write completions and
/// coordination deadlines).
enum Cont {
    /// The local object write (W) finished.
    Written { key: String, op: OpId },
    /// A 2PC coordination round deadline.
    CoordDeadline { key: String, op: OpId },
    /// A received message cleared the CPU queue: process it now. This is
    /// how request processing time becomes part of response latency.
    Process { msg: Box<KvMsg>, src: Ipv4 },
    /// A recovery drain waiting for its gate: the fetcher must be in our
    /// view and the put rounds that predate it must retire first.
    FetchGate {
        partition: PartitionId,
        from: NodeIdx,
        src: Ipv4,
        barrier: Option<Vec<(String, OpId)>>,
        tries: u32,
    },
}

/// The storage-node application.
pub struct ServerApp {
    cfg: KvConfig,
    node: NodeIdx,
    meta: Ipv4,
    tp: Transport,
    engine: TwoPcEngine,
    views: BTreeMap<PartitionId, PartitionView>,
    conts: BTreeMap<u64, Cont>,
    next_cont: u64,
    resolves: BTreeMap<PartitionId, LockResolution>,
    /// When each in-flight resolution started: one whose queried member
    /// died mid-protocol never completes, so the stale-lock sweep
    /// restarts it against the current membership.
    resolve_started: BTreeMap<PartitionId, Time>,
    /// Outstanding rejoin syncs: partitions we still owe a handoff fetch.
    rejoin_pending: BTreeSet<PartitionId>,
    rejoining: bool,
    stats: LoadStats,
    reported_down: BTreeSet<NodeIdx>,
}

impl ServerApp {
    /// A storage node `node` reporting to the metadata service at `meta`.
    pub fn new(cfg: KvConfig, node: NodeIdx, meta: Ipv4, storage: StorageCfg) -> ServerApp {
        ServerApp {
            tp: Transport::new(cfg.port),
            engine: TwoPcEngine::new(EngineCfg {
                storage,
                // NICE runs the coordinator deadlines of §4.4, commits on
                // its own multicast loopback, and keeps written pendings
                // durable for lock resolution.
                op_timeout: Some(cfg.op_timeout),
                inline_commit: false,
                durable_pending: true,
                telemetry: cfg.telemetry,
                // No TTL: the §4.4 deadline machinery plus the stale-lock
                // sweep clean up orphaned locks.
                stale_lock_ttl: None,
            }),
            cfg,
            node,
            meta,
            views: BTreeMap::new(),
            conts: BTreeMap::new(),
            next_cont: TOK_CONT_BASE,
            resolves: BTreeMap::new(),
            resolve_started: BTreeMap::new(),
            rejoin_pending: BTreeSet::new(),
            rejoining: false,
            stats: LoadStats::default(),
            reported_down: BTreeSet::new(),
        }
    }

    /// The node index.
    pub fn node(&self) -> NodeIdx {
        self.node
    }

    /// The local object store (inspection).
    pub fn store(&self) -> &ObjectStore {
        self.engine.store()
    }

    /// Rejoin progress (inspection): are we mid-drain, and which
    /// partitions still owe us handoff data.
    pub fn rejoin_state(&self) -> (bool, Vec<PartitionId>) {
        (
            self.rejoining,
            self.rejoin_pending.iter().copied().collect(),
        )
    }

    /// Observable counters.
    pub fn counters(&self) -> Counters {
        self.engine.counters()
    }

    /// The node's full metrics snapshot: engine phase histograms and
    /// WAL facts, protocol counters under `engine.*`, and transport
    /// reliability effort under `transport.*`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = self.engine.metrics();
        self.engine.counters().fold_into(&mut m);
        let tp = self.tp.stats();
        m.add("transport.probes", tp.probes);
        m.add("transport.nacks_sent", tp.nacks_sent);
        m.add("transport.nacks_received", tp.nacks_received);
        m.add("transport.repairs", tp.repairs);
        m.add("transport.syn_retries", tp.syn_retries);
        m
    }

    /// Current partition views (inspection).
    pub fn views(&self) -> &BTreeMap<PartitionId, PartitionView> {
        &self.views
    }

    /// Most recent internal invariant violation, if any (inspection; a
    /// correct run keeps this `None`).
    pub fn last_internal_error(&self) -> Option<&KvError> {
        self.engine.last_internal_error()
    }

    fn partition_of(&self, key: &str) -> PartitionId {
        PartitionId((hash_str(key) >> (64 - self.cfg.partitions.trailing_zeros())) as u32)
    }

    fn my_role(&self, view: &PartitionView) -> Option<Role> {
        if view.handoffs.contains(&self.node) {
            Some(Role::Handoff)
        } else if view.primary == self.node {
            Some(Role::Primary)
        } else if view.members.iter().any(|&(n, _)| n == self.node) {
            Some(Role::Secondary)
        } else {
            None
        }
    }

    /// The engine's view of a partition's replica group: every member
    /// that must ack, excluding this node.
    fn group_of(&self, view: &PartitionView, ctx: &dyn NodeIo) -> Group {
        Group {
            peers: view
                .members
                .iter()
                .map(|&(n, _)| n)
                .filter(|&n| n != self.node)
                .collect(),
            self_addr: ctx.ip(),
        }
    }

    fn defer(&mut self, ctx: &mut dyn NodeIo, at: Time, cont: Cont) {
        let tok = self.next_cont;
        self.next_cont += 1;
        self.conts.insert(tok, cont);
        ctx.set_timer(at.saturating_sub(ctx.now()), tok);
    }

    fn send_kv(&mut self, ctx: &mut dyn NodeIo, dst: Ipv4, msg: KvMsg, size: u32) {
        // Sending costs CPU too (syscall + copy), and materially more for
        // value-carrying messages than for small control messages.
        ctx.cpu_work(if size > DATA_SEND_THRESHOLD {
            DATA_SEND_COST
        } else {
            CTRL_COST
        });
        self.tp
            .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, size));
    }

    fn report_failure(&mut self, suspect: NodeIdx, ctx: &mut dyn NodeIo) {
        if self.reported_down.insert(suspect) {
            self.engine.counters_mut().failure_reports += 1;
            let from = self.node;
            self.send_kv(
                ctx,
                self.meta,
                KvMsg::FailureReport { suspect, from },
                CTRL_MSG_BYTES,
            );
        }
    }

    /// Turn engine effects into NICE wire traffic and timers. Acks go
    /// point-to-point to the primary; commit/abort distribution rides the
    /// partition's *multicast* vring so the switch replicates it (§4.2).
    fn apply_effects(&mut self, fx: Vec<Effect>, ctx: &mut dyn NodeIo) {
        for e in fx {
            match e {
                Effect::WriteDone { at, key, op } => {
                    self.defer(ctx, at, Cont::Written { key, op });
                }
                Effect::Deadline { at, key, op } => {
                    self.defer(ctx, at, Cont::CoordDeadline { key, op });
                }
                Effect::Ack1 { key, op } => {
                    let p = self.partition_of(&key);
                    if let Some(primary) = self.views.get(&p).and_then(PartitionView::primary_addr)
                    {
                        let from = self.node;
                        self.send_kv(
                            ctx,
                            primary,
                            KvMsg::PutAck1 { key, op, from },
                            CTRL_MSG_BYTES,
                        );
                    }
                }
                Effect::Ack2 { key, op } => {
                    let p = self.partition_of(&key);
                    if let Some(primary) = self.views.get(&p).and_then(PartitionView::primary_addr)
                    {
                        let from = self.node;
                        self.send_kv(
                            ctx,
                            primary,
                            KvMsg::PutAck2 { key, op, from },
                            CTRL_MSG_BYTES,
                        );
                    }
                }
                Effect::Commit { key, op, ts } => {
                    // Figure 3's "timestamp" message: multicast to the
                    // whole replica group (including ourselves).
                    let p = self.partition_of(&key);
                    if let Some(view) = self.views.get(&p) {
                        let members = view.len();
                        let group = self.cfg.multicast.vnode_for_key(p, key.as_bytes());
                        let msg = KvMsg::Commit { key, op, ts };
                        ctx.cpu_work(CTRL_COST);
                        self.tp.mcast_send(
                            ctx,
                            group,
                            self.cfg.port,
                            Msg::new(msg, CTRL_MSG_BYTES),
                            members,
                        );
                    }
                }
                Effect::Abort { key, op, issued } => {
                    let p = self.partition_of(&key);
                    if let Some(view) = self.views.get(&p) {
                        let n = view.len();
                        let group = self.cfg.multicast.vnode_for_key(p, key.as_bytes());
                        let msg = KvMsg::Abort { key, op, issued };
                        self.tp.mcast_send(
                            ctx,
                            group,
                            self.cfg.port,
                            Msg::new(msg, CTRL_MSG_BYTES),
                            n,
                        );
                    }
                }
                Effect::Reply { client, op, ok } => {
                    self.send_kv(ctx, client, KvMsg::PutReply { op, ok }, CTRL_MSG_BYTES);
                }
                Effect::Unresponsive { members } => {
                    for m in members {
                        self.report_failure(m, ctx);
                    }
                }
                Effect::Redrive { key, op, value } => {
                    self.on_put_request(key, value, op, ctx);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Put path (Figure 3)
    // -----------------------------------------------------------------

    fn on_put_request(&mut self, key: String, value: Value, op: OpId, ctx: &mut dyn NodeIo) {
        let p = self.partition_of(&key);
        let Some(view) = self.views.get(&p).cloned() else {
            return; // not (or no longer) a member: stale multicast rule
        };
        if self.my_role(&view).is_none() {
            return;
        }
        if let PutMode::Quorum { .. } = self.cfg.put_mode {
            // Quorum replication (§6.3): store directly; the any-k
            // transport acks give the client its completion signal.
            let Some(primary) = view.primary_addr() else {
                return; // malformed view: treat like a stale one
            };
            let ts = Timestamp {
                primary_seq: op.client_seq,
                primary,
                client_seq: op.client_seq,
                client: op.client,
            };
            // Device model advanced; no protocol round.
            self.engine.apply_copy(&key, value, ts, ctx.now());
            self.stats.puts += 1;
            return;
        }
        if self.engine.op_settled(op) {
            // The attempt already committed here (its reply was lost, or
            // the round expired between commit and the last ack2): the
            // primary answers directly; everyone else drops the stale
            // multicast. Re-preparing would re-commit the old value under
            // a new, higher timestamp — resurrecting it over later writes.
            if self.my_role(&view) == Some(Role::Primary) {
                self.apply_effects(
                    vec![Effect::Reply {
                        client: op.client,
                        op,
                        ok: true,
                    }],
                    ctx,
                );
            }
            return;
        }
        let mut fx = Vec::new();
        if self.engine.prepare(&key, value, op, ctx.now(), &mut fx) {
            self.stats.puts += 1;
        }
        self.apply_effects(fx, ctx);
    }

    fn on_written(&mut self, key: String, op: OpId, ctx: &mut dyn NodeIo) {
        let p = self.partition_of(&key);
        let Some(view) = self.views.get(&p).cloned() else {
            return;
        };
        let mut fx = Vec::new();
        match self.my_role(&view) {
            Some(Role::Primary) => {
                let g = self.group_of(&view, ctx);
                self.engine
                    .on_written(&key, op, EngineRole::Primary(&g), ctx.now(), &mut fx);
            }
            Some(Role::Secondary) | Some(Role::Handoff) => {
                self.engine
                    .on_written(&key, op, EngineRole::Peer, ctx.now(), &mut fx);
            }
            None => {
                self.engine
                    .on_written(&key, op, EngineRole::Observer, ctx.now(), &mut fx);
            }
        }
        self.apply_effects(fx, ctx);
    }

    fn on_ack1(&mut self, key: String, op: OpId, from: NodeIdx, ctx: &mut dyn NodeIo) {
        let p = self.partition_of(&key);
        let Some(view) = self.views.get(&p).cloned() else {
            return;
        };
        if self.my_role(&view) != Some(Role::Primary) {
            return; // stale: we are no longer primary
        }
        let g = self.group_of(&view, ctx);
        let mut fx = Vec::new();
        self.engine.on_ack1(&key, op, from, &g, ctx.now(), &mut fx);
        self.apply_effects(fx, ctx);
    }

    fn on_commit(&mut self, key: String, op: OpId, ts: Timestamp, ctx: &mut dyn NodeIo) {
        let p = self.partition_of(&key);
        let Some(view) = self.views.get(&p).cloned() else {
            return;
        };
        let mut fx = Vec::new();
        match self.my_role(&view) {
            Some(Role::Primary) => {
                // our own multicast copy: counts as the ack2 path
                let g = self.group_of(&view, ctx);
                self.engine
                    .on_commit(&key, op, ts, EngineRole::Primary(&g), &mut fx);
            }
            Some(Role::Secondary) | Some(Role::Handoff) => {
                self.engine
                    .on_commit(&key, op, ts, EngineRole::Peer, &mut fx);
            }
            None => {
                self.engine
                    .on_commit(&key, op, ts, EngineRole::Observer, &mut fx);
            }
        }
        self.apply_effects(fx, ctx);
    }

    fn on_ack2(&mut self, key: String, op: OpId, from: NodeIdx, ctx: &mut dyn NodeIo) {
        let p = self.partition_of(&key);
        let view = self.views.get(&p).cloned();
        let g = view.as_ref().map(|v| self.group_of(v, ctx));
        let mut fx = Vec::new();
        self.engine.on_ack2(&key, op, from, g.as_ref(), &mut fx);
        self.apply_effects(fx, ctx);
    }

    fn on_coord_deadline(&mut self, key: String, op: OpId, ctx: &mut dyn NodeIo) {
        let p = self.partition_of(&key);
        let view = self.views.get(&p).cloned();
        let g = view.as_ref().map(|v| self.group_of(v, ctx));
        let mut fx = Vec::new();
        self.engine
            .on_deadline(&key, op, g.as_ref(), ctx.now(), &mut fx);
        self.apply_effects(fx, ctx);
    }

    // -----------------------------------------------------------------
    // Get path
    // -----------------------------------------------------------------

    fn record_get_source(&mut self, p: PartitionId, client: Ipv4) {
        // /26 buckets of the client space — the "range of client IP
        // addresses accessing each partition" of §4.5.
        let bucket = client.network(26);
        if let Some(e) = self
            .stats
            .gets_by_range
            .iter_mut()
            .find(|(pp, b, _)| *pp == p && *b == bucket)
        {
            e.2 += 1;
        } else {
            self.stats.gets_by_range.push((p, bucket, 1));
        }
    }

    fn on_get_request(&mut self, key: String, op: OpId, ctx: &mut dyn NodeIo) {
        let p = self.partition_of(&key);
        self.record_get_source(p, op.client);
        let view = self.views.get(&p).cloned();
        if let Some(c) = self.engine.store().get(&key) {
            let size = c.value.size() + CTRL_MSG_BYTES;
            let reply = KvMsg::GetReply {
                op,
                value: Some(c.value.clone()),
                ts: Some(c.ts),
            };
            self.engine.counters_mut().gets_served += 1;
            self.stats.gets += 1;
            self.stats.bytes_out += size as u64;
            self.send_kv(ctx, op.client, reply, size);
            return;
        }
        // Miss: a handoff node forwards to the primary (§4.4).
        if let Some(view) = view {
            if self.my_role(&view) == Some(Role::Handoff) && view.primary != self.node {
                if let Some(primary) = view.primary_addr() {
                    self.engine.counters_mut().forwarded += 1;
                    self.send_kv(ctx, primary, KvMsg::GetForward { key, op }, CTRL_MSG_BYTES);
                    return;
                }
            }
        }
        self.stats.gets += 1;
        self.send_kv(
            ctx,
            op.client,
            KvMsg::GetReply {
                op,
                value: None,
                ts: None,
            },
            CTRL_MSG_BYTES,
        );
    }

    fn on_get_forward(&mut self, key: String, op: OpId, ctx: &mut dyn NodeIo) {
        let (reply, size) = match self.engine.store().get(&key) {
            Some(c) => (
                KvMsg::GetReply {
                    op,
                    value: Some(c.value.clone()),
                    ts: Some(c.ts),
                },
                c.value.size() + CTRL_MSG_BYTES,
            ),
            None => (
                KvMsg::GetReply {
                    op,
                    value: None,
                    ts: None,
                },
                CTRL_MSG_BYTES,
            ),
        };
        self.engine.counters_mut().gets_served += 1;
        self.stats.gets += 1;
        self.stats.bytes_out += size as u64;
        self.send_kv(ctx, op.client, reply, size);
    }

    // -----------------------------------------------------------------
    // Membership, recovery, failover
    // -----------------------------------------------------------------

    fn on_membership(&mut self, views: Vec<PartitionView>, ctx: &mut dyn NodeIo) {
        let bits = self.cfg.partitions.trailing_zeros();
        for view in views {
            let p = view.partition;
            let am_member = view.members.iter().any(|&(n, _)| n == self.node);
            if am_member {
                // Any node the metadata service lists as a member is
                // alive again: allow future failure reports for it.
                for &(m, _) in &view.members {
                    self.reported_down.remove(&m);
                }
                let am_primary = view.primary == self.node;
                self.views.insert(p, view);
                // Complete-cluster-failure recovery (§4.4): if we are the
                // primary and hold in-doubt (written-but-uncommitted)
                // entries for this partition — e.g. after a full restart —
                // resolve them with the commit-anywhere/abort-everywhere
                // rules.
                if am_primary && !self.resolves.contains_key(&p) {
                    let in_doubt = self
                        .engine
                        .store()
                        .in_doubt()
                        .into_iter()
                        .any(|(k, _)| PartitionId((hash_str(&k) >> (64 - bits)) as u32) == p);
                    if in_doubt {
                        self.on_become_primary(p, ctx);
                    }
                }
            } else {
                // Removed from the partition: if we were the handoff, drop
                // the objects we temporarily held (drained by the owner).
                // While the view still has syncing members we may hold the
                // only consistent copies (admin reconfiguration replaced
                // us before the incoming replicas drained) — keep them;
                // the metadata service re-sends the view once the
                // partition is consistent without us.
                self.views.remove(&p);
                if !view.syncing.is_empty() {
                    continue;
                }
                let gone: Vec<String> = self
                    .engine
                    .store()
                    .iter()
                    .filter(|(k, _)| PartitionId((hash_str(k) >> (64 - bits)) as u32) == p)
                    .map(|(k, _)| k.clone())
                    .collect();
                for k in gone {
                    self.engine.forget(&k);
                }
            }
        }
    }

    fn on_rejoin_plan(&mut self, sources: Vec<(PartitionId, Option<Ipv4>)>, ctx: &mut dyn NodeIo) {
        // A plan can arrive for a restart rejoin or for an admin
        // reconfiguration (we were added to new replica sets): either way
        // we drain the listed sources then report consistency.
        self.rejoining = true;
        self.rejoin_pending.clear();
        for (p, handoff) in sources {
            if let Some(ip) = handoff {
                self.rejoin_pending.insert(p);
                let from = self.node;
                self.send_kv(
                    ctx,
                    ip,
                    KvMsg::HandoffFetch { partition: p, from },
                    CTRL_MSG_BYTES,
                );
            }
        }
        // A drain source can die (or lose our fetch) before answering,
        // which would wedge us in the rejoining state — and the whole
        // partition with us — forever. Re-request a fresh plan from the
        // metadata service until every pending partition drains; the
        // plan is recomputed there, so a replacement source is picked up
        // automatically.
        ctx.set_timer(self.cfg.op_timeout * 8, TOK_REJOIN_RETRY);
        self.maybe_recovery_done(ctx);
    }

    fn rejoin_retry(&mut self, ctx: &mut dyn NodeIo) {
        if !self.rejoining || self.rejoin_pending.is_empty() {
            return;
        }
        let node = self.node;
        self.send_kv(
            ctx,
            self.meta,
            KvMsg::RejoinRequest { node },
            CTRL_MSG_BYTES,
        );
        ctx.set_timer(self.cfg.op_timeout * 8, TOK_REJOIN_RETRY);
    }

    fn on_handoff_fetch(
        &mut self,
        partition: PartitionId,
        from: NodeIdx,
        src: Ipv4,
        ctx: &mut dyn NodeIo,
    ) {
        self.serve_fetch(partition, from, src, None, 0, ctx);
    }

    /// Answer a recovery drain — but only once it is safe. The snapshot
    /// races with put rounds whose replica group was fixed before the
    /// fetcher joined the view: such a round can commit *after* we
    /// snapshot yet never reach the fetcher, which would then serve
    /// stale gets once recovered. Gate the response on (a) the fetcher
    /// appearing in our view (every later round includes it) and (b) the
    /// rounds in flight at that moment having retired. The gate is
    /// bounded: a wedged round is settled by its own deadline long before
    /// the retry budget runs out, and on exhaustion we answer anyway
    /// (liveness over a theoretical straggler).
    fn serve_fetch(
        &mut self,
        partition: PartitionId,
        from: NodeIdx,
        src: Ipv4,
        barrier: Option<Vec<(String, OpId)>>,
        tries: u32,
        ctx: &mut dyn NodeIo,
    ) {
        const FETCH_GATE_TRIES: u32 = 64;
        let bits = self.cfg.partitions.trailing_zeros();
        let retry_in = self.cfg.op_timeout / 8;
        // We are ourselves mid-drain: answering now would propagate an
        // incomplete snapshot (e.g. chained admin reconfigurations where
        // the freshest member is named as the next sync source). Hold
        // the reply until we are consistent.
        if self.rejoining && tries < FETCH_GATE_TRIES {
            let at = ctx.now() + retry_in;
            self.defer(
                ctx,
                at,
                Cont::FetchGate {
                    partition,
                    from,
                    src,
                    barrier: None,
                    tries: tries + 1,
                },
            );
            return;
        }
        // Gate (a) is vacuous when we no longer hold a view: we left the
        // partition (deferred-GC sync source), so no new put round can
        // reach us anyway — only the in-flight barrier below matters.
        let in_view = self
            .views
            .get(&partition)
            .is_none_or(|v| v.members.iter().any(|&(n, _)| n == from));
        if !in_view && tries < FETCH_GATE_TRIES {
            let at = ctx.now() + retry_in;
            self.defer(
                ctx,
                at,
                Cont::FetchGate {
                    partition,
                    from,
                    src,
                    barrier: None,
                    tries: tries + 1,
                },
            );
            return;
        }
        let barrier = barrier.unwrap_or_else(|| {
            self.engine
                .in_flight(&|k| PartitionId((hash_str(k) >> (64 - bits)) as u32) == partition)
        });
        let live: Vec<(String, OpId)> = barrier
            .into_iter()
            .filter(|(k, op)| self.engine.coord_live(k, *op))
            .collect();
        if !live.is_empty() && tries < FETCH_GATE_TRIES {
            let at = ctx.now() + retry_in;
            self.defer(
                ctx,
                at,
                Cont::FetchGate {
                    partition,
                    from,
                    src,
                    barrier: Some(live),
                    tries: tries + 1,
                },
            );
            return;
        }
        let objects: Vec<(String, Value, Timestamp)> = self
            .engine
            .store()
            .iter()
            .filter(|(k, _)| PartitionId((hash_str(k) >> (64 - bits)) as u32) == partition)
            .map(|(k, c)| (k.clone(), c.value.clone(), c.ts))
            .collect();
        let size: u32 = objects
            .iter()
            .map(|(k, v, _)| v.size() + k.len() as u32 + 32)
            .sum::<u32>()
            + CTRL_MSG_BYTES;
        self.send_kv(ctx, src, KvMsg::HandoffData { partition, objects }, size);
    }

    fn on_handoff_data(
        &mut self,
        partition: PartitionId,
        objects: Vec<(String, Value, Timestamp)>,
        ctx: &mut dyn NodeIo,
    ) {
        self.engine.ingest(ctx.now(), objects);
        self.rejoin_pending.remove(&partition);
        self.maybe_recovery_done(ctx);
    }

    fn maybe_recovery_done(&mut self, ctx: &mut dyn NodeIo) {
        if self.rejoining && self.rejoin_pending.is_empty() {
            self.rejoining = false;
            let node = self.node;
            self.send_kv(ctx, self.meta, KvMsg::RecoveryDone { node }, CTRL_MSG_BYTES);
        }
    }

    fn on_become_primary(&mut self, partition: PartitionId, ctx: &mut dyn NodeIo) {
        let Some(view) = self.views.get(&partition).cloned() else {
            return;
        };
        self.resolve_started.insert(partition, ctx.now());
        let others: BTreeSet<NodeIdx> = view
            .members
            .iter()
            .map(|&(n, _)| n)
            .filter(|&n| n != self.node)
            .collect();
        // Seed with our own lock table.
        let bits = self.cfg.partitions.trailing_zeros();
        let (seed, max_seq) = self
            .engine
            .lock_report(&|k| PartitionId((hash_str(k) >> (64 - bits)) as u32) == partition);
        let res = LockResolution::new(others.clone(), seed, max_seq);
        if res.complete() {
            self.resolves.insert(partition, res);
            self.finish_resolution(partition, ctx);
            return;
        }
        for &n in &others {
            if let Some(ip) = view.addr_of(n) {
                self.send_kv(ctx, ip, KvMsg::LockQuery { partition }, CTRL_MSG_BYTES);
            }
        }
        self.resolves.insert(partition, res);
    }

    fn on_lock_query(&mut self, partition: PartitionId, src: Ipv4, ctx: &mut dyn NodeIo) {
        let bits = self.cfg.partitions.trailing_zeros();
        let (locked, max_seq) = self
            .engine
            .lock_report(&|k| PartitionId((hash_str(k) >> (64 - bits)) as u32) == partition);
        let from = self.node;
        self.send_kv(
            ctx,
            src,
            KvMsg::LockReport {
                partition,
                from,
                locked,
                max_seq,
            },
            CTRL_MSG_BYTES,
        );
    }

    fn on_lock_report(
        &mut self,
        partition: PartitionId,
        from: NodeIdx,
        locked: Vec<(String, OpId, Option<Timestamp>)>,
        max_seq: u64,
        ctx: &mut dyn NodeIo,
    ) {
        let Some(res) = self.resolves.get_mut(&partition) else {
            return;
        };
        if res.absorb(from, locked, max_seq) {
            self.finish_resolution(partition, ctx);
        }
    }

    /// §4.4: "if the object is committed on any secondary node … The
    /// primary will commit and unlock the object. If an object is locked
    /// on all secondary nodes, then the new primary will abort."
    fn finish_resolution(&mut self, partition: PartitionId, ctx: &mut dyn NodeIo) {
        // Date resolution aborts at the moment the lock reports were
        // requested: a lock re-taken by a client retry *after* that is
        // part of a live round this resolution never saw, and must not
        // be torn down by its verdict.
        let started = self
            .resolve_started
            .remove(&partition)
            .unwrap_or_else(|| ctx.now());
        let Some(res) = self.resolves.remove(&partition) else {
            return;
        };
        let (max_seq, verdicts) = res.settle();
        self.engine.observe_seq(max_seq);
        let Some(view) = self.views.get(&partition).cloned() else {
            return;
        };
        let members = view.len();
        for (key, op, committed_ts) in verdicts {
            // §4.4's abort rule presumes the coordinator died. When *we*
            // are still coordinating this round (a primary resolving its
            // own partition after secondaries' ResolveRequests queued up
            // behind a healed link), the round is in flight — leave it to
            // commit or deadline-abort on its own. A coordinator record
            // lives at most ~2x op_timeout, so a genuinely wedged lock is
            // settled by the next sweep once the record is gone.
            if committed_ts.is_none() && self.engine.coord_live(&key, op) {
                continue;
            }
            let group = self.cfg.multicast.vnode_for_key(partition, key.as_bytes());
            let msg = match committed_ts {
                // Committed somewhere: the old primary had decided to
                // commit; finish the job everywhere.
                Some(ts) => KvMsg::Commit { key, op, ts },
                // Locked everywhere, committed nowhere: abort.
                None => KvMsg::Abort {
                    key,
                    op,
                    issued: started,
                },
            };
            self.tp.mcast_send(
                ctx,
                group,
                self.cfg.port,
                Msg::new(msg, CTRL_MSG_BYTES),
                members,
            );
        }
    }

    // -----------------------------------------------------------------
    // Timers
    // -----------------------------------------------------------------

    fn heartbeat(&mut self, ctx: &mut dyn NodeIo) {
        let msg = KvMsg::Heartbeat {
            node: self.node,
            stats: std::mem::take(&mut self.stats),
        };
        self.tp
            .udp_send(ctx, self.meta, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES));
        ctx.set_timer(self.cfg.hb_interval, TOK_HEARTBEAT);
    }

    /// Detect a dead primary: a lock nobody commits within 2x op_timeout
    /// means the timestamp message never came (§4.4 "the secondary nodes
    /// will detect the failure by timing out on the replication message").
    fn sweep_stale_locks(&mut self, ctx: &mut dyn NodeIo) {
        let now = ctx.now();
        let threshold = self.cfg.op_timeout * 2;
        let bits = self.cfg.partitions.trailing_zeros();
        let mut stale: BTreeSet<PartitionId> = BTreeSet::new();
        for (k, pd) in self.engine.store().pending_iter() {
            if now.saturating_sub(pd.locked_at) < threshold {
                continue;
            }
            stale.insert(PartitionId((hash_str(k) >> (64 - bits)) as u32));
        }
        // Ask the partition primary to settle the orphan via §4.4 lock
        // resolution rather than declaring it failed: the lock usually
        // outlived its round because *this* node missed the commit or
        // abort (it left the multicast group mid-round), and a healthy
        // primary must not be deposed over it. A genuinely dead primary
        // is caught by the metadata heartbeat-gap detector instead.
        for p in stale {
            let Some(view) = self.views.get(&p) else {
                continue;
            };
            if view.primary == self.node {
                // A resolution whose queried member died mid-protocol
                // never completes; restart it against the current
                // membership once it is clearly stuck.
                let stuck = self
                    .resolve_started
                    .get(&p)
                    .is_some_and(|&t0| now.saturating_sub(t0) > self.cfg.op_timeout * 4);
                if stuck {
                    self.resolves.remove(&p);
                }
                if !self.resolves.contains_key(&p) {
                    self.on_become_primary(p, ctx);
                }
            } else if let Some(dst) = view.addr_of(view.primary) {
                self.send_kv(
                    ctx,
                    dst,
                    KvMsg::ResolveRequest { partition: p },
                    CTRL_MSG_BYTES,
                );
            }
        }
        ctx.set_timer(self.cfg.op_timeout, TOK_SWEEP);
    }

    // -----------------------------------------------------------------
    // Event plumbing
    // -----------------------------------------------------------------

    fn on_kv(&mut self, msg: &KvMsg, src: Ipv4, ctx: &mut dyn NodeIo) {
        match msg.clone() {
            KvMsg::PutRequest { key, value, op } => self.on_put_request(key, value, op, ctx),
            KvMsg::GetRequest { key, op } => self.on_get_request(key, op, ctx),
            KvMsg::PutAck1 { key, op, from } => self.on_ack1(key, op, from, ctx),
            KvMsg::Commit { key, op, ts } => self.on_commit(key, op, ts, ctx),
            KvMsg::PutAck2 { key, op, from } => self.on_ack2(key, op, from, ctx),
            KvMsg::Abort { key, op, issued } => {
                let mut fx = Vec::new();
                self.engine.on_abort(&key, op, issued, &mut fx);
                self.apply_effects(fx, ctx);
            }
            KvMsg::Membership { views } => self.on_membership(views, ctx),
            KvMsg::MetaFailover { new_meta } => {
                // The hot standby took over (§4.1): report there from now.
                // If we restarted while the old active was dead, our
                // rejoin request went to a black hole — re-report to the
                // new active so it sends us a drain plan.
                self.meta = new_meta;
                if self.rejoining {
                    let node = self.node;
                    self.send_kv(
                        ctx,
                        self.meta,
                        KvMsg::RejoinRequest { node },
                        CTRL_MSG_BYTES,
                    );
                }
            }
            KvMsg::RejoinPlan { sources } => self.on_rejoin_plan(sources, ctx),
            KvMsg::HandoffFetch { partition, from } => {
                self.on_handoff_fetch(partition, from, src, ctx);
            }
            KvMsg::HandoffData { partition, objects } => {
                self.on_handoff_data(partition, objects, ctx);
            }
            KvMsg::GetForward { key, op } => self.on_get_forward(key, op, ctx),
            KvMsg::BecomePrimary { partition } => self.on_become_primary(partition, ctx),
            KvMsg::ResolveRequest { partition } => {
                // A secondary holds an orphaned lock: settle the
                // partition's in-doubt entries if we really are its
                // primary and no resolution is already running.
                let am_primary = self
                    .views
                    .get(&partition)
                    .is_some_and(|v| v.primary == self.node);
                if am_primary && !self.resolves.contains_key(&partition) {
                    self.on_become_primary(partition, ctx);
                }
            }
            KvMsg::LockQuery { partition } => self.on_lock_query(partition, src, ctx),
            KvMsg::LockReport {
                partition,
                from,
                locked,
                max_seq,
            } => self.on_lock_report(partition, from, locked, max_seq, ctx),
            // Server never receives these:
            KvMsg::PutReply { .. }
            | KvMsg::GetReply { .. }
            | KvMsg::Heartbeat { .. }
            | KvMsg::FailureReport { .. }
            | KvMsg::RejoinRequest { .. }
            | KvMsg::MetaSync { .. }
            | KvMsg::RecoveryDone { .. } => {}
        }
    }

    /// CPU cost of processing one message: full requests (data-carrying
    /// or storage-touching) vs small control messages.
    fn msg_cost(msg: &KvMsg) -> Time {
        match msg {
            KvMsg::PutRequest { .. }
            | KvMsg::GetRequest { .. }
            | KvMsg::GetForward { .. }
            | KvMsg::HandoffData { .. }
            | KvMsg::HandoffFetch { .. } => REQ_COST,
            _ => CTRL_COST,
        }
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut dyn NodeIo) {
        for ev in events {
            if let TransportEvent::Delivered { from, msg, .. } = ev {
                if let Some(kv) = msg.downcast::<KvMsg>() {
                    // Queue the message on the serial CPU; it is processed
                    // (and replied to) when its processing slot completes.
                    let kv = kv.clone();
                    let cost = Self::msg_cost(&kv);
                    let tok = self.next_cont;
                    self.next_cont += 1;
                    self.conts.insert(
                        tok,
                        Cont::Process {
                            msg: Box::new(kv),
                            src: from.0,
                        },
                    );
                    ctx.cpu_defer(cost, tok);
                }
            }
        }
    }
}

impl NodeApp for ServerApp {
    fn on_start(&mut self, ctx: &mut dyn NodeIo) {
        self.heartbeat(ctx);
        ctx.set_timer(self.cfg.op_timeout, TOK_SWEEP);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut dyn NodeIo) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut dyn NodeIo) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        match token {
            TOK_HEARTBEAT => self.heartbeat(ctx),
            TOK_SWEEP => self.sweep_stale_locks(ctx),
            TOK_REJOIN_RETRY => self.rejoin_retry(ctx),
            t => {
                if let Some(cont) = self.conts.remove(&t) {
                    match cont {
                        Cont::Written { key, op } => self.on_written(key, op, ctx),
                        Cont::CoordDeadline { key, op } => self.on_coord_deadline(key, op, ctx),
                        Cont::Process { msg, src } => self.on_kv(&msg, src, ctx),
                        Cont::FetchGate {
                            partition,
                            from,
                            src,
                            barrier,
                            tries,
                        } => self.serve_fetch(partition, from, src, barrier, tries, ctx),
                    }
                }
            }
        }
    }

    fn on_crash(&mut self) {
        // Volatile state dies; committed objects and the log survive.
        self.tp.on_crash();
        self.engine.reset();
        self.conts.clear();
        self.views.clear();
        self.resolves.clear();
        self.rejoin_pending.clear();
        self.rejoining = false;
        self.reported_down.clear();
    }

    fn on_restart(&mut self, ctx: &mut dyn NodeIo) {
        self.rejoining = true;
        let node = self.node;
        self.send_kv(
            ctx,
            self.meta,
            KvMsg::RejoinRequest { node },
            CTRL_MSG_BYTES,
        );
        self.heartbeat(ctx);
        ctx.set_timer(self.cfg.op_timeout, TOK_SWEEP);
    }
}

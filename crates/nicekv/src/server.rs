//! The NICEKV storage node.
//!
//! A state machine implementing the paper's network-centric mechanisms
//! from the server side:
//!
//! * the NICE-2PC put protocol of §4.3 / Figure 3 (multicast data, lock,
//!   forced log write, object write, timestamp round, client reply),
//! * get serving, including the handoff get-forwarding of §4.4,
//! * failure detection (2PC ack timeouts → failure reports; stale locks →
//!   primary-suspect reports) and heartbeats,
//! * node recovery (rejoin plan, handoff drain, recovery-done),
//! * primary failover lock resolution (commit-if-committed-anywhere,
//!   abort-if-locked-everywhere).
//!
//! Storage nodes hold O(R) membership knowledge only: the
//! [`PartitionView`]s the metadata service pushes for the partitions they
//! participate in (§4.1).

use std::collections::{BTreeMap, BTreeSet};

use nice_ring::{hash_str, NodeIdx, PartitionId};
use nice_sim::{App, Ctx, Ipv4, Packet, Time};
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};

use crate::config::{KvConfig, PutMode};
use crate::error::KvError;
use crate::msg::{KvMsg, LoadStats, OpId, PartitionView, Role, Timestamp, Value};
use crate::storage::{ObjectStore, StorageCfg};

const TOK_HEARTBEAT: u64 = 1;
const TOK_SWEEP: u64 = 2;
const TOK_CONT_BASE: u64 = 1000;

/// Approximate wire size of small protocol messages (acks, queries).
const CTRL_MSG_BYTES: u32 = 64;
/// App-level CPU cost of serving one client request (parse, hash, index,
/// buffer management, reply serialization). Calibrated to a Swift-class
/// 2017 storage stack (§6: "NOOB-RAG performance was equivalent or
/// slightly better than Swift storage").
const REQ_COST: Time = Time::from_us(300);
/// App-level CPU cost of handling one small protocol/control message
/// (acks, timestamps, membership).
const CTRL_COST: Time = Time::from_us(15);
/// App-level CPU cost of *sending* one value-carrying message (socket
/// write, stack traversal, segmentation). This is what makes a NOOB
/// primary that fans out R-1 object copies a CPU hotspot as well as a
/// network one (Figures 7 and 12).
const DATA_SEND_COST: Time = Time::from_us(100);
/// Messages larger than this pay [`DATA_SEND_COST`] on send.
const DATA_SEND_THRESHOLD: u32 = 512;

/// Deferred work resumed by a timer (storage-write completions and
/// coordination deadlines).
enum Cont {
    /// The local object write (W) finished.
    Written { key: String, op: OpId },
    /// A 2PC coordination round deadline.
    CoordDeadline { key: String, op: OpId },
    /// A received message cleared the CPU queue: process it now. This is
    /// how request processing time becomes part of response latency.
    Process { msg: Box<KvMsg>, src: Ipv4 },
}

/// Primary-side state of one in-flight put.
struct Coord {
    partition: PartitionId,
    client: Ipv4,
    acks1: BTreeSet<NodeIdx>,
    acks2: BTreeSet<NodeIdx>,
    self_written: bool,
    committed: bool,
    timeouts: u32,
}

/// Lock-resolution state on a freshly promoted primary.
struct Resolve {
    waiting: BTreeSet<NodeIdx>,
    /// key -> (op, committed_ts anywhere?, lock count)
    locked: BTreeMap<String, (OpId, Option<Timestamp>, usize)>,
    max_seq: u64,
}

/// The storage-node application.
pub struct ServerApp {
    cfg: KvConfig,
    node: NodeIdx,
    meta: Ipv4,
    tp: Transport,
    store: ObjectStore,
    views: BTreeMap<PartitionId, PartitionView>,
    coords: BTreeMap<(String, OpId), Coord>,
    waiting: BTreeMap<String, Vec<(OpId, Value)>>,
    conts: BTreeMap<u64, Cont>,
    next_cont: u64,
    primary_seq: u64,
    resolves: BTreeMap<PartitionId, Resolve>,
    /// Outstanding rejoin syncs: partitions we still owe a handoff fetch.
    rejoin_pending: BTreeSet<PartitionId>,
    rejoining: bool,
    stats: LoadStats,
    reported_down: BTreeSet<NodeIdx>,
    /// Totals for tests/benches.
    pub_counters: Counters,
    /// Most recent internal invariant violation, kept for diagnostics.
    last_internal_error: Option<KvError>,
}

/// Observable server counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Gets served locally.
    pub gets_served: u64,
    /// Gets forwarded to the primary (handoff misses).
    pub gets_forwarded: u64,
    /// Puts committed locally.
    pub puts_committed: u64,
    /// Puts aborted.
    pub puts_aborted: u64,
    /// Failure reports sent.
    pub failure_reports: u64,
    /// Internal invariant violations survived without panicking
    /// (see [`KvError`]); nonzero indicates a protocol bug.
    pub internal_errors: u64,
}

impl ServerApp {
    /// A storage node `node` reporting to the metadata service at `meta`.
    pub fn new(cfg: KvConfig, node: NodeIdx, meta: Ipv4, storage: StorageCfg) -> ServerApp {
        ServerApp {
            tp: Transport::new(cfg.port),
            cfg,
            node,
            meta,
            store: ObjectStore::new(storage),
            views: BTreeMap::new(),
            coords: BTreeMap::new(),
            waiting: BTreeMap::new(),
            conts: BTreeMap::new(),
            next_cont: TOK_CONT_BASE,
            primary_seq: 0,
            resolves: BTreeMap::new(),
            rejoin_pending: BTreeSet::new(),
            rejoining: false,
            stats: LoadStats::default(),
            reported_down: BTreeSet::new(),
            pub_counters: Counters::default(),
            last_internal_error: None,
        }
    }

    /// The node index.
    pub fn node(&self) -> NodeIdx {
        self.node
    }

    /// The local object store (inspection).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Observable counters.
    pub fn counters(&self) -> Counters {
        self.pub_counters
    }

    /// Current partition views (inspection).
    pub fn views(&self) -> &BTreeMap<PartitionId, PartitionView> {
        &self.views
    }

    /// Most recent internal invariant violation, if any (inspection; a
    /// correct run keeps this `None`).
    pub fn last_internal_error(&self) -> Option<&KvError> {
        self.last_internal_error.as_ref()
    }

    /// Record an internal invariant violation instead of panicking: the
    /// affected operation is dropped (its client times out and retries)
    /// and the node keeps serving.
    fn note_internal(&mut self, err: KvError) {
        self.pub_counters.internal_errors += 1;
        self.last_internal_error = Some(err);
    }

    fn partition_of(&self, key: &str) -> PartitionId {
        PartitionId((hash_str(key) >> (64 - self.cfg.partitions.trailing_zeros())) as u32)
    }

    fn my_role(&self, view: &PartitionView) -> Option<Role> {
        if view.handoffs.contains(&self.node) {
            Some(Role::Handoff)
        } else if view.primary == self.node {
            Some(Role::Primary)
        } else if view.members.iter().any(|&(n, _)| n == self.node) {
            Some(Role::Secondary)
        } else {
            None
        }
    }

    fn defer(&mut self, ctx: &mut Ctx, at: Time, cont: Cont) {
        let tok = self.next_cont;
        self.next_cont += 1;
        self.conts.insert(tok, cont);
        ctx.set_timer(at.saturating_sub(ctx.now()), tok);
    }

    fn send_kv(&mut self, ctx: &mut Ctx, dst: Ipv4, msg: KvMsg, size: u32) {
        // Sending costs CPU too (syscall + copy), and materially more for
        // value-carrying messages than for small control messages.
        ctx.cpu_work(if size > DATA_SEND_THRESHOLD {
            DATA_SEND_COST
        } else {
            CTRL_COST
        });
        self.tp
            .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, size));
    }

    // -----------------------------------------------------------------
    // Put path (Figure 3)
    // -----------------------------------------------------------------

    fn on_put_request(&mut self, key: String, value: Value, op: OpId, ctx: &mut Ctx) {
        let p = self.partition_of(&key);
        let Some(view) = self.views.get(&p).cloned() else {
            return; // not (or no longer) a member: stale multicast rule
        };
        if self.my_role(&view).is_none() {
            return;
        }
        if let PutMode::Quorum { .. } = self.cfg.put_mode {
            // Quorum replication (§6.3): store directly; the any-k
            // transport acks give the client its completion signal.
            let size = value.size();
            let done = self.store.write_delay(ctx.now(), size, true);
            let ts = Timestamp {
                primary_seq: op.client_seq,
                primary: view.primary_addr(),
                client_seq: op.client_seq,
                client: op.client,
            };
            self.store.commit_direct(&key, value, ts);
            self.pub_counters.puts_committed += 1;
            self.stats.puts += 1;
            let _ = done; // device model advanced; no protocol round
            return;
        }
        if !self.store.lock(&key, op, value.clone(), ctx.now()) {
            // Locked by another op: queue behind it.
            let q = self.waiting.entry(key.clone()).or_default();
            if !q.iter().any(|(o, _)| *o == op) {
                q.push((op, value));
            }
            return;
        }
        self.stats.puts += 1;
        // +L (forced) then W: both on the storage device.
        let size = self.store.pending(&key).map_or(0, |pd| pd.value.size());
        self.store.write_delay(ctx.now(), 100, true);
        let done = self.store.write_delay(ctx.now(), size, false);
        self.defer(ctx, done, Cont::Written { key, op });
    }

    fn on_written(&mut self, key: String, op: OpId, ctx: &mut Ctx) {
        let p = self.partition_of(&key);
        let Some(view) = self.views.get(&p).cloned() else {
            return;
        };
        let Some(pending) = self.store.pending_mut(&key) else {
            return; // already committed/aborted meanwhile
        };
        if pending.op != op {
            return;
        }
        pending.written = true;
        match self.my_role(&view) {
            Some(Role::Primary) => {
                match self.ensure_coord(&key, op, p, view.primary_addr(), ctx) {
                    Ok(coord) => coord.self_written = true,
                    Err(e) => return self.note_internal(e),
                }
                self.check_commit(&key, op, ctx);
            }
            Some(Role::Secondary) | Some(Role::Handoff) => {
                let primary = view.primary_addr();
                let from = self.node;
                self.send_kv(
                    ctx,
                    primary,
                    KvMsg::PutAck1 { key, op, from },
                    CTRL_MSG_BYTES,
                );
            }
            None => {}
        }
    }

    /// Ensure a 2PC coordinator record exists for `(key, op)`, arming its
    /// first deadline when newly created. Total: a map that refuses the
    /// insert yields a typed [`KvError`] instead of a panic.
    fn ensure_coord(
        &mut self,
        key: &str,
        op: OpId,
        p: PartitionId,
        _self_ip: Ipv4,
        ctx: &mut Ctx,
    ) -> Result<&mut Coord, KvError> {
        let k = (key.to_owned(), op);
        if !self.coords.contains_key(&k) {
            self.coords.insert(
                k.clone(),
                Coord {
                    partition: p,
                    client: op.client,
                    acks1: BTreeSet::new(),
                    acks2: BTreeSet::new(),
                    self_written: false,
                    committed: false,
                    timeouts: 0,
                },
            );
            let deadline = ctx.now() + self.cfg.op_timeout;
            self.defer(
                ctx,
                deadline,
                Cont::CoordDeadline {
                    key: key.to_owned(),
                    op,
                },
            );
        }
        self.coords
            .get_mut(&k)
            .ok_or_else(|| KvError::CoordinatorMissing {
                key: key.to_owned(),
                op,
            })
    }

    fn on_ack1(&mut self, key: String, op: OpId, from: NodeIdx, ctx: &mut Ctx) {
        let p = self.partition_of(&key);
        let Some(view) = self.views.get(&p).cloned() else {
            return;
        };
        if self.my_role(&view) != Some(Role::Primary) {
            return; // stale: we are no longer primary
        }
        match self.ensure_coord(&key, op, p, view.primary_addr(), ctx) {
            Ok(coord) => {
                coord.acks1.insert(from);
            }
            Err(e) => return self.note_internal(e),
        }
        self.check_commit(&key, op, ctx);
    }

    fn check_commit(&mut self, key: &str, op: OpId, ctx: &mut Ctx) {
        let k = (key.to_owned(), op);
        let Some(coord) = self.coords.get(&k) else {
            return;
        };
        if coord.committed || !coord.self_written {
            return;
        }
        let Some(view) = self.views.get(&coord.partition) else {
            return;
        };
        let needed: Vec<NodeIdx> = view
            .members
            .iter()
            .map(|&(n, _)| n)
            .filter(|&n| n != self.node)
            .collect();
        if !needed.iter().all(|n| coord.acks1.contains(n)) {
            return;
        }
        // All replicas hold the data: generate the timestamp quadruplet
        // and multicast it (Figure 3's "timestamp" message).
        self.primary_seq += 1;
        let ts = Timestamp {
            primary_seq: self.primary_seq,
            primary: ctx.ip(),
            client_seq: op.client_seq,
            client: op.client,
        };
        let partition = coord.partition;
        let members = view.len();
        match self.coords.get_mut(&k) {
            Some(coord) => coord.committed = true,
            None => return self.note_internal(KvError::CoordinatorMissing { key: k.0, op }),
        }
        let group = self.cfg.multicast.vnode_for_key(partition, key.as_bytes());
        let msg = KvMsg::Commit {
            key: key.to_owned(),
            op,
            ts,
        };
        ctx.cpu_work(CTRL_COST);
        self.tp.mcast_send(
            ctx,
            group,
            self.cfg.port,
            Msg::new(msg, CTRL_MSG_BYTES),
            members,
        );
    }

    fn on_commit(&mut self, key: String, op: OpId, ts: Timestamp, ctx: &mut Ctx) {
        let p = self.partition_of(&key);
        let Some(view) = self.views.get(&p).cloned() else {
            return;
        };
        let applied = self.store.commit(&key, op, ts);
        if applied {
            self.pub_counters.puts_committed += 1;
        }
        // Track the highest primary sequence we have seen (failover floor).
        self.primary_seq = self.primary_seq.max(ts.primary_seq);
        match self.my_role(&view) {
            Some(Role::Primary) => {
                // our own multicast copy: count as ack2 path via check_done
                self.check_done(&key, op, ctx);
            }
            Some(Role::Secondary) | Some(Role::Handoff) => {
                let primary = view.primary_addr();
                let from = self.node;
                self.send_kv(
                    ctx,
                    primary,
                    KvMsg::PutAck2 {
                        key: key.clone(),
                        op,
                        from,
                    },
                    CTRL_MSG_BYTES,
                );
            }
            None => {}
        }
        self.drain_waiting(&key, ctx);
    }

    fn on_ack2(&mut self, key: String, op: OpId, from: NodeIdx, ctx: &mut Ctx) {
        let k = (key.clone(), op);
        if let Some(coord) = self.coords.get_mut(&k) {
            coord.acks2.insert(from);
        }
        self.check_done(&key, op, ctx);
    }

    fn check_done(&mut self, key: &str, op: OpId, ctx: &mut Ctx) {
        let k = (key.to_owned(), op);
        let Some(coord) = self.coords.get(&k) else {
            return;
        };
        if !coord.committed {
            return;
        }
        let Some(view) = self.views.get(&coord.partition) else {
            return;
        };
        let needed: Vec<NodeIdx> = view
            .members
            .iter()
            .map(|&(n, _)| n)
            .filter(|&n| n != self.node)
            .collect();
        if !needed.iter().all(|n| coord.acks2.contains(n)) {
            return;
        }
        let client = coord.client;
        self.coords.remove(&k);
        self.send_kv(
            ctx,
            client,
            KvMsg::PutReply { op, ok: true },
            CTRL_MSG_BYTES,
        );
    }

    fn on_coord_deadline(&mut self, key: String, op: OpId, ctx: &mut Ctx) {
        let k = (key.clone(), op);
        let Some(coord) = self.coords.get_mut(&k) else {
            return; // completed
        };
        coord.timeouts += 1;
        if coord.timeouts < 2 {
            let deadline = ctx.now() + self.cfg.op_timeout;
            self.defer(ctx, deadline, Cont::CoordDeadline { key, op });
            return;
        }
        // Two timeouts: report the unresponsive members, abort, fail the
        // client (§4.4 "Failures during Put Operation").
        let Some(coord) = self.coords.remove(&k) else {
            return self.note_internal(KvError::CoordinatorMissing { key: k.0, op });
        };
        let Some(view) = self.views.get(&coord.partition).cloned() else {
            return;
        };
        let acks = if coord.committed {
            &coord.acks2
        } else {
            &coord.acks1
        };
        let missing: Vec<NodeIdx> = view
            .members
            .iter()
            .map(|&(n, _)| n)
            .filter(|&n| n != self.node && !acks.contains(&n))
            .collect();
        for m in missing {
            if self.reported_down.insert(m) {
                self.pub_counters.failure_reports += 1;
                let from = self.node;
                self.send_kv(
                    ctx,
                    self.meta,
                    KvMsg::FailureReport { suspect: m, from },
                    CTRL_MSG_BYTES,
                );
            }
        }
        if !coord.committed {
            self.store.abort(&key, op);
            self.pub_counters.puts_aborted += 1;
            let group = self
                .cfg
                .multicast
                .vnode_for_key(coord.partition, key.as_bytes());
            let msg = KvMsg::Abort {
                key: key.clone(),
                op,
            };
            let n = view.len();
            self.tp
                .mcast_send(ctx, group, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES), n);
            self.send_kv(
                ctx,
                coord.client,
                KvMsg::PutReply { op, ok: false },
                CTRL_MSG_BYTES,
            );
            self.drain_waiting(&key, ctx);
        }
    }

    fn drain_waiting(&mut self, key: &str, ctx: &mut Ctx) {
        if self.store.locked(key) {
            return;
        }
        if let Some(mut q) = self.waiting.remove(key) {
            if !q.is_empty() {
                let (op, value) = q.remove(0);
                if !q.is_empty() {
                    self.waiting.insert(key.to_owned(), q);
                }
                self.on_put_request(key.to_owned(), value, op, ctx);
            }
        }
    }

    // -----------------------------------------------------------------
    // Get path
    // -----------------------------------------------------------------

    fn record_get_source(&mut self, p: PartitionId, client: Ipv4) {
        // /26 buckets of the client space — the "range of client IP
        // addresses accessing each partition" of §4.5.
        let bucket = client.network(26);
        if let Some(e) = self
            .stats
            .gets_by_range
            .iter_mut()
            .find(|(pp, b, _)| *pp == p && *b == bucket)
        {
            e.2 += 1;
        } else {
            self.stats.gets_by_range.push((p, bucket, 1));
        }
    }

    fn on_get_request(&mut self, key: String, op: OpId, ctx: &mut Ctx) {
        let p = self.partition_of(&key);
        self.record_get_source(p, op.client);
        let view = self.views.get(&p).cloned();
        if let Some(c) = self.store.get(&key) {
            let size = c.value.size() + CTRL_MSG_BYTES;
            let reply = KvMsg::GetReply {
                op,
                value: Some(c.value.clone()),
                ts: Some(c.ts),
            };
            self.pub_counters.gets_served += 1;
            self.stats.gets += 1;
            self.stats.bytes_out += size as u64;
            self.send_kv(ctx, op.client, reply, size);
            return;
        }
        // Miss: a handoff node forwards to the primary (§4.4).
        if let Some(view) = view {
            if self.my_role(&view) == Some(Role::Handoff) && view.primary != self.node {
                self.pub_counters.gets_forwarded += 1;
                let primary = view.primary_addr();
                self.send_kv(ctx, primary, KvMsg::GetForward { key, op }, CTRL_MSG_BYTES);
                return;
            }
        }
        self.stats.gets += 1;
        self.send_kv(
            ctx,
            op.client,
            KvMsg::GetReply {
                op,
                value: None,
                ts: None,
            },
            CTRL_MSG_BYTES,
        );
    }

    fn on_get_forward(&mut self, key: String, op: OpId, ctx: &mut Ctx) {
        let (reply, size) = match self.store.get(&key) {
            Some(c) => (
                KvMsg::GetReply {
                    op,
                    value: Some(c.value.clone()),
                    ts: Some(c.ts),
                },
                c.value.size() + CTRL_MSG_BYTES,
            ),
            None => (
                KvMsg::GetReply {
                    op,
                    value: None,
                    ts: None,
                },
                CTRL_MSG_BYTES,
            ),
        };
        self.pub_counters.gets_served += 1;
        self.stats.gets += 1;
        self.stats.bytes_out += size as u64;
        self.send_kv(ctx, op.client, reply, size);
    }

    // -----------------------------------------------------------------
    // Membership, recovery, failover
    // -----------------------------------------------------------------

    fn on_membership(&mut self, views: Vec<PartitionView>, ctx: &mut Ctx) {
        let bits = self.cfg.partitions.trailing_zeros();
        for view in views {
            let p = view.partition;
            let am_member = view.members.iter().any(|&(n, _)| n == self.node);
            if am_member {
                // Any node the metadata service lists as a member is
                // alive again: allow future failure reports for it.
                for &(m, _) in &view.members {
                    self.reported_down.remove(&m);
                }
                let am_primary = view.primary == self.node;
                self.views.insert(p, view);
                // Complete-cluster-failure recovery (§4.4): if we are the
                // primary and hold in-doubt (written-but-uncommitted)
                // entries for this partition — e.g. after a full restart —
                // resolve them with the commit-anywhere/abort-everywhere
                // rules.
                if am_primary && !self.resolves.contains_key(&p) {
                    let in_doubt = self
                        .store
                        .in_doubt()
                        .into_iter()
                        .any(|(k, _)| PartitionId((hash_str(&k) >> (64 - bits)) as u32) == p);
                    if in_doubt {
                        self.on_become_primary(p, ctx);
                    }
                }
            } else {
                // Removed from the partition: if we were the handoff, drop
                // the objects we temporarily held (drained by the owner).
                self.views.remove(&p);
                let bits = self.cfg.partitions.trailing_zeros();
                let gone: Vec<String> = self
                    .store
                    .iter()
                    .filter(|(k, _)| PartitionId((hash_str(k) >> (64 - bits)) as u32) == p)
                    .map(|(k, _)| k.clone())
                    .collect();
                for k in gone {
                    self.store.remove(&k);
                }
            }
        }
    }

    fn on_rejoin_plan(&mut self, sources: Vec<(PartitionId, Option<Ipv4>)>, ctx: &mut Ctx) {
        // A plan can arrive for a restart rejoin or for an admin
        // reconfiguration (we were added to new replica sets): either way
        // we drain the listed sources then report consistency.
        self.rejoining = true;
        self.rejoin_pending.clear();
        for (p, handoff) in sources {
            if let Some(ip) = handoff {
                self.rejoin_pending.insert(p);
                let from = self.node;
                self.send_kv(
                    ctx,
                    ip,
                    KvMsg::HandoffFetch { partition: p, from },
                    CTRL_MSG_BYTES,
                );
            }
        }
        self.maybe_recovery_done(ctx);
    }

    fn on_handoff_fetch(
        &mut self,
        partition: PartitionId,
        _from: NodeIdx,
        src: Ipv4,
        ctx: &mut Ctx,
    ) {
        let bits = self.cfg.partitions.trailing_zeros();
        let objects: Vec<(String, Value, Timestamp)> = self
            .store
            .iter()
            .filter(|(k, _)| PartitionId((hash_str(k) >> (64 - bits)) as u32) == partition)
            .map(|(k, c)| (k.clone(), c.value.clone(), c.ts))
            .collect();
        let size: u32 = objects
            .iter()
            .map(|(k, v, _)| v.size() + k.len() as u32 + 32)
            .sum::<u32>()
            + CTRL_MSG_BYTES;
        self.send_kv(ctx, src, KvMsg::HandoffData { partition, objects }, size);
    }

    fn on_handoff_data(
        &mut self,
        partition: PartitionId,
        objects: Vec<(String, Value, Timestamp)>,
        ctx: &mut Ctx,
    ) {
        let total: u32 = objects.iter().map(|(_, v, _)| v.size()).sum();
        let done = self.store.write_delay(ctx.now(), total, true);
        let _ = done;
        for (k, v, ts) in objects {
            self.store.commit_direct(&k, v, ts);
        }
        self.rejoin_pending.remove(&partition);
        self.maybe_recovery_done(ctx);
    }

    fn maybe_recovery_done(&mut self, ctx: &mut Ctx) {
        if self.rejoining && self.rejoin_pending.is_empty() {
            self.rejoining = false;
            let node = self.node;
            self.send_kv(ctx, self.meta, KvMsg::RecoveryDone { node }, CTRL_MSG_BYTES);
        }
    }

    fn on_become_primary(&mut self, partition: PartitionId, ctx: &mut Ctx) {
        let Some(view) = self.views.get(&partition).cloned() else {
            return;
        };
        let others: BTreeSet<NodeIdx> = view
            .members
            .iter()
            .map(|&(n, _)| n)
            .filter(|&n| n != self.node)
            .collect();
        // Seed with our own lock table.
        let bits = self.cfg.partitions.trailing_zeros();
        let mut locked: BTreeMap<String, (OpId, Option<Timestamp>, usize)> = BTreeMap::new();
        for (k, pd) in self.store.pending_iter() {
            if PartitionId((hash_str(k) >> (64 - bits)) as u32) == partition {
                // "committed" must mean THIS attempt committed somewhere,
                // not that some earlier version of the key exists.
                let cts = self
                    .store
                    .get(k)
                    .filter(|c| c.ts.client == pd.op.client && c.ts.client_seq == pd.op.client_seq)
                    .map(|c| c.ts);
                locked.insert(k.clone(), (pd.op, cts, 1));
            }
        }
        let max_seq = self.primary_seq.max(self.store.max_primary_seq());
        if others.is_empty() {
            self.resolves.insert(
                partition,
                Resolve {
                    waiting: others,
                    locked,
                    max_seq,
                },
            );
            self.finish_resolution(partition, ctx);
            return;
        }
        for &n in &others {
            if let Some(ip) = view.addr_of(n) {
                self.send_kv(ctx, ip, KvMsg::LockQuery { partition }, CTRL_MSG_BYTES);
            }
        }
        self.resolves.insert(
            partition,
            Resolve {
                waiting: others,
                locked,
                max_seq,
            },
        );
    }

    fn on_lock_query(&mut self, partition: PartitionId, src: Ipv4, ctx: &mut Ctx) {
        let bits = self.cfg.partitions.trailing_zeros();
        let locked: Vec<(String, OpId, Option<Timestamp>)> = self
            .store
            .pending_iter()
            .filter(|(k, _)| PartitionId((hash_str(k) >> (64 - bits)) as u32) == partition)
            .map(|(k, pd)| {
                let cts = self
                    .store
                    .get(k)
                    .filter(|c| c.ts.client == pd.op.client && c.ts.client_seq == pd.op.client_seq)
                    .map(|c| c.ts);
                (k.clone(), pd.op, cts)
            })
            .collect();
        let from = self.node;
        let max_seq = self.primary_seq.max(self.store.max_primary_seq());
        self.send_kv(
            ctx,
            src,
            KvMsg::LockReport {
                partition,
                from,
                locked,
                max_seq,
            },
            CTRL_MSG_BYTES,
        );
    }

    fn on_lock_report(
        &mut self,
        partition: PartitionId,
        from: NodeIdx,
        locked: Vec<(String, OpId, Option<Timestamp>)>,
        max_seq: u64,
        ctx: &mut Ctx,
    ) {
        let Some(res) = self.resolves.get_mut(&partition) else {
            return;
        };
        res.max_seq = res.max_seq.max(max_seq);
        for (k, op, cts) in locked {
            let e = res.locked.entry(k).or_insert((op, None, 0));
            e.2 += 1;
            if let Some(t) = cts {
                e.1 = Some(e.1.map_or(t, |x: Timestamp| x.max(t)));
            }
        }
        res.waiting.remove(&from);
        if res.waiting.is_empty() {
            self.finish_resolution(partition, ctx);
        }
    }

    /// §4.4: "if the object is committed on any secondary node … The
    /// primary will commit and unlock the object. If an object is locked
    /// on all secondary nodes, then the new primary will abort."
    fn finish_resolution(&mut self, partition: PartitionId, ctx: &mut Ctx) {
        let Some(res) = self.resolves.remove(&partition) else {
            return;
        };
        self.primary_seq = self.primary_seq.max(res.max_seq);
        let Some(view) = self.views.get(&partition).cloned() else {
            return;
        };
        let members = view.len();
        for (key, (op, committed_ts, _count)) in res.locked {
            let group = self.cfg.multicast.vnode_for_key(partition, key.as_bytes());
            match committed_ts {
                Some(ts) => {
                    // Committed somewhere: the old primary had decided to
                    // commit; finish the job everywhere.
                    let msg = KvMsg::Commit { key, op, ts };
                    self.tp.mcast_send(
                        ctx,
                        group,
                        self.cfg.port,
                        Msg::new(msg, CTRL_MSG_BYTES),
                        members,
                    );
                }
                None => {
                    // Locked everywhere, committed nowhere: abort.
                    let msg = KvMsg::Abort { key, op };
                    self.tp.mcast_send(
                        ctx,
                        group,
                        self.cfg.port,
                        Msg::new(msg, CTRL_MSG_BYTES),
                        members,
                    );
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Timers
    // -----------------------------------------------------------------

    fn heartbeat(&mut self, ctx: &mut Ctx) {
        let msg = KvMsg::Heartbeat {
            node: self.node,
            stats: std::mem::take(&mut self.stats),
        };
        self.tp
            .udp_send(ctx, self.meta, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES));
        ctx.set_timer(self.cfg.hb_interval, TOK_HEARTBEAT);
    }

    /// Detect a dead primary: a lock nobody commits within 2x op_timeout
    /// means the timestamp message never came (§4.4 "the secondary nodes
    /// will detect the failure by timing out on the replication message").
    fn sweep_stale_locks(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let threshold = self.cfg.op_timeout * 2;
        let bits = self.cfg.partitions.trailing_zeros();
        let mut suspects: Vec<NodeIdx> = Vec::new();
        for (k, pd) in self.store.pending_iter() {
            if now.saturating_sub(pd.locked_at) < threshold {
                continue;
            }
            let p = PartitionId((hash_str(k) >> (64 - bits)) as u32);
            if let Some(view) = self.views.get(&p) {
                if view.primary != self.node {
                    suspects.push(view.primary);
                }
            }
        }
        for s in suspects {
            if self.reported_down.insert(s) {
                self.pub_counters.failure_reports += 1;
                let from = self.node;
                self.send_kv(
                    ctx,
                    self.meta,
                    KvMsg::FailureReport { suspect: s, from },
                    CTRL_MSG_BYTES,
                );
            }
        }
        ctx.set_timer(self.cfg.op_timeout, TOK_SWEEP);
    }

    // -----------------------------------------------------------------
    // Event plumbing
    // -----------------------------------------------------------------

    fn on_kv(&mut self, msg: &KvMsg, src: Ipv4, ctx: &mut Ctx) {
        match msg.clone() {
            KvMsg::PutRequest { key, value, op } => self.on_put_request(key, value, op, ctx),
            KvMsg::GetRequest { key, op } => self.on_get_request(key, op, ctx),
            KvMsg::PutAck1 { key, op, from } => self.on_ack1(key, op, from, ctx),
            KvMsg::Commit { key, op, ts } => self.on_commit(key, op, ts, ctx),
            KvMsg::PutAck2 { key, op, from } => self.on_ack2(key, op, from, ctx),
            KvMsg::Abort { key, op } => {
                if self.store.abort(&key, op) {
                    self.pub_counters.puts_aborted += 1;
                }
                self.drain_waiting(&key, ctx);
            }
            KvMsg::Membership { views } => self.on_membership(views, ctx),
            KvMsg::MetaFailover { new_meta } => {
                // The hot standby took over (§4.1): report there from now.
                self.meta = new_meta;
            }
            KvMsg::RejoinPlan { sources } => self.on_rejoin_plan(sources, ctx),
            KvMsg::HandoffFetch { partition, from } => {
                self.on_handoff_fetch(partition, from, src, ctx);
            }
            KvMsg::HandoffData { partition, objects } => {
                self.on_handoff_data(partition, objects, ctx);
            }
            KvMsg::GetForward { key, op } => self.on_get_forward(key, op, ctx),
            KvMsg::BecomePrimary { partition } => self.on_become_primary(partition, ctx),
            KvMsg::LockQuery { partition } => self.on_lock_query(partition, src, ctx),
            KvMsg::LockReport {
                partition,
                from,
                locked,
                max_seq,
            } => self.on_lock_report(partition, from, locked, max_seq, ctx),
            // Server never receives these:
            KvMsg::PutReply { .. }
            | KvMsg::GetReply { .. }
            | KvMsg::Heartbeat { .. }
            | KvMsg::FailureReport { .. }
            | KvMsg::RejoinRequest { .. }
            | KvMsg::MetaSync { .. }
            | KvMsg::RecoveryDone { .. } => {}
        }
    }

    /// CPU cost of processing one message: full requests (data-carrying
    /// or storage-touching) vs small control messages.
    fn msg_cost(msg: &KvMsg) -> Time {
        match msg {
            KvMsg::PutRequest { .. }
            | KvMsg::GetRequest { .. }
            | KvMsg::GetForward { .. }
            | KvMsg::HandoffData { .. }
            | KvMsg::HandoffFetch { .. } => REQ_COST,
            _ => CTRL_COST,
        }
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut Ctx) {
        for ev in events {
            if let TransportEvent::Delivered { from, msg, .. } = ev {
                if let Some(kv) = msg.downcast::<KvMsg>() {
                    // Queue the message on the serial CPU; it is processed
                    // (and replied to) when its processing slot completes.
                    let kv = kv.clone();
                    let cost = Self::msg_cost(&kv);
                    let tok = self.next_cont;
                    self.next_cont += 1;
                    self.conts.insert(
                        tok,
                        Cont::Process {
                            msg: Box::new(kv),
                            src: from.0,
                        },
                    );
                    ctx.cpu_defer(cost, tok);
                }
            }
        }
    }
}

impl App for ServerApp {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.heartbeat(ctx);
        ctx.set_timer(self.cfg.op_timeout, TOK_SWEEP);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        match token {
            TOK_HEARTBEAT => self.heartbeat(ctx),
            TOK_SWEEP => self.sweep_stale_locks(ctx),
            t => {
                if let Some(cont) = self.conts.remove(&t) {
                    match cont {
                        Cont::Written { key, op } => self.on_written(key, op, ctx),
                        Cont::CoordDeadline { key, op } => self.on_coord_deadline(key, op, ctx),
                        Cont::Process { msg, src } => self.on_kv(&msg, src, ctx),
                    }
                }
            }
        }
    }

    fn on_crash(&mut self) {
        // Volatile state dies; committed objects and the log survive.
        self.tp.on_crash();
        self.store.on_crash();
        self.coords.clear();
        self.waiting.clear();
        self.conts.clear();
        self.views.clear();
        self.resolves.clear();
        self.rejoin_pending.clear();
        self.rejoining = false;
        self.reported_down.clear();
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        self.rejoining = true;
        let node = self.node;
        self.send_kv(
            ctx,
            self.meta,
            KvMsg::RejoinRequest { node },
            CTRL_MSG_BYTES,
        );
        self.heartbeat(ctx);
        ctx.set_timer(self.cfg.op_timeout, TOK_SWEEP);
    }
}

//! The NICEKV client library.
//!
//! Clients know the virtual rings and the replication level — never the
//! physical placement (§3.2). A put is a reliable-UDP multicast to the
//! key's *multicast* vnode address; a get is a reliable-UDP message to the
//! key's *unicast* vnode address; replies arrive on the client's TCP side
//! (§5). Operations run closed-loop with a retry timer ("the client will
//! retry after waiting for 2 seconds", §6.6).
//!
//! The closed-loop engine (queue, retries, timeout bookkeeping, records)
//! is the shared [`kv_core::ClientCore`]; this file maps its attempts
//! onto the NICE transport: vring addressing, switch multicast for puts,
//! and any-k transport acks for quorum mode.

use std::ops::{Deref, DerefMut};

use kv_core::{
    Attempt, ClientCore, Issue, KvClient, ReplyAction, RetryAction, CTRL_MSG_BYTES, IDLE_POLL,
    NOT_FOUND_BACKOFF, TOK_RETRY_BASE, TOK_START,
};
use nice_ring::{hash_str, PartitionId};
use nice_transport::{Msg, MsgToken, Transport, TransportEvent, TRANSPORT_TICK};
use node_rt::{NodeApp, NodeIo, Packet, Time};

use crate::config::{KvConfig, PutMode};
use crate::msg::KvMsg;

pub use kv_core::{ClientOp, OpRecord};

/// The client application: issues a queue of operations closed-loop.
///
/// Derefs to the shared [`ClientCore`] for records, completion state, and
/// workload management.
pub struct ClientApp {
    cfg: KvConfig,
    tp: Transport,
    core: ClientCore,
    /// Outstanding quorum-mode transport token (completion = Sent).
    quorum_token: Option<MsgToken>,
}

impl Deref for ClientApp {
    type Target = ClientCore;

    fn deref(&self) -> &ClientCore {
        &self.core
    }
}

impl DerefMut for ClientApp {
    fn deref_mut(&mut self) -> &mut ClientCore {
        &mut self.core
    }
}

impl KvClient for ClientApp {
    fn core(&self) -> &ClientCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut ClientCore {
        &mut self.core
    }
}

impl ClientApp {
    /// A client that runs `ops` once, starting at `start_at`.
    pub fn new(cfg: KvConfig, ops: Vec<ClientOp>, start_at: Time) -> ClientApp {
        let mut core = ClientCore::new(ops, cfg.client_retry, start_at);
        core.retry = cfg.retry_policy();
        ClientApp {
            tp: Transport::new(cfg.port),
            core,
            cfg,
            quorum_token: None,
        }
    }

    fn partition_of(&self, key: &str) -> PartitionId {
        PartitionId((hash_str(key) >> (64 - self.cfg.partitions.trailing_zeros())) as u32)
    }

    /// Ask the core for the next attempt and put it on the wire.
    fn pump(&mut self, ctx: &mut dyn NodeIo) {
        match self.core.issue_next(ctx.ip(), ctx.now()) {
            Issue::Attempt(at) => self.send_attempt(at, ctx),
            Issue::Drained => {
                // Idle: poll for work pushed by the harness.
                ctx.set_timer(IDLE_POLL, TOK_START);
            }
            Issue::Busy => {}
        }
    }

    fn send_attempt(&mut self, at: Attempt, ctx: &mut dyn NodeIo) {
        self.quorum_token = None;
        let seq = at.id.client_seq;
        match &at.op {
            ClientOp::Put { key, value } => {
                let p = self.partition_of(key);
                let group = self.cfg.multicast.vnode_for_key(p, key.as_bytes());
                let msg = KvMsg::PutRequest {
                    key: key.clone(),
                    value: value.clone(),
                    op: at.id,
                };
                let size = value.size() + key.len() as u32 + CTRL_MSG_BYTES;
                let r = self.cfg.replication;
                match self.cfg.put_mode {
                    PutMode::Quorum { k } => {
                        let tok = self.tp.anyk_send(
                            ctx,
                            group,
                            self.cfg.port,
                            Msg::new(msg, size),
                            r,
                            k.min(r),
                        );
                        self.quorum_token = Some(tok);
                    }
                    PutMode::TwoPc => {
                        self.tp
                            .mcast_send(ctx, group, self.cfg.port, Msg::new(msg, size), r);
                    }
                }
            }
            ClientOp::Get { key } => {
                let p = self.partition_of(key);
                let vnode = self.cfg.unicast.vnode_for_key(p, key.as_bytes());
                let msg = KvMsg::GetRequest {
                    key: key.clone(),
                    op: at.id,
                };
                let size = key.len() as u32 + CTRL_MSG_BYTES;
                self.tp
                    .rudp_send(ctx, vnode, self.cfg.port, Msg::new(msg, size));
            }
        }
        ctx.set_timer(
            self.core.retry_delay(at.id, at.attempts),
            TOK_RETRY_BASE | seq,
        );
    }

    fn on_retry_timer(&mut self, seq: u64, ctx: &mut dyn NodeIo) {
        match self.core.on_retry_timer(seq, ctx.now()) {
            RetryAction::Resend(at) => self.send_attempt(at, ctx),
            RetryAction::GaveUp => self.pump(ctx),
            RetryAction::Stale => {}
        }
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut dyn NodeIo) {
        for ev in events {
            match ev {
                TransportEvent::Delivered { msg, .. } => {
                    let Some(kv) = msg.downcast::<KvMsg>() else {
                        continue;
                    };
                    match kv {
                        KvMsg::PutReply { op, ok } => {
                            match self.core.on_put_reply(*op, *ok, ctx.now()) {
                                ReplyAction::Done => self.pump(ctx),
                                ReplyAction::NotMine
                                | ReplyAction::AwaitRetry
                                | ReplyAction::Backoff => {}
                            }
                        }
                        KvMsg::GetReply { op, value, .. } => {
                            let (found, size, bytes) = match value {
                                Some(v) => (true, v.size(), Some(v.bytes.as_ref().clone())),
                                None => (false, 0, None),
                            };
                            match self.core.on_get_reply(*op, found, size, bytes, ctx.now()) {
                                ReplyAction::Done => self.pump(ctx),
                                ReplyAction::Backoff => {
                                    ctx.set_timer(
                                        NOT_FOUND_BACKOFF,
                                        TOK_RETRY_BASE | op.client_seq,
                                    );
                                }
                                ReplyAction::NotMine | ReplyAction::AwaitRetry => {}
                            }
                        }
                        _ => {}
                    }
                }
                TransportEvent::Sent { token, .. } => {
                    // Quorum-mode puts complete at transport level.
                    if self.quorum_token == Some(token) {
                        let size = match self.core.inflight_op() {
                            Some((ClientOp::Put { value, .. }, _)) => value.size(),
                            _ => 0,
                        };
                        self.core.complete(Ok(()), size, None, ctx.now());
                        self.quorum_token = None;
                        self.pump(ctx);
                    }
                }
                TransportEvent::Failed { .. } => {
                    // let the retry timer drive the re-attempt
                }
            }
        }
    }
}

impl NodeApp for ClientApp {
    fn on_start(&mut self, ctx: &mut dyn NodeIo) {
        ctx.set_timer(self.core.start_at.saturating_sub(ctx.now()), TOK_START);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut dyn NodeIo) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut dyn NodeIo) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if token == TOK_START {
            self.pump(ctx);
            return;
        }
        if token >= TOK_RETRY_BASE {
            self.on_retry_timer(token & 0xFFFF_FFFF, ctx);
        }
    }

    fn on_crash(&mut self) {
        self.tp.on_crash();
        self.core.on_crash();
        self.quorum_token = None;
    }
}

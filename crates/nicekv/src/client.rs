//! The NICEKV client library.
//!
//! Clients know the virtual rings and the replication level — never the
//! physical placement (§3.2). A put is a reliable-UDP multicast to the
//! key's *multicast* vnode address; a get is a reliable-UDP message to the
//! key's *unicast* vnode address; replies arrive on the client's TCP side
//! (§5). Operations run closed-loop with a retry timer ("the client will
//! retry after waiting for 2 seconds", §6.6).

use std::collections::VecDeque;

use nice_ring::hash_str;
use nice_ring::PartitionId;
use nice_sim::{App, Ctx, Packet, Time};
use nice_transport::{Msg, MsgToken, Transport, TransportEvent, TRANSPORT_TICK};

use crate::config::{KvConfig, PutMode};
use crate::error::KvError;
use crate::msg::{KvMsg, OpId, Value};

const TOK_START: u64 = 1;
/// Idle poll period: a drained client re-checks its queue at this rate so
/// harnesses can push more work mid-run.
const IDLE_POLL: Time = Time::from_ms(10);
/// Retry timers carry the op sequence in the low bits.
const TOK_RETRY_BASE: u64 = 1 << 32;
/// Backoff before re-asking for a key that was not found (only with
/// [`ClientApp::retry_not_found`]).
const NOT_FOUND_BACKOFF: Time = Time::from_ms(5);

/// One client operation.
#[derive(Debug, Clone)]
pub enum ClientOp {
    /// Write `value` under `key`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: Value,
    },
    /// Read `key`.
    Get {
        /// The key.
        key: String,
    },
}

impl ClientOp {
    /// The key this op touches.
    pub fn key(&self) -> &str {
        match self {
            ClientOp::Put { key, .. } | ClientOp::Get { key } => key,
        }
    }
}

/// The completion record of one operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Was it a put?
    pub is_put: bool,
    /// The key.
    pub key: String,
    /// When the first attempt was issued.
    pub start: Time,
    /// When the final reply arrived.
    pub end: Time,
    /// The typed outcome: `Ok(())` on success, or the [`KvError`] that
    /// ended the operation (not found, rejected, retries exhausted).
    pub result: Result<(), KvError>,
    /// Attempts used (1 = no retries).
    pub attempts: u32,
    /// Value size moved (put: sent; get: received).
    pub size: u32,
    /// For gets: the returned bytes (tests assert on these).
    pub bytes: Option<Vec<u8>>,
}

impl OpRecord {
    /// Did the operation succeed?
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The error that ended the operation, if it failed.
    pub fn err(&self) -> Option<&KvError> {
        self.result.as_ref().err()
    }
}

struct InFlight {
    op: ClientOp,
    id: OpId,
    start: Time,
    attempts: u32,
    /// Outstanding quorum-mode transport token (completion = Sent).
    quorum_token: Option<MsgToken>,
}

/// The client application: issues a queue of operations closed-loop.
pub struct ClientApp {
    cfg: KvConfig,
    tp: Transport,
    ops: VecDeque<ClientOp>,
    start_at: Time,
    inflight: Option<InFlight>,
    next_seq: u64,
    max_attempts: u32,
    /// Treat a NotFound get as transient and retry with a short backoff
    /// (hot-object workloads where the reader races the first writer).
    pub retry_not_found: bool,
    /// Completed operations, in completion order.
    pub records: Vec<OpRecord>,
    /// Set once the queue drains.
    pub done_at: Option<Time>,
}

impl ClientApp {
    /// A client that runs `ops` once, starting at `start_at`.
    pub fn new(cfg: KvConfig, ops: Vec<ClientOp>, start_at: Time) -> ClientApp {
        ClientApp {
            tp: Transport::new(cfg.port),
            cfg,
            ops: ops.into(),
            start_at,
            inflight: None,
            next_seq: 1,
            max_attempts: 25,
            retry_not_found: false,
            records: Vec::new(),
            done_at: None,
        }
    }

    /// Queue more operations (the driver may extend work mid-run); the
    /// idle poll picks them up within [`IDLE_POLL`].
    pub fn push_ops(&mut self, ops: impl IntoIterator<Item = ClientOp>) {
        self.ops.extend(ops);
        if !self.ops.is_empty() {
            self.done_at = None;
        }
    }

    /// Operations finished so far.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Mean latency of successful ops of one kind.
    pub fn mean_latency(&self, puts: bool) -> Option<Time> {
        let lats: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.is_put == puts && r.ok())
            .map(|r| (r.end - r.start).as_ns())
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(Time(lats.iter().sum::<u64>() / lats.len() as u64))
        }
    }

    fn partition_of(&self, key: &str) -> PartitionId {
        PartitionId((hash_str(key) >> (64 - self.cfg.partitions.trailing_zeros())) as u32)
    }

    fn issue_next(&mut self, ctx: &mut Ctx) {
        if self.inflight.is_some() {
            return;
        }
        let Some(op) = self.ops.pop_front() else {
            if self.done_at.is_none() {
                self.done_at = Some(ctx.now());
            }
            // Idle: poll for work pushed by the harness.
            ctx.set_timer(IDLE_POLL, TOK_START);
            return;
        };
        let id = OpId {
            client: ctx.ip(),
            client_seq: self.next_seq,
        };
        self.next_seq += 1;
        self.inflight = Some(InFlight {
            op,
            id,
            start: ctx.now(),
            attempts: 0,
            quorum_token: None,
        });
        self.attempt(ctx);
    }

    fn attempt(&mut self, ctx: &mut Ctx) {
        let Some(inf) = self.inflight.as_mut() else {
            return;
        };
        inf.attempts += 1;
        let id = inf.id;
        let seq = id.client_seq;
        let (op, quorum_mode) = (inf.op.clone(), self.cfg.put_mode);
        match &op {
            ClientOp::Put { key, value } => {
                let p = self.partition_of(key);
                let group = self.cfg.multicast.vnode_for_key(p, key.as_bytes());
                let msg = KvMsg::PutRequest {
                    key: key.clone(),
                    value: value.clone(),
                    op: id,
                };
                let size = value.size() + key.len() as u32 + 64;
                let r = self.cfg.replication;
                match quorum_mode {
                    PutMode::Quorum { k } => {
                        let tok = self.tp.anyk_send(
                            ctx,
                            group,
                            self.cfg.port,
                            Msg::new(msg, size),
                            r,
                            k.min(r),
                        );
                        if let Some(inf) = self.inflight.as_mut() {
                            inf.quorum_token = Some(tok);
                        }
                    }
                    PutMode::TwoPc => {
                        self.tp
                            .mcast_send(ctx, group, self.cfg.port, Msg::new(msg, size), r);
                    }
                }
            }
            ClientOp::Get { key } => {
                let p = self.partition_of(key);
                let vnode = self.cfg.unicast.vnode_for_key(p, key.as_bytes());
                let msg = KvMsg::GetRequest {
                    key: key.clone(),
                    op: id,
                };
                let size = key.len() as u32 + 64;
                self.tp
                    .rudp_send(ctx, vnode, self.cfg.port, Msg::new(msg, size));
            }
        }
        ctx.set_timer(self.cfg.client_retry, TOK_RETRY_BASE | seq);
    }

    fn complete(
        &mut self,
        result: Result<(), KvError>,
        size: u32,
        bytes: Option<Vec<u8>>,
        ctx: &mut Ctx,
    ) {
        let Some(inf) = self.inflight.take() else {
            return;
        };
        self.records.push(OpRecord {
            is_put: matches!(inf.op, ClientOp::Put { .. }),
            key: inf.op.key().to_owned(),
            start: inf.start,
            end: ctx.now(),
            result,
            attempts: inf.attempts,
            size,
            bytes,
        });
        self.issue_next(ctx);
    }

    fn on_retry_timer(&mut self, seq: u64, ctx: &mut Ctx) {
        let Some(inf) = self.inflight.as_ref() else {
            return;
        };
        if inf.id.client_seq != seq {
            return; // stale timer for a completed op
        }
        if inf.attempts >= self.max_attempts {
            // Give up (keeps benchmarks bounded; the paper's clients retry
            // until the partition becomes available again).
            let size = match &inf.op {
                ClientOp::Put { value, .. } => value.size(),
                ClientOp::Get { .. } => 0,
            };
            let err = KvError::RetriesExhausted {
                key: inf.op.key().to_owned(),
                attempts: inf.attempts,
            };
            self.complete(Err(err), size, None, ctx);
            return;
        }
        self.attempt(ctx);
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut Ctx) {
        for ev in events {
            match ev {
                TransportEvent::Delivered { msg, .. } => {
                    let Some(kv) = msg.downcast::<KvMsg>() else {
                        continue;
                    };
                    match kv {
                        KvMsg::PutReply { op, ok } => {
                            let ok = *ok;
                            let op = *op;
                            if let Some(inf) = self.inflight.as_ref() {
                                if inf.id == op {
                                    if !ok && inf.attempts < self.max_attempts {
                                        // failed put: wait for the retry
                                        // timer (the partition is healing)
                                        continue;
                                    }
                                    let size = match &inf.op {
                                        ClientOp::Put { value, .. } => value.size(),
                                        _ => 0,
                                    };
                                    let result = if ok {
                                        Ok(())
                                    } else {
                                        Err(KvError::PutRejected {
                                            key: inf.op.key().to_owned(),
                                        })
                                    };
                                    self.complete(result, size, None, ctx);
                                }
                            }
                        }
                        KvMsg::GetReply { op, value, .. } => {
                            let op = *op;
                            let (found, size, bytes) = match value {
                                Some(v) => (true, v.size(), Some(v.bytes.as_ref().clone())),
                                None => (false, 0, None),
                            };
                            if let Some(inf) = self.inflight.as_ref() {
                                if inf.id == op {
                                    if !found
                                        && self.retry_not_found
                                        && inf.attempts < self.max_attempts
                                    {
                                        ctx.set_timer(
                                            NOT_FOUND_BACKOFF,
                                            TOK_RETRY_BASE | op.client_seq,
                                        );
                                        continue;
                                    }
                                    let result = if found {
                                        Ok(())
                                    } else {
                                        Err(KvError::NotFound {
                                            key: inf.op.key().to_owned(),
                                        })
                                    };
                                    self.complete(result, size, bytes, ctx);
                                }
                            }
                        }
                        _ => {}
                    }
                }
                TransportEvent::Sent { token, .. } => {
                    // Quorum-mode puts complete at transport level.
                    if let Some(inf) = self.inflight.as_ref() {
                        if inf.quorum_token == Some(token) {
                            let size = match &inf.op {
                                ClientOp::Put { value, .. } => value.size(),
                                _ => 0,
                            };
                            self.complete(Ok(()), size, None, ctx);
                        }
                    }
                }
                TransportEvent::Failed { token } => {
                    if let Some(inf) = self.inflight.as_ref() {
                        if inf.quorum_token == Some(token) {
                            // let the retry timer drive the re-attempt
                            let _ = token;
                        }
                    }
                }
            }
        }
    }
}

impl App for ClientApp {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.start_at.saturating_sub(ctx.now()), TOK_START);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if token == TOK_START {
            self.issue_next(ctx);
            return;
        }
        if token >= TOK_RETRY_BASE {
            self.on_retry_timer(token & 0xFFFF_FFFF, ctx);
        }
    }

    fn on_crash(&mut self) {
        self.tp.on_crash();
        self.inflight = None;
    }
}

//! The metadata service: the membership module and the SDN controller
//! (§4.1), in one application (the paper's mapping node).
//!
//! The membership module monitors heartbeats and failure reports, selects
//! handoff nodes, and drives node recovery. The SDN controller owns the
//! switch flow tables: it maps the virtual rings onto physical nodes
//! (unicast and multicast), installs the load-balancing rules of §4.5,
//! and hides failed or inconsistent nodes by removing them from the
//! mappings (§3.3 consistency-aware fault tolerance).
//!
//! Rule-update cost is O(S) switch operations and O(R) node
//! notifications per membership change, independent of cluster size
//! (§4.1 "This membership maintenance design is scalable").

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowTable, GroupBucket, GroupId, L3Learner};
use nice_ring::{ClientDivisions, NodeIdx, PartitionId, PhysicalRing};
use nice_sim::{App, Ctx, Ipv4, Mac, Packet, Port, SwitchId, Time};
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};

use crate::config::KvConfig;
use crate::msg::{HandoffRecord, KvMsg, LoadStats, PartitionView};
use kv_core::KvError;

const TOK_HBCHECK: u64 = 1;
/// Rebalance the adaptive load balancer every this many heartbeat ticks.
const REBALANCE_EVERY: u32 = 4;
const CTRL_MSG_BYTES: u32 = 64;

/// Cookie namespace for unicast vring rules.
const COOKIE_UNICAST: u64 = 0x1000_0000;
/// Cookie namespace for load-balancing rules.
const COOKIE_LB: u64 = 0x2000_0000;

/// A switch under this controller's management.
pub struct SwitchHandle {
    /// The switch.
    pub id: SwitchId,
    /// Its (shared) flow table.
    pub table: Rc<RefCell<FlowTable>>,
    /// Control-channel latency: mutations activate this far in the future.
    pub ctrl_latency: Time,
    /// Which port each known endpoint hangs off.
    pub ports: BTreeMap<Ipv4, Port>,
}

pub use crate::msg::NodeState;

/// Role of a metadata-service instance (§4.1's hot-standby design).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaRole {
    /// The acting metadata service.
    Active,
    /// A hot standby replicating the active's state; takes over after
    /// three missed sync messages.
    Standby {
        /// The active instance being shadowed.
        active: Ipv4,
    },
}

/// Events the metadata service logs (drives tests and Figure 11 analysis).
#[derive(Debug, Clone, PartialEq)]
pub enum MetaEvent {
    /// A node was declared failed.
    NodeFailed(NodeIdx),
    /// This (standby) instance promoted itself to active (§4.1).
    Promoted,
    /// `handoff` now stands in for `failed` on `partition`.
    HandoffAssigned {
        /// The partition.
        partition: PartitionId,
        /// The dead node.
        failed: NodeIdx,
        /// Its stand-in.
        handoff: NodeIdx,
    },
    /// A node re-entered the put ring.
    NodeRejoining(NodeIdx),
    /// A node finished recovery and re-entered the get ring.
    NodeRecovered(NodeIdx),
    /// The primary of `partition` changed.
    PrimaryChanged {
        /// The partition.
        partition: PartitionId,
        /// The promoted node.
        new_primary: NodeIdx,
    },
}

struct NodeInfo {
    ip: Ipv4,
    mac: Mac,
    state: NodeState,
    last_hb: Time,
}

/// The metadata service + SDN controller application.
pub struct MetadataApp {
    cfg: KvConfig,
    ring: PhysicalRing,
    nodes: Vec<NodeInfo>,
    switches: Vec<SwitchHandle>,
    learner: L3Learner,
    tp: Transport,
    views: BTreeMap<PartitionId, PartitionView>,
    /// Per partition: `(failed original, its stand-in, chain complete)`.
    /// `complete` means the stand-in saw every write since the original
    /// failed; a replacement for a dead stand-in is incomplete, so the
    /// original's rejoin drains from the primary instead.
    handoffs: BTreeMap<PartitionId, Vec<HandoffRecord>>,
    /// Aggregated per-node load statistics from heartbeats (§4.5).
    pub load: BTreeMap<NodeIdx, LoadStats>,
    /// Event log.
    pub events: Vec<(Time, MetaEvent)>,
    /// Administrator commands queued by the harness; processed at the
    /// next heartbeat tick (§4.4 "Ring Re-Configuration").
    pending_admin: Vec<AdminOp>,
    /// Members removed from a partition by an admin reconfiguration
    /// while the incoming replicas were still draining. They may hold
    /// the only consistent copies, so their garbage collection is
    /// deferred: once the view's `syncing` set empties, the view is
    /// re-pushed to them and they drop their objects. (Not replicated
    /// to the hot standby — losing it on failover leaks invisible
    /// stale copies on ex-members, which is harmless.)
    admin_gc: BTreeMap<PartitionId, Vec<NodeIdx>>,
    /// Observed get load per (partition, client /26 bucket), decayed on
    /// every rebalance.
    range_load: BTreeMap<(PartitionId, Ipv4), u64>,
    /// Adaptive division→replica assignments (indices into the partition's
    /// current get-eligible target list), when adaptive LB is active.
    lb_overrides: BTreeMap<PartitionId, Vec<usize>>,
    /// Heartbeat ticks until the next rebalance.
    rebalance_in: u32,
    /// Role of this instance (active, or hot standby of another).
    role: MetaRole,
    /// Set when this instance promoted itself: keep announcing the
    /// takeover to `Down` nodes, which may restart at any time still
    /// pointing their reports at the dead active.
    took_over: bool,
    /// Failure accusations not yet acted on: suspect → distinct
    /// reporters. A node is only declared failed once two independent
    /// witnesses accuse it (or its heartbeats stop); a lone accuser may
    /// itself be the partitioned party, and acting on its stale
    /// suspicion deposes healthy primaries and feeds a
    /// failure→churn→failure loop. A fresh heartbeat from the suspect
    /// clears its accusations.
    suspicions: BTreeMap<NodeIdx, BTreeSet<NodeIdx>>,
    /// Address of our standby, if we run one (active side).
    standby: Option<Ipv4>,
    /// Sync messages missed (standby side).
    missed_syncs: u32,
    /// Internal invariant violations absorbed instead of panicking
    /// (mirrors the server's degradation policy).
    pub internal_errors: u64,
    /// The most recent absorbed error, for diagnostics.
    pub last_internal_error: Option<KvError>,
}

/// A queued administrator command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminOp {
    /// Permanently add a node to the ring.
    AddNode(NodeIdx),
    /// Permanently remove a node from the ring.
    RemoveNode(NodeIdx),
}

impl MetadataApp {
    /// Build the service over `ring`, with per-node addresses and the
    /// switches it controls. `node_addrs[i]` is node `i`'s `(ip, mac)`.
    pub fn new(
        cfg: KvConfig,
        ring: PhysicalRing,
        node_addrs: Vec<(Ipv4, Mac)>,
        mut switches: Vec<SwitchHandle>,
        mut learner: L3Learner,
    ) -> MetadataApp {
        // node_addrs may include provisioned spares beyond the ring.
        assert!(node_addrs.len() >= ring.nodes().len());
        for sw in &mut switches {
            // Ensure the learner knows about our switches too.
            learner.add_switch(sw.id, Rc::clone(&sw.table), sw.ctrl_latency);
        }
        let nodes = node_addrs
            .into_iter()
            .map(|(ip, mac)| NodeInfo {
                ip,
                mac,
                state: NodeState::Up,
                last_hb: Time::ZERO,
            })
            .collect();
        MetadataApp {
            tp: Transport::new(cfg.port),
            cfg,
            ring,
            nodes,
            switches,
            learner,
            views: BTreeMap::new(),
            handoffs: BTreeMap::new(),
            load: BTreeMap::new(),
            events: Vec::new(),
            pending_admin: Vec::new(),
            range_load: BTreeMap::new(),
            lb_overrides: BTreeMap::new(),
            admin_gc: BTreeMap::new(),
            rebalance_in: REBALANCE_EVERY,
            role: MetaRole::Active,
            took_over: false,
            suspicions: BTreeMap::new(),
            standby: None,
            missed_syncs: 0,
            internal_errors: 0,
            last_internal_error: None,
        }
    }

    /// Record an internal invariant violation: the service degrades the
    /// one membership operation instead of crashing the control plane.
    fn note_internal(&mut self, e: KvError) {
        self.internal_errors += 1;
        self.last_internal_error = Some(e);
    }

    /// Make this instance a hot standby shadowing `active` (§4.1).
    pub fn into_standby(mut self, active: Ipv4) -> MetadataApp {
        self.role = MetaRole::Standby { active };
        self
    }

    /// Tell this (active) instance to replicate its state to a standby.
    pub fn with_standby(mut self, standby: Ipv4) -> MetadataApp {
        self.standby = Some(standby);
        self
    }

    /// This instance's current role.
    pub fn role(&self) -> MetaRole {
        self.role
    }

    /// Queue an administrator command (applied at the next heartbeat
    /// tick). The harness calls this between simulation steps.
    pub fn queue_admin(&mut self, op: AdminOp) {
        self.pending_admin.push(op);
    }

    /// Current view of a partition.
    pub fn view(&self, p: PartitionId) -> Option<&PartitionView> {
        self.views.get(&p)
    }

    /// Current view of a partition, as a typed result.
    pub fn try_view(&self, p: PartitionId) -> Result<&PartitionView, KvError> {
        self.views
            .get(&p)
            .ok_or(KvError::ViewMissing { partition: p })
    }

    /// Liveness state of a node.
    ///
    /// # Panics
    /// If `n` is outside the cluster; see [`try_node_state`](Self::try_node_state).
    pub fn node_state(&self, n: NodeIdx) -> NodeState {
        self.nodes[n.0 as usize].state
    }

    /// Liveness state of a node, as a typed result.
    pub fn try_node_state(&self, n: NodeIdx) -> Result<NodeState, KvError> {
        self.nodes
            .get(n.0 as usize)
            .map(|info| info.state)
            .ok_or(KvError::UnknownNode { node: n })
    }

    /// Live flow-table entries on the first switch (the §4.6 occupancy).
    pub fn table_occupancy(&self, now: Time) -> (usize, usize) {
        let sw = &self.switches[0];
        let t = sw.table.borrow();
        (t.live_entries(now), t.live_groups(now))
    }

    /// Address of `n`, total over arbitrary message content: an index
    /// outside the cluster maps to the unroutable `0.0.0.0` (the switch
    /// drops it), which beats unwinding the metadata service.
    fn addr(&self, n: NodeIdx) -> Ipv4 {
        self.nodes.get(n.0 as usize).map_or(Ipv4(0), |info| info.ip)
    }

    /// MAC of `n`, total like [`addr`](Self::addr).
    fn mac_of(&self, n: NodeIdx) -> Mac {
        self.nodes
            .get(n.0 as usize)
            .map_or(Mac::ZERO, |info| info.mac)
    }

    /// Liveness of `n`, total: an unknown index reads as `Down`, so a
    /// malformed report can never route traffic or trigger a transition.
    fn state_of(&self, n: NodeIdx) -> NodeState {
        self.nodes
            .get(n.0 as usize)
            .map_or(NodeState::Down, |info| info.state)
    }

    fn is_get_eligible(&self, n: NodeIdx) -> bool {
        let state = self.state_of(n);
        // The deliberate §3.3 mutation (chaos-suite checker validation
        // only): rejoining replicas serve gets before catch-up finishes,
        // exposing stale/absent reads the checker must flag.
        if self.cfg.break_rejoin_get_hiding && state == NodeState::Rejoining {
            return true;
        }
        state == NodeState::Up
    }

    // -----------------------------------------------------------------
    // Rule management
    // -----------------------------------------------------------------

    /// (Re-)install all rules for one partition across every switch.
    fn install_partition(&mut self, p: PartitionId, now: Time) {
        let Some(view) = self.views.get(&p).cloned() else {
            self.note_internal(KvError::ViewMissing { partition: p });
            return;
        };
        // Get-eligible targets: live members only (failure hiding +
        // rejoining nodes stay invisible to gets). Handoffs additionally
        // need a live original primary to forward their misses to — a
        // handoff-only replica set lacks the pre-failure data, so it must
        // stay hidden from the get ring entirely (§3.3: better
        // unavailable than inconsistent).
        let primary_can_sink_misses = view.members.iter().any(|&(m, _)| m == view.primary)
            && !view.handoffs.contains(&view.primary)
            && self.state_of(view.primary) == NodeState::Up;
        let get_targets: Vec<(NodeIdx, Ipv4)> = view
            .members
            .iter()
            .copied()
            .filter(|&(n, _)| {
                self.is_get_eligible(n)
                    && !view.syncing.contains(&n)
                    && (primary_can_sink_misses || !view.handoffs.contains(&n))
            })
            .collect();
        // Primary target for the base unicast rule (fall back to any
        // get-eligible member if the primary is not eligible).
        let base_target = get_targets
            .iter()
            .find(|&&(n, _)| n == view.primary)
            .or_else(|| get_targets.first())
            .copied();
        let (u_net, u_len) = self.cfg.unicast.subgroup_prefix(p);
        let (m_net, m_len) = self.cfg.multicast.subgroup_prefix(p);
        let lb = if self.cfg.load_balancing && get_targets.len() > 1 {
            Some(ClientDivisions::new(
                self.cfg.client_space.0,
                self.cfg.client_space.1,
                get_targets.len() as u32,
            ))
        } else {
            None
        };
        for sw in &self.switches {
            let at = now + sw.ctrl_latency;
            let mut t = sw.table.borrow_mut();
            // Multicast group: one bucket per member (the put path).
            let buckets: Vec<GroupBucket> = view
                .members
                .iter()
                .filter_map(|&(n, ip)| {
                    let mac = self.mac_of(n);
                    sw.ports
                        .get(&ip)
                        .map(|&port| GroupBucket::rewrite_to(ip, mac, port))
                })
                .collect();
            t.set_group(GroupId(p.0), buckets, at);
            t.install(
                FlowRule::new(
                    prio::VRING,
                    FlowMatch::any().dst_prefix(m_net, m_len),
                    vec![Action::Group(GroupId(p.0))],
                )
                .cookie(COOKIE_UNICAST | p.0 as u64),
                at,
            );
            // Unicast base rule → primary (or stand-in).
            t.remove_by_cookie(COOKIE_LB | p.0 as u64, at);
            match base_target {
                Some((n, ip)) => {
                    let mac = self.mac_of(n);
                    if let Some(&port) = sw.ports.get(&ip) {
                        t.install(
                            FlowRule::new(
                                prio::VRING,
                                FlowMatch::any().dst_prefix(u_net, u_len),
                                vec![
                                    Action::SetIpDst(ip),
                                    Action::SetMacDst(mac),
                                    Action::Output(port),
                                ],
                            )
                            .cookie(COOKIE_UNICAST | p.0 as u64),
                            at,
                        );
                    }
                }
                None => {
                    // No get-eligible member: hide the partition entirely.
                    t.install(
                        FlowRule::new(
                            prio::VRING,
                            FlowMatch::any().dst_prefix(u_net, u_len),
                            vec![Action::Drop],
                        )
                        .cookie(COOKIE_UNICAST | p.0 as u64),
                        at,
                    );
                }
            }
            // Load-balancing rules: (src division, dst subgroup) → replica.
            if let Some(lb) = &lb {
                let overrides = self.lb_overrides.get(&p);
                for (d, ((src_net, src_len), idx)) in lb.assignments().enumerate() {
                    let idx = overrides.and_then(|o| o.get(d).copied()).unwrap_or(idx);
                    // `lb` is only built for len > 1; `.max(1)` keeps the
                    // modulus total anyway.
                    let Some(&(n, ip)) = get_targets.get(idx % get_targets.len().max(1)) else {
                        continue;
                    };
                    let mac = self.mac_of(n);
                    if let Some(&port) = sw.ports.get(&ip) {
                        t.install(
                            FlowRule::new(
                                prio::LB,
                                FlowMatch::any()
                                    .src_prefix(src_net, src_len)
                                    .dst_prefix(u_net, u_len),
                                vec![
                                    Action::SetIpDst(ip),
                                    Action::SetMacDst(mac),
                                    Action::Output(port),
                                ],
                            )
                            .cookie(COOKIE_LB | p.0 as u64),
                            at,
                        );
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Membership transitions
    // -----------------------------------------------------------------

    fn push_view(&mut self, p: PartitionId, extra: &[NodeIdx], ctx: &mut Ctx) {
        let Some(view) = self.views.get(&p).cloned() else {
            self.note_internal(KvError::ViewMissing { partition: p });
            return;
        };
        let mut recipients: Vec<NodeIdx> = view.members.iter().map(|&(n, _)| n).collect();
        for &e in extra {
            if !recipients.contains(&e) {
                recipients.push(e);
            }
        }
        for n in recipients {
            if self.state_of(n) == NodeState::Down {
                continue;
            }
            let dst = self.addr(n);
            let msg = KvMsg::Membership {
                views: vec![view.clone()],
            };
            self.tp
                .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES + 64));
        }
    }

    /// Declare `n` failed: hide it from both rings, select handoffs, and
    /// notify affected replicas (§4.4).
    pub fn fail_node(&mut self, n: NodeIdx, ctx: &mut Ctx) {
        let Some(info) = self.nodes.get_mut(n.0 as usize) else {
            return; // unknown node: nothing to fail
        };
        if info.state == NodeState::Down {
            return;
        }
        info.state = NodeState::Down;
        self.suspicions.remove(&n);
        self.events.push((ctx.now(), MetaEvent::NodeFailed(n)));
        let affected: Vec<PartitionId> = self
            .views
            .iter()
            .filter(|(_, v)| v.members.iter().any(|&(m, _)| m == n))
            .map(|(&p, _)| p)
            .collect();
        for p in affected {
            let Some(mut view) = self.views.get(&p).cloned() else {
                self.note_internal(KvError::ViewMissing { partition: p });
                continue;
            };
            view.members.retain(|&(m, _)| m != n);
            let mut new_primary = None;
            if view.primary == n {
                // Promote the first surviving original (non-handoff) member.
                let hoffs: Vec<NodeIdx> = self
                    .handoffs
                    .get(&p)
                    .map(|v| v.iter().map(|&(_, h, _)| h).collect())
                    .unwrap_or_default();
                let promoted = view
                    .members
                    .iter()
                    .map(|&(m, _)| m)
                    .find(|m| !hoffs.contains(m))
                    .or_else(|| view.members.first().map(|&(m, _)| m));
                if let Some(np) = promoted {
                    view.primary = np;
                    new_primary = Some(np);
                    self.events.push((
                        ctx.now(),
                        MetaEvent::PrimaryChanged {
                            partition: p,
                            new_primary: np,
                        },
                    ));
                }
            }
            // Was n itself a handoff? The originals it stood in for lose
            // their drain source; remember them so the replacement handoff
            // selected below is keyed to THEM, not to n.
            let orphaned: Vec<NodeIdx> = self
                .handoffs
                .get(&p)
                .map(|hs| {
                    hs.iter()
                        .filter(|&&(_, h, _)| h == n)
                        .map(|&(f, _, _)| f)
                        .collect()
                })
                .unwrap_or_default();
            if let Some(hs) = self.handoffs.get_mut(&p) {
                hs.retain(|&(_, h, _)| h != n);
            }
            view.handoffs = self
                .handoffs
                .get(&p)
                .map(|hs| hs.iter().map(|&(_, h, _)| h).collect())
                .unwrap_or_default();
            // Select a handoff for the failed ORIGINAL member (not for a
            // failed handoff of someone else — that original gets a new
            // stand-in below either way).
            let members_now: Vec<NodeIdx> = view.members.iter().map(|&(m, _)| m).collect();
            let mut exclude: Vec<NodeIdx> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, info)| info.state == NodeState::Down)
                .map(|(i, _)| NodeIdx(i as u32))
                .collect();
            exclude.extend(members_now.iter().copied());
            if let Some(h) = self.ring.handoff_for(p, &exclude) {
                let h_ip = self.addr(h);
                view.members.push((h, h_ip));
                if !view.handoffs.contains(&h) {
                    view.handoffs.push(h);
                }
                let hs = self.handoffs.entry(p).or_default();
                hs.push((n, h, true));
                // The replacement also stands in for any original whose
                // stand-in just died — but it missed the writes the dead
                // stand-in held, so the chain is marked incomplete and the
                // original's rejoin will drain from the primary.
                for f in &orphaned {
                    if *f != n {
                        hs.push((*f, h, false));
                    }
                }
                self.events.push((
                    ctx.now(),
                    MetaEvent::HandoffAssigned {
                        partition: p,
                        failed: n,
                        handoff: h,
                    },
                ));
            }
            // The handoff push above may have revived an otherwise-empty
            // replica set whose recorded primary is dead: restore the
            // primary-is-a-member invariant before publishing the view.
            if new_primary.is_none() {
                new_primary = self.fix_primary(p, &mut view, ctx.now());
            }
            self.views.insert(p, view);
            let now = ctx.now();
            self.install_partition(p, now);
            self.push_view(p, &[], ctx);
            if let Some(np) = new_primary {
                let dst = self.addr(np);
                let msg = KvMsg::BecomePrimary { partition: p };
                self.tp
                    .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES));
            }
        }
    }

    /// Restore the invariant that a non-empty view's primary is one of its
    /// members (it can break when an entire replica set failed and nodes
    /// rejoin one by one). Prefers the ring's original primary. Returns
    /// the promoted node if a change was needed.
    fn fix_primary(
        &mut self,
        p: PartitionId,
        view: &mut PartitionView,
        now: Time,
    ) -> Option<NodeIdx> {
        if view.members.is_empty() || view.members.iter().any(|&(m, _)| m == view.primary) {
            return None;
        }
        let preferred = self.ring.primary(p);
        let new_primary = if view.members.iter().any(|&(m, _)| m == preferred) {
            preferred
        } else {
            // Non-empty is checked above; `?` keeps the path total anyway.
            view.members.first().map(|&(m, _)| m)?
        };
        view.primary = new_primary;
        self.events.push((
            now,
            MetaEvent::PrimaryChanged {
                partition: p,
                new_primary,
            },
        ));
        Some(new_primary)
    }

    /// The drain source for `n`'s rejoin on partition `p`: always the
    /// partition primary. The primary participates in every put round for
    /// the partition, so it holds all committed data — and, crucially, it
    /// coordinates those rounds, so it can order the drain snapshot
    /// *after* any round whose replica group predates `n`'s re-entry
    /// (see `ServerApp::serve_fetch`). A handoff could serve the data it
    /// holds but cannot see rounds still in flight at the coordinator,
    /// which is exactly the window that produced stale post-recovery
    /// gets under the chaos harness.
    fn rejoin_source(&self, p: PartitionId, n: NodeIdx) -> Option<Ipv4> {
        self.views.get(&p).and_then(|view| {
            let pr = view.primary;
            (pr != n && self.state_of(pr) != NodeState::Down).then(|| self.addr(pr))
        })
    }

    /// (Re)send the rejoin plan for `n` from the current views/handoffs.
    fn send_rejoin_plan(&mut self, n: NodeIdx, ctx: &mut Ctx) {
        let sources: Vec<(PartitionId, Option<Ipv4>)> = self
            .ring
            .partitions_of(n)
            .into_iter()
            .map(|p| (p, self.rejoin_source(p, n)))
            .collect();
        let dst = self.addr(n);
        let msg = KvMsg::RejoinPlan { sources };
        self.tp
            .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES + 64));
    }

    /// A failed node asks to rejoin: phase 1 of §4.4 recovery — put ring
    /// only, plus a plan of handoff nodes to drain.
    fn rejoin(&mut self, n: NodeIdx, ctx: &mut Ctx) {
        if self.state_of(n) == NodeState::Rejoining {
            // A duplicate request — the original plan was lost (e.g. the
            // node re-reported after learning of a metadata failover).
            // The views already list the node; just resend the plan.
            self.send_rejoin_plan(n, ctx);
            return;
        }
        let now = ctx.now();
        let Some(info) = self.nodes.get_mut(n.0 as usize) else {
            return; // a rejoin request naming a node we never knew
        };
        info.state = NodeState::Rejoining;
        info.last_hb = now;
        self.events.push((now, MetaEvent::NodeRejoining(n)));
        let parts = self.ring.partitions_of(n);
        for p in parts {
            let Some(mut view) = self.views.get(&p).cloned() else {
                self.note_internal(KvError::ViewMissing { partition: p });
                continue;
            };
            if !view.members.iter().any(|&(m, _)| m == n) {
                view.members.push((n, self.addr(n)));
            }
            // If the whole replica set had failed, the stored primary may
            // be dead: restore the invariant now that a member exists.
            let promoted = self.fix_primary(p, &mut view, ctx.now());
            self.views.insert(p, view);
            let now = ctx.now();
            self.install_partition(p, now); // updates the multicast group
            self.push_view(p, &[], ctx);
            if let Some(np) = promoted {
                let dst = self.addr(np);
                let msg = KvMsg::BecomePrimary { partition: p };
                self.tp
                    .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES));
            }
        }
        self.send_rejoin_plan(n, ctx);
    }

    /// Admin reconfiguration: apply a queued add/remove (§4.4 "Ring
    /// Re-Configuration"). New replica-set members are added to the put
    /// ring immediately, marked `syncing`, and told to retrieve their hash
    /// range from the partition primary; they become get-visible when they
    /// report `RecoveryDone`.
    fn apply_admin(&mut self, op: AdminOp, ctx: &mut Ctx) {
        let changed = match op {
            AdminOp::AddNode(n) => {
                if self.ring.nodes().contains(&n) || self.state_of(n) != NodeState::Up {
                    return;
                }
                self.ring.add_node(n)
            }
            AdminOp::RemoveNode(n) => {
                if !self.ring.nodes().contains(&n)
                    || self.ring.nodes().len() <= self.cfg.replication
                {
                    return;
                }
                self.ring.remove_node(n)
            }
        };
        // Per-node sync plans accumulated across affected partitions.
        let mut plans: BTreeMap<NodeIdx, Vec<(PartitionId, Option<Ipv4>)>> = BTreeMap::new();
        for p in changed {
            let Some(old) = self.views.get(&p).cloned() else {
                self.note_internal(KvError::ViewMissing { partition: p });
                continue;
            };
            let new_set = self.ring.replica_set(p).to_vec();
            let mut view = PartitionView {
                partition: p,
                primary: self.ring.primary(p),
                members: new_set.iter().map(|&m| (m, self.addr(m))).collect(),
                handoffs: Vec::new(),
                syncing: Vec::new(),
            };
            // A surviving member that was still draining keeps its
            // syncing status: back-to-back reconfigurations must not
            // promote an inconsistent replica to get-visibility.
            for &m in &new_set {
                if old.syncing.contains(&m) {
                    view.syncing.push(m);
                }
            }
            // Fresh members must drain their hash range before becoming
            // get-visible. They fetch from a *consistent* old member —
            // preferring survivors (and among them the old primary), but
            // a still-syncing survivor holds an incomplete snapshot, so
            // fall back to a consistent leaver: its garbage collection
            // is deferred (`admin_gc`) precisely so it can serve here.
            let survives = |m: NodeIdx| new_set.contains(&m);
            let consistent = |m: NodeIdx| !old.syncing.contains(&m);
            let source = if survives(old.primary) && consistent(old.primary) {
                old.primary
            } else {
                old.members
                    .iter()
                    .map(|&(m, _)| m)
                    .find(|&m| survives(m) && consistent(m))
                    .or_else(|| old.members.iter().map(|&(m, _)| m).find(|&m| consistent(m)))
                    .unwrap_or(old.primary)
            };
            let source_ip = self.addr(source);
            for &m in &new_set {
                let was_member = old.members.iter().any(|&(o, _)| o == m);
                if !was_member {
                    view.syncing.push(m);
                    plans.entry(m).or_default().push((p, Some(source_ip)));
                }
            }
            let promoted = if view.primary != old.primary {
                self.events.push((
                    ctx.now(),
                    MetaEvent::PrimaryChanged {
                        partition: p,
                        new_primary: view.primary,
                    },
                ));
                Some(view.primary)
            } else {
                None
            };
            let sync_pending = !view.syncing.is_empty();
            self.views.insert(p, view);
            let now = ctx.now();
            self.install_partition(p, now);
            // Inform current and former members. Leavers only drop their
            // objects once the view they receive has an empty syncing
            // set (they may hold the only consistent copies until the
            // incoming replicas drain); remember who still has to be
            // re-notified when that happens.
            let leavers: Vec<NodeIdx> = old
                .members
                .iter()
                .map(|&(m, _)| m)
                .filter(|m| !new_set.contains(m))
                .collect();
            let mut notify = leavers.clone();
            if sync_pending {
                let gc = self.admin_gc.entry(p).or_default();
                for &m in &leavers {
                    if !gc.contains(&m) {
                        gc.push(m);
                    }
                }
                // A node re-added by this reconfiguration is a member
                // again and must keep (and re-drain) its data.
                gc.retain(|m| !new_set.contains(m));
            } else if let Some(gc) = self.admin_gc.remove(&p) {
                for m in gc {
                    if !notify.contains(&m) {
                        notify.push(m);
                    }
                }
            }
            self.push_view(p, &notify, ctx);
            // A reconfiguration that moves the primary must run §4.4 lock
            // resolution like any other takeover: it settles orphaned
            // locks AND floors the new primary's commit-sequence counter
            // (via the members' max_seq reports) so it never mints
            // timestamps an already-committed object would outrank.
            if let Some(np) = promoted {
                let dst = self.addr(np);
                let msg = KvMsg::BecomePrimary { partition: p };
                self.tp
                    .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES));
            }
        }
        for (n, sources) in plans {
            let dst = self.addr(n);
            let msg = KvMsg::RejoinPlan { sources };
            self.tp
                .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES + 64));
        }
    }

    /// Phase 2: the node holds consistent data — open the get path and
    /// retire its handoffs.
    fn recovered(&mut self, n: NodeIdx, ctx: &mut Ctx) {
        if self.state_of(n) == NodeState::Up {
            // An admin-added replica finished draining its hash ranges:
            // make it get-visible everywhere it was syncing.
            let parts: Vec<PartitionId> = self
                .views
                .iter()
                .filter(|(_, v)| v.syncing.contains(&n))
                .map(|(&p, _)| p)
                .collect();
            for p in parts {
                let Some(mut view) = self.views.get(&p).cloned() else {
                    self.note_internal(KvError::ViewMissing { partition: p });
                    continue;
                };
                view.syncing.retain(|&m| m != n);
                let safe = view.syncing.is_empty();
                self.views.insert(p, view);
                let now = ctx.now();
                self.install_partition(p, now);
                // Every incoming replica has drained: re-notify the
                // leavers whose garbage collection was deferred so they
                // finally drop their (now redundant) copies.
                let formers = if safe {
                    self.admin_gc.remove(&p).unwrap_or_default()
                } else {
                    Vec::new()
                };
                self.push_view(p, &formers, ctx);
            }
            self.events.push((ctx.now(), MetaEvent::NodeRecovered(n)));
            return;
        }
        if self.state_of(n) != NodeState::Rejoining {
            return;
        }
        if let Some(info) = self.nodes.get_mut(n.0 as usize) {
            info.state = NodeState::Up;
        }
        self.events.push((ctx.now(), MetaEvent::NodeRecovered(n)));
        for p in self.ring.partitions_of(n) {
            let mut retired: Vec<NodeIdx> = Vec::new();
            if let Some(hs) = self.handoffs.get_mut(&p) {
                let mine: Vec<NodeIdx> = hs
                    .iter()
                    .filter(|&&(f, _, _)| f == n)
                    .map(|&(_, h, _)| h)
                    .collect();
                hs.retain(|&(f, _, _)| f != n);
                let still_needed: Vec<NodeIdx> = hs.iter().map(|&(_, h, _)| h).collect();
                for h in mine {
                    if !still_needed.contains(&h) {
                        retired.push(h);
                    }
                }
            }
            let Some(mut view) = self.views.get(&p).cloned() else {
                self.note_internal(KvError::ViewMissing { partition: p });
                continue;
            };
            view.members.retain(|&(m, _)| !retired.contains(&m));
            // A crash-rejoin drains the node's full hash ranges, which
            // also completes any admin-reconfiguration sync it owed.
            view.syncing.retain(|&m| m != n);
            view.handoffs = self
                .handoffs
                .get(&p)
                .map(|hs| hs.iter().map(|&(_, h, _)| h).collect())
                .unwrap_or_default();
            // A retired handoff may have been the acting primary (the
            // whole original set had died): hand the role back.
            let promoted = self.fix_primary(p, &mut view, ctx.now());
            self.views.insert(p, view);
            let now = ctx.now();
            self.install_partition(p, now);
            self.push_view(p, &retired, ctx);
            if let Some(np) = promoted {
                let dst = self.addr(np);
                let msg = KvMsg::BecomePrimary { partition: p };
                self.tp
                    .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES));
            }
        }
    }

    fn check_heartbeats(&mut self, ctx: &mut Ctx) {
        if let MetaRole::Standby { .. } = self.role {
            // Count the active's sync messages instead of node heartbeats;
            // three misses and we take over (§4.1).
            self.missed_syncs += 1;
            if self.missed_syncs > 3 {
                self.promote(ctx);
            }
            ctx.set_timer(self.cfg.hb_interval, TOK_HBCHECK);
            return;
        }
        // Ring reconfiguration recomputes replica sets from the raw ring,
        // which assumes every listed node can actually sync and serve.
        // Applying it mid-failure would resurrect Down members into put
        // groups and orphan handoff chains — hold the queue until the
        // membership is stable (§4.4 reconfiguration is an administrative
        // action; deferring it under failures is the safe order).
        if self.nodes.iter().all(|info| info.state == NodeState::Up) {
            for op in std::mem::take(&mut self.pending_admin) {
                self.apply_admin(op, ctx);
            }
        }
        // After a takeover, down nodes still point their reports at the
        // dead active; re-announce until they come back and hear us
        // (their restart-time RejoinRequest goes to a black hole
        // otherwise, and they would never re-enter the ring).
        if self.took_over {
            let down: Vec<Ipv4> = self
                .nodes
                .iter()
                .filter(|info| info.state == NodeState::Down)
                .map(|info| info.ip)
                .collect();
            for dst in down {
                let msg = KvMsg::MetaFailover { new_meta: ctx.ip() };
                self.tp
                    .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES));
            }
        }
        let now = ctx.now();
        let dead: Vec<NodeIdx> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, info)| {
                info.state != NodeState::Down
                    && now.saturating_sub(info.last_hb) > self.cfg.hb_interval * 3
            })
            .map(|(i, _)| NodeIdx(i as u32))
            .collect();
        for n in dead {
            self.fail_node(n, ctx);
        }
        if self.cfg.adaptive_lb && self.cfg.load_balancing {
            self.rebalance_in = self.rebalance_in.saturating_sub(1);
            if self.rebalance_in == 0 {
                self.rebalance_in = REBALANCE_EVERY;
                self.rebalance(ctx);
            }
        }
        // Replicate state to the hot standby (the metadata is small and
        // changes infrequently, §4.1).
        if let Some(standby) = self.standby {
            let msg = KvMsg::MetaSync {
                views: self.views.values().cloned().collect(),
                handoffs: self.handoffs.iter().map(|(&p, v)| (p, v.clone())).collect(),
                states: self
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(i, info)| (NodeIdx(i as u32), info.state))
                    .collect(),
                ring_nodes: self.ring.nodes().to_vec(),
            };
            let size = CTRL_MSG_BYTES + 48 * self.views.len() as u32;
            self.tp
                .tcp_send(ctx, standby, self.cfg.port, Msg::new(msg, size));
        }
        ctx.set_timer(self.cfg.hb_interval, TOK_HBCHECK);
    }

    /// Standby → active takeover: adopt the replicated state, reinstall
    /// every rule (idempotent), and redirect node reporting to us.
    fn promote(&mut self, ctx: &mut Ctx) {
        self.role = MetaRole::Active;
        self.took_over = true;
        self.events.push((ctx.now(), MetaEvent::Promoted));
        let now = ctx.now();
        // Avoid a mass false-failure storm: the replicated last_hb values
        // are stale by design.
        for info in &mut self.nodes {
            info.last_hb = now;
        }
        let parts: Vec<PartitionId> = self.views.keys().copied().collect();
        for p in parts {
            self.install_partition(p, now);
        }
        let live: Vec<Ipv4> = self
            .nodes
            .iter()
            .filter(|info| info.state != NodeState::Down)
            .map(|info| info.ip)
            .collect();
        for dst in live {
            let msg = KvMsg::MetaFailover { new_meta: ctx.ip() };
            self.tp
                .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, CTRL_MSG_BYTES));
        }
    }

    /// Workload-informed rebalancing (the paper's §4.5 future work):
    /// assign client divisions to replicas with an LPT greedy so the
    /// heaviest observed source ranges spread across replicas, instead of
    /// static round-robin. Loads decay by half each round so the balancer
    /// tracks shifting workloads.
    fn rebalance(&mut self, ctx: &mut Ctx) {
        let parts: Vec<PartitionId> = self.views.keys().copied().collect();
        for p in parts {
            let Some(view) = self.views.get(&p) else {
                self.note_internal(KvError::ViewMissing { partition: p });
                continue;
            };
            let targets: Vec<NodeIdx> = view
                .members
                .iter()
                .map(|&(n, _)| n)
                .filter(|&n| self.is_get_eligible(n) && !view.syncing.contains(&n))
                .collect();
            if targets.len() < 2 {
                continue;
            }
            let div = ClientDivisions::new(
                self.cfg.client_space.0,
                self.cfg.client_space.1,
                targets.len() as u32,
            );
            // Per-division observed load: sum the /26 buckets inside each
            // division prefix.
            let loads: Vec<u64> = div
                .assignments()
                .map(|((net, len), _)| {
                    self.range_load
                        .iter()
                        .filter(|(&(pp, bucket), _)| pp == p && bucket.in_prefix(net, len))
                        .map(|(_, &n)| n)
                        .sum()
                })
                .collect();
            if loads.iter().sum::<u64>() == 0 {
                continue;
            }
            let assignment = assign_divisions_lpt(&loads, targets.len());
            if self.lb_overrides.get(&p).map(std::vec::Vec::as_slice) != Some(assignment.as_slice())
            {
                self.lb_overrides.insert(p, assignment);
                let now = ctx.now();
                self.install_partition(p, now);
            }
        }
        for v in self.range_load.values_mut() {
            *v /= 2;
        }
        self.range_load.retain(|_, &mut v| v > 0);
    }

    fn on_kv(&mut self, msg: &KvMsg, _src: Ipv4, ctx: &mut Ctx) {
        if let KvMsg::MetaSync {
            views,
            handoffs,
            states,
            ring_nodes,
        } = msg
        {
            // Standby side: adopt the active's state wholesale.
            self.missed_syncs = 0;
            self.views = views.iter().map(|v| (v.partition, v.clone())).collect();
            self.handoffs = handoffs.iter().cloned().collect();
            for &(n, st) in states {
                if let Some(info) = self.nodes.get_mut(n.0 as usize) {
                    info.state = st;
                }
            }
            // Converge the local ring on the active's membership
            // (consistent hashing is a pure function of the node set, so
            // both instances end up with identical assignments).
            let want: BTreeSet<NodeIdx> = ring_nodes.iter().copied().collect();
            let have: BTreeSet<NodeIdx> = self.ring.nodes().iter().copied().collect();
            for &n in want.difference(&have) {
                self.ring.add_node(n);
            }
            for &n in have.difference(&want) {
                self.ring.remove_node(n);
            }
            return;
        }
        if let MetaRole::Standby { .. } = self.role {
            return; // passive: the active instance handles the cluster
        }
        match msg {
            KvMsg::Heartbeat { node, stats } => {
                let Some(info) = self.nodes.get_mut(node.0 as usize) else {
                    return; // heartbeat from outside the cluster roster
                };
                info.last_hb = ctx.now();
                let was_down = info.state == NodeState::Down;
                let agg = self.load.entry(*node).or_default();
                agg.gets += stats.gets;
                agg.puts += stats.puts;
                agg.bytes_out += stats.bytes_out;
                for &(p, bucket, n) in &stats.gets_by_range {
                    *self.range_load.entry((p, bucket)).or_insert(0) += n;
                }
                // A heartbeat from a `Down` node means the declaration was
                // wrong (e.g. a partitioned peer's failure reports) or the
                // node restarted and its rejoin request was lost. Either
                // way §4.4 applies: put it through the two-phase rejoin
                // rather than leaving a live node exiled forever.
                if was_down {
                    self.rejoin(*node, ctx);
                } else {
                    // The node is demonstrably alive: drop any pending
                    // accusations against it.
                    self.suspicions.remove(node);
                }
            }
            KvMsg::FailureReport { suspect, from } => {
                let witnesses = self.suspicions.entry(*suspect).or_default();
                witnesses.insert(*from);
                // With fewer than three nodes a second witness cannot
                // exist; otherwise insist on one.
                let quorum = if self.nodes.len() < 3 { 1 } else { 2 };
                if witnesses.len() >= quorum {
                    self.fail_node(*suspect, ctx);
                }
            }
            KvMsg::RejoinRequest { node } => self.rejoin(*node, ctx),
            KvMsg::RecoveryDone { node } => self.recovered(*node, ctx),
            _ => {}
        }
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut Ctx) {
        for ev in events {
            if let TransportEvent::Delivered { from, msg, .. } = ev {
                if let Some(kv) = msg.downcast::<KvMsg>() {
                    let kv = kv.clone();
                    self.on_kv(&kv, from.0, ctx);
                }
            }
        }
    }
}

impl App for MetadataApp {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        for info in &mut self.nodes {
            info.last_hb = now;
        }
        if let MetaRole::Standby { .. } = self.role {
            // Passive: just build the same initial views locally and wait
            // for syncs; the active instance owns the switch.
            for p in 0..self.ring.num_partitions() {
                let p = PartitionId(p);
                let members: Vec<(NodeIdx, Ipv4)> = self
                    .ring
                    .replica_set(p)
                    .iter()
                    .map(|&n| (n, self.addr(n)))
                    .collect();
                self.views.insert(
                    p,
                    PartitionView {
                        partition: p,
                        primary: self.ring.primary(p),
                        members,
                        handoffs: Vec::new(),
                        syncing: Vec::new(),
                    },
                );
            }
            ctx.set_timer(self.cfg.hb_interval, TOK_HBCHECK);
            return;
        }
        // Build initial views from the static ring and install everything.
        for p in 0..self.ring.num_partitions() {
            let p = PartitionId(p);
            let members: Vec<(NodeIdx, Ipv4)> = self
                .ring
                .replica_set(p)
                .iter()
                .map(|&n| (n, self.addr(n)))
                .collect();
            let view = PartitionView {
                partition: p,
                primary: self.ring.primary(p),
                members,
                handoffs: Vec::new(),
                syncing: Vec::new(),
            };
            self.views.insert(p, view);
            self.install_partition(p, now);
        }
        // Initial membership push: each node gets the views it serves.
        let mut per_node: BTreeMap<NodeIdx, Vec<PartitionView>> = BTreeMap::new();
        for view in self.views.values() {
            for &(n, _) in &view.members {
                per_node.entry(n).or_default().push(view.clone());
            }
        }
        for (n, views) in per_node {
            let dst = self.addr(n);
            let size = CTRL_MSG_BYTES + 64 * views.len() as u32;
            let msg = KvMsg::Membership { views };
            self.tp
                .tcp_send(ctx, dst, self.cfg.port, Msg::new(msg, size));
        }
        ctx.set_timer(self.cfg.hb_interval, TOK_HBCHECK);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if token == TOK_HBCHECK {
            self.check_heartbeats(ctx);
        }
    }

    fn on_packet_in(&mut self, sw: SwitchId, in_port: Port, pkt: Packet, ctx: &mut Ctx) {
        let _ = self.learner.on_packet_in(sw, in_port, pkt, ctx);
    }
}

/// Longest-processing-time greedy: assign each division (heaviest first)
/// to the replica with the least accumulated load. Returns, per division
/// index, the chosen replica index in `0..targets`.
pub fn assign_divisions_lpt(loads: &[u64], targets: usize) -> Vec<usize> {
    // Total over any input: `targets == 0` degrades to one phantom
    // replica (everything maps to 0) instead of panicking.
    let targets = targets.max(1);
    let load = |d: usize| loads.get(d).copied().unwrap_or(0);
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by_key(|&d| std::cmp::Reverse(load(d)));
    let mut acc = vec![0u64; targets];
    let mut out = vec![0usize; loads.len()];
    for d in order {
        let t = acc
            .iter()
            .enumerate()
            .min_by_key(|&(t, &a)| (a, t))
            .map_or(0, |(t, _)| t);
        if let Some(slot) = out.get_mut(d) {
            *slot = t;
        }
        if let Some(a) = acc.get_mut(t) {
            *a += load(d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_spreads_uniform_load_round_robin_like() {
        let a = assign_divisions_lpt(&[10, 10, 10, 10], 4);
        let mut targets = a.clone();
        targets.sort_unstable();
        assert_eq!(targets, vec![0, 1, 2, 3], "each replica gets one division");
    }

    #[test]
    fn lpt_isolates_the_heavy_division() {
        // one division carries almost everything: it must get a replica
        // to itself while the light ones share.
        let a = assign_divisions_lpt(&[1000, 10, 10, 10], 3);
        let heavy = a[0];
        assert!(a[1..].iter().all(|&t| t != heavy), "{a:?}");
    }

    #[test]
    fn lpt_minimizes_makespan_on_known_case() {
        // classic LPT instance: loads 7,6,5,4 on 2 targets -> 11 vs 11.
        let a = assign_divisions_lpt(&[7, 6, 5, 4], 2);
        let mut acc = [0u64; 2];
        for (d, &t) in a.iter().enumerate() {
            acc[t] += [7u64, 6, 5, 4][d];
        }
        assert_eq!(acc[0].max(acc[1]), 11);
    }

    #[test]
    fn lpt_handles_more_targets_than_divisions() {
        let a = assign_divisions_lpt(&[5, 3], 8);
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn lpt_zero_loads_are_stable() {
        let a = assign_divisions_lpt(&[0, 0, 0], 2);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&t| t < 2));
    }
}

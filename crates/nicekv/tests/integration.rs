//! End-to-end tests of the NICE system: routing, replication, consistency,
//! load balancing, failure handling, and recovery — the mechanisms of
//! §3–§4 exercised through the full simulated fabric.

use nice_kv::{ClientOp, ClusterCfg, MetaEvent, NiceCluster, NodeState, OpRecord, PutMode, Value};
use nice_ring::{NodeIdx, PartitionId};
use nice_sim::Time;

fn put(key: &str, bytes: &[u8]) -> ClientOp {
    ClientOp::Put {
        key: key.into(),
        value: Value::from_bytes(bytes.to_vec()),
    }
}

fn get(key: &str) -> ClientOp {
    ClientOp::Get { key: key.into() }
}

#[test]
fn put_get_roundtrip_many_keys() {
    let mut ops = Vec::new();
    for i in 0..20 {
        ops.push(put(&format!("key-{i}"), format!("value-{i}").as_bytes()));
    }
    for i in 0..20 {
        ops.push(get(&format!("key-{i}")));
    }
    let mut c = NiceCluster::build(ClusterCfg::new(8, 3, vec![ops]));
    assert!(c.run_until_done(Time::from_secs(30)));
    let recs = &c.client(0).records;
    assert_eq!(recs.len(), 40);
    assert!(recs.iter().all(OpRecord::ok), "all ops succeed");
    for i in 0..20 {
        let r = &recs[20 + i];
        assert_eq!(r.bytes.as_deref(), Some(format!("value-{i}").as_bytes()));
    }
    // no retries needed in a healthy cluster
    assert!(
        recs.iter().all(|r| r.attempts == 1),
        "healthy cluster needs no retries"
    );
}

#[test]
fn replication_reaches_all_replicas() {
    let ops = vec![put("replicate-me", b"payload")];
    let mut c = NiceCluster::build(ClusterCfg::new(8, 3, vec![ops]));
    assert!(c.run_until_done(Time::from_secs(10)));
    let holders: Vec<usize> = (0..8)
        .filter(|&i| c.server(i).store().get("replicate-me").is_some())
        .collect();
    assert_eq!(
        holders.len(),
        3,
        "exactly R replicas hold the object: {holders:?}"
    );
    // and they are exactly the ring's replica set for the key's partition
    let p = c.ring.partition_of_key(b"replicate-me");
    let mut expect: Vec<usize> = c.ring.replica_set(p).iter().map(|n| n.0 as usize).collect();
    expect.sort();
    assert_eq!(holders, expect);
    // all replicas committed with the same timestamp
    let ts: Vec<_> = holders
        .iter()
        .map(|&i| c.server(i).store().get("replicate-me").unwrap().ts)
        .collect();
    assert!(
        ts.windows(2).all(|w| w[0] == w[1]),
        "replicas agree on the commit timestamp"
    );
}

#[test]
fn overwrite_returns_latest_value() {
    let ops = vec![put("k", b"v1"), put("k", b"v2"), put("k", b"v3"), get("k")];
    let mut c = NiceCluster::build(ClusterCfg::new(6, 3, vec![ops]));
    assert!(c.run_until_done(Time::from_secs(10)));
    let recs = &c.client(0).records;
    assert!(recs.iter().all(OpRecord::ok));
    assert_eq!(recs[3].bytes.as_deref(), Some(b"v3".as_slice()));
}

#[test]
fn get_of_missing_key_fails_cleanly() {
    let ops = vec![get("never-written")];
    let mut c = NiceCluster::build(ClusterCfg::new(4, 2, vec![ops]));
    assert!(c.run_until_done(Time::from_secs(10)));
    let recs = &c.client(0).records;
    assert_eq!(recs.len(), 1);
    assert!(!recs[0].ok());
    assert!(recs[0].bytes.is_none());
}

#[test]
fn concurrent_clients_with_disjoint_keys() {
    let mk = |id: usize| {
        let mut ops = Vec::new();
        for i in 0..10 {
            ops.push(put(
                &format!("c{id}-k{i}"),
                format!("c{id}-v{i}").as_bytes(),
            ));
            ops.push(get(&format!("c{id}-k{i}")));
        }
        ops
    };
    let mut c = NiceCluster::build(ClusterCfg::new(8, 3, vec![mk(0), mk(1), mk(2), mk(3)]));
    assert!(c.run_until_done(Time::from_secs(30)));
    for cl in 0..4 {
        let recs = &c.client(cl).records;
        assert_eq!(recs.len(), 20);
        assert!(recs.iter().all(OpRecord::ok), "client {cl}");
        for (i, r) in recs.iter().enumerate() {
            if !r.is_put {
                let k = i / 2;
                assert_eq!(r.bytes.as_deref(), Some(format!("c{cl}-v{k}").as_bytes()));
            }
        }
    }
}

#[test]
fn concurrent_writers_same_key_converge() {
    // Two clients hammer the same key; locks serialize the puts and every
    // replica must converge to the same (latest-timestamp) value.
    let ops_a: Vec<ClientOp> = (0..5)
        .map(|i| put("contended", format!("a{i}").as_bytes()))
        .collect();
    let ops_b: Vec<ClientOp> = (0..5)
        .map(|i| put("contended", format!("b{i}").as_bytes()))
        .collect();
    let mut c = NiceCluster::build(ClusterCfg::new(6, 3, vec![ops_a, ops_b]));
    assert!(c.run_until_done(Time::from_secs(30)));
    assert!(c.client(0).records.iter().all(OpRecord::ok));
    assert!(c.client(1).records.iter().all(OpRecord::ok));
    let p = c.ring.partition_of_key(b"contended");
    let replicas: Vec<usize> = c.ring.replica_set(p).iter().map(|n| n.0 as usize).collect();
    let versions: Vec<(Vec<u8>, nice_kv::Timestamp)> = replicas
        .iter()
        .map(|&i| {
            let cm = c
                .server(i)
                .store()
                .get("contended")
                .expect("replica holds the key");
            (cm.value.bytes.as_ref().clone(), cm.ts)
        })
        .collect();
    assert!(
        versions.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged: {versions:?}"
    );
}

#[test]
fn load_balancing_spreads_gets_across_replicas() {
    // Many clients read the same hot key; with LB rules the gets must hit
    // more than one replica (§4.5).
    let seed_ops = vec![put("hot", b"hot-value")];
    let mut all = vec![seed_ops];
    for _ in 0..6 {
        all.push((0..30).map(|_| get("hot")).collect());
    }
    let mut cfg = ClusterCfg::new(8, 3, all);
    cfg.kv.load_balancing = true;
    // Clients must start after the seed put; stagger via op dependency:
    // run the seeding client first by giving the getters a later start.
    cfg.host.client_start = Time::from_ms(50);
    let mut c = NiceCluster::build(cfg);
    // Let the seed put land before the readers start hammering: client 0
    // starts first (staggered starts), and retries cover the rest.
    assert!(c.run_until_done(Time::from_secs(60)));
    let p = c.ring.partition_of_key(b"hot");
    let replicas: Vec<usize> = c.ring.replica_set(p).iter().map(|n| n.0 as usize).collect();
    let served: Vec<u64> = replicas
        .iter()
        .map(|&i| c.server(i).counters().gets_served)
        .collect();
    let busy = served.iter().filter(|&&s| s > 0).count();
    assert!(busy >= 2, "gets concentrated on one replica: {served:?}");
}

#[test]
fn without_load_balancing_primary_serves_all_gets() {
    let seed_ops = vec![put("hot", b"hot-value")];
    let mut all = vec![seed_ops];
    for _ in 0..4 {
        all.push((0..20).map(|_| get("hot")).collect());
    }
    let mut cfg = ClusterCfg::new(8, 3, all);
    cfg.kv.load_balancing = false;
    let mut c = NiceCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(60)));
    let p = c.ring.partition_of_key(b"hot");
    let primary = c.ring.primary(p).0 as usize;
    let replicas: Vec<usize> = c.ring.replica_set(p).iter().map(|n| n.0 as usize).collect();
    for &i in &replicas {
        let served = c.server(i).counters().gets_served;
        if i == primary {
            // a handful of early gets may race the seed put (NotFound)
            assert!(served >= 70, "primary served {served}");
        } else {
            assert_eq!(served, 0, "secondary {i} must be idle without LB");
        }
    }
}

#[test]
fn quorum_mode_completes_puts() {
    let ops: Vec<ClientOp> = (0..5)
        .map(|i| put(&format!("q{i}"), b"quorum-value"))
        .collect();
    let mut cfg = ClusterCfg::new(8, 5, vec![ops]);
    cfg.kv.put_mode = PutMode::Quorum { k: 2 };
    let mut c = NiceCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(10)));
    let recs = &c.client(0).records;
    assert_eq!(recs.len(), 5);
    assert!(recs.iter().all(OpRecord::ok));
}

#[test]
fn client_sends_one_copy_regardless_of_replication() {
    // The put payload leaves the client once; the switch replicates it
    // (§4.2 "network and storage optimal").
    let size = 256 * 1024;
    let ops = vec![ClientOp::Put {
        key: "big".into(),
        value: Value::synthetic(size),
    }];
    let mut cfg = ClusterCfg::new(9, 5, vec![ops]);
    cfg.kv.load_balancing = false;
    let mut c = NiceCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(10)));
    let sent = c.sim.host_stats(c.clients[0]).bytes_sent;
    assert!(
        sent < (size as u64) * 3 / 2,
        "client sent {sent} bytes for a {size}-byte object at R=5"
    );
    // while every replica received a full copy
    let p = c.ring.partition_of_key(b"big");
    for n in c.ring.replica_set(p) {
        let got = c.sim.host_stats(c.servers[n.0 as usize]).bytes_recv;
        assert!(got >= size as u64, "replica {n:?} received {got}");
    }
}

// ---------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------

#[test]
fn secondary_failure_handoff_and_recovery() {
    // Workload: continuous puts/gets to one partition while a secondary
    // fails and later rejoins (the Figure 11 scenario, compressed).
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, vec![]));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 40);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[1]; // a secondary
    drop(probe);

    let mut ops = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        ops.push(put(k, format!("v{i}").as_bytes()));
        ops.push(get(k));
    }
    let mut cfg = ClusterCfg::new(8, 3, vec![ops]);
    cfg.kv.hb_interval = Time::from_ms(100); // speed the test up
    cfg.kv.op_timeout = Time::from_ms(100);
    cfg.kv.client_retry = Time::from_ms(400);
    cfg.host.client_start = Time::from_ms(100);
    let mut c = NiceCluster::build(cfg);

    // Crash before the workload starts so the failure window overlaps it.
    c.sim
        .schedule_crash(Time::from_ms(60), c.servers[victim as usize]);
    c.sim
        .schedule_restart(Time::from_secs(3), c.servers[victim as usize]);
    assert!(
        c.run_until_done(Time::from_secs(30)),
        "workload must finish"
    );
    // run past the scheduled restart so rejoin + recovery complete
    c.sim.run_until(Time::from_secs(8));

    // every op eventually succeeded
    let recs = &c.client(0).records;
    assert!(
        recs.iter().all(OpRecord::ok),
        "ops failed: {:?}",
        recs.iter().filter(|r| !r.ok()).count()
    );
    // some put needed a retry (the <2 s unavailability window)
    let events: Vec<&MetaEvent> = c.meta_app().events.iter().map(|(_, e)| e).collect();
    assert!(
        events.contains(&&MetaEvent::NodeFailed(NodeIdx(victim))),
        "failure detected: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, MetaEvent::HandoffAssigned { failed, .. } if failed.0 == victim)),
        "handoff assigned"
    );
    assert!(events.contains(&&MetaEvent::NodeRejoining(NodeIdx(victim))));
    assert!(events.contains(&&MetaEvent::NodeRecovered(NodeIdx(victim))));
    assert_eq!(c.meta_app().node_state(NodeIdx(victim)), NodeState::Up);

    // run a verification pass: the recovered node must hold every object
    // that was written to the partition (it drained the handoff).
    c.sim.run_for(Time::from_secs(1));
    let store = c.server(victim as usize).store();
    let missing: Vec<&String> = keys.iter().filter(|k| store.get(k).is_none()).collect();
    assert!(missing.is_empty(), "recovered node is missing {missing:?}");
}

#[test]
fn handoff_forwards_gets_for_objects_it_lacks() {
    // Write before the failure; read (from the handoff path) after it.
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, vec![]));
    let p = PartitionId(1);
    let keys = probe.keys_in_partition(p, 5);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[1];
    drop(probe);

    let mut writer = Vec::new();
    for k in &keys {
        writer.push(put(k, b"pre-failure"));
    }
    let mut cfg = ClusterCfg::new(8, 3, vec![writer]);
    cfg.kv.hb_interval = Time::from_ms(100);
    cfg.kv.op_timeout = Time::from_ms(100);
    cfg.kv.client_retry = Time::from_ms(400);
    cfg.kv.load_balancing = true;
    let mut c = NiceCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(10)));

    // Fail the secondary, wait for the handoff to take over the get path.
    c.sim
        .schedule_crash(c.sim.now(), c.servers[victim as usize]);
    c.sim.run_for(Time::from_secs(2));
    let handoff = c
        .meta_app()
        .events
        .iter()
        .find_map(|(_, e)| match e {
            MetaEvent::HandoffAssigned {
                partition, handoff, ..
            } if *partition == p => Some(handoff.0),
            _ => None,
        })
        .expect("handoff assigned");

    // Now read every key through a fresh client... we cannot add hosts
    // post-build, so instead drive gets from an existing idle client app.
    c.sim
        .app_mut::<nice_kv::ClientApp>(c.clients[0])
        .push_ops(keys.iter().map(|k| get(k)));
    // nudge the client to resume: its queue was empty, so re-issue by
    // pushing a timer-less kick through another round of ops — the client
    // polls on op completion only, so use a tiny helper: restart issuing.
    c.sim.run_for(Time::from_ms(1));
    let done = c.run_until_done(Time::from_secs(20));
    assert!(done, "post-failure gets must finish");
    let recs = &c.client(0).records;
    let post: Vec<_> = recs.iter().skip(keys.len()).collect();
    assert!(post.iter().all(|r| r.ok()), "gets after failure succeed");
    // if the handoff ever saw one of those gets, it forwarded (it has no
    // pre-failure objects)
    let fwd = c.server(handoff as usize).counters().forwarded;
    let served_direct = c.server(handoff as usize).counters().gets_served;
    assert_eq!(
        served_direct, 0,
        "handoff cannot serve pre-failure objects itself"
    );
    let _ = fwd; // forwarding count depends on LB division assignment
}

#[test]
fn primary_failure_promotes_secondary_and_work_continues() {
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, vec![]));
    let p = PartitionId(2);
    let keys = probe.keys_in_partition(p, 30);
    let primary = probe.ring.primary(p).0;
    drop(probe);

    let mut ops = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        ops.push(put(k, format!("w{i}").as_bytes()));
        ops.push(get(k));
    }
    let mut cfg = ClusterCfg::new(8, 3, vec![ops]);
    cfg.kv.hb_interval = Time::from_ms(100);
    cfg.kv.op_timeout = Time::from_ms(100);
    cfg.kv.client_retry = Time::from_ms(400);
    cfg.host.client_start = Time::from_ms(100);
    let mut c = NiceCluster::build(cfg);

    // Crash the primary before the first put lands.
    c.sim
        .schedule_crash(Time::from_ms(60), c.servers[primary as usize]);
    assert!(
        c.run_until_done(Time::from_secs(40)),
        "workload survives primary failure"
    );
    let recs = &c.client(0).records;
    let failed = recs.iter().filter(|r| !r.ok()).count();
    assert_eq!(failed, 0, "every op eventually succeeded");
    let events = &c.meta_app().events;
    assert!(
        events.iter().any(
            |(_, e)| matches!(e, MetaEvent::PrimaryChanged { partition, .. } if *partition == p)
        ),
        "primary was promoted: {events:?}"
    );
    // the view's primary is no longer the crashed node
    let view = c.meta_app().view(p).unwrap();
    assert_ne!(view.primary.0, primary);
}

#[test]
fn writes_during_failure_reach_rejoined_node() {
    // Objects written while a node is down must flow back to it through
    // the handoff drain (§4.4 node recovery).
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, vec![]));
    let p = PartitionId(3);
    let keys = probe.keys_in_partition(p, 10);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[2];
    drop(probe);

    // All writes happen while the victim is down.
    let ops: Vec<ClientOp> = keys.iter().map(|k| put(k, b"written-while-down")).collect();
    let mut cfg = ClusterCfg::new(8, 3, vec![ops]);
    cfg.kv.hb_interval = Time::from_ms(100);
    cfg.kv.op_timeout = Time::from_ms(100);
    cfg.kv.client_retry = Time::from_ms(300);
    cfg.host.client_start = Time::from_secs(2); // after failure handling settles
    let mut c = NiceCluster::build(cfg);
    c.sim
        .schedule_crash(Time::from_ms(200), c.servers[victim as usize]);
    c.sim
        .schedule_restart(Time::from_secs(6), c.servers[victim as usize]);
    assert!(c.run_until_done(Time::from_secs(30)));
    assert!(c.client(0).records.iter().all(OpRecord::ok));
    // give recovery time to drain the handoff
    c.sim.run_for(Time::from_secs(4));
    assert_eq!(c.meta_app().node_state(NodeIdx(victim)), NodeState::Up);
    let store = c.server(victim as usize).store();
    for k in &keys {
        assert!(store.get(k).is_some(), "rejoined node missing {k}");
        assert_eq!(
            *store.get(k).unwrap().value.bytes,
            b"written-while-down".to_vec()
        );
    }
}

#[test]
fn flow_table_occupancy_matches_section_4_6() {
    // 2N entries without LB ((R+1)N with LB is checked against the live
    // table since divisions round up to powers of two).
    let mut cfg = ClusterCfg::new(8, 3, vec![]);
    cfg.kv.load_balancing = false;
    cfg.spec.partitions = Some(16);
    let mut c = NiceCluster::build(cfg);
    c.sim.run_for(Time::from_ms(100));
    let (entries, groups) = c.meta_app().table_occupancy(c.sim.now());
    // per partition: 1 unicast + 1 multicast rule; plus one PHYS rule per
    // host (8 servers + 0 clients + 1 meta).
    let n = 16;
    let phys = 8 + 1;
    assert_eq!(entries, 2 * n + phys, "entries={entries}");
    assert_eq!(groups, n, "one multicast group per partition");
}

#[test]
fn adaptive_lb_rebalances_skewed_divisions() {
    // The paper's stated future work, implemented: static round-robin
    // pins client divisions 0 and 3 to the same replica (both map to
    // index 0 mod 3); when all traffic comes from those two divisions,
    // the workload-informed balancer must split them apart.
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, vec![]));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 5);
    let replicas: Vec<usize> = probe
        .ring
        .replica_set(p)
        .iter()
        .map(|n| n.0 as usize)
        .collect();
    drop(probe);

    let run = |adaptive: bool| -> Vec<u64> {
        // clients 0..8: only j=0,3,4,7 (divisions 0,3,0,3) issue gets
        let mut all: Vec<Vec<ClientOp>> = vec![Vec::new(); 8];
        all[0] = keys.iter().map(|k| put(k, b"hot")).collect();
        // enough gets that the run spans several heartbeat/rebalance
        // rounds (~1.2 s at ~400 us per get)
        for j in [0usize, 3, 4, 7] {
            for _ in 0..3000 {
                all[j].push(get(&keys[0]));
            }
        }
        let mut cfg = ClusterCfg::new(8, 3, all);
        cfg.kv.hb_interval = Time::from_ms(100);
        cfg.kv.load_balancing = true;
        cfg.kv.adaptive_lb = adaptive;
        cfg.spec.retry_not_found = true;
        let mut c = NiceCluster::build(cfg);
        assert!(
            c.run_until_done(Time::from_secs(120)),
            "adaptive={adaptive}"
        );
        replicas
            .iter()
            .map(|&i| c.server(i).counters().gets_served)
            .collect()
    };

    let static_served = run(false);
    let adaptive_served = run(true);
    let busy = |v: &Vec<u64>| v.iter().filter(|&&s| s > 200).count();
    assert_eq!(
        busy(&static_served),
        1,
        "static pins both divisions to one replica: {static_served:?}"
    );
    assert!(
        busy(&adaptive_served) >= 2,
        "adaptive must split the hot divisions: {adaptive_served:?} (static was {static_served:?})"
    );
    // and the hottest replica's absolute load must drop
    let max_static = static_served.iter().max().copied().unwrap_or(0);
    let max_adaptive = adaptive_served.iter().max().copied().unwrap_or(0);
    assert!(
        max_adaptive < max_static,
        "adaptive should reduce the peak: {max_adaptive} vs {max_static}"
    );
}

//! Exhaustive interleaving checker for the storage-layer 2PC put path.
//!
//! NICE's put protocol (§4.3, Figure 3) serializes concurrent puts to one
//! object through per-replica in-memory locks plus the primary's
//! timestamp quadruplet. The event-driven simulation exercises only the
//! schedules its configuration happens to produce; this harness instead
//! *enumerates* schedules. Each concurrent put is modeled as its visible
//! storage-layer step sequence —
//!
//! ```text
//!   Lock(r0) … Lock(rN)  →  Decide  →  Finish(r0) … Finish(rN)
//! ```
//!
//! — where `Lock` is [`ObjectStore::lock`] on replica `r`, `Decide` is
//! the primary's commit/abort choice (commit with the next timestamp iff
//! every replica lock was acquired, mirroring `check_commit` in
//! `server.rs`), and `Finish` applies [`ObjectStore::commit`] or
//! [`ObjectStore::abort`] on replica `r`. All interleavings of the
//! per-put sequences (which preserve each put's internal order) are run
//! against real [`ObjectStore`] replicas, and every schedule must uphold:
//!
//! 1. **no stranded locks / no deadlock** — at quiescence no replica
//!    holds a pending lock, the persistent log is drained (every +L got
//!    its -L), and `in_doubt()` is empty;
//! 2. **no lost update** — every replica's committed value for the key
//!    is exactly the value of the committed put with the greatest
//!    timestamp (or absent when every put aborted);
//! 3. **replica convergence** — all replicas hold byte-identical
//!    committed state;
//! 4. **progress** — a put that acquired every replica lock commits.
//!
//! The two-put × three-replica and three-put × one-replica spaces are
//! covered exhaustively (3432 + 1680 schedules); the three-put ×
//! two-replica space (756 756 schedules) is covered by a deterministic
//! 10 000-schedule prefix to keep the suite fast.
//!
//! On top of the fault-free sweeps, three failure dimensions are
//! enumerated: **primary failover mid-2PC** (every schedule × every
//! crash point, followed by the §4.4 resolution and the two-phase rejoin
//! catch-up), **message loss** (every wire message of every schedule
//! dropped in turn), and **message duplication** (every wire message
//! delivered twice, asserting byte-identical outcomes). A seeded
//! lock-release mutation test confirms the invariants still have teeth.

use nice_kv::{ObjectStore, OpId, StorageCfg, Timestamp, Value};
use nice_sim::{Ipv4, Time};

const KEY: &str = "obj";
const PRIMARY: Ipv4 = Ipv4::new(10, 0, 0, 1);

/// The storage-visible steps of one put, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// `lock()` on replica `r` (data arrived, +L forced to the log).
    Lock(usize),
    /// The primary's commit/abort decision over its collected acks.
    Decide,
    /// `commit()`/`abort()` on replica `r` (timestamp or abort arrived).
    Finish(usize),
}

fn step_of(idx: usize, replicas: usize) -> Step {
    if idx < replicas {
        Step::Lock(idx)
    } else if idx == replicas {
        Step::Decide
    } else {
        Step::Finish(idx - replicas - 1)
    }
}

fn op_id(o: usize) -> OpId {
    OpId {
        client: Ipv4::new(10, 0, 1, o as u8 + 1),
        client_seq: 1,
    }
}

fn value_of(o: usize) -> Value {
    Value::from_bytes(vec![b'A' + o as u8; 8])
}

/// Everything observable after one schedule has run to quiescence.
struct Outcome {
    /// Committed timestamp per put (`None` = aborted).
    committed: Vec<Option<Timestamp>>,
    /// Final committed `(bytes, ts)` of the key per replica.
    finals: Vec<Option<(Vec<u8>, Timestamp)>>,
    /// Replicas with a pending lock, a log entry, or an in-doubt put left.
    stranded: bool,
}

/// Wire-level fate of one step's message. `Decide` is primary-local and
/// is never faulted — loss and duplication act on the messages that
/// carry locks and commit/abort notices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// The message arrives once (the fault-free path).
    Deliver,
    /// The message is lost; the step has no effect on the replica.
    Drop,
    /// The message arrives twice (a retry raced the original).
    Dup,
}

/// Seeded protocol mutations the checker must be able to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// The faithful protocol.
    None,
    /// The abort path forgets to release the replica lock.
    SkipAbortRelease,
}

/// A single live execution: real [`ObjectStore`] replicas plus the
/// bookkeeping the abstract primary keeps.
struct Run {
    stores: Vec<ObjectStore>,
    cursor: Vec<usize>,
    locked: Vec<Vec<bool>>,
    /// None = undecided; Some(Some(ts)) = commit; Some(None) = abort.
    decision: Vec<Option<Option<Timestamp>>>,
    /// Puts whose commit reached at least one replica store.
    applied: Vec<bool>,
    primary_seq: u64,
}

impl Run {
    fn new(ops: usize, replicas: usize) -> Run {
        Run {
            stores: (0..replicas)
                .map(|_| ObjectStore::new(StorageCfg::default()))
                .collect(),
            cursor: vec![0; ops],
            locked: vec![vec![false; replicas]; ops],
            decision: vec![None; ops],
            applied: vec![false; ops],
            primary_seq: 0,
        }
    }

    /// Execute put `o`'s next step under `fault`. `strict` keeps the
    /// fault-free invariant that a fully locked put's first commit is
    /// accepted by every replica.
    fn exec(&mut self, o: usize, fault: Fault, mutation: Mutation, strict: bool) {
        let replicas = self.stores.len();
        let step = step_of(self.cursor[o], replicas);
        self.cursor[o] += 1;
        if fault == Fault::Drop && step != Step::Decide {
            return;
        }
        let copies = if fault == Fault::Dup { 2 } else { 1 };
        match step {
            Step::Lock(r) => {
                for _ in 0..copies {
                    self.locked[o][r] = self.stores[r].lock(KEY, op_id(o), value_of(o), Time::ZERO);
                }
                if self.locked[o][r] {
                    // Lock models "data arrived and W was forced": the
                    // tentative value is on disk, so it survives a node
                    // crash as an in-doubt entry.
                    if let Some(p) = self.stores[r].pending_mut(KEY) {
                        p.written = true;
                    }
                }
            }
            Step::Decide => {
                // Mirrors `check_commit`: commit only once every replica
                // holds the lock (all PutAck1s in), else the deadline
                // fires and the put aborts.
                if self.locked[o].iter().all(|&l| l) {
                    self.primary_seq += 1;
                    self.decision[o] = Some(Some(Timestamp {
                        primary_seq: self.primary_seq,
                        primary: PRIMARY,
                        client_seq: op_id(o).client_seq,
                        client: op_id(o).client,
                    }));
                } else {
                    self.decision[o] = Some(None);
                }
            }
            Step::Finish(r) => match self.decision[o] {
                Some(Some(ts)) => {
                    for dup in 0..copies {
                        let accepted = self.stores[r].commit(KEY, op_id(o), ts);
                        if accepted {
                            self.applied[o] = true;
                        }
                        if strict && dup == 0 {
                            assert!(
                                accepted,
                                "replica {r} rejected the commit of a fully locked put {o}"
                            );
                        }
                    }
                }
                Some(None) => {
                    if self.locked[o][r] && mutation != Mutation::SkipAbortRelease {
                        for _ in 0..copies {
                            self.stores[r].abort(KEY, op_id(o));
                        }
                    }
                }
                None => unreachable!("schedule violated program order"),
            },
        }
    }

    fn outcome(&self) -> Outcome {
        Outcome {
            committed: self.decision.iter().map(|d| d.flatten()).collect(),
            finals: self
                .stores
                .iter()
                .map(|s| s.get(KEY).map(|c| (c.value.bytes.to_vec(), c.ts)))
                .collect(),
            stranded: self
                .stores
                .iter()
                .any(|s| s.locked(KEY) || !s.log().is_empty() || !s.in_doubt().is_empty()),
        }
    }
}

/// Run one schedule. `sched[i]` names the put that takes its next step
/// at position `i`; each put's own steps execute in program order.
fn run_schedule(ops: usize, replicas: usize, sched: &[usize]) -> Outcome {
    let mut run = Run::new(ops, replicas);
    for &o in sched {
        run.exec(o, Fault::Deliver, Mutation::None, true);
    }
    run.outcome()
}

fn check_schedule(ops: usize, replicas: usize, sched: &[usize]) -> Outcome {
    let out = run_schedule(ops, replicas, sched);

    // 1. No stranded locks, log entries, or in-doubt puts.
    assert!(
        !out.stranded,
        "stranded lock/log state after schedule {sched:?}"
    );

    // 2 + 3. Every replica converged on the max-timestamp committed put.
    let expect = out
        .committed
        .iter()
        .enumerate()
        .filter_map(|(o, ts)| ts.map(|ts| (ts, o)))
        .max()
        .map(|(ts, o)| (value_of(o).bytes.to_vec(), ts));
    for (r, fin) in out.finals.iter().enumerate() {
        assert_eq!(
            *fin, expect,
            "replica {r} diverged from the winning put after schedule {sched:?}"
        );
    }
    out
}

/// Enumerate distinct interleavings of `ops` sequences of `steps` steps
/// each, in lexicographic order, invoking `f` on every complete schedule
/// until `cap` schedules have been visited. Returns how many ran.
fn enumerate(ops: usize, steps: usize, cap: usize, f: &mut impl FnMut(&[usize])) -> usize {
    fn rec(
        remaining: &mut [usize],
        prefix: &mut Vec<usize>,
        total: usize,
        cap: usize,
        count: &mut usize,
        f: &mut impl FnMut(&[usize]),
    ) {
        if *count >= cap {
            return;
        }
        if prefix.len() == total {
            f(prefix);
            *count += 1;
            return;
        }
        for o in 0..remaining.len() {
            if remaining[o] == 0 {
                continue;
            }
            remaining[o] -= 1;
            prefix.push(o);
            rec(remaining, prefix, total, cap, count, f);
            prefix.pop();
            remaining[o] += 1;
        }
    }
    let mut remaining = vec![steps; ops];
    let mut prefix = Vec::with_capacity(ops * steps);
    let mut count = 0;
    rec(&mut remaining, &mut prefix, ops * steps, cap, &mut count, f);
    count
}

/// Drive every schedule of a configuration and keep cross-schedule tallies.
struct Tally {
    schedules: usize,
    commits: usize,
    aborts: usize,
    all_committed: usize,
    none_committed: usize,
}

fn sweep(ops: usize, replicas: usize, cap: usize) -> Tally {
    let steps = 2 * replicas + 1;
    let mut t = Tally {
        schedules: 0,
        commits: 0,
        aborts: 0,
        all_committed: 0,
        none_committed: 0,
    };
    t.schedules = enumerate(ops, steps, cap, &mut |sched| {
        let out = check_schedule(ops, replicas, sched);
        let c = out.committed.iter().filter(|d| d.is_some()).count();
        t.commits += c;
        t.aborts += ops - c;
        if c == ops {
            t.all_committed += 1;
        }
        if c == 0 {
            t.none_committed += 1;
        }
    });
    t
}

#[test]
fn two_puts_three_replicas_exhaustive() {
    // C(14, 7) distinct interleavings of two 7-step puts.
    let t = sweep(2, 3, usize::MAX);
    assert_eq!(t.schedules, 3432);
    // The serial schedules must let both puts commit...
    assert!(t.all_committed > 0, "no schedule committed both puts");
    // ...while overlapping lock phases must produce aborts somewhere.
    assert!(t.aborts > 0, "no schedule aborted a put");
}

#[test]
fn three_puts_one_replica_exhaustive() {
    // 9! / (3!)^3 distinct interleavings of three 3-step puts.
    let t = sweep(3, 1, usize::MAX);
    assert_eq!(t.schedules, 1680);
    assert!(t.all_committed > 0);
    assert!(t.aborts > 0);
}

#[test]
fn three_puts_two_replicas_prefix() {
    // The full space is 15!/(5!)^3 = 756 756 schedules; a deterministic
    // lexicographic prefix keeps the runtime bounded while still mixing
    // all three puts (the prefix varies the tails of puts 1 and 2 first).
    let t = sweep(3, 2, 10_000);
    assert_eq!(t.schedules, 10_000);
    assert!(t.commits > 0);
}

// ---------------------------------------------------------------------
// Failure dimensions: primary failover mid-2PC, message loss, and
// message duplication. Every faulted run ends with the §4.4 resolution
// (the new primary settles surviving locks) plus the two-phase rejoin
// catch-up, and must then satisfy the same quiescence and convergence
// invariants as the fault-free sweeps.
// ---------------------------------------------------------------------

/// What the §4.4 lock resolution settled.
struct Settled {
    /// Locks settled by commit (commit-if-committed-anywhere fired).
    commits: usize,
    /// Locks settled by abort (no committed copy existed anywhere).
    aborts: usize,
}

/// The new primary's resolution: every surviving lock is committed if
/// any replica already holds that put's committed copy, aborted
/// otherwise ("the persistent logs on the nodes will identify the latest
/// put operations. The new primary will check them all").
fn resolve_locks(run: &mut Run, ops: usize) -> Settled {
    let mut settled = Settled {
        commits: 0,
        aborts: 0,
    };
    for o in 0..ops {
        let id = op_id(o);
        let evidence = run.stores.iter().find_map(|s| {
            s.get(KEY)
                .filter(|c| c.ts.client == id.client && c.ts.client_seq == id.client_seq)
                .map(|c| c.ts)
        });
        for r in 0..run.stores.len() {
            if run.stores[r].pending(KEY).is_some_and(|p| p.op == id) {
                match evidence {
                    Some(ts) => {
                        run.stores[r].commit(KEY, id, ts);
                        run.applied[o] = true;
                        settled.commits += 1;
                    }
                    None => {
                        run.stores[r].abort(KEY, id);
                        settled.aborts += 1;
                    }
                }
            }
        }
    }
    settled
}

/// The winning committed copy after resolution, if any.
fn winner_of(run: &Run) -> Option<(Vec<u8>, Timestamp)> {
    run.stores
        .iter()
        .filter_map(|s| s.get(KEY))
        .map(|c| (c.value.bytes.to_vec(), c.ts))
        .max_by(|a, b| a.1.cmp(&b.1))
}

/// Phase two of the rejoin: replicas behind the winning copy sync via
/// the recovery path before they may serve gets again. Returns which
/// replicas needed the sync.
fn catch_up(run: &mut Run, winner: &Option<(Vec<u8>, Timestamp)>) -> Vec<usize> {
    let mut resynced = Vec::new();
    if let Some((bytes, ts)) = winner {
        for r in 0..run.stores.len() {
            if run.stores[r].get(KEY).is_none_or(|c| c.ts < *ts) {
                run.stores[r].commit_direct(KEY, Value::from_bytes(bytes.clone()), *ts);
                resynced.push(r);
            }
        }
    }
    resynced
}

/// Assert the post-resolution invariants: quiescence (no stranded lock,
/// log, or in-doubt entry anywhere), replica convergence, and no lost
/// update (a commit that reached any replica before the fault survives
/// with a final timestamp at least as new).
fn assert_resolved(run: &Run, applied_pre: &[bool], what: &str) {
    for (r, s) in run.stores.iter().enumerate() {
        assert!(!s.locked(KEY), "stranded lock on replica {r} after {what}");
        assert!(
            s.log().is_empty(),
            "undrained log on replica {r} after {what}"
        );
        assert!(
            s.in_doubt().is_empty(),
            "in-doubt entry left on replica {r} after {what}"
        );
    }
    let finals: Vec<Option<(Vec<u8>, Timestamp)>> = run
        .stores
        .iter()
        .map(|s| s.get(KEY).map(|c| (c.value.bytes.to_vec(), c.ts)))
        .collect();
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged after {what}: {finals:?}"
    );
    for (o, &applied) in applied_pre.iter().enumerate() {
        if applied {
            let ts = run.decision[o]
                .flatten()
                .expect("an applied commit implies a commit decision");
            let fin = finals[0]
                .as_ref()
                .unwrap_or_else(|| panic!("applied put {o} vanished after {what}"));
            assert!(
                fin.1 >= ts,
                "lost update: put {o} (ts {ts:?}) was applied but the final copy is older after {what}"
            );
        }
    }
}

/// A put accepted by the new primary while the crashed node is still
/// down: it locks, decides, and commits on the surviving replicas only,
/// so the rejoiner lags the winning copy until phase two of the rejoin
/// syncs it. Post-resolution the lock must be free everywhere.
fn put_while_down(run: &mut Run, o: usize) {
    let id = op_id(o);
    for r in 1..run.stores.len() {
        assert!(
            run.stores[r].lock(KEY, id, value_of(o), Time::ZERO),
            "post-resolution lock held on surviving replica {r}"
        );
        if let Some(p) = run.stores[r].pending_mut(KEY) {
            p.written = true;
        }
    }
    run.primary_seq += 1;
    let ts = Timestamp {
        primary_seq: run.primary_seq,
        primary: PRIMARY,
        client_seq: id.client_seq,
        client: id.client,
    };
    for r in 1..run.stores.len() {
        assert!(
            run.stores[r].commit(KEY, id, ts),
            "surviving replica {r} rejected the new primary's commit"
        );
    }
    run.decision.push(Some(Some(ts)));
    run.applied.push(true);
}

/// One primary-failover run: the prefix of `sched` before `crash_at`
/// executes, then the primary's node (hosting replica 0's store) crashes
/// — its in-memory locks vanish, its written pendings survive as
/// in-doubt entries, and every in-flight step dies with it. With
/// `write_durable` false the crash lands after the lock ack but before
/// the node's object write (W) completed, so its pending does NOT
/// survive. With `down_put` true the new primary accepts one more put on
/// the surviving replicas while the node is down, so the rejoin must
/// recover the newer object in phase two. The new primary resolves, the
/// crashed node rejoins through both phases.
fn check_failover_schedule(
    ops: usize,
    replicas: usize,
    sched: &[usize],
    crash_at: usize,
    write_durable: bool,
    down_put: bool,
) -> (Settled, Vec<usize>) {
    let mut run = Run::new(ops, replicas);
    for &o in &sched[..crash_at] {
        run.exec(o, Fault::Deliver, Mutation::None, false);
    }
    if !write_durable {
        if let Some(p) = run.stores[0].pending_mut(KEY) {
            p.written = false;
        }
    }
    run.stores[0].on_crash();
    let mut applied_pre = run.applied.clone();

    let settled = resolve_locks(&mut run, ops);
    if down_put {
        put_while_down(&mut run, ops);
        applied_pre.push(true);
    }
    let winner = winner_of(&run);
    let behind: Vec<usize> = (0..replicas)
        .filter(|&r| match &winner {
            Some((_, ts)) => run.stores[r].get(KEY).is_none_or(|c| c.ts < *ts),
            None => false,
        })
        .collect();
    let resynced = catch_up(&mut run, &winner);
    // Two-phase rejoin ordering: every replica whose state lagged the
    // winner at rejoin time must be caught up in phase two, *before*
    // get-eligibility — a get served in between would have returned a
    // stale or missing object.
    assert_eq!(
        behind, resynced,
        "rejoin phase two must sync exactly the lagging replicas ({sched:?} @ {crash_at})"
    );
    assert_resolved(&run, &applied_pre, &format!("{sched:?} @ crash {crash_at}"));
    (settled, resynced)
}

#[test]
fn primary_failover_mid_2pc_exhaustive() {
    // Every interleaving of two 2-replica puts × every crash point. The
    // sweep must exercise both resolution rules and make phase two of
    // the rejoin load-bearing.
    let (ops, replicas) = (2, 2);
    let steps = 2 * replicas + 1;
    let mut runs = 0usize;
    let mut resolution_commits = 0usize;
    let mut resolution_aborts = 0usize;
    let mut primary_rejoined_behind = 0usize;
    enumerate(ops, steps, usize::MAX, &mut |sched| {
        for crash_at in 0..=sched.len() {
            for durable in [true, false] {
                for down_put in [false, true] {
                    let (settled, resynced) =
                        check_failover_schedule(ops, replicas, sched, crash_at, durable, down_put);
                    runs += 1;
                    resolution_commits += settled.commits;
                    resolution_aborts += settled.aborts;
                    primary_rejoined_behind += usize::from(resynced.contains(&0));
                }
            }
        }
    });
    assert_eq!(
        runs,
        252 * 11 * 4,
        "C(10,5) schedules x 11 crash points x W durability x down-put"
    );
    assert!(
        resolution_commits > 0,
        "commit-if-committed-anywhere never fired"
    );
    assert!(resolution_aborts > 0, "abort-of-undecided-puts never fired");
    assert!(
        primary_rejoined_behind > 0,
        "the crashed primary never rejoined behind — two-phase rejoin was never load-bearing"
    );
}

#[test]
fn primary_failover_three_replicas_prefix() {
    // A deterministic prefix of the 2-put x 3-replica space under every
    // crash point keeps a wider replica set covered without blowing up
    // the runtime.
    let (ops, replicas) = (2, 3);
    let steps = 2 * replicas + 1;
    let mut runs = 0usize;
    enumerate(ops, steps, 1000, &mut |sched| {
        for crash_at in 0..=sched.len() {
            for (durable, down_put) in [(true, false), (true, true), (false, true)] {
                check_failover_schedule(ops, replicas, sched, crash_at, durable, down_put);
                runs += 1;
            }
        }
    });
    assert_eq!(runs, 1000 * 15 * 3);
}

/// The step a schedule position carries (for skipping `Decide`, which is
/// primary-local and has no wire message to fault).
fn step_at(sched: &[usize], pos: usize, replicas: usize) -> Step {
    let o = sched[pos];
    let idx = sched[..pos].iter().filter(|&&x| x == o).count();
    step_of(idx, replicas)
}

#[test]
fn single_message_loss_resolves_without_stranding() {
    // Drop each wire message of each schedule in turn. A lost lock means
    // the put aborts (its PutAck1 never arrives); a lost commit/abort
    // strands a lock that the §4.4 resolution must settle.
    let (ops, replicas) = (2, 2);
    let steps = 2 * replicas + 1;
    let mut stranded_then_resolved = 0usize;
    enumerate(ops, steps, usize::MAX, &mut |sched| {
        for pos in 0..sched.len() {
            if step_at(sched, pos, replicas) == Step::Decide {
                continue;
            }
            let mut run = Run::new(ops, replicas);
            for (i, &o) in sched.iter().enumerate() {
                let fault = if i == pos {
                    Fault::Drop
                } else {
                    Fault::Deliver
                };
                run.exec(o, fault, Mutation::None, false);
            }
            let applied_pre = run.applied.clone();
            if run.stores.iter().any(|s| s.locked(KEY)) {
                stranded_then_resolved += 1;
            }
            resolve_locks(&mut run, ops);
            let winner = winner_of(&run);
            catch_up(&mut run, &winner);
            assert_resolved(&run, &applied_pre, &format!("{sched:?} drop@{pos}"));
        }
    });
    assert!(
        stranded_then_resolved > 0,
        "no dropped message ever stranded a lock — the sweep is vacuous"
    );
}

#[test]
fn duplicated_messages_are_idempotent() {
    // Deliver each wire message of each schedule twice in turn: a
    // re-lock by the same op refreshes (no duplicate log entry), a
    // re-commit / re-abort is a no-op. The outcome must be
    // byte-identical to the clean run.
    let (ops, replicas) = (2, 2);
    let steps = 2 * replicas + 1;
    enumerate(ops, steps, usize::MAX, &mut |sched| {
        let clean = run_schedule(ops, replicas, sched);
        for pos in 0..sched.len() {
            if step_at(sched, pos, replicas) == Step::Decide {
                continue;
            }
            let mut run = Run::new(ops, replicas);
            for (i, &o) in sched.iter().enumerate() {
                let fault = if i == pos { Fault::Dup } else { Fault::Deliver };
                run.exec(o, fault, Mutation::None, false);
            }
            let dup = run.outcome();
            assert_eq!(
                dup.committed, clean.committed,
                "duplication changed decisions ({sched:?} dup@{pos})"
            );
            assert_eq!(
                dup.finals, clean.finals,
                "duplication changed replica state ({sched:?} dup@{pos})"
            );
            assert!(
                !dup.stranded,
                "duplication stranded a lock ({sched:?} dup@{pos})"
            );
        }
    });
}

#[test]
fn seeded_lock_release_mutation_is_caught() {
    // Sanity check of the checker itself: mutate the abort path to
    // forget the lock release and the stranded-lock invariant must fire
    // on some schedule.
    let caught = std::panic::catch_unwind(|| {
        let (ops, replicas) = (2, 3);
        let steps = 2 * replicas + 1;
        enumerate(ops, steps, usize::MAX, &mut |sched| {
            let mut run = Run::new(ops, replicas);
            for &o in sched {
                run.exec(o, Fault::Deliver, Mutation::SkipAbortRelease, false);
            }
            let out = run.outcome();
            assert!(!out.stranded, "stranded lock after {sched:?}");
        });
    });
    assert!(
        caught.is_err(),
        "the checker failed to catch the seeded lock-release mutation"
    );
}

#[test]
fn serial_schedules_always_commit_in_order() {
    // Fully serial executions are the baseline the paper's protocol must
    // preserve: every put commits and the last writer wins.
    for ops in [2usize, 3] {
        let replicas = 3;
        let steps = 2 * replicas + 1;
        let mut sched = Vec::new();
        for o in 0..ops {
            sched.extend(std::iter::repeat_n(o, steps));
        }
        let out = check_schedule(ops, replicas, &sched);
        assert!(out.committed.iter().all(std::option::Option::is_some));
        for fin in &out.finals {
            let (bytes, _) = fin.as_ref().expect("value committed");
            assert_eq!(*bytes, value_of(ops - 1).bytes.to_vec());
        }
    }
}

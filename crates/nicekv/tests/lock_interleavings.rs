//! Exhaustive interleaving checker for the storage-layer 2PC put path.
//!
//! NICE's put protocol (§4.3, Figure 3) serializes concurrent puts to one
//! object through per-replica in-memory locks plus the primary's
//! timestamp quadruplet. The event-driven simulation exercises only the
//! schedules its configuration happens to produce; this harness instead
//! *enumerates* schedules. Each concurrent put is modeled as its visible
//! storage-layer step sequence —
//!
//! ```text
//!   Lock(r0) … Lock(rN)  →  Decide  →  Finish(r0) … Finish(rN)
//! ```
//!
//! — where `Lock` is [`ObjectStore::lock`] on replica `r`, `Decide` is
//! the primary's commit/abort choice (commit with the next timestamp iff
//! every replica lock was acquired, mirroring `check_commit` in
//! `server.rs`), and `Finish` applies [`ObjectStore::commit`] or
//! [`ObjectStore::abort`] on replica `r`. All interleavings of the
//! per-put sequences (which preserve each put's internal order) are run
//! against real [`ObjectStore`] replicas, and every schedule must uphold:
//!
//! 1. **no stranded locks / no deadlock** — at quiescence no replica
//!    holds a pending lock, the persistent log is drained (every +L got
//!    its -L), and `in_doubt()` is empty;
//! 2. **no lost update** — every replica's committed value for the key
//!    is exactly the value of the committed put with the greatest
//!    timestamp (or absent when every put aborted);
//! 3. **replica convergence** — all replicas hold byte-identical
//!    committed state;
//! 4. **progress** — a put that acquired every replica lock commits.
//!
//! The two-put × three-replica and three-put × one-replica spaces are
//! covered exhaustively (3432 + 1680 schedules); the three-put ×
//! two-replica space (756 756 schedules) is covered by a deterministic
//! 10 000-schedule prefix to keep the suite fast.

use nice_kv::{ObjectStore, OpId, StorageCfg, Timestamp, Value};
use nice_sim::{Ipv4, Time};

const KEY: &str = "obj";
const PRIMARY: Ipv4 = Ipv4::new(10, 0, 0, 1);

/// The storage-visible steps of one put, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// `lock()` on replica `r` (data arrived, +L forced to the log).
    Lock(usize),
    /// The primary's commit/abort decision over its collected acks.
    Decide,
    /// `commit()`/`abort()` on replica `r` (timestamp or abort arrived).
    Finish(usize),
}

fn step_of(idx: usize, replicas: usize) -> Step {
    if idx < replicas {
        Step::Lock(idx)
    } else if idx == replicas {
        Step::Decide
    } else {
        Step::Finish(idx - replicas - 1)
    }
}

fn op_id(o: usize) -> OpId {
    OpId {
        client: Ipv4::new(10, 0, 1, o as u8 + 1),
        client_seq: 1,
    }
}

fn value_of(o: usize) -> Value {
    Value::from_bytes(vec![b'A' + o as u8; 8])
}

/// Everything observable after one schedule has run to quiescence.
struct Outcome {
    /// Committed timestamp per put (`None` = aborted).
    committed: Vec<Option<Timestamp>>,
    /// Final committed `(bytes, ts)` of the key per replica.
    finals: Vec<Option<(Vec<u8>, Timestamp)>>,
    /// Replicas with a pending lock, a log entry, or an in-doubt put left.
    stranded: bool,
}

/// Run one schedule. `sched[i]` names the put that takes its next step
/// at position `i`; each put's own steps execute in program order.
fn run_schedule(ops: usize, replicas: usize, sched: &[usize]) -> Outcome {
    let mut stores: Vec<ObjectStore> = (0..replicas)
        .map(|_| ObjectStore::new(StorageCfg::default()))
        .collect();
    let mut cursor = vec![0usize; ops];
    let mut locked = vec![vec![false; replicas]; ops];
    // None = undecided; Some(Some(ts)) = commit; Some(None) = abort.
    let mut decision: Vec<Option<Option<Timestamp>>> = vec![None; ops];
    let mut primary_seq = 0u64;

    for &o in sched {
        match step_of(cursor[o], replicas) {
            Step::Lock(r) => {
                locked[o][r] = stores[r].lock(KEY, op_id(o), value_of(o), Time::ZERO);
            }
            Step::Decide => {
                // Mirrors `check_commit`: commit only once every replica
                // holds the lock (all PutAck1s in), else the deadline
                // fires and the put aborts.
                if locked[o].iter().all(|&l| l) {
                    primary_seq += 1;
                    decision[o] = Some(Some(Timestamp {
                        primary_seq,
                        primary: PRIMARY,
                        client_seq: op_id(o).client_seq,
                        client: op_id(o).client,
                    }));
                } else {
                    decision[o] = Some(None);
                }
            }
            Step::Finish(r) => match decision[o] {
                Some(Some(ts)) => {
                    assert!(
                        stores[r].commit(KEY, op_id(o), ts),
                        "replica {r} rejected the commit of a fully locked put {o}"
                    );
                }
                Some(None) => {
                    if locked[o][r] {
                        stores[r].abort(KEY, op_id(o));
                    }
                }
                None => unreachable!("schedule violated program order"),
            },
        }
        cursor[o] += 1;
    }

    let committed = decision.iter().map(|d| d.flatten()).collect();
    let finals = stores
        .iter()
        .map(|s| s.get(KEY).map(|c| (c.value.bytes.to_vec(), c.ts)))
        .collect();
    let stranded = stores
        .iter()
        .any(|s| s.locked(KEY) || !s.log().is_empty() || !s.in_doubt().is_empty());
    Outcome {
        committed,
        finals,
        stranded,
    }
}

fn check_schedule(ops: usize, replicas: usize, sched: &[usize]) -> Outcome {
    let out = run_schedule(ops, replicas, sched);

    // 1. No stranded locks, log entries, or in-doubt puts.
    assert!(
        !out.stranded,
        "stranded lock/log state after schedule {sched:?}"
    );

    // 2 + 3. Every replica converged on the max-timestamp committed put.
    let expect = out
        .committed
        .iter()
        .enumerate()
        .filter_map(|(o, ts)| ts.map(|ts| (ts, o)))
        .max()
        .map(|(ts, o)| (value_of(o).bytes.to_vec(), ts));
    for (r, fin) in out.finals.iter().enumerate() {
        assert_eq!(
            *fin, expect,
            "replica {r} diverged from the winning put after schedule {sched:?}"
        );
    }
    out
}

/// Enumerate distinct interleavings of `ops` sequences of `steps` steps
/// each, in lexicographic order, invoking `f` on every complete schedule
/// until `cap` schedules have been visited. Returns how many ran.
fn enumerate(ops: usize, steps: usize, cap: usize, f: &mut impl FnMut(&[usize])) -> usize {
    fn rec(
        remaining: &mut [usize],
        prefix: &mut Vec<usize>,
        total: usize,
        cap: usize,
        count: &mut usize,
        f: &mut impl FnMut(&[usize]),
    ) {
        if *count >= cap {
            return;
        }
        if prefix.len() == total {
            f(prefix);
            *count += 1;
            return;
        }
        for o in 0..remaining.len() {
            if remaining[o] == 0 {
                continue;
            }
            remaining[o] -= 1;
            prefix.push(o);
            rec(remaining, prefix, total, cap, count, f);
            prefix.pop();
            remaining[o] += 1;
        }
    }
    let mut remaining = vec![steps; ops];
    let mut prefix = Vec::with_capacity(ops * steps);
    let mut count = 0;
    rec(&mut remaining, &mut prefix, ops * steps, cap, &mut count, f);
    count
}

/// Drive every schedule of a configuration and keep cross-schedule tallies.
struct Tally {
    schedules: usize,
    commits: usize,
    aborts: usize,
    all_committed: usize,
    none_committed: usize,
}

fn sweep(ops: usize, replicas: usize, cap: usize) -> Tally {
    let steps = 2 * replicas + 1;
    let mut t = Tally {
        schedules: 0,
        commits: 0,
        aborts: 0,
        all_committed: 0,
        none_committed: 0,
    };
    t.schedules = enumerate(ops, steps, cap, &mut |sched| {
        let out = check_schedule(ops, replicas, sched);
        let c = out.committed.iter().filter(|d| d.is_some()).count();
        t.commits += c;
        t.aborts += ops - c;
        if c == ops {
            t.all_committed += 1;
        }
        if c == 0 {
            t.none_committed += 1;
        }
    });
    t
}

#[test]
fn two_puts_three_replicas_exhaustive() {
    // C(14, 7) distinct interleavings of two 7-step puts.
    let t = sweep(2, 3, usize::MAX);
    assert_eq!(t.schedules, 3432);
    // The serial schedules must let both puts commit...
    assert!(t.all_committed > 0, "no schedule committed both puts");
    // ...while overlapping lock phases must produce aborts somewhere.
    assert!(t.aborts > 0, "no schedule aborted a put");
}

#[test]
fn three_puts_one_replica_exhaustive() {
    // 9! / (3!)^3 distinct interleavings of three 3-step puts.
    let t = sweep(3, 1, usize::MAX);
    assert_eq!(t.schedules, 1680);
    assert!(t.all_committed > 0);
    assert!(t.aborts > 0);
}

#[test]
fn three_puts_two_replicas_prefix() {
    // The full space is 15!/(5!)^3 = 756 756 schedules; a deterministic
    // lexicographic prefix keeps the runtime bounded while still mixing
    // all three puts (the prefix varies the tails of puts 1 and 2 first).
    let t = sweep(3, 2, 10_000);
    assert_eq!(t.schedules, 10_000);
    assert!(t.commits > 0);
}

#[test]
fn serial_schedules_always_commit_in_order() {
    // Fully serial executions are the baseline the paper's protocol must
    // preserve: every put commits and the last writer wins.
    for ops in [2usize, 3] {
        let replicas = 3;
        let steps = 2 * replicas + 1;
        let mut sched = Vec::new();
        for o in 0..ops {
            sched.extend(std::iter::repeat_n(o, steps));
        }
        let out = check_schedule(ops, replicas, &sched);
        assert!(out.committed.iter().all(std::option::Option::is_some));
        for fin in &out.finals {
            let (bytes, _) = fin.as_ref().expect("value committed");
            assert_eq!(*bytes, value_of(ops - 1).bytes.to_vec());
        }
    }
}

//! A tiny, dependency-free, deterministic PRNG.
//!
//! The whole workspace must build and test **offline** — no registry
//! access — so the external `rand` crate is replaced by this in-tree
//! xorshift generator. It is emphatically *not* cryptographic: it exists
//! to drive workload generation and the simulator's seeded per-host
//! randomness, where the only requirements are (a) decent statistical
//! spread and (b) bit-for-bit reproducibility from a `u64` seed on every
//! platform.
//!
//! The generator is xorshift64* (Vigna, "An experimental exploration of
//! Marsaglia's xorshift generators, scrambled"): a 64-bit xorshift state
//! transition whose output is scrambled by an odd multiplicative
//! constant. Seeds are pre-mixed through SplitMix64 so that small,
//! correlated seeds (0, 1, 2, ...) still land in well-separated states.

/// Source of deterministic pseudo-randomness.
///
/// Mirrors the small slice of the `rand` API the workspace actually
/// used: raw `u64`s, unit-interval `f64`s, and half-open integer ranges.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64 {
        // The top 53 bits are the best-scrambled in xorshift64*.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from the half-open range `r` (`r.start < r.end`).
    fn random_range<T: RangeSample>(&mut self, r: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, r)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Integer types that can be drawn uniformly from a `Range`.
pub trait RangeSample: Copy {
    /// A uniform draw from `[r.start, r.end)`; panics if the range is empty.
    fn sample_range<R: Rng>(rng: &mut R, r: core::ops::Range<Self>) -> Self;
}

/// Map 64 random bits onto `0..n` without modulo bias (widening
/// multiply: Lemire's multiply-shift reduction).
fn reduce(bits: u64, n: u64) -> u64 {
    ((u128::from(bits) * u128::from(n)) >> 64) as u64
}

impl RangeSample for u64 {
    fn sample_range<R: Rng>(rng: &mut R, r: core::ops::Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        r.start + reduce(rng.next_u64(), r.end - r.start)
    }
}

impl RangeSample for usize {
    fn sample_range<R: Rng>(rng: &mut R, r: core::ops::Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range");
        r.start + reduce(rng.next_u64(), (r.end - r.start) as u64) as usize
    }
}

impl RangeSample for u32 {
    fn sample_range<R: Rng>(rng: &mut R, r: core::ops::Range<u32>) -> u32 {
        assert!(r.start < r.end, "empty range");
        r.start + reduce(rng.next_u64(), u64::from(r.end - r.start)) as u32
    }
}

/// A seeded xorshift64* generator (16 bytes of state, ~1ns per draw).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShiftRng {
    s: u64,
}

impl XorShiftRng {
    /// A generator deterministically derived from `seed`.
    pub fn seed_from_u64(seed: u64) -> XorShiftRng {
        // SplitMix64 finalizer: decorrelates adjacent seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // xorshift64* requires a non-zero state.
        XorShiftRng {
            s: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }
}

impl Rng for XorShiftRng {
    fn next_u64(&mut self) -> u64 {
        let mut s = self.s;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.s = s;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = XorShiftRng::seed_from_u64(42);
        let mut b = XorShiftRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelated() {
        // Adjacent seeds must not produce adjacent streams.
        let x = XorShiftRng::seed_from_u64(0).next_u64();
        let y = XorShiftRng::seed_from_u64(1).next_u64();
        assert_ne!(x, y);
        assert!(
            (x ^ y).count_ones() > 8,
            "streams too similar: {x:x} vs {y:x}"
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShiftRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = r.random_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor spread: [{lo}, {hi}]");
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut r = XorShiftRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = r.random_range(0usize..10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = r.random_range(5u64..7);
            assert!((5..7).contains(&v));
        }
        assert_eq!(r.random_range(3u32..4), 3);
    }

    #[test]
    fn range_roughly_uniform() {
        let mut r = XorShiftRng::seed_from_u64(11);
        let n = 100_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[r.random_range(0usize..4)] += 1;
        }
        for &c in &counts {
            let frac = f64::from(c) / f64::from(n);
            assert!((0.23..0.27).contains(&frac), "skewed: {counts:?}");
        }
    }
}

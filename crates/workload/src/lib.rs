//! # nice-workload — workload generators for the NICE evaluation
//!
//! Provides the request streams behind every experiment in the paper's §6:
//! fixed-size synthetic put/get streams (Figures 4–10), the 20/80
//! fixed-mix stream of the fault-tolerance timeline (Figure 11), and
//! YCSB-style workloads with zipfian popularity (Figure 12).

#![warn(missing_docs)]

pub mod ops;
pub mod rng;
pub mod ycsb;
pub mod zipf;

pub use ops::{FixedMix, Op, OpKind};
pub use rng::{Rng, XorShiftRng};
pub use ycsb::{KeyDist, Workload, WorkloadRun};
pub use zipf::Zipf;

//! Operation primitives shared by synthetic and YCSB drivers.

/// The two operations of a key-value store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read a key.
    Get,
    /// Write (insert or update) a key.
    Put,
}

/// One operation against the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Get or put.
    pub kind: OpKind,
    /// The key.
    pub key: String,
    /// Value size in bytes (puts; 0 for gets).
    pub size: u32,
}

/// A synthetic fixed-mix generator: `put_ratio` of operations are puts
/// over `keys` uniformly-popular keys of `object_size` bytes — the shape
/// of the paper's §6.6 fault-tolerance workload (20/80 put/get, 1 KB).
#[derive(Debug, Clone)]
pub struct FixedMix {
    /// Probability an op is a put.
    pub put_ratio: f64,
    /// Keyspace size.
    pub keys: u64,
    /// Put object size.
    pub object_size: u32,
    /// Prefix for key names.
    pub prefix: &'static str,
}

impl FixedMix {
    /// Draw the next op.
    pub fn next_op<R: crate::rng::Rng>(&self, rng: &mut R) -> Op {
        let put = rng.random_f64() < self.put_ratio;
        let k = rng.random_range(0..self.keys);
        Op {
            kind: if put { OpKind::Put } else { OpKind::Get },
            key: format!("{}{}", self.prefix, k),
            size: if put { self.object_size } else { 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    #[test]
    fn fixed_mix_ratio_holds() {
        let g = FixedMix {
            put_ratio: 0.2,
            keys: 10,
            object_size: 1024,
            prefix: "k",
        };
        let mut rng = XorShiftRng::seed_from_u64(1);
        let puts = (0..10_000)
            .filter(|_| g.next_op(&mut rng).kind == OpKind::Put)
            .count();
        assert!(puts > 1700 && puts < 2300, "puts={puts}");
    }

    #[test]
    fn fixed_mix_keys_in_range() {
        let g = FixedMix {
            put_ratio: 0.5,
            keys: 3,
            object_size: 8,
            prefix: "x",
        };
        let mut rng = XorShiftRng::seed_from_u64(2);
        for _ in 0..100 {
            let op = g.next_op(&mut rng);
            assert!(["x0", "x1", "x2"].contains(&op.key.as_str()));
        }
    }
}

//! YCSB-style workload definitions (Cooper et al., SoCC '10), as used by
//! the paper's §6.7: "We use two workloads: C, the read-only workload, and
//! F, the read-modify-write workload … these two have a zipf popularity
//! distribution. … We use the default YCSB configuration with 1KB
//! objects."

use crate::rng::Rng;

use crate::ops::{Op, OpKind};
use crate::zipf::Zipf;

/// Key popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// YCSB zipfian (theta = 0.99).
    Zipfian,
    /// Uniform over the key space.
    Uniform,
    /// Always the most recently inserted key (YCSB "latest" approximated
    /// as the highest rank).
    Latest,
}

/// A YCSB workload: an operation mix over a keyspace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name ("YCSB-C").
    pub name: &'static str,
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of blind updates.
    pub update: f64,
    /// Fraction of inserts (new keys).
    pub insert: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
    /// Popularity distribution.
    pub dist: KeyDist,
    /// Number of records preloaded.
    pub records: u64,
    /// Object size in bytes (YCSB default: 1 KB).
    pub object_size: u32,
}

impl Workload {
    /// YCSB-A: 50% read / 50% update, zipfian.
    pub fn a(records: u64) -> Workload {
        Workload {
            name: "YCSB-A",
            read: 0.5,
            update: 0.5,
            insert: 0.0,
            rmw: 0.0,
            dist: KeyDist::Zipfian,
            records,
            object_size: 1000,
        }
    }

    /// YCSB-B: 95% read / 5% update, zipfian.
    pub fn b(records: u64) -> Workload {
        Workload {
            name: "YCSB-B",
            read: 0.95,
            update: 0.05,
            insert: 0.0,
            rmw: 0.0,
            dist: KeyDist::Zipfian,
            records,
            object_size: 1000,
        }
    }

    /// YCSB-C: 100% read, zipfian — the paper's read-only workload.
    pub fn c(records: u64) -> Workload {
        Workload {
            name: "YCSB-C",
            read: 1.0,
            update: 0.0,
            insert: 0.0,
            rmw: 0.0,
            dist: KeyDist::Zipfian,
            records,
            object_size: 1000,
        }
    }

    /// YCSB-D: 95% read / 5% insert, latest.
    pub fn d(records: u64) -> Workload {
        Workload {
            name: "YCSB-D",
            read: 0.95,
            update: 0.0,
            insert: 0.05,
            rmw: 0.0,
            dist: KeyDist::Latest,
            records,
            object_size: 1000,
        }
    }

    /// YCSB-E is scan-heavy; key-value stores without range scans (like
    /// NICEKV) typically substitute reads. 95% read / 5% insert, zipfian.
    pub fn e(records: u64) -> Workload {
        Workload {
            name: "YCSB-E",
            read: 0.95,
            update: 0.0,
            insert: 0.05,
            rmw: 0.0,
            dist: KeyDist::Zipfian,
            records,
            object_size: 1000,
        }
    }

    /// YCSB-F: 50% read / 50% read-modify-write, zipfian — the paper's
    /// highest-put-ratio workload ("which generates the highest ratio
    /// (50%) of puts in YCSB").
    pub fn f(records: u64) -> Workload {
        Workload {
            name: "YCSB-F",
            read: 0.5,
            update: 0.0,
            insert: 0.0,
            rmw: 0.5,
            dist: KeyDist::Zipfian,
            records,
            object_size: 1000,
        }
    }

    /// The key name for record `rank` (YCSB's `user<N>` convention).
    pub fn key(&self, rank: u64) -> String {
        format!("user{rank}")
    }

    /// The operations that preload the store (one put per record).
    pub fn load_ops(&self) -> impl Iterator<Item = Op> + '_ {
        (0..self.records).map(|i| Op {
            kind: OpKind::Put,
            key: self.key(i),
            size: self.object_size,
        })
    }
}

/// Streams the run-phase operations of a workload.
pub struct WorkloadRun {
    wl: Workload,
    zipf: Option<Zipf>,
    inserted: u64,
}

impl WorkloadRun {
    /// Start a run over `wl`.
    pub fn new(wl: Workload) -> WorkloadRun {
        let zipf = match wl.dist {
            KeyDist::Zipfian => Some(Zipf::ycsb(wl.records)),
            _ => None,
        };
        WorkloadRun {
            inserted: wl.records,
            wl,
            zipf,
        }
    }

    /// The workload being run.
    pub fn workload(&self) -> &Workload {
        &self.wl
    }

    fn pick_key<R: Rng>(&self, rng: &mut R) -> String {
        match self.wl.dist {
            KeyDist::Zipfian => self
                .wl
                .key(self.zipf.as_ref().expect("zipfian sampler").sample(rng)),
            KeyDist::Uniform => self.wl.key(rng.random_range(0..self.inserted)),
            KeyDist::Latest => self.wl.key(self.inserted.saturating_sub(1)),
        }
    }

    /// Draw the next operation(s). A read-modify-write yields a get
    /// followed by a put of the same key, which is why this returns one
    /// or two ops.
    pub fn next_ops<R: Rng>(&mut self, rng: &mut R) -> Vec<Op> {
        let x = rng.random_f64();
        let w = &self.wl;
        if x < w.read {
            vec![Op {
                kind: OpKind::Get,
                key: self.pick_key(rng),
                size: 0,
            }]
        } else if x < w.read + w.update {
            vec![Op {
                kind: OpKind::Put,
                key: self.pick_key(rng),
                size: w.object_size,
            }]
        } else if x < w.read + w.update + w.rmw {
            let key = self.pick_key(rng);
            vec![
                Op {
                    kind: OpKind::Get,
                    key: key.clone(),
                    size: 0,
                },
                Op {
                    kind: OpKind::Put,
                    key,
                    size: w.object_size,
                },
            ]
        } else {
            // insert
            let key = self.wl.key(self.inserted);
            self.inserted += 1;
            vec![Op {
                kind: OpKind::Put,
                key,
                size: w.object_size,
            }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    fn mix(wl: Workload, n: usize) -> (usize, usize) {
        let mut run = WorkloadRun::new(wl);
        let mut rng = XorShiftRng::seed_from_u64(5);
        let mut gets = 0;
        let mut puts = 0;
        for _ in 0..n {
            for op in run.next_ops(&mut rng) {
                match op.kind {
                    OpKind::Get => gets += 1,
                    OpKind::Put => puts += 1,
                }
            }
        }
        (gets, puts)
    }

    #[test]
    fn c_is_read_only() {
        let (gets, puts) = mix(Workload::c(100), 5000);
        assert_eq!(puts, 0);
        assert_eq!(gets, 5000);
    }

    #[test]
    fn f_has_fifty_percent_puts() {
        // F: half the draws are RMW = get+put, half pure get.
        let (gets, puts) = mix(Workload::f(100), 10_000);
        let put_ratio = puts as f64 / (gets + puts) as f64;
        // paper: "the highest ratio (50%) of puts" — RMW contributes a get
        // too, so op-level ratio is ~1/3; request-level put/draw is ~50%.
        assert!(puts > 4500 && puts < 5500, "puts={puts}");
        assert!(put_ratio > 0.25 && put_ratio < 0.40, "{put_ratio}");
    }

    #[test]
    fn a_is_half_updates() {
        let (gets, puts) = mix(Workload::a(100), 10_000);
        assert!(
            (gets as i64 - puts as i64).unsigned_abs() < 600,
            "gets={gets} puts={puts}"
        );
    }

    #[test]
    fn d_inserts_extend_keyspace() {
        let wl = Workload::d(10);
        let mut run = WorkloadRun::new(wl);
        let mut rng = XorShiftRng::seed_from_u64(6);
        let mut newest = vec![];
        for _ in 0..2000 {
            for op in run.next_ops(&mut rng) {
                if op.kind == OpKind::Put {
                    newest.push(op.key);
                }
            }
        }
        assert!(!newest.is_empty());
        // inserted keys are fresh (user10, user11, ...)
        assert!(newest.iter().any(|k| k == "user10"));
    }

    #[test]
    fn load_phase_covers_all_records() {
        let wl = Workload::c(42);
        let ops: Vec<Op> = wl.load_ops().collect();
        assert_eq!(ops.len(), 42);
        assert!(ops.iter().all(|o| o.kind == OpKind::Put && o.size == 1000));
        assert_eq!(ops[41].key, "user41");
    }

    #[test]
    fn rmw_ops_target_same_key() {
        let mut run = WorkloadRun::new(Workload::f(50));
        let mut rng = XorShiftRng::seed_from_u64(7);
        for _ in 0..1000 {
            let ops = run.next_ops(&mut rng);
            if ops.len() == 2 {
                assert_eq!(ops[0].key, ops[1].key);
                assert_eq!(ops[0].kind, OpKind::Get);
                assert_eq!(ops[1].kind, OpKind::Put);
            }
        }
    }
}

//! Zipfian popularity sampling, following the classic YCSB
//! `ZipfianGenerator` construction (Gray et al.'s algorithm): draws item
//! ranks in `0..n` with probability proportional to `1 / rank^theta`.
//!
//! YCSB's default `theta = 0.99` is what the paper's §6.7 workloads use
//! ("these two have a zipf popularity distribution").

use crate::rng::Rng;

/// Zipfian sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_two: f64,
}

impl Zipf {
    /// A sampler over `n` items with skew `theta` (0 < theta < 1).
    ///
    /// # Panics
    /// If `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "zipf needs at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta_two = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_two / zeta_n);
        Zipf {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta_two,
        }
    }

    /// YCSB's default skew.
    pub fn ycsb(n: u64) -> Zipf {
        Zipf::new(n, 0.99)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; fine for the n <= ~1e6 used in benchmarks.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw a rank in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u = rng.random_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }

    /// The probability mass of rank 0 (diagnostics/tests).
    pub fn head_mass(&self) -> f64 {
        1.0 / self.zeta_n
    }

    /// Internal zeta(2) (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta_two
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::ycsb(1000);
        let mut rng = XorShiftRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::ycsb(1000);
        let mut rng = XorShiftRng::seed_from_u64(2);
        let mut head = 0u32;
        let mut tail = 0u32;
        let trials = 100_000;
        for _ in 0..trials {
            let r = z.sample(&mut rng);
            if r < 10 {
                head += 1;
            } else if r >= 500 {
                tail += 1;
            }
        }
        // With theta=.99 over 1000 items, the top-10 get ~35% of mass,
        // the bottom 500 well under 15%.
        assert!(head > trials / 5, "head={head}");
        assert!(tail < trials * 15 / 100, "tail={tail}");
        assert!(head > 3 * tail, "head={head} tail={tail}");
    }

    #[test]
    fn frequency_matches_theory_for_rank0() {
        let z = Zipf::ycsb(100);
        let mut rng = XorShiftRng::seed_from_u64(3);
        let trials = 200_000;
        let hits = (0..trials).filter(|_| z.sample(&mut rng) == 0).count();
        let p = hits as f64 / trials as f64;
        let expect = z.head_mass();
        assert!((p - expect).abs() < 0.02, "p={p} expect={expect}");
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 0.99);
        let mut rng = XorShiftRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::ycsb(500);
        let a: Vec<u64> = {
            let mut rng = XorShiftRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = XorShiftRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

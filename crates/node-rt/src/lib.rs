//! node-rt — the host runtime boundary for NICE/NOOB node applications.
//!
//! Node logic (transport state machines, storage servers, gateways,
//! clients) is written once against two small traits:
//!
//! - [`NodeIo`]: what a node may ask of its host — clock, packet send,
//!   timers, deferred CPU work, a seeded RNG.
//! - [`NodeApp`]: the callbacks a host drives — start, packet, timer,
//!   crash, restart.
//!
//! Two hosts implement the contract:
//!
//! ```text
//!   nicekv / noob / nice-transport        protocol logic (NodeApp)
//!                  │
//!                  ▼  NodeIo
//!   ┌──────────────┴───────────────┐
//!   nice-sim Ctx                node_rt::runtime::UdpRuntime
//!   (deterministic discrete-     (OS threads + real UdpSockets on
//!    event virtual time)          loopback, wall-clock timers)
//! ```
//!
//! The packet and time vocabulary ([`Packet`], [`Ipv4`], [`Time`], …)
//! lives here so protocol crates depend only on this crate; `nice-sim`
//! re-exports the same types for its own layers (switches, links, SDN).

#![warn(missing_docs)]

pub mod codec;
mod io;
pub mod nemesis;
pub mod net;
pub mod runtime;
pub mod time;

pub use codec::{ByteReader, ByteWriter, WireCodec};
pub use io::{NodeApp, NodeIo};
pub use nemesis::{FaultPlan, FaultStats, NemesisUdp, PartitionWindow, Verdict};
pub use net::{ArpOp, Ipv4, Mac, Packet, Payload, Proto, ARP_WIRE_SIZE, HDR_TCP, HDR_UDP, MTU};
pub use nice_workload::{Rng, XorShiftRng};
pub use runtime::{NodeSpec, RuntimeCfg, UdpHostCfg, UdpRuntime};
pub use time::Time;

//! Node-visible time.
//!
//! Time is a monotonically non-decreasing count of nanoseconds since the
//! start of the run. All latencies, bandwidth-derived serialization
//! delays, and timer deadlines are expressed as [`Time`] values. The
//! simulator's event loop advances this clock to each popped event's
//! timestamp; the real UDP runtime derives it from a wall-clock epoch.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in run time (or a span, when used as an offset), in
/// nanoseconds.
///
/// `Time` is deliberately a plain newtype over `u64` rather than
/// `std::time::Duration`: simulations routinely multiply/divide times by
/// byte counts and rates, and a transparent integer keeps that arithmetic
/// exact, cheap, and `Ord`-erable inside the event heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// Time zero — the start of every run.
    pub const ZERO: Time = Time(0);
    /// The greatest representable time; used as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Nanoseconds since time zero.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }
    /// Microseconds since time zero (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }
    /// Milliseconds since time zero (truncating).
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Fractional seconds since time zero.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The time it takes to serialize `bytes` onto a link running at
    /// `bits_per_sec`. Rounds up so a nonzero payload always takes
    /// nonzero time.
    #[inline]
    pub fn tx_time(bytes: u64, bits_per_sec: u64) -> Time {
        debug_assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes * 8;
        // ns = bits * 1e9 / bps, rounded up.
        Time((bits * 1_000_000_000).div_ceil(bits_per_sec))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_us(5);
        let b = Time::from_us(3);
        assert_eq!(a + b, Time::from_us(8));
        assert_eq!(a - b, Time::from_us(2));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a * 2, Time::from_us(10));
        assert_eq!(a / 5, Time::from_us(1));
        assert_eq!(a.max(b), a);
        assert_eq!(b.max(a), a);
    }

    #[test]
    fn tx_time_gigabit() {
        // 1400 bytes at 1 Gbps = 11.2 us.
        let t = Time::tx_time(1400, 1_000_000_000);
        assert_eq!(t, Time::from_ns(11_200));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 1 Gbps = 8 ns exactly; 1 byte at 3 Gbps rounds up to 3 ns.
        assert_eq!(Time::tx_time(1, 1_000_000_000), Time::from_ns(8));
        assert_eq!(Time::tx_time(1, 3_000_000_000), Time::from_ns(3));
    }

    #[test]
    fn tx_time_50mbps() {
        // 1 MB at 50 Mbps = 8_388_608 bits / 50e6 bps = 167.77 ms.
        let t = Time::tx_time(1 << 20, 50_000_000);
        assert!(t > Time::from_ms(167) && t < Time::from_ms(168), "{t}");
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Time::from_ns(5)), "5ns");
        assert_eq!(format!("{}", Time::from_us(5)), "5.000us");
        assert_eq!(format!("{}", Time::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", Time::from_secs(5)), "5.000s");
    }
}

//! Network primitives: addresses, protocols, and packets.
//!
//! Packets carry real IPv4/MAC headers (which the OpenFlow-style switch
//! logic matches and rewrites, exactly as the paper's §3.2 virtual-ring
//! mapping requires) but an *opaque* payload: a reference-counted `dyn Any`
//! that the application-level transports downcast on delivery. This keeps
//! the data plane honest — switches can only see headers — while avoiding
//! byte-level serialization inside the simulator. The real UDP runtime
//! serializes payloads at the host boundary through a
//! [`crate::codec::WireCodec`] instead.

use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// An IPv4 address, stored as a big-endian `u32` so prefix arithmetic is a
/// mask away.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4 = Ipv4(0);
    /// The limited-broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4 = Ipv4(u32::MAX);

    /// Build from dotted-quad octets.
    #[inline]
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    #[inline]
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The network mask for a prefix of `len` bits (`/0` → all-zero mask).
    #[inline]
    pub const fn prefix_mask(len: u8) -> u32 {
        debug_assert!(len <= 32);
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Does this address fall inside `net/len`?
    #[inline]
    pub const fn in_prefix(self, net: Ipv4, len: u8) -> bool {
        let m = Ipv4::prefix_mask(len);
        self.0 & m == net.0 & m
    }

    /// The address with the host bits below `len` cleared.
    #[inline]
    pub const fn network(self, len: u8) -> Ipv4 {
        Ipv4(self.0 & Ipv4::prefix_mask(len))
    }

    /// Offset within the enclosing `len`-bit prefix.
    #[inline]
    pub const fn host_bits(self, len: u8) -> u32 {
        self.0 & !Ipv4::prefix_mask(len)
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// A MAC address, abstracted as a `u64` (only equality, learning, and
/// rewriting matter to the data plane).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mac(pub u64);

impl Mac {
    /// The all-ones broadcast MAC.
    pub const BROADCAST: Mac = Mac(u64::MAX);
    /// The all-zero "unknown" MAC.
    pub const ZERO: Mac = Mac(0);

    /// True if this is the broadcast address.
    #[inline]
    pub const fn is_broadcast(self) -> bool {
        self.0 == u64::MAX
    }
}

impl fmt::Debug for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mac:{:x}", self.0)
    }
}

/// Transport protocol carried by a packet. Matches what OpenFlow can
/// discriminate on (the `ip_proto` field) plus ARP, which the paper's
/// controller handles specially (§5, "Mapping Service").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// User datagrams — client requests and the reliable-multicast data
    /// path (§5: "We use UDP to send client requests").
    Udp,
    /// Reliable streams — replies and inter-node communication
    /// (§5: "TCP for all other communications").
    Tcp,
    /// Address resolution; handled by the host "kernel" and punted to the
    /// SDN controller by the default switch logic.
    Arp,
}

/// Link-layer + IP + transport header overhead, in bytes, charged on every
/// packet in addition to its payload.
pub const HDR_UDP: u32 = 42;
/// Header overhead for TCP segments (larger due to TCP options/acks).
pub const HDR_TCP: u32 = 54;
/// Wire size of an ARP frame.
pub const ARP_WIRE_SIZE: u32 = 64;
/// Maximum transmission unit for payload data, as in the paper (§5:
/// "each less than a single network MTU (1400 bytes)").
pub const MTU: u32 = 1400;

/// Opaque application payload. Cloning is cheap (an `Rc` bump), which is
/// what makes switch-level multicast replication nearly free to simulate.
pub type Payload = Rc<dyn Any>;

/// The ARP payload understood by host kernels and the learning controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// "Who has `target`? Tell `sender`."
    Request {
        /// The IP being resolved.
        target: Ipv4,
    },
    /// "`sender` (src_ip/src_mac of the packet) is at this MAC."
    Reply,
}

/// A packet: real headers, opaque payload.
#[derive(Clone)]
pub struct Packet {
    /// Source IPv4 address.
    pub src: Ipv4,
    /// Destination IPv4 address (possibly a *virtual* ring address that
    /// the switch will rewrite).
    pub dst: Ipv4,
    /// Source MAC.
    pub src_mac: Mac,
    /// Destination MAC (rewritten alongside `dst` by vring rules).
    pub dst_mac: Mac,
    /// Transport protocol.
    pub proto: Proto,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Total wire size in bytes (headers + payload); this is what links
    /// serialize and what the byte counters account.
    pub wire_size: u32,
    /// The opaque application payload.
    pub payload: Payload,
}

impl Packet {
    /// Construct a UDP packet carrying `payload_bytes` of application data.
    pub fn udp(
        src: Ipv4,
        src_mac: Mac,
        dst: Ipv4,
        src_port: u16,
        dst_port: u16,
        payload_bytes: u32,
        payload: Payload,
    ) -> Packet {
        Packet {
            src,
            dst,
            src_mac,
            // The sender does not know the destination MAC behind a virtual
            // address; the switch rewrite (or learning path) fills it in.
            dst_mac: Mac::ZERO,
            proto: Proto::Udp,
            src_port,
            dst_port,
            wire_size: HDR_UDP + payload_bytes,
            payload,
        }
    }

    /// Construct a TCP segment carrying `payload_bytes` of stream data.
    pub fn tcp(
        src: Ipv4,
        src_mac: Mac,
        dst: Ipv4,
        src_port: u16,
        dst_port: u16,
        payload_bytes: u32,
        payload: Payload,
    ) -> Packet {
        Packet {
            src,
            dst,
            src_mac,
            dst_mac: Mac::ZERO,
            proto: Proto::Tcp,
            src_port,
            dst_port,
            wire_size: HDR_TCP + payload_bytes,
            payload,
        }
    }

    /// Construct an ARP request for `target`, broadcast at L2.
    pub fn arp_request(sender_ip: Ipv4, sender_mac: Mac, target: Ipv4) -> Packet {
        Packet {
            src: sender_ip,
            dst: target,
            src_mac: sender_mac,
            dst_mac: Mac::BROADCAST,
            proto: Proto::Arp,
            src_port: 0,
            dst_port: 0,
            wire_size: ARP_WIRE_SIZE,
            payload: Rc::new(ArpOp::Request { target }),
        }
    }

    /// Construct an ARP reply from `sender` to `requester`.
    pub fn arp_reply(
        sender_ip: Ipv4,
        sender_mac: Mac,
        requester_ip: Ipv4,
        requester_mac: Mac,
    ) -> Packet {
        Packet {
            src: sender_ip,
            dst: requester_ip,
            src_mac: sender_mac,
            dst_mac: requester_mac,
            proto: Proto::Arp,
            src_port: 0,
            dst_port: 0,
            wire_size: ARP_WIRE_SIZE,
            payload: Rc::new(ArpOp::Reply),
        }
    }

    /// Downcast the payload to a concrete type, if it is one.
    #[inline]
    pub fn payload_as<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Application payload bytes (wire size minus the header overhead for
    /// this protocol).
    #[inline]
    pub fn payload_bytes(&self) -> u32 {
        let hdr = match self.proto {
            Proto::Udp => HDR_UDP,
            Proto::Tcp => HDR_TCP,
            Proto::Arp => ARP_WIRE_SIZE,
        };
        self.wire_size.saturating_sub(hdr)
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}:{} -> {}:{} ({}B)",
            self.proto, self.src, self.src_port, self.dst, self.dst_port, self.wire_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_octets_roundtrip() {
        let ip = Ipv4::new(10, 10, 1, 7);
        assert_eq!(ip.octets(), [10, 10, 1, 7]);
        assert_eq!(format!("{ip}"), "10.10.1.7");
    }

    #[test]
    fn prefix_membership() {
        let net = Ipv4::new(10, 10, 1, 0);
        assert!(Ipv4::new(10, 10, 1, 200).in_prefix(net, 24));
        assert!(!Ipv4::new(10, 10, 2, 1).in_prefix(net, 24));
        // /0 matches everything.
        assert!(Ipv4::new(1, 2, 3, 4).in_prefix(Ipv4::UNSPECIFIED, 0));
        // /32 is exact match.
        assert!(Ipv4::new(10, 10, 1, 1).in_prefix(Ipv4::new(10, 10, 1, 1), 32));
        assert!(!Ipv4::new(10, 10, 1, 2).in_prefix(Ipv4::new(10, 10, 1, 1), 32));
    }

    #[test]
    fn network_and_host_bits() {
        let ip = Ipv4::new(10, 11, 3, 200);
        assert_eq!(ip.network(16), Ipv4::new(10, 11, 0, 0));
        assert_eq!(ip.host_bits(16), (3 << 8) | 200);
    }

    #[test]
    fn packet_sizes() {
        let p = Packet::udp(
            Ipv4::new(1, 0, 0, 1),
            Mac(1),
            Ipv4::new(1, 0, 0, 2),
            9,
            10,
            100,
            Rc::new(()),
        );
        assert_eq!(p.wire_size, 142);
        assert_eq!(p.payload_bytes(), 100);
        let t = Packet::tcp(
            Ipv4::new(1, 0, 0, 1),
            Mac(1),
            Ipv4::new(1, 0, 0, 2),
            9,
            10,
            0,
            Rc::new(()),
        );
        assert_eq!(t.wire_size, HDR_TCP);
        assert_eq!(t.payload_bytes(), 0);
    }

    #[test]
    fn payload_downcast() {
        let p = Packet::udp(
            Ipv4::UNSPECIFIED,
            Mac(0),
            Ipv4::UNSPECIFIED,
            0,
            0,
            4,
            Rc::new(42u32),
        );
        assert_eq!(p.payload_as::<u32>(), Some(&42));
        assert_eq!(p.payload_as::<u64>(), None);
    }

    #[test]
    fn broadcast_mac() {
        assert!(Mac::BROADCAST.is_broadcast());
        assert!(!Mac(7).is_broadcast());
    }
}

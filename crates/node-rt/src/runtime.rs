//! A real multi-threaded UDP runtime: the second [`NodeIo`] host.
//!
//! Every node becomes an OS thread owning one `std::net::UdpSocket`
//! bound on loopback. The thread runs a recv-or-timer event loop:
//! `recv_timeout`-style blocking reads (via `set_read_timeout`) bounded
//! by the earliest deadline in a per-node timer heap. Packets are framed
//! through the cluster's [`WireCodec`] on send and reconstructed on
//! receive, so the node apps execute the same state machines they run
//! under the simulator — over actual sockets.
//!
//! Scope (DESIGN.md § Runtimes): this host serves NOOB's gateway routing
//! and NICE's *direct* (non-SDN) routing. Virtual addresses are resolved
//! sender-side from a static route table ([`RuntimeBuilder::alias`] for
//! unicast vnode subgroups, [`RuntimeBuilder::group`] for multicast
//! fan-out); the in-switch anycast/failover path needs a programmable
//! switch and stays sim-only.

use std::collections::{BTreeMap, BinaryHeap};
use std::net::{SocketAddr, UdpSocket};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nice_workload::XorShiftRng;

use crate::codec::{decode_frame, encode_frame, WireCodec};
use crate::io::{NodeApp, NodeIo};
use crate::net::{Ipv4, Mac, Packet};
use crate::time::Time;

/// How long a node blocks in `recv` when it has nothing else to do.
/// Bounds control-channel latency (kills, [`UdpRuntime::with`] calls).
const IDLE_WAIT: Duration = Duration::from_millis(5);
/// Receive buffer size: comfortably above any framed chunk (chunks are
/// MTU-bounded on the logical wire; the frame carries the full encoded
/// message, which stays far below this for the supported protocols).
const RECV_BUF: usize = 64 * 1024;

/// Builds an app inside its node thread (apps hold `Rc` payloads and are
/// not `Send`; the factory is).
type AppFactory = Box<dyn FnOnce() -> Box<dyn NodeApp> + Send>;

/// A closure shipped into a node thread by [`UdpRuntime::with`].
type AppVisit = Box<dyn FnOnce(&mut dyn NodeApp) + Send>;

enum Ctl {
    /// Run a closure against the hosted app (state extraction).
    Run(AppVisit),
    /// Crash the node: `on_crash`, then stop serving.
    Crash,
    /// Stop the thread without crashing the app.
    Stop,
}

/// Sender-side route tables: every thread shares one immutable copy.
struct Routes {
    unicast: BTreeMap<Ipv4, SocketAddr>,
    groups: BTreeMap<Ipv4, Vec<SocketAddr>>,
}

/// Declarative cluster description; [`RuntimeBuilder::spawn`] boots it.
pub struct RuntimeBuilder {
    seed: u64,
    codec: Arc<dyn WireCodec>,
    nodes: Vec<(Ipv4, AppFactory)>,
    aliases: Vec<(Ipv4, Ipv4)>,
    groups: Vec<(Ipv4, Vec<Ipv4>)>,
}

impl RuntimeBuilder {
    /// A cluster using `codec` for the wire, deterministically seeded
    /// per node from `seed`.
    pub fn new(seed: u64, codec: Arc<dyn WireCodec>) -> RuntimeBuilder {
        RuntimeBuilder {
            seed,
            codec,
            nodes: Vec::new(),
            aliases: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Add a node with logical address `ip`; `factory` builds its app
    /// inside the node thread.
    pub fn node(
        &mut self,
        ip: Ipv4,
        factory: impl FnOnce() -> Box<dyn NodeApp> + Send + 'static,
    ) -> &mut RuntimeBuilder {
        self.nodes.push((ip, Box::new(factory)));
        self
    }

    /// Route the extra address `addr` (e.g. a unicast vnode subgroup
    /// address) to `node` — the real-runtime stand-in for a switch
    /// rewrite rule.
    pub fn alias(&mut self, addr: Ipv4, node: Ipv4) -> &mut RuntimeBuilder {
        self.aliases.push((addr, node));
        self
    }

    /// Register a multicast group: a packet sent to `addr` is fanned out
    /// to every member (sender-side replication, standing in for
    /// in-switch multicast).
    pub fn group(&mut self, addr: Ipv4, members: Vec<Ipv4>) -> &mut RuntimeBuilder {
        self.groups.push((addr, members));
        self
    }

    /// Bind every socket, build the route table, and start one event
    /// loop thread per node. Apps receive `on_start` inside their
    /// threads before the first packet.
    ///
    /// # Panics
    /// If a loopback socket cannot be bound or an alias/group references
    /// an unknown node.
    pub fn spawn(self) -> UdpRuntime {
        let epoch = Instant::now();
        let mut bound: Vec<(Ipv4, UdpSocket, AppFactory)> = Vec::new();
        let mut unicast: BTreeMap<Ipv4, SocketAddr> = BTreeMap::new();
        for (ip, factory) in self.nodes {
            let socket = UdpSocket::bind("127.0.0.1:0").expect("bind loopback UDP socket");
            let addr = socket.local_addr().expect("bound socket has an address");
            unicast.insert(ip, addr);
            bound.push((ip, socket, factory));
        }
        for (alias, node) in self.aliases {
            let addr = *unicast.get(&node).expect("alias target must be a node");
            unicast.insert(alias, addr);
        }
        let mut groups: BTreeMap<Ipv4, Vec<SocketAddr>> = BTreeMap::new();
        for (addr, members) in self.groups {
            let fan: Vec<SocketAddr> = members
                .iter()
                .map(|m| *unicast.get(m).expect("group member must be a node"))
                .collect();
            groups.insert(addr, fan);
        }
        let routes = Arc::new(Routes { unicast, groups });

        let mut nodes = BTreeMap::new();
        for (i, (ip, socket, factory)) in bound.into_iter().enumerate() {
            let (ctl_tx, ctl_rx) = mpsc::channel();
            let io = HostIo {
                ip,
                mac: Mac(0x1000 + i as u64),
                socket,
                routes: Arc::clone(&routes),
                codec: Arc::clone(&self.codec),
                epoch,
                rng: XorShiftRng::seed_from_u64(node_seed(self.seed, ip)),
                timers: BinaryHeap::new(),
                timer_seq: 0,
            };
            let handle = std::thread::Builder::new()
                .name(format!("node-{ip}"))
                .spawn(move || run_node(io, factory(), &ctl_rx))
                .expect("spawn node thread");
            nodes.insert(
                ip,
                NodeHandle {
                    ctl: ctl_tx,
                    join: Some(handle),
                },
            );
        }
        UdpRuntime { nodes }
    }
}

/// Per-node RNG seeding: same construction as the simulator's per-host
/// stream split, keyed by address instead of host id.
fn node_seed(seed: u64, ip: Ipv4) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(ip.0) + 1)
}

struct NodeHandle {
    ctl: mpsc::Sender<Ctl>,
    join: Option<JoinHandle<()>>,
}

/// A running loopback cluster: one thread + socket per node.
pub struct UdpRuntime {
    nodes: BTreeMap<Ipv4, NodeHandle>,
}

impl UdpRuntime {
    /// The logical addresses of all nodes ever spawned.
    pub fn node_addrs(&self) -> Vec<Ipv4> {
        self.nodes.keys().copied().collect()
    }

    /// Run `f` against the app hosted at `ip`, inside its own thread,
    /// and return the result. This is how harnesses extract state
    /// (records, histories) from live nodes.
    ///
    /// # Panics
    /// If the node was killed or never existed.
    pub fn with<R: Send + 'static>(
        &self,
        ip: Ipv4,
        f: impl FnOnce(&mut dyn NodeApp) -> R + Send + 'static,
    ) -> R {
        let node = self.nodes.get(&ip).expect("with: unknown node");
        let (tx, rx) = mpsc::channel();
        node.ctl
            .send(Ctl::Run(Box::new(move |app| {
                let _ = tx.send(f(app));
            })))
            .expect("with: node is not running");
        rx.recv().expect("with: node died mid-call")
    }

    /// Crash the node at `ip`: its app sees `on_crash`, its thread exits,
    /// and its socket closes (in-flight datagrams to it are lost — real
    /// packet loss, not simulated).
    pub fn kill(&mut self, ip: Ipv4) {
        if let Some(node) = self.nodes.get_mut(&ip) {
            let _ = node.ctl.send(Ctl::Crash);
            if let Some(handle) = node.join.take() {
                let _ = handle.join();
            }
        }
    }

    /// Stop every remaining node thread and join them.
    pub fn shutdown(&mut self) {
        for node in self.nodes.values() {
            let _ = node.ctl.send(Ctl::Stop);
        }
        for node in self.nodes.values_mut() {
            if let Some(handle) = node.join.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for UdpRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-thread [`NodeIo`] host: wall-clock time, a real socket, and a
/// deadline heap for timers.
struct HostIo {
    ip: Ipv4,
    mac: Mac,
    socket: UdpSocket,
    routes: Arc<Routes>,
    codec: Arc<dyn WireCodec>,
    epoch: Instant,
    rng: XorShiftRng,
    /// Min-heap of `(deadline ns, arm order, token)`; arm order keeps
    /// same-deadline timers FIFO.
    timers: BinaryHeap<std::cmp::Reverse<(u64, u64, u64)>>,
    timer_seq: u64,
}

impl HostIo {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Pop every timer whose deadline has passed.
    fn due_timers(&mut self) -> Vec<u64> {
        let now = self.now_ns();
        let mut due = Vec::new();
        while let Some(std::cmp::Reverse((deadline, _, token))) = self.timers.peek().copied() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            due.push(token);
        }
        due
    }

    /// How long the socket may block before the next timer is due.
    fn wait_budget(&self) -> Duration {
        match self.timers.peek() {
            Some(std::cmp::Reverse((deadline, _, _))) => {
                let now = self.now_ns();
                let ns = deadline.saturating_sub(now).clamp(1_000, 5_000_000);
                Duration::from_nanos(ns)
            }
            None => IDLE_WAIT,
        }
    }
}

impl NodeIo for HostIo {
    fn now(&self) -> Time {
        Time(self.now_ns())
    }

    fn ip(&self) -> Ipv4 {
        self.ip
    }

    fn mac(&self) -> Mac {
        self.mac
    }

    fn send(&mut self, pkt: Packet) {
        let Some(frame) = encode_frame(&pkt, self.codec.as_ref()) else {
            return; // payload type not wire-encodable: drop, like a NIC with no route
        };
        if let Some(addr) = self.routes.unicast.get(&pkt.dst) {
            let _ = self.socket.send_to(&frame, addr);
        } else if let Some(members) = self.routes.groups.get(&pkt.dst) {
            // Sender-side fan-out stands in for in-switch multicast.
            for addr in members {
                let _ = self.socket.send_to(&frame, addr);
            }
        }
        // Unroutable destinations drop silently: real UDP.
    }

    fn set_timer(&mut self, delay: Time, token: u64) {
        let deadline = self.now_ns().saturating_add(delay.as_ns());
        self.timer_seq += 1;
        self.timers
            .push(std::cmp::Reverse((deadline, self.timer_seq, token)));
    }

    fn cpu_work(&mut self, _amount: Time) {
        // Real CPUs charge themselves.
    }

    fn cpu_defer(&mut self, amount: Time, token: u64) {
        // Deferred completions become plain timers: the real CPU does the
        // work when the callback runs; the deadline models the queueing.
        self.set_timer(amount, token);
    }

    fn rng(&mut self) -> &mut XorShiftRng {
        &mut self.rng
    }
}

/// One node's event loop: control messages, due timers, then a bounded
/// blocking receive.
fn run_node(mut io: HostIo, mut app: Box<dyn NodeApp>, ctl: &mpsc::Receiver<Ctl>) {
    let mut buf = vec![0u8; RECV_BUF];
    app.on_start(&mut io);
    loop {
        loop {
            match ctl.try_recv() {
                Ok(Ctl::Run(f)) => f(app.as_mut()),
                Ok(Ctl::Crash) => {
                    app.on_crash();
                    return;
                }
                Ok(Ctl::Stop) => return,
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => return,
            }
        }
        for token in io.due_timers() {
            app.on_timer(token, &mut io);
        }
        let _ = io.socket.set_read_timeout(Some(io.wait_budget()));
        match io.socket.recv_from(&mut buf) {
            Ok((n, _peer)) => {
                let frame = buf.get(..n).unwrap_or_default();
                if let Some(pkt) = decode_frame(frame, io.codec.as_ref()) {
                    app.on_packet(pkt, &mut io);
                }
            }
            Err(_) => {
                // Timeout or transient error: fall through to the next
                // control/timer sweep.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::any::Any;
    use std::rc::Rc;
    use std::sync::Arc;

    use super::*;
    use crate::net::Payload;

    /// Payloads are plain u64s; the codec is the identity framing.
    struct U64Codec;
    impl WireCodec for U64Codec {
        fn encode(&self, payload: &dyn Any) -> Option<Vec<u8>> {
            payload
                .downcast_ref::<u64>()
                .map(|v| v.to_be_bytes().into())
        }
        fn decode(&self, bytes: &[u8]) -> Option<Payload> {
            let arr: [u8; 8] = bytes.try_into().ok()?;
            Some(Rc::new(u64::from_be_bytes(arr)))
        }
    }

    /// Echoes every payload back to the sender, +1.
    struct Echo;
    impl NodeApp for Echo {
        fn on_packet(&mut self, pkt: Packet, io: &mut dyn NodeIo) {
            let Some(&v) = pkt.payload_as::<u64>() else {
                return;
            };
            let me = io.ip();
            let mac = io.mac();
            io.send(Packet::udp(
                me,
                mac,
                pkt.src,
                pkt.dst_port,
                pkt.src_port,
                8,
                Rc::new(v + 1),
            ));
        }
    }

    /// Sends `0` to the echo node on start, collects replies.
    struct Pinger {
        peer: Ipv4,
        got: Vec<u64>,
    }
    impl NodeApp for Pinger {
        fn on_start(&mut self, io: &mut dyn NodeIo) {
            let me = io.ip();
            let mac = io.mac();
            io.send(Packet::udp(me, mac, self.peer, 1, 1, 8, Rc::new(0u64)));
        }
        fn on_packet(&mut self, pkt: Packet, _io: &mut dyn NodeIo) {
            if let Some(&v) = pkt.payload_as::<u64>() {
                self.got.push(v);
            }
        }
    }

    /// Counts timer firings.
    struct Ticker {
        fired: Vec<u64>,
    }
    impl NodeApp for Ticker {
        fn on_start(&mut self, io: &mut dyn NodeIo) {
            io.set_timer(Time::from_ms(1), 7);
            io.cpu_defer(Time::from_ms(2), 9);
        }
        fn on_timer(&mut self, token: u64, _io: &mut dyn NodeIo) {
            self.fired.push(token);
        }
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(start.elapsed() < Duration::from_secs(5), "timed out");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn packets_flow_between_node_threads() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        let mut rb = RuntimeBuilder::new(1, Arc::new(U64Codec));
        rb.node(a, || Box::new(Echo));
        rb.node(b, move || {
            Box::new(Pinger {
                peer: a,
                got: vec![],
            })
        });
        let rt = rb.spawn();
        wait_until(|| {
            rt.with(b, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Pinger>()
                    .is_some_and(|p| !p.got.is_empty())
            })
        });
        let got = rt.with(b, |app| {
            let any: &mut dyn Any = app;
            any.downcast_mut::<Pinger>().map(|p| p.got.clone())
        });
        assert_eq!(got, Some(vec![1]), "echo added one");
    }

    #[test]
    fn group_addresses_fan_out() {
        let members = [Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2)];
        let group = Ipv4::new(10, 11, 0, 1);
        let sender = Ipv4::new(10, 0, 1, 1);
        struct Collect {
            got: Vec<u64>,
        }
        impl NodeApp for Collect {
            fn on_packet(&mut self, pkt: Packet, _io: &mut dyn NodeIo) {
                if let Some(&v) = pkt.payload_as::<u64>() {
                    self.got.push(v);
                }
            }
        }
        struct SendOnce {
            group: Ipv4,
        }
        impl NodeApp for SendOnce {
            fn on_start(&mut self, io: &mut dyn NodeIo) {
                let me = io.ip();
                let mac = io.mac();
                io.send(Packet::udp(me, mac, self.group, 1, 1, 8, Rc::new(5u64)));
            }
        }
        let mut rb = RuntimeBuilder::new(2, Arc::new(U64Codec));
        for m in members {
            rb.node(m, || Box::new(Collect { got: vec![] }));
        }
        rb.node(sender, move || Box::new(SendOnce { group }));
        rb.group(group, members.to_vec());
        let rt = rb.spawn();
        for m in members {
            wait_until(|| {
                rt.with(m, |app| {
                    let any: &mut dyn Any = app;
                    any.downcast_mut::<Collect>()
                        .is_some_and(|c| !c.got.is_empty())
                })
            });
        }
    }

    #[test]
    fn timers_and_deferred_work_fire_in_order() {
        let a = Ipv4::new(10, 0, 0, 1);
        let mut rb = RuntimeBuilder::new(3, Arc::new(U64Codec));
        rb.node(a, || Box::new(Ticker { fired: vec![] }));
        let rt = rb.spawn();
        wait_until(|| {
            rt.with(a, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Ticker>()
                    .is_some_and(|t| t.fired.len() == 2)
            })
        });
        let fired = rt.with(a, |app| {
            let any: &mut dyn Any = app;
            any.downcast_mut::<Ticker>().map(|t| t.fired.clone())
        });
        assert_eq!(fired, Some(vec![7, 9]), "earlier deadline first");
    }

    #[test]
    fn killed_nodes_stop_answering() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        let mut rb = RuntimeBuilder::new(4, Arc::new(U64Codec));
        rb.node(a, || Box::new(Echo));
        rb.node(b, move || {
            Box::new(Pinger {
                peer: a,
                got: vec![],
            })
        });
        let mut rt = rb.spawn();
        wait_until(|| {
            rt.with(b, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Pinger>()
                    .is_some_and(|p| !p.got.is_empty())
            })
        });
        rt.kill(a);
        // Another ping from b must go unanswered now.
        rt.with(b, |_app| ());
        std::thread::sleep(Duration::from_millis(20));
        let got = rt.with(b, |app| {
            let any: &mut dyn Any = app;
            any.downcast_mut::<Pinger>().map(|p| p.got.len())
        });
        assert_eq!(got, Some(1));
    }
}

//! A real multi-threaded UDP runtime: the second [`NodeIo`] host.
//!
//! Every node becomes an OS thread owning one `std::net::UdpSocket`
//! bound on loopback. The thread runs a recv-or-timer event loop:
//! `recv_timeout`-style blocking reads (via `set_read_timeout`) bounded
//! by the earliest deadline in a per-node timer heap. Packets are framed
//! through the cluster's [`WireCodec`] on send and reconstructed on
//! receive, so the node apps execute the same state machines they run
//! under the simulator — over actual sockets.
//!
//! Scope (DESIGN.md § Runtimes): this host serves NOOB's gateway routing
//! and NICE's *direct* (non-SDN) routing. Virtual addresses are resolved
//! sender-side from a static route table ([`RuntimeCfg::aliases`] for
//! unicast vnode subgroups, [`RuntimeCfg::groups`] for multicast
//! fan-out); the in-switch anycast/failover path needs a programmable
//! switch and stays sim-only.
//!
//! Booting is config-driven: describe the host layer with a
//! [`RuntimeCfg`] (+ [`UdpHostCfg`]), list the nodes as [`NodeSpec`]s,
//! and call [`UdpRuntime::spawn`].

use std::collections::{BTreeMap, BinaryHeap};
use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nice_workload::XorShiftRng;

use crate::codec::{decode_frame, encode_frame, WireCodec};
use crate::io::{NodeApp, NodeIo};
use crate::nemesis::{FaultPlan, FaultStats, NemesisUdp};
use crate::net::{Ipv4, Mac, Packet};
use crate::time::Time;

/// How long a node blocks in `recv` when it has nothing else to do.
/// Bounds control-channel latency (kills, [`UdpRuntime::with`] calls).
const IDLE_WAIT: Duration = Duration::from_millis(5);
/// Receive buffer size: comfortably above any framed chunk (chunks are
/// MTU-bounded on the logical wire; the frame carries the full encoded
/// message, which stays far below this for the supported protocols).
const RECV_BUF: usize = 64 * 1024;

/// Builds an app inside its node thread (apps hold `Rc` payloads and are
/// not `Send`; the factory is). `Fn`, not `FnOnce`: a restart rebuilds
/// the app from scratch with the same factory, so volatile state is
/// genuinely lost and only what the app recovers (e.g. from its WAL
/// directory) survives.
type AppFactory = Box<dyn Fn() -> Box<dyn NodeApp> + Send>;

/// A closure shipped into a node thread by [`UdpRuntime::with`].
type AppVisit = Box<dyn FnOnce(&mut dyn NodeApp) + Send>;

enum Ctl {
    /// Run a closure against the hosted app (state extraction).
    Run(AppVisit),
    /// Crash the node: `on_crash`, drop the app (volatile state is
    /// gone), keep the thread and socket alive in a down state.
    Crash,
    /// Rebuild the app from its factory under the same identity
    /// (address, socket, RNG stream). No-op if the node is up.
    Restart,
    /// Stop the thread without crashing the app.
    Stop,
}

/// Sender-side route tables: every thread shares one immutable copy.
/// Group members keep their logical address so the nemesis can judge
/// each fan-out leg as its own `(src, member)` link.
struct Routes {
    unicast: BTreeMap<Ipv4, SocketAddr>,
    groups: BTreeMap<Ipv4, Vec<(Ipv4, SocketAddr)>>,
}

/// Host-layer knobs of the real UDP runtime — the `UdpHostCfg` half of
/// the layered cluster configuration (`ClusterSpec` + host config +
/// system config). The simulator's counterpart is `SimHostCfg`.
#[derive(Clone, Default)]
pub struct UdpHostCfg {
    /// Root directory for durable per-node state. The runtime does not
    /// interpret it; cluster adapters pass it into their app factories
    /// (e.g. a file WAL under `<wal_root>/node-<i>.wal`). `None` =
    /// memory-only nodes.
    pub wal_root: Option<PathBuf>,
    /// Seeded socket-level fault injection applied to every send (loss,
    /// duplication, delay, partitions). `None` = clean loopback.
    pub nemesis: Option<FaultPlan>,
}

/// Host-layer configuration for a threaded UDP cluster;
/// [`UdpRuntime::spawn`] boots it against a list of [`NodeSpec`]s.
pub struct RuntimeCfg {
    /// Determinism seed; each node derives its RNG stream from it.
    pub seed: u64,
    /// Wire codec every node frames packets with.
    pub codec: Arc<dyn WireCodec>,
    /// Host-specific knobs (durable state root, socket nemesis).
    pub host: UdpHostCfg,
    /// Extra unicast routes `(addr, node)` — e.g. a vnode subgroup
    /// address resolved sender-side, the real-runtime stand-in for a
    /// switch rewrite rule.
    pub aliases: Vec<(Ipv4, Ipv4)>,
    /// Multicast groups `(addr, members)`: a packet sent to `addr` fans
    /// out to every member (sender-side replication, standing in for
    /// in-switch multicast).
    pub groups: Vec<(Ipv4, Vec<Ipv4>)>,
}

impl RuntimeCfg {
    /// A cluster using `codec` for the wire, deterministically seeded
    /// per node from `seed`, with a clean default host layer.
    pub fn new(seed: u64, codec: Arc<dyn WireCodec>) -> RuntimeCfg {
        RuntimeCfg {
            seed,
            codec,
            host: UdpHostCfg::default(),
            aliases: Vec::new(),
            groups: Vec::new(),
        }
    }
}

/// One node of a threaded cluster: a logical address plus the factory
/// that builds (and on [`UdpRuntime::restart`], rebuilds) its app
/// inside the node thread.
pub struct NodeSpec {
    ip: Ipv4,
    factory: AppFactory,
}

impl NodeSpec {
    /// A node with logical address `ip` hosting the app `factory`
    /// builds.
    pub fn new(ip: Ipv4, factory: impl Fn() -> Box<dyn NodeApp> + Send + 'static) -> NodeSpec {
        NodeSpec {
            ip,
            factory: Box::new(factory),
        }
    }
}

/// Per-node RNG seeding: same construction as the simulator's per-host
/// stream split, keyed by address instead of host id.
fn node_seed(seed: u64, ip: Ipv4) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(ip.0) + 1)
}

struct NodeHandle {
    ctl: mpsc::Sender<Ctl>,
    join: Option<JoinHandle<()>>,
}

/// A running loopback cluster: one thread + socket per node.
pub struct UdpRuntime {
    nodes: BTreeMap<Ipv4, NodeHandle>,
    stats: Arc<FaultStats>,
}

impl UdpRuntime {
    /// Bind every socket, build the route table, and start one event
    /// loop thread per node. Apps receive `on_start` inside their
    /// threads before the first packet.
    ///
    /// # Panics
    /// If a loopback socket cannot be bound or an alias/group references
    /// an unknown node.
    pub fn spawn(cfg: RuntimeCfg, specs: Vec<NodeSpec>) -> UdpRuntime {
        let epoch = Instant::now();
        let nemesis = cfg.host.nemesis.map(Arc::new);
        let mut bound: Vec<(Ipv4, UdpSocket, AppFactory)> = Vec::new();
        let mut unicast: BTreeMap<Ipv4, SocketAddr> = BTreeMap::new();
        for spec in specs {
            let socket = UdpSocket::bind("127.0.0.1:0").expect("bind loopback UDP socket");
            let addr = socket.local_addr().expect("bound socket has an address");
            unicast.insert(spec.ip, addr);
            bound.push((spec.ip, socket, spec.factory));
        }
        for (alias, node) in cfg.aliases {
            let addr = *unicast.get(&node).expect("alias target must be a node");
            unicast.insert(alias, addr);
        }
        let mut groups: BTreeMap<Ipv4, Vec<(Ipv4, SocketAddr)>> = BTreeMap::new();
        for (addr, members) in cfg.groups {
            let fan: Vec<(Ipv4, SocketAddr)> = members
                .iter()
                .map(|m| (*m, *unicast.get(m).expect("group member must be a node")))
                .collect();
            groups.insert(addr, fan);
        }
        let routes = Arc::new(Routes { unicast, groups });
        let stats = Arc::new(FaultStats::default());

        let mut nodes = BTreeMap::new();
        for (i, (ip, socket, factory)) in bound.into_iter().enumerate() {
            let (ctl_tx, ctl_rx) = mpsc::channel();
            let io = HostIo {
                ip,
                mac: Mac(0x1000 + i as u64),
                socket: NemesisUdp::new(socket, nemesis.clone(), Arc::clone(&stats)),
                routes: Arc::clone(&routes),
                codec: Arc::clone(&cfg.codec),
                epoch,
                rng: XorShiftRng::seed_from_u64(node_seed(cfg.seed, ip)),
                timers: BinaryHeap::new(),
                timer_seq: 0,
            };
            let handle = std::thread::Builder::new()
                .name(format!("node-{ip}"))
                .spawn(move || run_node(io, factory, &ctl_rx))
                .expect("spawn node thread");
            nodes.insert(
                ip,
                NodeHandle {
                    ctl: ctl_tx,
                    join: Some(handle),
                },
            );
        }
        UdpRuntime { nodes, stats }
    }

    /// The logical addresses of all nodes ever spawned.
    pub fn node_addrs(&self) -> Vec<Ipv4> {
        self.nodes.keys().copied().collect()
    }

    /// Run `f` against the app hosted at `ip`, inside its own thread,
    /// and return the result. This is how harnesses extract state
    /// (records, histories) from live nodes.
    ///
    /// # Panics
    /// If the node was killed or never existed.
    pub fn with<R: Send + 'static>(
        &self,
        ip: Ipv4,
        f: impl FnOnce(&mut dyn NodeApp) -> R + Send + 'static,
    ) -> R {
        let node = self.nodes.get(&ip).expect("with: unknown node");
        let (tx, rx) = mpsc::channel();
        node.ctl
            .send(Ctl::Run(Box::new(move |app| {
                let _ = tx.send(f(app));
            })))
            .expect("with: node is not running");
        rx.recv().expect("with: node died mid-call")
    }

    /// Like [`UdpRuntime::with`], but tolerant of crashed or killed
    /// nodes: returns `None` instead of panicking when the node cannot
    /// run the closure. Storm harnesses poll nodes with this while a
    /// nemesis is crashing them.
    pub fn try_with<R: Send + 'static>(
        &self,
        ip: Ipv4,
        f: impl FnOnce(&mut dyn NodeApp) -> R + Send + 'static,
    ) -> Option<R> {
        let node = self.nodes.get(&ip)?;
        let (tx, rx) = mpsc::channel();
        node.ctl
            .send(Ctl::Run(Box::new(move |app| {
                let _ = tx.send(f(app));
            })))
            .ok()?;
        rx.recv().ok()
    }

    /// Kill the node at `ip` for good: its app sees `on_crash`, its
    /// thread exits, and its socket closes (in-flight datagrams to it
    /// are lost — real packet loss, not simulated). Unlike
    /// [`UdpRuntime::crash`] there is no way back.
    pub fn kill(&mut self, ip: Ipv4) {
        if let Some(node) = self.nodes.get_mut(&ip) {
            let _ = node.ctl.send(Ctl::Crash);
            let _ = node.ctl.send(Ctl::Stop);
            if let Some(handle) = node.join.take() {
                let _ = handle.join();
            }
        }
    }

    /// Crash the node at `ip` without losing its identity: the app sees
    /// `on_crash` and is dropped (all volatile state is gone), pending
    /// timers are cleared, but the thread and socket stay alive in a
    /// down state — arriving datagrams are drained and discarded, and
    /// anything durable the app kept on disk (its WAL directory)
    /// survives for [`UdpRuntime::restart`].
    pub fn crash(&self, ip: Ipv4) {
        if let Some(node) = self.nodes.get(&ip) {
            let _ = node.ctl.send(Ctl::Crash);
        }
    }

    /// Restart a crashed node under the same identity: the factory
    /// rebuilds the app inside the node thread, which then sees
    /// `on_start` followed by `on_restart`. No-op if the node is up or
    /// was [`UdpRuntime::kill`]ed.
    pub fn restart(&self, ip: Ipv4) {
        if let Some(node) = self.nodes.get(&ip) {
            let _ = node.ctl.send(Ctl::Restart);
        }
    }

    /// The shared nemesis counters (all zero when no fault plan was
    /// installed).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Stop every remaining node thread and join them.
    pub fn shutdown(&mut self) {
        for node in self.nodes.values() {
            let _ = node.ctl.send(Ctl::Stop);
        }
        for node in self.nodes.values_mut() {
            if let Some(handle) = node.join.take() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for UdpRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-thread [`NodeIo`] host: wall-clock time, a real socket, and a
/// deadline heap for timers.
struct HostIo {
    ip: Ipv4,
    mac: Mac,
    socket: NemesisUdp,
    routes: Arc<Routes>,
    codec: Arc<dyn WireCodec>,
    epoch: Instant,
    rng: XorShiftRng,
    /// Min-heap of `(deadline ns, arm order, token)`; arm order keeps
    /// same-deadline timers FIFO.
    timers: BinaryHeap<std::cmp::Reverse<(u64, u64, u64)>>,
    timer_seq: u64,
}

impl HostIo {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Pop every timer whose deadline has passed.
    fn due_timers(&mut self) -> Vec<u64> {
        let now = self.now_ns();
        let mut due = Vec::new();
        while let Some(std::cmp::Reverse((deadline, _, token))) = self.timers.peek().copied() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            due.push(token);
        }
        due
    }

    /// How long the socket may block before the next timer or delayed
    /// (nemesis-held) frame is due.
    fn wait_budget(&self) -> Duration {
        let timer = self
            .timers
            .peek()
            .map(|std::cmp::Reverse((deadline, _, _))| *deadline);
        let deadline = match (timer, self.socket.next_due()) {
            (Some(t), Some(d)) => Some(t.min(d)),
            (t, d) => t.or(d),
        };
        match deadline {
            Some(deadline) => {
                let now = self.now_ns();
                let ns = deadline.saturating_sub(now).clamp(1_000, 5_000_000);
                Duration::from_nanos(ns)
            }
            None => IDLE_WAIT,
        }
    }
}

impl NodeIo for HostIo {
    fn now(&self) -> Time {
        Time(self.now_ns())
    }

    fn ip(&self) -> Ipv4 {
        self.ip
    }

    fn mac(&self) -> Mac {
        self.mac
    }

    fn send(&mut self, pkt: Packet) {
        let Some(frame) = encode_frame(&pkt, self.codec.as_ref()) else {
            return; // payload type not wire-encodable: drop, like a NIC with no route
        };
        let now = Time(self.now_ns());
        let src = self.ip;
        let routes = Arc::clone(&self.routes);
        if let Some(addr) = routes.unicast.get(&pkt.dst) {
            self.socket.send_to(&frame, *addr, src, pkt.dst, now);
        } else if let Some(members) = routes.groups.get(&pkt.dst) {
            // Sender-side fan-out stands in for in-switch multicast;
            // the nemesis judges each leg as its own (src, member) link.
            for (member, addr) in members {
                self.socket.send_to(&frame, *addr, src, *member, now);
            }
        }
        // Unroutable destinations drop silently: real UDP.
    }

    fn set_timer(&mut self, delay: Time, token: u64) {
        let deadline = self.now_ns().saturating_add(delay.as_ns());
        self.timer_seq += 1;
        self.timers
            .push(std::cmp::Reverse((deadline, self.timer_seq, token)));
    }

    fn cpu_work(&mut self, _amount: Time) {
        // Real CPUs charge themselves.
    }

    fn cpu_defer(&mut self, amount: Time, token: u64) {
        // Deferred completions become plain timers: the real CPU does the
        // work when the callback runs; the deadline models the queueing.
        self.set_timer(amount, token);
    }

    fn rng(&mut self) -> &mut XorShiftRng {
        &mut self.rng
    }
}

/// One node's event loop: control messages, due timers, then a bounded
/// blocking receive.
///
/// `app` is `None` while the node is crashed-but-restartable: the
/// thread keeps draining its socket (arriving datagrams are real loss)
/// and waits for `Ctl::Restart` to rebuild the app from `factory`.
fn run_node(mut io: HostIo, factory: AppFactory, ctl: &mpsc::Receiver<Ctl>) {
    let mut buf = vec![0u8; RECV_BUF];
    let mut app: Option<Box<dyn NodeApp>> = Some(factory());
    if let Some(a) = app.as_mut() {
        a.on_start(&mut io);
    }
    loop {
        loop {
            match ctl.try_recv() {
                Ok(Ctl::Run(f)) => {
                    if let Some(a) = app.as_mut() {
                        f(a.as_mut());
                    }
                    // Down: drop the visit; the caller's reply channel
                    // closes and `with` reports the node as dead.
                }
                Ok(Ctl::Crash) => {
                    if let Some(mut a) = app.take() {
                        a.on_crash();
                    }
                    // Volatile state dies with the app; timers are
                    // armed state, so they die too. The socket stays
                    // bound: identity survives for a restart.
                    io.timers.clear();
                }
                Ok(Ctl::Restart) => {
                    if app.is_none() {
                        let mut a = factory();
                        a.on_start(&mut io);
                        a.on_restart(&mut io);
                        app = Some(a);
                    }
                }
                Ok(Ctl::Stop) => return,
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => return,
            }
        }
        for token in io.due_timers() {
            if let Some(a) = app.as_mut() {
                a.on_timer(token, &mut io);
            }
        }
        io.socket.flush_due(Time(io.now_ns()));
        let budget = io.wait_budget();
        let _ = io.socket.set_read_timeout(Some(budget));
        match io.socket.recv_from(&mut buf) {
            Ok((n, _peer)) => {
                let frame = buf.get(..n).unwrap_or_default();
                if let Some(pkt) = decode_frame(frame, io.codec.as_ref()) {
                    if let Some(a) = app.as_mut() {
                        a.on_packet(pkt, &mut io);
                    }
                    // Down: the datagram was consumed and discarded —
                    // exactly what a dead host does to the wire.
                }
            }
            Err(_) => {
                // Timeout or transient error: fall through to the next
                // control/timer sweep.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::any::Any;
    use std::rc::Rc;
    use std::sync::Arc;

    use super::*;
    use crate::net::Payload;

    /// Payloads are plain u64s; the codec is the identity framing.
    struct U64Codec;
    impl WireCodec for U64Codec {
        fn encode(&self, payload: &dyn Any) -> Option<Vec<u8>> {
            payload
                .downcast_ref::<u64>()
                .map(|v| v.to_be_bytes().into())
        }
        fn decode(&self, bytes: &[u8]) -> Option<Payload> {
            let arr: [u8; 8] = bytes.try_into().ok()?;
            Some(Rc::new(u64::from_be_bytes(arr)))
        }
    }

    /// Echoes every payload back to the sender, +1.
    struct Echo;
    impl NodeApp for Echo {
        fn on_packet(&mut self, pkt: Packet, io: &mut dyn NodeIo) {
            let Some(&v) = pkt.payload_as::<u64>() else {
                return;
            };
            let me = io.ip();
            let mac = io.mac();
            io.send(Packet::udp(
                me,
                mac,
                pkt.src,
                pkt.dst_port,
                pkt.src_port,
                8,
                Rc::new(v + 1),
            ));
        }
    }

    /// Sends `0` to the echo node on start, collects replies.
    struct Pinger {
        peer: Ipv4,
        got: Vec<u64>,
    }
    impl NodeApp for Pinger {
        fn on_start(&mut self, io: &mut dyn NodeIo) {
            let me = io.ip();
            let mac = io.mac();
            io.send(Packet::udp(me, mac, self.peer, 1, 1, 8, Rc::new(0u64)));
        }
        fn on_packet(&mut self, pkt: Packet, _io: &mut dyn NodeIo) {
            if let Some(&v) = pkt.payload_as::<u64>() {
                self.got.push(v);
            }
        }
    }

    /// Counts timer firings.
    struct Ticker {
        fired: Vec<u64>,
    }
    impl NodeApp for Ticker {
        fn on_start(&mut self, io: &mut dyn NodeIo) {
            io.set_timer(Time::from_ms(1), 7);
            io.cpu_defer(Time::from_ms(2), 9);
        }
        fn on_timer(&mut self, token: u64, _io: &mut dyn NodeIo) {
            self.fired.push(token);
        }
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        let start = Instant::now();
        while !cond() {
            assert!(start.elapsed() < Duration::from_secs(5), "timed out");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn packets_flow_between_node_threads() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        let rt = UdpRuntime::spawn(
            RuntimeCfg::new(1, Arc::new(U64Codec)),
            vec![
                NodeSpec::new(a, || Box::new(Echo)),
                NodeSpec::new(b, move || {
                    Box::new(Pinger {
                        peer: a,
                        got: vec![],
                    })
                }),
            ],
        );
        wait_until(|| {
            rt.with(b, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Pinger>()
                    .is_some_and(|p| !p.got.is_empty())
            })
        });
        let got = rt.with(b, |app| {
            let any: &mut dyn Any = app;
            any.downcast_mut::<Pinger>().map(|p| p.got.clone())
        });
        assert_eq!(got, Some(vec![1]), "echo added one");
    }

    #[test]
    fn group_addresses_fan_out() {
        let members = [Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2)];
        let group = Ipv4::new(10, 11, 0, 1);
        let sender = Ipv4::new(10, 0, 1, 1);
        struct Collect {
            got: Vec<u64>,
        }
        impl NodeApp for Collect {
            fn on_packet(&mut self, pkt: Packet, _io: &mut dyn NodeIo) {
                if let Some(&v) = pkt.payload_as::<u64>() {
                    self.got.push(v);
                }
            }
        }
        struct SendOnce {
            group: Ipv4,
        }
        impl NodeApp for SendOnce {
            fn on_start(&mut self, io: &mut dyn NodeIo) {
                let me = io.ip();
                let mac = io.mac();
                io.send(Packet::udp(me, mac, self.group, 1, 1, 8, Rc::new(5u64)));
            }
        }
        let mut cfg = RuntimeCfg::new(2, Arc::new(U64Codec));
        cfg.groups.push((group, members.to_vec()));
        let mut specs: Vec<NodeSpec> = members
            .iter()
            .map(|&m| NodeSpec::new(m, || Box::new(Collect { got: vec![] })))
            .collect();
        specs.push(NodeSpec::new(sender, move || Box::new(SendOnce { group })));
        let rt = UdpRuntime::spawn(cfg, specs);
        for m in members {
            wait_until(|| {
                rt.with(m, |app| {
                    let any: &mut dyn Any = app;
                    any.downcast_mut::<Collect>()
                        .is_some_and(|c| !c.got.is_empty())
                })
            });
        }
    }

    #[test]
    fn timers_and_deferred_work_fire_in_order() {
        let a = Ipv4::new(10, 0, 0, 1);
        let rt = UdpRuntime::spawn(
            RuntimeCfg::new(3, Arc::new(U64Codec)),
            vec![NodeSpec::new(a, || Box::new(Ticker { fired: vec![] }))],
        );
        wait_until(|| {
            rt.with(a, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Ticker>()
                    .is_some_and(|t| t.fired.len() == 2)
            })
        });
        let fired = rt.with(a, |app| {
            let any: &mut dyn Any = app;
            any.downcast_mut::<Ticker>().map(|t| t.fired.clone())
        });
        assert_eq!(fired, Some(vec![7, 9]), "earlier deadline first");
    }

    #[test]
    fn crash_then_restart_rebuilds_the_app_under_the_same_identity() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        /// Records its lifecycle; pings on demand via a timer.
        struct Reborn {
            restarted: bool,
            crashes_seen: Arc<std::sync::atomic::AtomicU64>,
        }
        impl NodeApp for Reborn {
            fn on_crash(&mut self) {
                self.crashes_seen
                    .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            fn on_restart(&mut self, _io: &mut dyn NodeIo) {
                self.restarted = true;
            }
        }
        let crashes = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let crashes_in_app = Arc::clone(&crashes);
        let rt = UdpRuntime::spawn(
            RuntimeCfg::new(5, Arc::new(U64Codec)),
            vec![
                NodeSpec::new(a, move || {
                    Box::new(Reborn {
                        restarted: false,
                        crashes_seen: Arc::clone(&crashes_in_app),
                    })
                }),
                NodeSpec::new(b, || Box::new(Echo)),
            ],
        );
        assert_eq!(
            rt.try_with(a, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Reborn>().map(|r| r.restarted)
            }),
            Some(Some(false))
        );
        rt.crash(a);
        // Down: visits fail instead of reaching an app.
        wait_until(|| rt.try_with(a, |_app| ()).is_none());
        assert_eq!(crashes.load(std::sync::atomic::Ordering::SeqCst), 1);
        rt.restart(a);
        wait_until(|| rt.try_with(a, |_app| ()).is_some());
        // The factory rebuilt it (fresh state) and on_restart ran.
        assert_eq!(
            rt.with(a, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Reborn>().map(|r| r.restarted)
            }),
            Some(true)
        );
        // Identity survived: b can still reach a's socket (no route churn).
        // A second crash is also clean.
        rt.crash(a);
        wait_until(|| rt.try_with(a, |_app| ()).is_none());
        assert_eq!(crashes.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn nemesis_loss_drops_sends_and_counts_them() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        /// Fires N pings spaced by timers so each frame differs.
        struct Burst {
            peer: Ipv4,
            left: u64,
        }
        impl NodeApp for Burst {
            fn on_start(&mut self, io: &mut dyn NodeIo) {
                io.set_timer(Time::from_us(100), 1);
            }
            fn on_timer(&mut self, _token: u64, io: &mut dyn NodeIo) {
                if self.left == 0 {
                    return;
                }
                self.left -= 1;
                let me = io.ip();
                let mac = io.mac();
                let seq = self.left;
                io.send(Packet::udp(me, mac, self.peer, 1, 1, 8, Rc::new(seq)));
                io.set_timer(Time::from_us(100), 1);
            }
        }
        let mut cfg = RuntimeCfg::new(6, Arc::new(U64Codec));
        cfg.host.nemesis = Some(crate::nemesis::FaultPlan {
            seed: 99,
            loss_ppm: 300_000,
            active_until: Time::from_secs(3600),
            ..crate::nemesis::FaultPlan::default()
        });
        let rt = UdpRuntime::spawn(
            cfg,
            vec![
                NodeSpec::new(a, || Box::new(Echo)),
                NodeSpec::new(b, move || Box::new(Burst { peer: a, left: 400 })),
            ],
        );
        wait_until(|| {
            rt.with(b, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Burst>().is_some_and(|p| p.left == 0)
            })
        });
        let s = rt.fault_stats();
        let dropped = s.dropped.load(std::sync::atomic::Ordering::Relaxed);
        let sent = s.sent.load(std::sync::atomic::Ordering::Relaxed);
        // 400 pings at 30% nominal loss (echo replies are judged too).
        assert!(dropped >= 50, "dropped={dropped}");
        assert!(sent >= 100, "sent={sent}");
    }

    #[test]
    fn killed_nodes_stop_answering() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        let mut rt = UdpRuntime::spawn(
            RuntimeCfg::new(4, Arc::new(U64Codec)),
            vec![
                NodeSpec::new(a, || Box::new(Echo)),
                NodeSpec::new(b, move || {
                    Box::new(Pinger {
                        peer: a,
                        got: vec![],
                    })
                }),
            ],
        );
        wait_until(|| {
            rt.with(b, |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<Pinger>()
                    .is_some_and(|p| !p.got.is_empty())
            })
        });
        rt.kill(a);
        // Another ping from b must go unanswered now.
        rt.with(b, |_app| ());
        std::thread::sleep(Duration::from_millis(20));
        let got = rt.with(b, |app| {
            let any: &mut dyn Any = app;
            any.downcast_mut::<Pinger>().map(|p| p.got.len())
        });
        assert_eq!(got, Some(1));
    }
}

//! Wire codecs: the serialization boundary between opaque in-memory
//! payloads and real UDP datagrams.
//!
//! Inside a single process (simulator or loopback runtime) payloads are
//! `Rc<dyn Any>` and never serialized. The real runtime still frames
//! every packet onto the wire, so each protocol family provides a
//! [`WireCodec`] that turns its payload type into bytes and back. Packet
//! *headers* are framed once, here, by [`encode_frame`]/[`decode_frame`];
//! codecs only handle the payload.

use std::any::Any;

use crate::net::{Ipv4, Mac, Packet, Payload, Proto};

/// Serializes one protocol family's payloads for the real UDP runtime.
///
/// `encode` returns `None` for payload types the codec does not know
/// (the runtime drops the packet — mirroring a NIC with no route);
/// `decode` returns `None` for malformed bytes (the datagram is
/// dropped, exactly like a corrupt frame).
pub trait WireCodec: Send + Sync + 'static {
    /// Serialize a payload, or `None` if the type is not wire-encodable.
    fn encode(&self, payload: &dyn Any) -> Option<Vec<u8>>;
    /// Deserialize a payload previously produced by `encode`.
    fn decode(&self, bytes: &[u8]) -> Option<Payload>;
}

/// An append-only byte sink with fixed-width big-endian primitives.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a `u32` length prefix followed by the bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// The accumulated buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor over received bytes; every read is checked and returns
/// `None` past the end (malformed datagrams are dropped, never panic).
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s.first().copied().unwrap_or_default())
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).and_then(|s| {
            let arr: [u8; 2] = s.try_into().ok()?;
            Some(u16::from_be_bytes(arr))
        })
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).and_then(|s| {
            let arr: [u8; 4] = s.try_into().ok()?;
            Some(u32::from_be_bytes(arr))
        })
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).and_then(|s| {
            let arr: [u8; 8] = s.try_into().ok()?;
            Some(u64::from_be_bytes(arr))
        })
    }

    /// Read a `u32`-length-prefixed byte run.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).ok()
    }

    /// Everything not yet consumed.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = self.buf.get(self.pos..).unwrap_or_default();
        self.pos = self.buf.len();
        s
    }

    /// True once the buffer is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

fn proto_tag(p: Proto) -> u8 {
    match p {
        Proto::Udp => 0,
        Proto::Tcp => 1,
        Proto::Arp => 2,
    }
}

fn proto_from(tag: u8) -> Option<Proto> {
    match tag {
        0 => Some(Proto::Udp),
        1 => Some(Proto::Tcp),
        2 => Some(Proto::Arp),
        _ => None,
    }
}

/// Frame a packet for the wire: fixed header fields, then the
/// codec-encoded payload. `None` if the codec does not know the payload
/// type (the caller drops the packet).
pub fn encode_frame(pkt: &Packet, codec: &dyn WireCodec) -> Option<Vec<u8>> {
    let payload = codec.encode(pkt.payload.as_ref())?;
    let mut w = ByteWriter::new();
    w.u32(pkt.src.0);
    w.u32(pkt.dst.0);
    w.u8(proto_tag(pkt.proto));
    w.u16(pkt.src_port);
    w.u16(pkt.dst_port);
    w.u32(pkt.wire_size);
    w.bytes(&payload);
    Some(w.into_vec())
}

/// Reconstruct a packet from a framed datagram. MACs are zero: the real
/// runtime routes purely on IP addresses.
pub fn decode_frame(bytes: &[u8], codec: &dyn WireCodec) -> Option<Packet> {
    let mut r = ByteReader::new(bytes);
    let src = Ipv4(r.u32()?);
    let dst = Ipv4(r.u32()?);
    let proto = proto_from(r.u8()?)?;
    let src_port = r.u16()?;
    let dst_port = r.u16()?;
    let wire_size = r.u32()?;
    let payload = codec.decode(r.bytes()?)?;
    Some(Packet {
        src,
        dst,
        src_mac: Mac::ZERO,
        dst_mac: Mac::ZERO,
        proto,
        src_port,
        dst_port,
        wire_size,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.str("hello");
        w.bytes(&[1, 2, 3]);
        let v = w.into_vec();
        let mut r = ByteReader::new(&v);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u16(), Some(0xBEEF));
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.str().as_deref(), Some("hello"));
        assert_eq!(r.bytes(), Some(&[1u8, 2, 3][..]));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.u32(), None);
        let mut r = ByteReader::new(&[0, 0, 0, 10, 1]);
        assert_eq!(r.bytes(), None, "length prefix exceeds buffer");
    }

    struct U64Codec;
    impl WireCodec for U64Codec {
        fn encode(&self, payload: &dyn std::any::Any) -> Option<Vec<u8>> {
            payload
                .downcast_ref::<u64>()
                .map(|v| v.to_be_bytes().into())
        }
        fn decode(&self, bytes: &[u8]) -> Option<Payload> {
            let arr: [u8; 8] = bytes.try_into().ok()?;
            Some(Rc::new(u64::from_be_bytes(arr)))
        }
    }

    #[test]
    fn frame_roundtrip() {
        let pkt = Packet::udp(
            Ipv4::new(127, 0, 0, 1),
            Mac(3),
            Ipv4::new(10, 0, 0, 7),
            1234,
            9000,
            8,
            Rc::new(77u64),
        );
        let wire = encode_frame(&pkt, &U64Codec).expect("encodable");
        let back = decode_frame(&wire, &U64Codec).expect("decodable");
        assert_eq!(back.src, pkt.src);
        assert_eq!(back.dst, pkt.dst);
        assert_eq!(back.proto, Proto::Udp);
        assert_eq!(back.src_port, 1234);
        assert_eq!(back.dst_port, 9000);
        assert_eq!(back.wire_size, pkt.wire_size);
        assert_eq!(back.payload_as::<u64>(), Some(&77));
    }

    #[test]
    fn unknown_payload_is_unencodable() {
        let pkt = Packet::udp(
            Ipv4::UNSPECIFIED,
            Mac(0),
            Ipv4::UNSPECIFIED,
            0,
            0,
            0,
            Rc::new("not a u64"),
        );
        assert!(encode_frame(&pkt, &U64Codec).is_none());
    }

    #[test]
    fn corrupt_frames_are_dropped() {
        assert!(decode_frame(&[1, 2, 3], &U64Codec).is_none());
        // Valid header, bogus proto tag.
        let mut w = ByteWriter::new();
        w.u32(0);
        w.u32(0);
        w.u8(9);
        w.u16(0);
        w.u16(0);
        w.u32(0);
        w.bytes(&[]);
        assert!(decode_frame(&w.into_vec(), &U64Codec).is_none());
    }
}

//! Socket-level fault injection for the real UDP runtime.
//!
//! The simulator injects faults at its single delivery choke point; the
//! real runtime has no such point — every node thread writes straight
//! to its own socket. [`NemesisUdp`] restores one: it wraps the
//! loopback socket and applies a seeded [`FaultPlan`] on the send side,
//! deterministically per `(src, dst, payload-hash)` — the same frame
//! between the same pair always draws the same verdict — so a storm is
//! reproducible up to thread scheduling while remaining real UDP on the
//! wire (loss means the datagram is never written, duplication means
//! two writes, delay means a deferred write).
//!
//! The plan is a pure value: rendering the seeded schedule
//! (`kv_core::ChaosPlan::render`) is byte-stable and independent of
//! this module; [`FaultStats`] counts what the verdicts actually did.

use std::collections::BTreeMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::net::Ipv4;
use crate::time::Time;

/// One symmetric link cut: packets between `a` and `b` (either
/// direction) are dropped while `from <= now < until`.
#[derive(Debug, Clone, Copy)]
pub struct PartitionWindow {
    /// One side of the cut.
    pub a: Ipv4,
    /// The other side.
    pub b: Ipv4,
    /// Window start (runtime-relative, like [`crate::NodeIo::now`]).
    pub from: Time,
    /// Window end (exclusive).
    pub until: Time,
}

/// A seeded fault plan for the real runtime.
///
/// Probabilities are parts-per-million so the verdict is pure integer
/// arithmetic on the hash draw. Loss/duplication/delay apply only
/// inside `[active_from, active_until)`; partitions carry their own
/// windows. `Default` is a no-fault plan.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Verdict seed.
    pub seed: u64,
    /// Drop probability (ppm) inside the active window.
    pub loss_ppm: u32,
    /// Duplication probability (ppm) inside the active window.
    pub dup_ppm: u32,
    /// Delay probability (ppm) inside the active window.
    pub delay_ppm: u32,
    /// Maximum injected delay (uniform in `1..=delay_max` ns).
    pub delay_max: Time,
    /// Start of the loss/dup/delay window.
    pub active_from: Time,
    /// End of the loss/dup/delay window (exclusive).
    pub active_until: Time,
    /// Symmetric link cuts.
    pub partitions: Vec<PartitionWindow>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            loss_ppm: 0,
            dup_ppm: 0,
            delay_ppm: 0,
            delay_max: Time::ZERO,
            active_from: Time::ZERO,
            active_until: Time::ZERO,
            partitions: Vec::new(),
        }
    }
}

/// What the plan decided for one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Write it to the socket.
    Deliver,
    /// Never write it.
    Drop,
    /// Write it twice.
    Duplicate,
    /// Write it after this extra delay.
    Delay(Time),
}

/// 64-bit FNV-1a over the frame bytes: the payload half of the
/// `(src, dst, payload-hash)` verdict key.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// splitmix64 finalizer: decorrelates the combined verdict key.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The plan's verdict for one frame from `src` to `dst` at `now`.
    /// Pure: the same `(seed, src, dst, frame)` always draws the same
    /// verdict; `now` only gates the fault windows.
    pub fn verdict(&self, now: Time, src: Ipv4, dst: Ipv4, frame: &[u8]) -> Verdict {
        for p in &self.partitions {
            let cut = (p.a == src && p.b == dst) || (p.a == dst && p.b == src);
            if cut && now >= p.from && now < p.until {
                return Verdict::Drop;
            }
        }
        if now < self.active_from || now >= self.active_until {
            return Verdict::Deliver;
        }
        let key = mix(self.seed
            ^ mix(u64::from(src.0))
            ^ mix(u64::from(dst.0).rotate_left(32))
            ^ fnv1a64(frame));
        let draw = (key % 1_000_000) as u32;
        if draw < self.loss_ppm {
            return Verdict::Drop;
        }
        if draw < self.loss_ppm.saturating_add(self.dup_ppm) {
            return Verdict::Duplicate;
        }
        let delay_edge = self
            .loss_ppm
            .saturating_add(self.dup_ppm)
            .saturating_add(self.delay_ppm);
        if draw < delay_edge && self.delay_max > Time::ZERO {
            let ns = 1 + mix(key) % self.delay_max.as_ns().max(1);
            return Verdict::Delay(Time(ns));
        }
        Verdict::Deliver
    }
}

/// Shared counters of what the nemesis actually did (all node threads
/// bump the same instance).
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Datagrams written to a socket (including duplicates).
    pub sent: AtomicU64,
    /// Datagrams dropped by verdict or partition.
    pub dropped: AtomicU64,
    /// Datagrams written twice.
    pub duplicated: AtomicU64,
    /// Datagrams deferred by a delay verdict.
    pub delayed: AtomicU64,
}

impl FaultStats {
    /// Render the counters as one stable `key=value` line (archived by
    /// the `runtime-chaos` check tier).
    pub fn render(&self) -> String {
        format!(
            "nemesis sent={} dropped={} duplicated={} delayed={}",
            self.sent.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.duplicated.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
        )
    }
}

/// The loopback socket behind one node, with the fault plan applied on
/// every send. Without a plan it is a transparent passthrough.
#[derive(Debug)]
pub struct NemesisUdp {
    socket: UdpSocket,
    plan: Option<Arc<FaultPlan>>,
    stats: Arc<FaultStats>,
    /// Delay-verdict frames awaiting their deadline, keyed by
    /// `(deliver-at ns, arm order)`.
    delayed: BTreeMap<(u64, u64), (Vec<u8>, SocketAddr)>,
    delay_seq: u64,
}

impl NemesisUdp {
    /// Wrap `socket`; `plan = None` disables injection entirely.
    pub fn new(
        socket: UdpSocket,
        plan: Option<Arc<FaultPlan>>,
        stats: Arc<FaultStats>,
    ) -> NemesisUdp {
        NemesisUdp {
            socket,
            plan,
            stats,
            delayed: BTreeMap::new(),
            delay_seq: 0,
        }
    }

    /// Send `frame` from `src` to the resolved `addr` of `dst`, subject
    /// to the plan's verdict at `now`.
    pub fn send_to(&mut self, frame: &[u8], addr: SocketAddr, src: Ipv4, dst: Ipv4, now: Time) {
        let verdict = match &self.plan {
            None => Verdict::Deliver,
            Some(p) => p.verdict(now, src, dst, frame),
        };
        match verdict {
            Verdict::Deliver => {
                self.stats.sent.fetch_add(1, Ordering::Relaxed);
                let _ = self.socket.send_to(frame, addr);
            }
            Verdict::Drop => {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Verdict::Duplicate => {
                self.stats.sent.fetch_add(2, Ordering::Relaxed);
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                let _ = self.socket.send_to(frame, addr);
                let _ = self.socket.send_to(frame, addr);
            }
            Verdict::Delay(d) => {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                self.delay_seq += 1;
                let at = now.as_ns().saturating_add(d.as_ns());
                self.delayed
                    .insert((at, self.delay_seq), (frame.to_vec(), addr));
            }
        }
    }

    /// Write every delayed frame whose deadline has passed.
    pub fn flush_due(&mut self, now: Time) {
        loop {
            let Some((&(at, seq), _)) = self.delayed.first_key_value() else {
                return;
            };
            if at > now.as_ns() {
                return;
            }
            if let Some((frame, addr)) = self.delayed.remove(&(at, seq)) {
                self.stats.sent.fetch_add(1, Ordering::Relaxed);
                let _ = self.socket.send_to(&frame, addr);
            }
        }
    }

    /// Deadline (ns) of the earliest delayed frame, if any — the event
    /// loop bounds its blocking receive by this.
    pub fn next_due(&self) -> Option<u64> {
        self.delayed.first_key_value().map(|(&(at, _), _)| at)
    }

    /// Receive into `buf` (plain passthrough; faults are send-side).
    pub fn recv_from(&self, buf: &mut [u8]) -> std::io::Result<(usize, SocketAddr)> {
        self.socket.recv_from(buf)
    }

    /// Bound the next blocking receive.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.socket.set_read_timeout(dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 42,
            loss_ppm: 200_000,
            dup_ppm: 100_000,
            delay_ppm: 100_000,
            delay_max: Time::from_ms(2),
            active_from: Time::from_ms(100),
            active_until: Time::from_secs(10),
            partitions: vec![],
        }
    }

    fn addrs() -> (Ipv4, Ipv4) {
        (Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2))
    }

    #[test]
    fn verdicts_are_deterministic_per_key() {
        let p = plan();
        let (a, b) = addrs();
        let now = Time::from_secs(1);
        for frame in [b"hello".as_slice(), b"world", b"x", b""] {
            let v1 = p.verdict(now, a, b, frame);
            let v2 = p.verdict(now, a, b, frame);
            assert_eq!(v1, v2, "same key, same verdict");
        }
    }

    #[test]
    fn verdicts_outside_the_window_deliver() {
        let p = plan();
        let (a, b) = addrs();
        for i in 0..200u32 {
            let frame = i.to_be_bytes();
            assert_eq!(
                p.verdict(Time::from_ms(1), a, b, &frame),
                Verdict::Deliver,
                "before the window"
            );
            assert_eq!(
                p.verdict(Time::from_secs(11), a, b, &frame),
                Verdict::Deliver,
                "after the window"
            );
        }
    }

    #[test]
    fn verdict_mix_covers_all_outcomes_at_plan_rates() {
        let p = plan();
        let (a, b) = addrs();
        let now = Time::from_secs(1);
        let (mut drops, mut dups, mut delays, mut delivers) = (0u32, 0u32, 0u32, 0u32);
        for i in 0..2_000u32 {
            match p.verdict(now, a, b, &i.to_be_bytes()) {
                Verdict::Drop => drops += 1,
                Verdict::Duplicate => dups += 1,
                Verdict::Delay(d) => {
                    assert!(d > Time::ZERO && d <= p.delay_max);
                    delays += 1;
                }
                Verdict::Deliver => delivers += 1,
            }
        }
        // 20% / 10% / 10% nominal rates over 2,000 draws: generous bands.
        assert!((200..=600).contains(&drops), "drops={drops}");
        assert!((80..=350).contains(&dups), "dups={dups}");
        assert!((80..=350).contains(&delays), "delays={delays}");
        assert!(delivers >= 1000, "delivers={delivers}");
    }

    #[test]
    fn partitions_cut_both_directions_within_their_window() {
        let (a, b) = addrs();
        let mut p = FaultPlan::default();
        p.partitions.push(PartitionWindow {
            a,
            b,
            from: Time::from_secs(1),
            until: Time::from_secs(2),
        });
        let frame = b"payload";
        let inside = Time::from_ms(1_500);
        assert_eq!(p.verdict(inside, a, b, frame), Verdict::Drop);
        assert_eq!(p.verdict(inside, b, a, frame), Verdict::Drop);
        let c = Ipv4::new(10, 0, 0, 3);
        assert_eq!(p.verdict(inside, a, c, frame), Verdict::Deliver);
        assert_eq!(
            p.verdict(Time::from_ms(500), a, b, frame),
            Verdict::Deliver,
            "before the cut"
        );
        assert_eq!(
            p.verdict(Time::from_secs(3), a, b, frame),
            Verdict::Deliver,
            "after it healed"
        );
    }

    #[test]
    fn delayed_frames_flush_in_deadline_order() {
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
        let rx_addr = rx.local_addr().expect("rx addr");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        let stats = Arc::new(FaultStats::default());
        // A plan that delays everything inside its window.
        let plan = FaultPlan {
            seed: 7,
            delay_ppm: 1_000_000,
            delay_max: Time::from_ms(1),
            active_until: Time::from_secs(100),
            ..FaultPlan::default()
        };
        let (a, b) = addrs();
        let mut nem = NemesisUdp::new(tx, Some(Arc::new(plan)), Arc::clone(&stats));
        nem.send_to(b"first", rx_addr, a, b, Time::from_ms(10));
        assert_eq!(stats.delayed.load(Ordering::Relaxed), 1);
        assert!(nem.next_due().is_some());
        // Not due yet: nothing flushes.
        nem.flush_due(Time::from_ms(10));
        assert!(nem.next_due().is_some());
        // Past every possible deadline: the frame goes out.
        nem.flush_due(Time::from_ms(20));
        assert!(nem.next_due().is_none());
        rx.set_read_timeout(Some(Duration::from_secs(2))).ok();
        let mut buf = [0u8; 16];
        let (n, _) = rx.recv_from(&mut buf).expect("delayed frame arrives");
        assert_eq!(&buf[..n], b"first");
        assert_eq!(stats.sent.load(Ordering::Relaxed), 1);
    }
}

//! The `NodeIo` host boundary: everything a node application may ask of
//! whatever is hosting it.
//!
//! NICE and NOOB node logic (transport, servers, gateways, clients) is
//! written against [`NodeIo`] + [`NodeApp`] only. Two hosts implement the
//! contract: the deterministic discrete-event simulator (`nice-sim`'s
//! `Ctx`) and the real threaded UDP runtime in [`crate::runtime`]. The
//! SDN-only surface (switch `packet_out`, host identifiers) deliberately
//! does *not* appear here — in-switch anycast is sim-only, so apps that
//! need it stay sim-hosted.

use std::any::Any;

use nice_workload::XorShiftRng;

use crate::net::{Ipv4, Mac, Packet};
use crate::time::Time;

/// The host-facing surface node applications run against.
///
/// Semantics every host must provide:
///
/// - [`now`](NodeIo::now) is monotonically non-decreasing across
///   callbacks (virtual time in the simulator, wall-clock-since-epoch in
///   the real runtime).
/// - [`send`](NodeIo::send) is asynchronous and unreliable: delivery may
///   fail silently (reliability lives in the transport layer above).
/// - [`set_timer`](NodeIo::set_timer) delivers `token` back through
///   [`NodeApp::on_timer`] no earlier than `delay` from now. Timers are
///   not cancelable; apps treat stale tokens as no-ops.
/// - [`cpu_work`](NodeIo::cpu_work) accounts synchronous CPU cost. The
///   simulator charges it to the host's core model; the real runtime
///   spends actual CPU time implicitly and treats this as a no-op.
/// - [`cpu_defer`](NodeIo::cpu_defer) models "finish this after the CPU
///   has chewed `amount`": the token comes back via
///   [`NodeApp::on_timer`] once the cost is paid.
/// - [`rng`](NodeIo::rng) is a per-node deterministic generator, seeded
///   by the host from the run seed and the node identity.
pub trait NodeIo {
    /// The current time.
    fn now(&self) -> Time;
    /// This node's IPv4 address.
    fn ip(&self) -> Ipv4;
    /// This node's MAC address.
    fn mac(&self) -> Mac;
    /// Transmit a packet (fire-and-forget).
    fn send(&mut self, pkt: Packet);
    /// Arm a one-shot timer: `token` arrives via `on_timer` after `delay`.
    fn set_timer(&mut self, delay: Time, token: u64);
    /// Account `amount` of synchronous CPU work.
    fn cpu_work(&mut self, amount: Time);
    /// Defer completion behind `amount` of CPU work; `token` arrives via
    /// `on_timer` once it is paid.
    fn cpu_defer(&mut self, amount: Time, token: u64);
    /// The node's deterministic random-number generator.
    fn rng(&mut self) -> &mut XorShiftRng;
}

/// A node application: the protocol state machine a host drives.
///
/// All hooks take `&mut dyn NodeIo` so one compiled app body runs under
/// the simulator and the real UDP runtime alike. `Any` is a supertrait so
/// harnesses can downcast a hosted app back to its concrete type.
pub trait NodeApp: Any {
    /// The node booted (or the run started).
    fn on_start(&mut self, io: &mut dyn NodeIo) {
        let _ = io;
    }

    /// A packet addressed to this node arrived.
    fn on_packet(&mut self, pkt: Packet, io: &mut dyn NodeIo) {
        let _ = (pkt, io);
    }

    /// A timer armed via [`NodeIo::set_timer`]/[`NodeIo::cpu_defer`]
    /// fired.
    fn on_timer(&mut self, token: u64, io: &mut dyn NodeIo) {
        let _ = (token, io);
    }

    /// The node crashed: volatile state is gone, no IO is possible.
    fn on_crash(&mut self) {}

    /// The node restarted after a crash.
    fn on_restart(&mut self, io: &mut dyn NodeIo) {
        let _ = io;
    }
}

//! Network primitives, re-exported from `node-rt`.
//!
//! The packet/address vocabulary lives in `node_rt::net` so protocol
//! crates can depend on it without pulling in the simulator; this shim
//! keeps every historical `nice_sim::net::*` path working for the
//! sim-side layers (switches, links, SDN control).

pub use node_rt::net::*;

//! Switch modeling: a pluggable forwarding logic behind a fixed
//! store-and-forward latency.
//!
//! The simulator is agnostic to *how* forwarding decisions are made; the
//! OpenFlow-style flow tables live in the `nice-flow` crate and plug in via
//! [`SwitchLogic`]. The logic may rewrite headers (the paper's
//! virtual-to-physical mapping), replicate to several ports (network-level
//! multicast replication, §4.2), punt to the SDN controller (packet-in), or
//! drop.

use crate::ids::{HostId, Port};
use crate::net::Packet;
use crate::time::Time;

/// Static switch parameters.
#[derive(Debug, Clone, Copy)]
pub struct SwitchCfg {
    /// Per-packet forwarding latency (lookup + crossbar).
    pub fwd_latency: Time,
    /// One-way latency of the out-of-band control channel to the SDN
    /// controller (packet-ins and rule installations both pay this).
    pub ctrl_latency: Time,
}

impl Default for SwitchCfg {
    fn default() -> SwitchCfg {
        SwitchCfg {
            fwd_latency: Time::from_us(3),
            ctrl_latency: Time::from_us(50),
        }
    }
}

/// What a switch decides to do with one received packet. A single input
/// packet may produce many outputs (multicast groups).
#[derive(Debug)]
pub enum SwitchAction {
    /// Transmit `pkt` (possibly header-rewritten) out of `port`.
    Forward {
        /// Egress port.
        port: Port,
        /// The (possibly rewritten) packet.
        pkt: Packet,
    },
    /// Punt the packet to the SDN controller over the control channel.
    ToController {
        /// The punted packet.
        pkt: Packet,
    },
    /// Transmit out of every port except `except`.
    Flood {
        /// Port to skip (normally the ingress port).
        except: Option<Port>,
        /// The packet to flood.
        pkt: Packet,
    },
}

/// Read-only view of the switch handed to the logic on each packet.
#[derive(Debug, Clone, Copy)]
pub struct SwitchView {
    /// This switch's id (as a raw u32 to avoid import cycles in callers).
    pub switch: u32,
    /// Number of ports currently connected.
    pub num_ports: u16,
    /// The controller host, if one is attached.
    pub controller: Option<HostId>,
}

/// Pluggable forwarding behavior.
///
/// Implementations must be deterministic given the same packet sequence;
/// all state they need (tables, counters) lives inside `self`, which the
/// controller application may share via `Rc<RefCell<..>>` — the simulation
/// is single-threaded by design.
pub trait SwitchLogic {
    /// Decide what to do with `pkt`, which arrived on `in_port` at `now`.
    fn handle(
        &mut self,
        view: SwitchView,
        in_port: Port,
        pkt: Packet,
        now: Time,
    ) -> Vec<SwitchAction>;
}

/// A trivial logic that floods every packet — a dumb hub. Useful for
/// transport-layer unit tests that do not care about routing.
#[derive(Debug, Default)]
pub struct HubLogic;

impl SwitchLogic for HubLogic {
    fn handle(
        &mut self,
        _view: SwitchView,
        in_port: Port,
        pkt: Packet,
        _now: Time,
    ) -> Vec<SwitchAction> {
        vec![SwitchAction::Flood {
            except: Some(in_port),
            pkt,
        }]
    }
}

/// A logic that forwards by destination MAC using a static map and floods
/// unknown destinations. Useful for tests with known topologies.
#[derive(Debug, Default)]
pub struct StaticL2 {
    entries: Vec<(crate::net::Mac, Port)>,
}

impl StaticL2 {
    /// Create an empty table.
    pub fn new() -> StaticL2 {
        StaticL2::default()
    }

    /// Bind `mac` to `port`.
    pub fn bind(&mut self, mac: crate::net::Mac, port: Port) {
        self.entries.retain(|&(m, _)| m != mac);
        self.entries.push((mac, port));
    }
}

impl SwitchLogic for StaticL2 {
    fn handle(
        &mut self,
        _view: SwitchView,
        in_port: Port,
        pkt: Packet,
        _now: Time,
    ) -> Vec<SwitchAction> {
        if pkt.dst_mac.is_broadcast() {
            return vec![SwitchAction::Flood {
                except: Some(in_port),
                pkt,
            }];
        }
        match self.entries.iter().find(|&&(m, _)| m == pkt.dst_mac) {
            Some(&(_, port)) => vec![SwitchAction::Forward { port, pkt }],
            None => vec![SwitchAction::Flood {
                except: Some(in_port),
                pkt,
            }],
        }
    }
}

//! Hosts: end nodes running an application behind a CPU service queue.
//!
//! Every packet delivered to a host is charged a receive cost on a single
//! serial CPU (`max(arrival, cpu_busy) + cost`), which is what makes a NOOB
//! primary replica that must process `2(R-1)` acknowledgment messages per
//! put visibly slower than a NICE primary (Figure 9a of the paper).
//! Applications can charge additional explicit work via
//! [`Ctx::cpu_work`] (e.g. a storage write or a gateway forwarding step).

use std::any::Any;

use nice_workload::XorShiftRng;

use crate::ids::{HostId, Port, SwitchId};
use crate::net::{Ipv4, Mac, Packet};
use crate::time::Time;

/// CPU cost model for a host.
#[derive(Debug, Clone, Copy)]
pub struct CpuCfg {
    /// Fixed cost charged per received packet (kernel + interrupt path).
    pub per_packet: Time,
    /// Additional cost per KiB of received wire bytes (copy cost).
    pub per_kib: Time,
}

impl Default for CpuCfg {
    fn default() -> CpuCfg {
        CpuCfg {
            per_packet: Time::from_ns(1_500),
            per_kib: Time::from_ns(300),
        }
    }
}

impl CpuCfg {
    /// Receive cost of a packet of `wire_size` bytes.
    #[inline]
    pub fn rx_cost(&self, wire_size: u32) -> Time {
        self.per_packet + Time((self.per_kib.0 * wire_size as u64) / 1024)
    }
}

/// Static host configuration.
#[derive(Debug, Clone, Copy)]
pub struct HostCfg {
    /// The host's (physical) IPv4 address.
    pub ip: Ipv4,
    /// The host's MAC address.
    pub mac: Mac,
    /// CPU cost model.
    pub cpu: CpuCfg,
    /// If true, the host kernel announces itself with a gratuitous ARP on
    /// boot and on every restart, which is how the learning controller
    /// discovers `(ip, mac, port)` bindings (§5 "Mapping Service").
    pub announce_on_boot: bool,
}

impl HostCfg {
    /// A host with the default CPU model that announces on boot.
    pub fn new(ip: Ipv4, mac: Mac) -> HostCfg {
        HostCfg {
            ip,
            mac,
            cpu: CpuCfg::default(),
            announce_on_boot: true,
        }
    }
}

/// Side effects an application requests during a callback; applied by the
/// simulation kernel after the callback returns.
#[derive(Debug)]
pub(crate) enum Effect {
    Send(Packet),
    Timer {
        delay: Time,
        token: u64,
    },
    CpuWork(Time),
    CpuDefer {
        amount: Time,
        token: u64,
    },
    SwitchInject {
        sw: SwitchId,
        port: Port,
        pkt: Packet,
    },
    SwitchFlood {
        sw: SwitchId,
        except: Option<Port>,
        pkt: Packet,
    },
}

/// The application's handle to the simulation during a callback.
///
/// All interactions with the world — sending packets, arming timers,
/// charging CPU work, SDN packet-outs — go through this context and take
/// effect when the callback returns.
pub struct Ctx<'a> {
    pub(crate) now: Time,
    pub(crate) host: HostId,
    pub(crate) ip: Ipv4,
    pub(crate) mac: Mac,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) rng: &'a mut XorShiftRng,
}

impl Ctx<'_> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// This host's id.
    #[inline]
    pub fn host(&self) -> HostId {
        self.host
    }

    /// This host's IPv4 address.
    #[inline]
    pub fn ip(&self) -> Ipv4 {
        self.ip
    }

    /// This host's MAC address.
    #[inline]
    pub fn mac(&self) -> Mac {
        self.mac
    }

    /// Transmit a packet out of this host's NIC.
    #[inline]
    pub fn send(&mut self, pkt: Packet) {
        self.effects.push(Effect::Send(pkt));
    }

    /// Arm a one-shot timer that fires [`crate::App::on_timer`] with
    /// `token` after `delay`. Timers do not survive a crash.
    #[inline]
    pub fn set_timer(&mut self, delay: Time, token: u64) {
        self.effects.push(Effect::Timer { delay, token });
    }

    /// Charge `amount` of serial CPU work to this host, delaying the
    /// delivery of subsequently received packets.
    #[inline]
    pub fn cpu_work(&mut self, amount: Time) {
        self.effects.push(Effect::CpuWork(amount));
    }

    /// Enqueue `amount` of work on this host's serial CPU and fire
    /// `on_timer(token)` when it completes — i.e. at
    /// `max(now, cpu_busy) + amount`. This is how request *processing
    /// time* becomes part of the response latency: handle the arrival by
    /// deferring, then reply from the timer callback.
    #[inline]
    pub fn cpu_defer(&mut self, amount: Time, token: u64) {
        self.effects.push(Effect::CpuDefer { amount, token });
    }

    /// SDN packet-out: have switch `sw` transmit `pkt` out of `port` after
    /// the control-channel latency. Only meaningful for controller apps.
    #[inline]
    pub fn packet_out(&mut self, sw: SwitchId, port: Port, pkt: Packet) {
        self.effects.push(Effect::SwitchInject { sw, port, pkt });
    }

    /// SDN packet-out flood: have switch `sw` flood `pkt` (except out of
    /// `except`) after the control-channel latency.
    #[inline]
    pub fn packet_out_flood(&mut self, sw: SwitchId, except: Option<Port>, pkt: Packet) {
        self.effects.push(Effect::SwitchFlood { sw, except, pkt });
    }

    /// This host's deterministic random-number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut XorShiftRng {
        self.rng
    }
}

/// The simulator's side of the host-runtime boundary: a `&mut Ctx`
/// coerces to `&mut dyn NodeIo`, so protocol crates written against
/// `node-rt` run unmodified on simulated hosts. The SDN-only surface
/// ([`Ctx::packet_out`], [`Ctx::host`]) stays off the trait — apps that
/// need it are sim-only by design.
impl node_rt::NodeIo for Ctx<'_> {
    fn now(&self) -> Time {
        Ctx::now(self)
    }

    fn ip(&self) -> Ipv4 {
        Ctx::ip(self)
    }

    fn mac(&self) -> Mac {
        Ctx::mac(self)
    }

    fn send(&mut self, pkt: Packet) {
        Ctx::send(self, pkt);
    }

    fn set_timer(&mut self, delay: Time, token: u64) {
        Ctx::set_timer(self, delay, token);
    }

    fn cpu_work(&mut self, amount: Time) {
        Ctx::cpu_work(self, amount);
    }

    fn cpu_defer(&mut self, amount: Time, token: u64) {
        Ctx::cpu_defer(self, amount, token);
    }

    fn rng(&mut self) -> &mut XorShiftRng {
        self.rng
    }
}

/// Hosts a [`node_rt::NodeApp`] on a simulated host by forwarding every
/// [`App`] hook across the NodeIo boundary (`Simulation::add_node` wraps
/// apps in this; `Simulation::app` sees through it).
pub(crate) struct SimNode {
    pub(crate) inner: Box<dyn node_rt::NodeApp>,
}

impl App for SimNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.inner.on_start(ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        self.inner.on_packet(pkt, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        self.inner.on_timer(token, ctx);
    }

    fn on_crash(&mut self) {
        self.inner.on_crash();
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        self.inner.on_restart(ctx);
    }
}

/// An application running on a host.
///
/// Implementations are plain state machines: the kernel calls these hooks
/// and the app responds with effects on the [`Ctx`]. The `Any` supertrait
/// lets harnesses downcast a stored app back to its concrete type between
/// simulation steps (see `Simulation::app`).
pub trait App: Any {
    /// Called once when the simulation starts (or when the host is added,
    /// if the simulation is already running).
    fn on_start(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }

    /// A packet addressed to this host has been received and has cleared
    /// the CPU queue.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let _ = (pkt, ctx);
    }

    /// A timer armed with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        let _ = (token, ctx);
    }

    /// An OpenFlow packet-in: switch `sw` punted `pkt` (received on
    /// `in_port`) to this host, which is that switch's controller.
    fn on_packet_in(&mut self, sw: SwitchId, in_port: Port, pkt: Packet, ctx: &mut Ctx) {
        let _ = (sw, in_port, pkt, ctx);
    }

    /// The host just crashed: volatile state (locks, timers, connections)
    /// is gone. Persistent state should be kept — the paper's recovery
    /// protocol replays persistent logs (§4.4).
    fn on_crash(&mut self) {}

    /// The host restarted after a crash.
    fn on_restart(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_cost_scales_with_size() {
        let cpu = CpuCfg {
            per_packet: Time::from_us(1),
            per_kib: Time::from_us(1),
        };
        assert_eq!(cpu.rx_cost(0), Time::from_us(1));
        assert_eq!(cpu.rx_cost(1024), Time::from_us(2));
        assert_eq!(cpu.rx_cost(2048), Time::from_us(3));
    }

    #[test]
    fn default_cost_is_modest() {
        let cpu = CpuCfg::default();
        // An MTU packet should cost on the order of a couple microseconds,
        // well under its 11.2us serialization time at 1 Gbps: the network,
        // not the CPU, must bound bulk transfers.
        let c = cpu.rx_cost(1442);
        assert!(c < Time::from_us(3), "{c}");
        assert!(c > Time::from_us(1), "{c}");
    }
}

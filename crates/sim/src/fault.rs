//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded, declarative description of network and
//! node faults: per-packet message loss, duplication, extra delay, link
//! partitions between IP sets, and node crash/restart windows. The plan
//! is applied at a **single choke point** — every packet enqueue onto a
//! channel goes through [`Simulation::channel_enqueue`], whether it came
//! from a host NIC, a switch forwarding action, or a controller
//! injection — so NICE, NOOB, and the flow controller all run under the
//! same plan without code changes.
//!
//! Determinism: all random draws come from one in-tree
//! [`XorShiftRng`] seeded from the plan seed, consumed in event order by
//! the (single-threaded, deterministically ordered) event loop. The same
//! seed therefore produces a byte-identical fault trace
//! ([`Simulation::fault_trace`]) and an identical simulation outcome —
//! `crates/sim/tests` and the nicekv fault suites assert this.
//!
//! [`Simulation::channel_enqueue`]: crate::Simulation
//! [`Simulation::fault_trace`]: crate::Simulation::fault_trace

use std::fmt;

use nice_workload::{Rng, XorShiftRng};

use crate::net::{Ipv4, Packet, Proto};
use crate::time::Time;

/// A scheduled crash (and optional restart) of a node, expressed as an
/// index into the host list handed to
/// [`Simulation::install_fault_plan`](crate::Simulation::install_fault_plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Index into the caller's host slice.
    pub node: usize,
    /// Absolute crash time.
    pub down: Time,
    /// Absolute restart time; `None` means the node stays down.
    pub up: Option<Time>,
}

/// A bidirectional link partition between two IP sets: packets with
/// source in one set and destination in the other are dropped while the
/// window `[from, until)` is open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub a: Vec<Ipv4>,
    /// The other side of the cut.
    pub b: Vec<Ipv4>,
    /// Partition start (inclusive).
    pub from: Time,
    /// Partition end (exclusive).
    pub until: Time,
}

impl Partition {
    fn severs(&self, at: Time, src: Ipv4, dst: Ipv4) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        (self.a.contains(&src) && self.b.contains(&dst))
            || (self.b.contains(&src) && self.a.contains(&dst))
    }
}

/// A deterministic, replayable fault schedule. Build one with the fluent
/// API and install it with
/// [`Simulation::set_fault_plan`](crate::Simulation::set_fault_plan) or
/// [`Simulation::install_fault_plan`](crate::Simulation::install_fault_plan).
///
/// ```
/// use nice_sim::{FaultPlan, Time};
/// let plan = FaultPlan::new(7)
///     .loss(0.05)
///     .duplication(0.01)
///     .extra_delay(0.02, Time::from_ms(2))
///     .window(Time::from_ms(100), Time::MAX);
/// assert_eq!(plan.seed(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    loss: f64,
    dup: f64,
    delay_prob: f64,
    delay_max: Time,
    from: Time,
    until: Time,
    spare_arp: bool,
    partitions: Vec<Partition>,
    outages: Vec<Outage>,
}

impl FaultPlan {
    /// A plan with no faults, drawing from `seed`. Probabilistic faults
    /// only apply inside the active window (default: always open).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            loss: 0.0,
            dup: 0.0,
            delay_prob: 0.0,
            delay_max: Time::ZERO,
            from: Time::ZERO,
            until: Time::MAX,
            spare_arp: true,
            partitions: Vec::new(),
            outages: Vec::new(),
        }
    }

    /// The determinism seed this plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop each packet independently with probability `p`.
    pub fn loss(mut self, p: f64) -> FaultPlan {
        self.loss = p;
        self
    }

    /// Duplicate each delivered packet with probability `p`.
    pub fn duplication(mut self, p: f64) -> FaultPlan {
        self.dup = p;
        self
    }

    /// With probability `p`, delay a delivered packet by an extra amount
    /// drawn uniformly from `(0, max]`.
    pub fn extra_delay(mut self, p: f64, max: Time) -> FaultPlan {
        self.delay_prob = p;
        self.delay_max = max;
        self
    }

    /// Restrict the probabilistic faults (loss/duplication/delay) to the
    /// window `[from, until)`. Partitions and outages carry their own
    /// windows and are unaffected.
    pub fn window(mut self, from: Time, until: Time) -> FaultPlan {
        self.from = from;
        self.until = until;
        self
    }

    /// Also subject ARP traffic to probabilistic faults. By default ARP
    /// is spared so address resolution (gratuitous ARPs at boot) cannot
    /// be permanently lost — the protocols under test ride UDP/TCP.
    pub fn include_arp(mut self) -> FaultPlan {
        self.spare_arp = false;
        self
    }

    /// Sever traffic between IP sets `a` and `b` during `[from, until)`.
    pub fn partition(
        mut self,
        a: impl Into<Vec<Ipv4>>,
        b: impl Into<Vec<Ipv4>>,
        from: Time,
        until: Time,
    ) -> FaultPlan {
        self.partitions.push(Partition {
            a: a.into(),
            b: b.into(),
            from,
            until,
        });
        self
    }

    /// Crash node `node` (an index into the host slice passed to
    /// `install_fault_plan`) at `down`, restarting at `up` if given.
    pub fn outage(mut self, node: usize, down: Time, up: Option<Time>) -> FaultPlan {
        self.outages.push(Outage { node, down, up });
        self
    }

    /// The crash/restart windows scheduled by this plan.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }
}

/// What kind of fault fired for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Dropped by the random-loss draw.
    Loss,
    /// Dropped by an open partition window.
    Partition,
    /// Delivered twice.
    Duplicate,
    /// Delivered with extra latency.
    Delay(Time),
}

/// One entry of the fault trace: a fault that fired, with enough packet
/// identity to make traces comparable across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// When the packet hit the choke point.
    pub at: Time,
    /// The fault applied.
    pub kind: FaultKind,
    /// Packet source IP.
    pub src: Ipv4,
    /// Packet destination IP.
    pub dst: Ipv4,
    /// Packet wire size in bytes.
    pub wire: u32,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            FaultKind::Loss => "loss".to_string(),
            FaultKind::Partition => "partition".to_string(),
            FaultKind::Duplicate => "dup".to_string(),
            FaultKind::Delay(d) => format!("delay+{}", d.as_ns()),
        };
        write!(
            f,
            "{} {} {}->{} {}B",
            self.at.as_ns(),
            kind,
            self.src,
            self.dst,
            self.wire
        )
    }
}

/// Counters over every packet the injector inspected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets that reached the choke point.
    pub inspected: u64,
    /// Packets dropped by the loss draw.
    pub lost: u64,
    /// Packets dropped by a partition.
    pub partitioned: u64,
    /// Packets duplicated.
    pub duplicated: u64,
    /// Packets given extra delay.
    pub delayed: u64,
}

/// The per-packet verdict of the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// How many copies to enqueue: 0 (dropped), 1, or 2 (duplicated).
    pub copies: u32,
    /// Extra latency added to each copy's arrival.
    pub extra_delay: Time,
}

impl Verdict {
    /// The no-fault verdict: one copy, no extra delay.
    pub const CLEAN: Verdict = Verdict {
        copies: 1,
        extra_delay: Time::ZERO,
    };
}

/// Runtime state of an installed [`FaultPlan`]: the plan, its RNG
/// stream, counters, and the replayable trace.
pub struct FaultState {
    plan: FaultPlan,
    rng: XorShiftRng,
    stats: FaultStats,
    trace: Vec<FaultRecord>,
}

impl FaultState {
    /// Instantiate the runtime state for `plan`.
    pub fn new(plan: FaultPlan) -> FaultState {
        // Premix the plan seed away from the per-host RNG streams so a
        // plan seeded equal to the simulation seed still draws an
        // independent sequence.
        let rng = XorShiftRng::seed_from_u64(plan.seed ^ 0x0FA0_17D1_5ACE_5EED_u64);
        FaultState {
            plan,
            rng,
            stats: FaultStats::default(),
            trace: Vec::new(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The trace of every fault that fired, in event order.
    pub fn trace(&self) -> &[FaultRecord] {
        &self.trace
    }

    /// Render the trace one record per line — byte-identical across
    /// same-seed runs (asserted by tests).
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for r in &self.trace {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    fn record(&mut self, at: Time, kind: FaultKind, pkt: &Packet) {
        self.trace.push(FaultRecord {
            at,
            kind,
            src: pkt.src,
            dst: pkt.dst,
            wire: pkt.wire_size,
        });
    }

    /// Judge one packet at the choke point. Draws from the plan RNG in
    /// event order; partitions are checked first (no draw), then loss,
    /// duplication, and delay.
    pub fn judge(&mut self, at: Time, pkt: &Packet) -> Verdict {
        self.stats.inspected += 1;
        for i in 0..self.plan.partitions.len() {
            if self.plan.partitions[i].severs(at, pkt.src, pkt.dst) {
                self.stats.partitioned += 1;
                self.record(at, FaultKind::Partition, pkt);
                return Verdict {
                    copies: 0,
                    extra_delay: Time::ZERO,
                };
            }
        }
        if at < self.plan.from || at >= self.plan.until {
            return Verdict::CLEAN;
        }
        if self.plan.spare_arp && pkt.proto == Proto::Arp {
            return Verdict::CLEAN;
        }
        if self.plan.loss > 0.0 && self.rng.random_f64() < self.plan.loss {
            self.stats.lost += 1;
            self.record(at, FaultKind::Loss, pkt);
            return Verdict {
                copies: 0,
                extra_delay: Time::ZERO,
            };
        }
        let mut v = Verdict::CLEAN;
        if self.plan.dup > 0.0 && self.rng.random_f64() < self.plan.dup {
            self.stats.duplicated += 1;
            self.record(at, FaultKind::Duplicate, pkt);
            v.copies = 2;
        }
        if self.plan.delay_prob > 0.0
            && self.plan.delay_max > Time::ZERO
            && self.rng.random_f64() < self.plan.delay_prob
        {
            let ns = self.rng.random_range(0..self.plan.delay_max.as_ns()) + 1;
            let d = Time::from_ns(ns);
            self.stats.delayed += 1;
            self.record(at, FaultKind::Delay(d), pkt);
            v.extra_delay = d;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn pkt(src: Ipv4, dst: Ipv4) -> Packet {
        Packet::udp(src, crate::net::Mac(1), dst, 1, 2, 100, Rc::new(0u32))
    }

    #[test]
    fn clean_plan_never_faults() {
        let mut st = FaultState::new(FaultPlan::new(1));
        let p = pkt(Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2));
        for i in 0..1000 {
            assert_eq!(st.judge(Time::from_us(i), &p), Verdict::CLEAN);
        }
        assert_eq!(st.stats().inspected, 1000);
        assert_eq!(st.trace().len(), 0);
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let mut st = FaultState::new(FaultPlan::new(2).loss(0.2));
        let p = pkt(Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2));
        let mut dropped = 0;
        for i in 0..10_000 {
            if st.judge(Time::from_us(i), &p).copies == 0 {
                dropped += 1;
            }
        }
        assert!((1500..2500).contains(&dropped), "{dropped}");
        assert_eq!(st.stats().lost, dropped);
    }

    #[test]
    fn partition_severs_both_directions_only_in_window() {
        let a = Ipv4::new(10, 0, 0, 1);
        let b = Ipv4::new(10, 0, 0, 2);
        let c = Ipv4::new(10, 0, 0, 3);
        let plan =
            FaultPlan::new(3).partition(vec![a], vec![b], Time::from_ms(1), Time::from_ms(2));
        let mut st = FaultState::new(plan);
        // before the window
        assert_eq!(st.judge(Time::ZERO, &pkt(a, b)).copies, 1);
        // inside: both directions cut, unrelated traffic flows
        assert_eq!(st.judge(Time::from_ms(1), &pkt(a, b)).copies, 0);
        assert_eq!(st.judge(Time::from_ms(1), &pkt(b, a)).copies, 0);
        assert_eq!(st.judge(Time::from_ms(1), &pkt(a, c)).copies, 1);
        // at/after the (exclusive) end
        assert_eq!(st.judge(Time::from_ms(2), &pkt(a, b)).copies, 1);
        assert_eq!(st.stats().partitioned, 2);
    }

    #[test]
    fn window_gates_probabilistic_faults() {
        let plan = FaultPlan::new(4)
            .loss(1.0)
            .window(Time::from_ms(5), Time::from_ms(6));
        let mut st = FaultState::new(plan);
        let p = pkt(Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2));
        assert_eq!(st.judge(Time::from_ms(4), &p).copies, 1);
        assert_eq!(st.judge(Time::from_ms(5), &p).copies, 0);
        assert_eq!(st.judge(Time::from_ms(6), &p).copies, 1);
    }

    #[test]
    fn arp_is_spared_unless_included() {
        let arp = Packet::arp_request(
            Ipv4::new(10, 0, 0, 1),
            crate::net::Mac(1),
            Ipv4::new(10, 0, 0, 2),
        );
        let mut spared = FaultState::new(FaultPlan::new(5).loss(1.0));
        assert_eq!(spared.judge(Time::ZERO, &arp).copies, 1);
        let mut included = FaultState::new(FaultPlan::new(5).loss(1.0).include_arp());
        assert_eq!(included.judge(Time::ZERO, &arp).copies, 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed)
                .loss(0.1)
                .duplication(0.1)
                .extra_delay(0.1, Time::from_us(50));
            let mut st = FaultState::new(plan);
            let p = pkt(Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2));
            for i in 0..5000 {
                st.judge(Time::from_us(i), &p);
            }
            st.render_trace()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn duplicate_and_delay_stack() {
        let plan = FaultPlan::new(6)
            .duplication(1.0)
            .extra_delay(1.0, Time::from_us(10));
        let mut st = FaultState::new(plan);
        let p = pkt(Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2));
        let v = st.judge(Time::ZERO, &p);
        assert_eq!(v.copies, 2);
        assert!(v.extra_delay > Time::ZERO && v.extra_delay <= Time::from_us(10));
        assert_eq!(st.stats().duplicated, 1);
        assert_eq!(st.stats().delayed, 1);
    }
}

//! Directed link channels: bandwidth serialization, propagation delay, and
//! finite drop-tail egress queues.
//!
//! Each full-duplex link is modeled as two independent [`Channel`]s. A
//! channel serializes packets FIFO at its configured bit rate: a packet
//! enqueued at time `t` begins transmission at `max(t, busy_until)`,
//! finishes `wire_size * 8 / bw` later, and arrives at the far end after an
//! additional propagation delay. The egress buffer is finite; packets that
//! would overflow it are dropped (and counted) — this is what forces the
//! reliable-multicast transport's NACK repair path to exist, just as slow
//! receivers did in the paper's 50 Mbps quorum experiment (§6.3).

use std::collections::VecDeque;

use crate::ids::{ChannelId, Endpoint};
use crate::net::Packet;
use crate::time::Time;

/// Static configuration of one directed channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelCfg {
    /// Bit rate in bits per second.
    pub bw_bps: u64,
    /// One-way propagation delay.
    pub latency: Time,
    /// Egress buffer capacity in bytes. Packets that do not fit are dropped.
    pub queue_bytes: u64,
}

impl ChannelCfg {
    /// A 1 Gbps link with 5 µs propagation and a 512 KiB buffer — the
    /// defaults used to mimic the paper's CloudLab testbed.
    pub fn gigabit() -> ChannelCfg {
        ChannelCfg {
            bw_bps: 1_000_000_000,
            latency: Time::from_us(5),
            queue_bytes: 512 * 1024,
        }
    }

    /// Same propagation/buffer as [`ChannelCfg::gigabit`] but at an
    /// arbitrary rate (e.g. the 50 Mbps throttled replicas of Figure 8).
    pub fn with_rate(bps: u64) -> ChannelCfg {
        ChannelCfg {
            bw_bps: bps,
            ..ChannelCfg::gigabit()
        }
    }

    /// A host uplink: same rate/latency but with a large (8 MiB) buffer,
    /// modeling the kernel socket send buffers of an end host. Drops under
    /// fan-out pressure then happen where they do in a real deployment —
    /// at switch egress queues — not inside the sender's kernel.
    pub fn host_uplink(self) -> ChannelCfg {
        ChannelCfg {
            queue_bytes: 8 * 1024 * 1024,
            ..self
        }
    }
}

/// Traffic counters for one channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelStats {
    /// Bytes accepted for transmission (wire bytes, including headers).
    pub bytes: u64,
    /// Packets accepted for transmission.
    pub packets: u64,
    /// Packets dropped at the egress buffer.
    pub drops: u64,
    /// Bytes dropped at the egress buffer.
    pub drop_bytes: u64,
}

/// The outcome of offering a packet to a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Accepted; the packet arrives at the far end at this time.
    Arrives(Time),
    /// Dropped at the egress buffer.
    Dropped,
}

/// One direction of a link.
#[derive(Debug)]
pub struct Channel {
    /// This channel's id (index into the simulation's channel table).
    pub id: ChannelId,
    /// Where accepted packets are delivered.
    pub dst: Endpoint,
    cfg: ChannelCfg,
    busy_until: Time,
    /// Packets currently occupying the egress buffer, as
    /// `(transmit-completion time, wire bytes)`; lazily pruned.
    inflight: VecDeque<(Time, u32)>,
    stats: ChannelStats,
}

impl Channel {
    /// Create a channel delivering to `dst`.
    pub fn new(id: ChannelId, dst: Endpoint, cfg: ChannelCfg) -> Channel {
        Channel {
            id,
            dst,
            cfg,
            busy_until: Time::ZERO,
            inflight: VecDeque::new(),
            stats: ChannelStats::default(),
        }
    }

    /// Current configuration.
    pub fn cfg(&self) -> ChannelCfg {
        self.cfg
    }

    /// Replace the bit rate (used for mid-run throttling, e.g. Figure 8's
    /// slow replicas). Packets already accepted keep their old schedule.
    pub fn set_rate(&mut self, bps: u64) {
        assert!(bps > 0, "link rate must be positive");
        self.cfg.bw_bps = bps;
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Bytes currently buffered (including the packet on the wire).
    pub fn occupancy(&mut self, now: Time) -> u64 {
        self.prune(now);
        self.inflight.iter().map(|&(_, b)| b as u64).sum()
    }

    fn prune(&mut self, now: Time) {
        while let Some(&(done, _)) = self.inflight.front() {
            if done <= now {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Offer `pkt` for transmission at time `now`; returns the delivery
    /// time at the far end, or [`Enqueue::Dropped`] on buffer overflow.
    pub fn enqueue(&mut self, now: Time, pkt: &Packet) -> Enqueue {
        let size = pkt.wire_size as u64;
        if self.occupancy(now) + size > self.cfg.queue_bytes {
            self.stats.drops += 1;
            self.stats.drop_bytes += size;
            return Enqueue::Dropped;
        }
        let start = now.max(self.busy_until);
        let done = start + Time::tx_time(size, self.cfg.bw_bps);
        self.busy_until = done;
        self.inflight.push_back((done, pkt.wire_size));
        self.stats.bytes += size;
        self.stats.packets += 1;
        Enqueue::Arrives(done + self.cfg.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;
    use crate::net::{Ipv4, Mac};
    use std::rc::Rc;

    fn pkt(bytes: u32) -> Packet {
        // wire_size = HDR_UDP(42) + bytes
        Packet::udp(
            Ipv4::new(1, 0, 0, 1),
            Mac(1),
            Ipv4::new(1, 0, 0, 2),
            1,
            2,
            bytes,
            Rc::new(()),
        )
    }

    fn chan(cfg: ChannelCfg) -> Channel {
        Channel::new(ChannelId(0), Endpoint::Host(HostId(0)), cfg)
    }

    #[test]
    fn serialization_fifo() {
        let cfg = ChannelCfg {
            bw_bps: 8_000_000_000, // 1 byte per ns
            latency: Time::from_ns(100),
            queue_bytes: 1 << 20,
        };
        let mut c = chan(cfg);
        let p = pkt(58); // wire 100 bytes -> 100 ns tx
        let a1 = c.enqueue(Time::ZERO, &p);
        let a2 = c.enqueue(Time::ZERO, &p);
        assert_eq!(a1, Enqueue::Arrives(Time::from_ns(200)));
        // second packet waits for the first to finish serializing
        assert_eq!(a2, Enqueue::Arrives(Time::from_ns(300)));
    }

    #[test]
    fn idle_channel_restarts_clock() {
        let cfg = ChannelCfg {
            bw_bps: 8_000_000_000,
            latency: Time::ZERO,
            queue_bytes: 1 << 20,
        };
        let mut c = chan(cfg);
        let p = pkt(58);
        c.enqueue(Time::ZERO, &p);
        // enqueue long after the first completes: starts fresh
        let a = c.enqueue(Time::from_us(5), &p);
        assert_eq!(a, Enqueue::Arrives(Time::from_us(5) + Time::from_ns(100)));
    }

    #[test]
    fn drop_tail_overflow() {
        let cfg = ChannelCfg {
            bw_bps: 1_000_000, // slow: 100-byte pkt takes 800 us
            latency: Time::ZERO,
            queue_bytes: 250,
        };
        let mut c = chan(cfg);
        let p = pkt(58); // 100 wire bytes
        assert!(matches!(c.enqueue(Time::ZERO, &p), Enqueue::Arrives(_)));
        assert!(matches!(c.enqueue(Time::ZERO, &p), Enqueue::Arrives(_)));
        // third would make 300 > 250
        assert_eq!(c.enqueue(Time::ZERO, &p), Enqueue::Dropped);
        let s = c.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.drops, 1);
        assert_eq!(s.drop_bytes, 100);
        assert_eq!(s.bytes, 200);
    }

    #[test]
    fn occupancy_drains_over_time() {
        let cfg = ChannelCfg {
            bw_bps: 1_000_000,
            latency: Time::ZERO,
            queue_bytes: 1 << 20,
        };
        let mut c = chan(cfg);
        let p = pkt(58);
        c.enqueue(Time::ZERO, &p);
        assert_eq!(c.occupancy(Time::ZERO), 100);
        // after the 800us tx completes the buffer is empty
        assert_eq!(c.occupancy(Time::from_ms(1)), 0);
    }

    #[test]
    fn throttling_applies_to_new_packets() {
        let mut c = chan(ChannelCfg::gigabit());
        let p = pkt(1358); // 1400 wire bytes, 11.2us at 1G
        let Enqueue::Arrives(a1) = c.enqueue(Time::ZERO, &p) else {
            panic!()
        };
        c.set_rate(50_000_000);
        let Enqueue::Arrives(a2) = c.enqueue(Time::ZERO, &p) else {
            panic!()
        };
        // second packet serialized at 50 Mbps: 224us after the first finishes
        assert_eq!(a2 - a1, Time::from_ns(224_000));
    }
}

// Randomized property tests, driven by the in-tree seeded PRNG so they
// stay deterministic and build offline (no proptest dependency).
#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::ids::{ChannelId, HostId};
    use crate::net::{Ipv4, Mac, Packet};
    use nice_workload::{Rng, XorShiftRng};
    use std::rc::Rc;

    fn pkt(bytes: u32) -> Packet {
        Packet::udp(
            Ipv4::new(1, 0, 0, 1),
            Mac(1),
            Ipv4::new(1, 0, 0, 2),
            1,
            2,
            bytes,
            Rc::new(()),
        )
    }

    /// FIFO: arrival times are non-decreasing in enqueue order, every
    /// accepted packet takes at least its serialization time, and the
    /// byte counter equals the sum of accepted wire sizes.
    #[test]
    fn fifo_and_conservation() {
        let bws = [50_000_000u64, 1_000_000_000, 10_000_000_000];
        for case in 0..64u64 {
            let mut rng = XorShiftRng::seed_from_u64(0x11CE_0001 ^ case);
            let n = rng.random_range(1usize..40);
            let sizes: Vec<u32> = (0..n).map(|_| rng.random_range(0u32..60_000)).collect();
            let bw = bws[rng.random_range(0usize..bws.len())];
            let cfg = ChannelCfg {
                bw_bps: bw,
                latency: Time::from_us(5),
                queue_bytes: 1 << 22,
            };
            let mut c = Channel::new(ChannelId(0), Endpoint::Host(HostId(0)), cfg);
            let mut last = Time::ZERO;
            let mut accepted_bytes = 0u64;
            for (i, &s) in sizes.iter().enumerate() {
                let p = pkt(s);
                let now = Time::from_us(i as u64); // staggered arrivals
                match c.enqueue(now, &p) {
                    Enqueue::Arrives(t) => {
                        assert!(t >= last, "reordering: {t} < {last} (case {case})");
                        assert!(t >= now + Time::tx_time(p.wire_size as u64, bw) + cfg.latency);
                        last = t;
                        accepted_bytes += p.wire_size as u64;
                    }
                    Enqueue::Dropped => {}
                }
            }
            assert_eq!(c.stats().bytes, accepted_bytes, "case {case}");
        }
    }

    /// Finite buffers: with a queue of Q bytes, occupancy never
    /// exceeds Q, and drops happen exactly when it would.
    #[test]
    fn buffer_never_overflows() {
        for case in 0..64u64 {
            let mut rng = XorShiftRng::seed_from_u64(0x11CE_0002 ^ case);
            let n = rng.random_range(1usize..60);
            let sizes: Vec<u32> = (0..n).map(|_| rng.random_range(1u32..3_000)).collect();
            let q = rng.random_range(2_000u64..20_000);
            let cfg = ChannelCfg {
                bw_bps: 1_000_000,
                latency: Time::ZERO,
                queue_bytes: q,
            };
            let mut c = Channel::new(ChannelId(0), Endpoint::Host(HostId(0)), cfg);
            for &s in &sizes {
                let p = pkt(s);
                let _ = c.enqueue(Time::ZERO, &p);
                assert!(c.occupancy(Time::ZERO) <= q, "case {case}");
            }
            let st = c.stats();
            assert_eq!(st.packets + st.drops, sizes.len() as u64, "case {case}");
        }
    }
}

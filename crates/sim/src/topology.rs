//! Topology helpers.
//!
//! The paper's testbed is a single-switch star of 30 hosts with 1 Gbps
//! NICs (§6 "Platform"); [`StarBuilder`] reproduces it. Multi-switch trees
//! can be assembled manually with [`Simulation::connect_switches`] — the
//! NICE controller installs identical rules on every switch (§6).

use crate::host::{App, HostCfg};
use crate::ids::{HostId, Port, SwitchId};
use crate::link::ChannelCfg;
use crate::net::{Ipv4, Mac};
use crate::sim::Simulation;
use crate::switch::{SwitchCfg, SwitchLogic};

/// Incrementally builds a single-switch star and hands out sequential
/// addresses from a base prefix.
pub struct StarBuilder {
    switch: SwitchId,
    link: ChannelCfg,
    next_host: u32,
    base_ip: Ipv4,
}

impl StarBuilder {
    /// Create the switch with the given logic and per-host link config.
    /// Host IPs are allocated sequentially from `base_ip + 1`.
    pub fn new(
        sim: &mut Simulation,
        logic: Box<dyn SwitchLogic>,
        sw_cfg: SwitchCfg,
        link: ChannelCfg,
        base_ip: Ipv4,
    ) -> StarBuilder {
        let switch = sim.add_switch(logic, sw_cfg);
        StarBuilder {
            switch,
            link,
            next_host: 0,
            base_ip,
        }
    }

    /// The switch at the center of the star.
    pub fn switch(&self) -> SwitchId {
        self.switch
    }

    /// The IP the next host added will receive.
    pub fn next_ip(&self) -> Ipv4 {
        Ipv4(self.base_ip.0 + self.next_host + 1)
    }

    /// Add a host running `app`; returns `(host, ip, port)`.
    pub fn add(&mut self, sim: &mut Simulation, app: Box<dyn App>) -> (HostId, Ipv4, Port) {
        let ip = self.next_ip();
        let mac = Mac(0x0200_0000_0000 + u64::from(self.next_host) + 1);
        self.next_host += 1;
        let host = sim.add_host(app, HostCfg::new(ip, mac));
        let port = sim.connect_asym(host, self.switch, self.link.host_uplink(), self.link);
        (host, ip, port)
    }

    /// Add a host with an explicit config (custom CPU model or address).
    pub fn add_with_cfg(
        &mut self,
        sim: &mut Simulation,
        app: Box<dyn App>,
        cfg: HostCfg,
    ) -> (HostId, Port) {
        self.next_host += 1;
        let host = sim.add_host(app, cfg);
        let port = sim.connect_asym(host, self.switch, self.link.host_uplink(), self.link);
        (host, port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::HubLogic;

    struct Idle;
    impl App for Idle {}

    #[test]
    fn star_allocates_sequential_ips() {
        let mut sim = Simulation::new(0);
        let mut star = StarBuilder::new(
            &mut sim,
            Box::new(HubLogic),
            SwitchCfg::default(),
            ChannelCfg::gigabit(),
            Ipv4::new(10, 0, 0, 0),
        );
        let (_, ip1, p1) = star.add(&mut sim, Box::new(Idle));
        let (_, ip2, p2) = star.add(&mut sim, Box::new(Idle));
        assert_eq!(ip1, Ipv4::new(10, 0, 0, 1));
        assert_eq!(ip2, Ipv4::new(10, 0, 0, 2));
        assert_eq!(p1, Port(0));
        assert_eq!(p2, Port(1));
    }
}

//! Simulated time, re-exported from `node-rt`.
//!
//! [`Time`] is shared between hosts and node apps across the NodeIo
//! boundary, so the type itself lives in `node_rt::time`; the simulator's
//! event loop advances it along the event heap while the real UDP runtime
//! derives it from a wall-clock epoch. This shim keeps every historical
//! `nice_sim::time::*` path working.

pub use node_rt::time::*;

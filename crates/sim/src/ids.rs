//! Identifiers for simulation entities.

use std::fmt;

/// Identifies a host (an end node running an [`crate::App`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Identifies a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

/// A port number on a particular switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u16);

/// Identifies a directed link channel (one direction of a full-duplex link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

/// Either end of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A host NIC.
    Host(HostId),
    /// A specific port of a switch.
    Switch(SwitchId, Port),
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

//! # nice-sim — deterministic packet-level datacenter network simulator
//!
//! This crate is the hardware substrate for the NICE (HPDC '17)
//! reproduction: it stands in for the paper's CloudLab testbed (30 hosts,
//! 1 Gbps NICs, one OpenFlow switch). It provides:
//!
//! * a discrete-event kernel with deterministic `(time, seq)` ordering
//!   ([`Simulation`]),
//! * full-duplex links with bandwidth serialization, propagation delay,
//!   and finite drop-tail buffers ([`link`]),
//! * store-and-forward switches with *pluggable* forwarding logic
//!   ([`SwitchLogic`]) — the OpenFlow flow tables live in `nice-flow`,
//! * hosts running application state machines ([`App`]) behind a serial
//!   CPU queue, with crash/restart failure injection and per-host PRNGs,
//! * NIC-, link-, and switch-level byte accounting (the paper's Figures 6
//!   and 7 are measured from these counters).
//!
//! ## Example
//!
//! ```
//! use nice_sim::{App, ChannelCfg, Ctx, HostCfg, Ipv4, Mac, Packet, Simulation, SwitchCfg, Time};
//! use nice_sim::switch::HubLogic;
//! use std::rc::Rc;
//!
//! struct Sender { peer: Ipv4 }
//! impl App for Sender {
//!     fn on_start(&mut self, ctx: &mut Ctx) {
//!         let pkt = Packet::udp(ctx.ip(), ctx.mac(), self.peer, 1000, 2000, 64, Rc::new("hi"));
//!         ctx.send(pkt);
//!     }
//! }
//! #[derive(Default)]
//! struct Receiver { got: usize }
//! impl App for Receiver {
//!     fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Ctx) { self.got += 1; }
//! }
//!
//! let mut sim = Simulation::new(7);
//! let sw = sim.add_switch(Box::new(HubLogic), SwitchCfg::default());
//! let b_ip = Ipv4::new(10, 0, 0, 2);
//! let a = sim.add_host(Box::new(Sender { peer: b_ip }), HostCfg::new(Ipv4::new(10, 0, 0, 1), Mac(1)));
//! let b = sim.add_host(Box::new(Receiver::default()), HostCfg::new(b_ip, Mac(2)));
//! sim.connect(a, sw, ChannelCfg::gigabit());
//! sim.connect(b, sw, ChannelCfg::gigabit());
//! sim.run_until(Time::from_ms(1));
//! assert_eq!(sim.app::<Receiver>(b).got, 1);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod host;
pub mod ids;
pub mod link;
pub mod net;
pub mod sim;
pub mod switch;
pub mod time;
pub mod topology;

pub use fault::{FaultPlan, FaultRecord, FaultStats};
pub use host::{App, CpuCfg, Ctx, HostCfg};
pub use ids::{ChannelId, Endpoint, HostId, Port, SwitchId};
pub use link::{Channel, ChannelCfg, ChannelStats};
pub use net::{ArpOp, Ipv4, Mac, Packet, Payload, Proto, HDR_TCP, HDR_UDP, MTU};
pub use nice_workload::{Rng, XorShiftRng};
pub use node_rt::{NodeApp, NodeIo};
pub use sim::{HostStats, Simulation};
pub use switch::{SwitchAction, SwitchCfg, SwitchLogic, SwitchView};
pub use time::Time;
pub use topology::StarBuilder;

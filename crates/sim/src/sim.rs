//! The discrete-event simulation kernel.
//!
//! [`Simulation`] owns the topology (hosts, switches, channels), the event
//! heap, and the per-entity state. Determinism: events are ordered by
//! `(time, insertion sequence)`, every host gets a PRNG seeded from the
//! master seed and its id, and nothing reads the wall clock.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use nice_workload::XorShiftRng;

use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::host::{App, Ctx, Effect, HostCfg};
use crate::ids::{ChannelId, Endpoint, HostId, Port, SwitchId};
use crate::link::{Channel, ChannelCfg, ChannelStats, Enqueue};
use crate::net::{ArpOp, Packet, Proto};
use crate::switch::{SwitchAction, SwitchCfg, SwitchLogic, SwitchView};
use crate::time::Time;

/// Per-host NIC-level traffic counters (what Figure 7's "load ratio" is
/// measured from).
#[derive(Debug, Clone, Copy, Default)]
pub struct HostStats {
    /// Wire bytes transmitted by this host.
    pub bytes_sent: u64,
    /// Wire bytes received by this host.
    pub bytes_recv: u64,
    /// Packets transmitted.
    pub pkts_sent: u64,
    /// Packets received.
    pub pkts_recv: u64,
    /// Packets dropped because the host was down.
    pub drops_down: u64,
    /// Packets discarded by NIC/kernel filtering (not addressed to us).
    pub filtered: u64,
}

struct HostNode {
    app: Option<Box<dyn App>>,
    cfg: HostCfg,
    uplink: Option<ChannelId>,
    downlink: Option<ChannelId>,
    cpu_busy: Time,
    up: bool,
    gen: u32,
    rng: XorShiftRng,
    stats: HostStats,
}

struct SwitchNode {
    logic: Option<Box<dyn SwitchLogic>>,
    cfg: SwitchCfg,
    /// Egress channel per port.
    ports: Vec<ChannelId>,
    controller: Option<HostId>,
}

enum Ev {
    Start {
        host: HostId,
    },
    NicArrive {
        host: HostId,
        pkt: Packet,
    },
    AppDeliver {
        host: HostId,
        gen: u32,
        pkt: Packet,
    },
    Timer {
        host: HostId,
        gen: u32,
        token: u64,
    },
    SwitchArrive {
        sw: SwitchId,
        port: Port,
        pkt: Packet,
    },
    PacketIn {
        ctrl: HostId,
        sw: SwitchId,
        port: Port,
        pkt: Packet,
    },
    Inject {
        sw: SwitchId,
        port: Port,
        pkt: Packet,
    },
    InjectFlood {
        sw: SwitchId,
        except: Option<Port>,
        pkt: Packet,
    },
    Crash {
        host: HostId,
    },
    Restart {
        host: HostId,
    },
    SetRate {
        host: HostId,
        bps: u64,
    },
}

struct HeapItem {
    at: Time,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The simulation world.
pub struct Simulation {
    now: Time,
    seq: u64,
    heap: BinaryHeap<HeapItem>,
    hosts: Vec<HostNode>,
    switches: Vec<SwitchNode>,
    channels: Vec<Channel>,
    seed: u64,
    effects: Vec<Effect>,
    events_processed: u64,
    faults: Option<FaultState>,
}

impl Simulation {
    /// Create an empty world with the given determinism seed.
    pub fn new(seed: u64) -> Simulation {
        Simulation {
            now: Time::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            hosts: Vec::new(),
            switches: Vec::new(),
            channels: Vec::new(),
            seed,
            effects: Vec::new(),
            events_processed: 0,
            faults: None,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events processed so far (a cheap progress/perf metric).
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn push(&mut self, at: Time, ev: Ev) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapItem { at, seq, ev });
    }

    // ---------------------------------------------------------------
    // Topology construction
    // ---------------------------------------------------------------

    /// Add a switch with the given forwarding logic.
    pub fn add_switch(&mut self, logic: Box<dyn SwitchLogic>, cfg: SwitchCfg) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(SwitchNode {
            logic: Some(logic),
            cfg,
            ports: Vec::new(),
            controller: None,
        });
        id
    }

    /// Add a host running `app`. Its `on_start` hook fires at the current
    /// simulation time.
    pub fn add_host(&mut self, app: Box<dyn App>, cfg: HostCfg) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        let rng = XorShiftRng::seed_from_u64(
            self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id.0 as u64 + 1)),
        );
        self.hosts.push(HostNode {
            app: Some(app),
            cfg,
            uplink: None,
            downlink: None,
            cpu_busy: Time::ZERO,
            up: true,
            gen: 0,
            rng,
            stats: HostStats::default(),
        });
        let at = self.now;
        self.push(at, Ev::Start { host: id });
        id
    }

    /// Add a host running a [`node_rt::NodeApp`] — protocol logic written
    /// against the NodeIo boundary rather than the simulator's [`App`].
    /// `Simulation::app::<T>()` sees through the wrapper, so harnesses
    /// downcast to the concrete app type exactly as for native apps.
    pub fn add_node(&mut self, app: Box<dyn node_rt::NodeApp>, cfg: HostCfg) -> HostId {
        self.add_host(Box::new(crate::host::SimNode { inner: app }), cfg)
    }

    /// Connect a host to a switch with an asymmetric full-duplex link:
    /// `up` configures host→switch (typically a large kernel send buffer),
    /// `down` configures switch→host (a real, finite switch egress queue —
    /// where multicast overload to a slow receiver drops packets).
    pub fn connect_asym(
        &mut self,
        host: HostId,
        sw: SwitchId,
        up: ChannelCfg,
        down: ChannelCfg,
    ) -> Port {
        assert!(
            self.hosts[host.0 as usize].uplink.is_none(),
            "{host} already connected"
        );
        let port = Port(self.switches[sw.0 as usize].ports.len() as u16);
        let up_id = ChannelId(self.channels.len() as u32);
        self.channels
            .push(Channel::new(up_id, Endpoint::Switch(sw, port), up));
        let down_id = ChannelId(self.channels.len() as u32);
        self.channels
            .push(Channel::new(down_id, Endpoint::Host(host), down));
        let h = &mut self.hosts[host.0 as usize];
        h.uplink = Some(up_id);
        h.downlink = Some(down_id);
        self.switches[sw.0 as usize].ports.push(down_id);
        port
    }

    /// Connect a host to a switch with a full-duplex link; returns the
    /// switch port assigned. A host has exactly one NIC.
    pub fn connect(&mut self, host: HostId, sw: SwitchId, cfg: ChannelCfg) -> Port {
        self.connect_asym(host, sw, cfg, cfg)
    }

    /// Connect two switches with a full-duplex link; returns the port on
    /// each side as `(port_on_a, port_on_b)`.
    pub fn connect_switches(&mut self, a: SwitchId, b: SwitchId, cfg: ChannelCfg) -> (Port, Port) {
        let pa = Port(self.switches[a.0 as usize].ports.len() as u16);
        let pb = Port(self.switches[b.0 as usize].ports.len() as u16);
        let a2b = ChannelId(self.channels.len() as u32);
        self.channels
            .push(Channel::new(a2b, Endpoint::Switch(b, pb), cfg));
        let b2a = ChannelId(self.channels.len() as u32);
        self.channels
            .push(Channel::new(b2a, Endpoint::Switch(a, pa), cfg));
        self.switches[a.0 as usize].ports.push(a2b);
        self.switches[b.0 as usize].ports.push(b2a);
        (pa, pb)
    }

    /// Attach `host` as the SDN controller for `sw`: packets the switch
    /// logic punts are delivered to this host's `on_packet_in` after the
    /// control-channel latency.
    pub fn set_controller(&mut self, sw: SwitchId, host: HostId) {
        self.switches[sw.0 as usize].controller = Some(host);
    }

    // ---------------------------------------------------------------
    // Failure injection & run-time control
    // ---------------------------------------------------------------

    /// Crash `host` at absolute time `at`: pending timers die, in-flight
    /// deliveries are dropped, and the app's `on_crash` hook runs.
    pub fn schedule_crash(&mut self, at: Time, host: HostId) {
        self.push(at.max(self.now), Ev::Crash { host });
    }

    /// Restart a crashed host at absolute time `at`.
    pub fn schedule_restart(&mut self, at: Time, host: HostId) {
        self.push(at.max(self.now), Ev::Restart { host });
    }

    /// Change both directions of `host`'s link to `bps` at time `at`
    /// (Figure 8's 50 Mbps throttling).
    pub fn schedule_link_rate(&mut self, at: Time, host: HostId, bps: u64) {
        self.push(at.max(self.now), Ev::SetRate { host, bps });
    }

    /// Is the host currently up?
    pub fn is_up(&self, host: HostId) -> bool {
        self.hosts[host.0 as usize].up
    }

    /// Install a [`FaultPlan`]: from now on every packet enqueue — host
    /// NIC sends, switch forwards/floods, controller injections — passes
    /// the plan's choke-point filter. The plan's node outages are NOT
    /// scheduled (they need a host mapping); use
    /// [`install_fault_plan`](Simulation::install_fault_plan) for that.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    /// Install a [`FaultPlan`] and schedule its node outages: each
    /// [`Outage`](crate::fault::Outage) indexes into `nodes`, crashing
    /// (and optionally restarting) the corresponding host. Outage
    /// entries pointing past the end of `nodes` are ignored.
    pub fn install_fault_plan(&mut self, plan: FaultPlan, nodes: &[HostId]) {
        for o in plan.outages() {
            let Some(&host) = nodes.get(o.node) else {
                continue;
            };
            self.schedule_crash(o.down, host);
            if let Some(up) = o.up {
                self.schedule_restart(up, host);
            }
        }
        self.set_fault_plan(plan);
    }

    /// Counters of the installed fault plan, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(FaultState::stats)
    }

    /// The rendered fault trace: one line per fault fired, byte-identical
    /// across same-seed runs. Empty when no plan is installed.
    pub fn fault_trace(&self) -> String {
        self.faults
            .as_ref()
            .map(FaultState::render_trace)
            .unwrap_or_default()
    }

    // ---------------------------------------------------------------
    // Introspection
    // ---------------------------------------------------------------

    /// Borrow the app on `host`, downcast to `T`.
    ///
    /// # Panics
    /// If the app is not a `T`.
    pub fn app<T: Any>(&self, host: HostId) -> &T {
        let app = self.hosts[host.0 as usize]
            .app
            .as_ref()
            .expect("app taken (called from within a callback?)");
        let any: &dyn Any = app.as_ref();
        if let Some(t) = any.downcast_ref::<T>() {
            return t;
        }
        // NodeIo-hosted apps sit behind the SimNode wrapper.
        any.downcast_ref::<crate::host::SimNode>()
            .and_then(|node| {
                let inner: &dyn Any = node.inner.as_ref();
                inner.downcast_ref::<T>()
            })
            .expect("app type mismatch")
    }

    /// Mutably borrow the app on `host`, downcast to `T`.
    pub fn app_mut<T: Any>(&mut self, host: HostId) -> &mut T {
        let app = self.hosts[host.0 as usize]
            .app
            .as_mut()
            .expect("app taken (called from within a callback?)");
        let any: &mut dyn Any = app.as_mut();
        // NodeIo-hosted apps sit behind the SimNode wrapper; a two-branch
        // borrow fights the checker, so peel the wrapper first.
        if any.downcast_ref::<crate::host::SimNode>().is_some() {
            let node = any
                .downcast_mut::<crate::host::SimNode>()
                .expect("checked just above");
            let inner: &mut dyn Any = node.inner.as_mut();
            return inner.downcast_mut::<T>().expect("app type mismatch");
        }
        any.downcast_mut::<T>().expect("app type mismatch")
    }

    /// Host configuration (ip, mac, cpu model).
    pub fn host_cfg(&self, host: HostId) -> &HostCfg {
        &self.hosts[host.0 as usize].cfg
    }

    /// NIC-level counters for `host`.
    pub fn host_stats(&self, host: HostId) -> HostStats {
        self.hosts[host.0 as usize].stats
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Counters for every channel.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.channels
            .iter()
            .map(super::link::Channel::stats)
            .collect()
    }

    /// Total wire bytes accepted across all links — the paper's "total
    /// network link load" metric (Figure 6).
    pub fn total_link_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.stats().bytes).sum()
    }

    /// Total packets dropped at link buffers.
    pub fn total_link_drops(&self) -> u64 {
        self.channels.iter().map(|c| c.stats().drops).sum()
    }

    /// Run a closure against each host's stats (id, stats).
    pub fn for_each_host_stats(&self, mut f: impl FnMut(HostId, HostStats)) {
        for (i, h) in self.hosts.iter().enumerate() {
            f(HostId(i as u32), h.stats);
        }
    }

    // ---------------------------------------------------------------
    // Event loop
    // ---------------------------------------------------------------

    /// Process events until the heap is empty (only safe when no app arms
    /// periodic timers) — mainly for tests.
    pub fn run_idle(&mut self) {
        while self.step() {}
    }

    /// Advance to absolute time `t`, processing every event up to and
    /// including it. The clock lands exactly on `t`.
    pub fn run_until(&mut self, t: Time) {
        while let Some(top) = self.heap.peek() {
            if top.at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Advance by `d` from the current time.
    pub fn run_for(&mut self, d: Time) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Process a single event; returns false when the heap is empty.
    pub fn step(&mut self) -> bool {
        let Some(item) = self.heap.pop() else {
            return false;
        };
        debug_assert!(item.at >= self.now);
        self.now = item.at;
        self.events_processed += 1;
        self.dispatch(item.ev);
        true
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Start { host } => self.with_app(host, |app, ctx| app.on_start(ctx), true),
            Ev::NicArrive { host, pkt } => self.nic_arrive(host, pkt),
            Ev::AppDeliver { host, gen, pkt } => {
                if self.host_live(host, gen) {
                    self.with_app(host, |app, ctx| app.on_packet(pkt, ctx), false);
                }
            }
            Ev::Timer { host, gen, token } => {
                if self.host_live(host, gen) {
                    self.with_app(host, |app, ctx| app.on_timer(token, ctx), false);
                }
            }
            Ev::SwitchArrive { sw, port, pkt } => self.switch_arrive(sw, port, pkt),
            Ev::PacketIn {
                ctrl,
                sw,
                port,
                pkt,
            } => {
                let Some(gen) = self.hosts.get(ctrl.0 as usize).map(|h| h.gen) else {
                    return;
                };
                if self.host_live(ctrl, gen) {
                    self.with_app(ctrl, |app, ctx| app.on_packet_in(sw, port, pkt, ctx), false);
                }
            }
            Ev::Inject { sw, port, pkt } => {
                let now = self.now;
                self.switch_egress(sw, port, pkt, now);
            }
            Ev::InjectFlood { sw, except, pkt } => {
                let now = self.now;
                self.switch_flood(sw, except, pkt, now);
            }
            Ev::Crash { host } => {
                let Some(h) = self.hosts.get_mut(host.0 as usize) else {
                    return;
                };
                if h.up {
                    h.up = false;
                    h.gen += 1;
                    h.cpu_busy = Time::ZERO;
                    if let Some(app) = h.app.as_mut() {
                        app.on_crash();
                    }
                }
            }
            Ev::Restart { host } => {
                let Some(h) = self.hosts.get_mut(host.0 as usize) else {
                    return;
                };
                if !h.up {
                    h.up = true;
                    h.gen += 1;
                    let announce = h.cfg.announce_on_boot;
                    self.with_app(host, |app, ctx| app.on_restart(ctx), announce);
                }
            }
            Ev::SetRate { host, bps } => {
                let Some((up, down)) = self
                    .hosts
                    .get(host.0 as usize)
                    .and_then(|h| h.uplink.zip(h.downlink))
                else {
                    return;
                };
                if let Some(c) = self.channels.get_mut(up.0 as usize) {
                    c.set_rate(bps);
                }
                if let Some(c) = self.channels.get_mut(down.0 as usize) {
                    c.set_rate(bps);
                }
            }
        }
    }

    fn host_live(&self, host: HostId, gen: u32) -> bool {
        self.hosts
            .get(host.0 as usize)
            .is_some_and(|h| h.up && h.gen == gen)
    }

    /// Run an app callback with the borrow dance: take the app out, build a
    /// context over the remaining world, call, put it back, apply effects.
    fn with_app(
        &mut self,
        host: HostId,
        f: impl FnOnce(&mut Box<dyn App>, &mut Ctx),
        announce: bool,
    ) {
        let idx = host.0 as usize;
        let garp = self.hosts.get(idx).and_then(|h| {
            // Gratuitous ARP teaches the learning controller our binding.
            (announce && h.cfg.announce_on_boot)
                .then(|| Packet::arp_request(h.cfg.ip, h.cfg.mac, h.cfg.ip))
        });
        if let Some(garp) = garp {
            self.host_send(host, garp);
        }
        let Some(mut app) = self.hosts.get_mut(idx).and_then(|h| h.app.take()) else {
            // lint:allow(panic_path) — harness invariant: re-entrant dispatch is a simulator bug, crash loudly
            panic!("re-entrant app callback on {host}");
        };
        let mut effects = std::mem::take(&mut self.effects);
        debug_assert!(effects.is_empty());
        let now = self.now;
        if let Some(h) = self.hosts.get_mut(idx) {
            let mut ctx = Ctx {
                now,
                host,
                ip: h.cfg.ip,
                mac: h.cfg.mac,
                effects: &mut effects,
                rng: &mut h.rng,
            };
            f(&mut app, &mut ctx);
            h.app = Some(app);
        }
        self.apply_effects(host, &mut effects);
        self.effects = effects;
    }

    fn apply_effects(&mut self, host: HostId, effects: &mut Vec<Effect>) {
        let now = self.now;
        for eff in effects.drain(..) {
            match eff {
                Effect::Send(pkt) => self.host_send(host, pkt),
                Effect::Timer { delay, token } => {
                    let Some(gen) = self.hosts.get(host.0 as usize).map(|h| h.gen) else {
                        continue;
                    };
                    self.push(now + delay, Ev::Timer { host, gen, token });
                }
                Effect::CpuWork(amount) => {
                    if let Some(h) = self.hosts.get_mut(host.0 as usize) {
                        h.cpu_busy = h.cpu_busy.max(now) + amount;
                    }
                }
                Effect::CpuDefer { amount, token } => {
                    let Some(h) = self.hosts.get_mut(host.0 as usize) else {
                        continue;
                    };
                    h.cpu_busy = h.cpu_busy.max(now) + amount;
                    let (at, gen) = (h.cpu_busy, h.gen);
                    self.push(at, Ev::Timer { host, gen, token });
                }
                Effect::SwitchInject { sw, port, pkt } => {
                    let Some(lat) = self.switch_ctrl_latency(sw) else {
                        continue;
                    };
                    self.push(now + lat, Ev::Inject { sw, port, pkt });
                }
                Effect::SwitchFlood { sw, except, pkt } => {
                    let Some(lat) = self.switch_ctrl_latency(sw) else {
                        continue;
                    };
                    self.push(now + lat, Ev::InjectFlood { sw, except, pkt });
                }
            }
        }
    }

    fn switch_ctrl_latency(&self, sw: SwitchId) -> Option<Time> {
        self.switches.get(sw.0 as usize).map(|s| s.cfg.ctrl_latency)
    }

    fn host_send(&mut self, host: HostId, pkt: Packet) {
        let Some(h) = self.hosts.get_mut(host.0 as usize) else {
            return;
        };
        if !h.up {
            return;
        }
        let Some(up) = h.uplink else {
            return; // disconnected host: packet vanishes
        };
        h.stats.bytes_sent += pkt.wire_size as u64;
        h.stats.pkts_sent += 1;
        self.channel_send(up, pkt);
    }

    fn channel_send(&mut self, ch: ChannelId, pkt: Packet) {
        let now = self.now;
        self.channel_enqueue(ch, pkt, now);
    }

    /// The single packet-delivery choke point: every channel enqueue —
    /// host NIC sends, switch forwards/floods, controller injections —
    /// funnels through here, so an installed [`FaultPlan`] sees (and may
    /// drop, duplicate, or delay) every packet in the simulation.
    fn channel_enqueue(&mut self, ch: ChannelId, pkt: Packet, at: Time) {
        let verdict = match self.faults.as_mut() {
            Some(f) => f.judge(at, &pkt),
            None => crate::fault::Verdict::CLEAN,
        };
        let Some(dst) = self.channels.get(ch.0 as usize).map(|c| c.dst) else {
            return;
        };
        for _ in 0..verdict.copies {
            let Some(c) = self.channels.get_mut(ch.0 as usize) else {
                return;
            };
            match c.enqueue(at, &pkt) {
                Enqueue::Arrives(t) => {
                    let t = t + verdict.extra_delay;
                    match dst {
                        Endpoint::Host(h) => self.push(
                            t,
                            Ev::NicArrive {
                                host: h,
                                pkt: pkt.clone(),
                            },
                        ),
                        Endpoint::Switch(sw, port) => self.push(
                            t,
                            Ev::SwitchArrive {
                                sw,
                                port,
                                pkt: pkt.clone(),
                            },
                        ),
                    }
                }
                Enqueue::Dropped => {}
            }
        }
    }

    fn nic_arrive(&mut self, host: HostId, pkt: Packet) {
        let idx = host.0 as usize;
        let Some(h) = self.hosts.get_mut(idx) else {
            return;
        };
        if !h.up {
            h.stats.drops_down += 1;
            return;
        }
        // NIC/kernel filtering: a host only accepts packets addressed to
        // it (or link-layer broadcast / ARP). NICE guarantees this holds
        // even for vring traffic because the switch rewrites the virtual
        // destination to the physical address before forwarding (§3.2).
        if pkt.proto != Proto::Arp && pkt.dst != h.cfg.ip && !pkt.dst_mac.is_broadcast() {
            h.stats.filtered += 1;
            return;
        }
        h.stats.bytes_recv += pkt.wire_size as u64;
        h.stats.pkts_recv += 1;
        // Kernel-level ARP handling: requests are answered without
        // involving the app; replies and everything else go up the stack.
        if pkt.proto == Proto::Arp {
            if let Some(ArpOp::Request { target }) = pkt.payload_as::<ArpOp>().copied() {
                if target == h.cfg.ip && pkt.src != h.cfg.ip {
                    let reply = Packet::arp_reply(h.cfg.ip, h.cfg.mac, pkt.src, pkt.src_mac);
                    self.host_send(host, reply);
                }
                return;
            }
        }
        let cost = h.cfg.cpu.rx_cost(pkt.wire_size);
        let done = h.cpu_busy.max(self.now) + cost;
        h.cpu_busy = done;
        let gen = h.gen;
        self.push(done, Ev::AppDeliver { host, gen, pkt });
    }

    fn switch_arrive(&mut self, sw: SwitchId, port: Port, pkt: Packet) {
        let now = self.now;
        let Some(node) = self.switches.get_mut(sw.0 as usize) else {
            return;
        };
        let Some(mut logic) = node.logic.take() else {
            // lint:allow(panic_path) — harness invariant: re-entrant dispatch is a simulator bug, crash loudly
            panic!("re-entrant switch callback on {sw}");
        };
        let view = SwitchView {
            switch: sw.0,
            num_ports: node.ports.len() as u16,
            controller: node.controller,
        };
        let actions = logic.handle(view, port, pkt, now);
        node.logic = Some(logic);
        let egress_at = now + node.cfg.fwd_latency;
        let ctrl_at = now + node.cfg.ctrl_latency;
        let controller = node.controller;
        for act in actions {
            match act {
                SwitchAction::Forward { port: out, pkt } => {
                    self.switch_egress(sw, out, pkt, egress_at);
                }
                SwitchAction::Flood { except, pkt } => {
                    self.switch_flood(sw, except, pkt, egress_at);
                }
                SwitchAction::ToController { pkt } => {
                    if let Some(ctrl) = controller {
                        self.push(
                            ctrl_at,
                            Ev::PacketIn {
                                ctrl,
                                sw,
                                port,
                                pkt,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Enqueue `pkt` on the egress channel of `(sw, port)`; `at` is when
    /// the packet reaches that egress queue.
    fn switch_egress(&mut self, sw: SwitchId, port: Port, pkt: Packet, at: Time) {
        let Some(&ch) = self
            .switches
            .get(sw.0 as usize)
            .and_then(|s| s.ports.get(port.0 as usize))
        else {
            return; // rule points at a disconnected port: packet dies
        };
        // Channels refuse enqueues in the past; the forwarding latency is
        // modeled by offsetting the enqueue clock.
        self.channel_enqueue(ch, pkt, at);
    }

    fn switch_flood(&mut self, sw: SwitchId, except: Option<Port>, pkt: Packet, at: Time) {
        let nports = self
            .switches
            .get(sw.0 as usize)
            .map_or(0, |s| s.ports.len());
        for p in 0..nports {
            let port = Port(p as u16);
            if Some(port) == except {
                continue;
            }
            self.switch_egress(sw, port, pkt.clone(), at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Ipv4;
    use crate::net::Mac;
    use crate::switch::HubLogic;
    use std::rc::Rc;

    /// Echoes every received u32 payload back to the sender, incremented.
    #[derive(Default)]
    struct Echo {
        got: Vec<u32>,
    }

    impl App for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
            let v = *pkt.payload_as::<u32>().unwrap();
            self.got.push(v);
            if v < 3 {
                let reply = Packet::udp(
                    ctx.ip(),
                    ctx.mac(),
                    pkt.src,
                    pkt.dst_port,
                    pkt.src_port,
                    4,
                    Rc::new(v + 1),
                );
                ctx.send(reply);
            }
        }
    }

    /// Sends an initial packet to a peer on start.
    struct Kick {
        peer: Ipv4,
        got: Vec<u32>,
    }

    impl App for Kick {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let p = Packet::udp(ctx.ip(), ctx.mac(), self.peer, 7, 7, 4, Rc::new(0u32));
            ctx.send(p);
        }
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
            let v = *pkt.payload_as::<u32>().unwrap();
            self.got.push(v);
            if v < 3 {
                let reply = Packet::udp(ctx.ip(), ctx.mac(), pkt.src, 7, 7, 4, Rc::new(v + 1));
                ctx.send(reply);
            }
        }
    }

    fn two_hosts() -> (Simulation, HostId, HostId) {
        let mut sim = Simulation::new(42);
        let sw = sim.add_switch(Box::new(HubLogic), SwitchCfg::default());
        let a_ip = Ipv4::new(10, 0, 0, 1);
        let b_ip = Ipv4::new(10, 0, 0, 2);
        let a = sim.add_host(
            Box::new(Kick {
                peer: b_ip,
                got: vec![],
            }),
            HostCfg::new(a_ip, Mac(1)),
        );
        let b = sim.add_host(Box::new(Echo::default()), HostCfg::new(b_ip, Mac(2)));
        sim.connect(a, sw, ChannelCfg::gigabit());
        sim.connect(b, sw, ChannelCfg::gigabit());
        (sim, a, b)
    }

    #[test]
    fn ping_pong_through_hub() {
        let (mut sim, a, b) = two_hosts();
        sim.run_until(Time::from_ms(10));
        assert_eq!(sim.app::<Echo>(b).got, vec![0, 2]);
        assert_eq!(sim.app::<Kick>(a).got, vec![1, 3]);
        assert!(sim.now() == Time::from_ms(10));
    }

    #[test]
    fn time_advances_monotonically() {
        let (mut sim, _, _) = two_hosts();
        let mut last = Time::ZERO;
        while sim.step() {
            assert!(sim.now() >= last);
            last = sim.now();
        }
    }

    #[test]
    fn crash_drops_delivery_and_restart_recovers() {
        let (mut sim, _a, b) = two_hosts();
        // Crash b immediately: a's kick packet is dropped at b's NIC.
        sim.schedule_crash(Time::ZERO, b);
        sim.run_until(Time::from_ms(1));
        assert!(sim.app::<Echo>(b).got.is_empty());
        assert!(sim.host_stats(b).drops_down >= 1);
        assert!(!sim.is_up(b));
        sim.schedule_restart(Time::from_ms(2), b);
        sim.run_until(Time::from_ms(3));
        assert!(sim.is_up(b));
    }

    #[test]
    fn host_stats_count_traffic() {
        let (mut sim, a, b) = two_hosts();
        sim.run_until(Time::from_ms(10));
        let sa = sim.host_stats(a);
        let sb = sim.host_stats(b);
        // a sent: GARP + kick(0) + reply(2); b sent: GARP + 1 + 3.
        assert_eq!(sa.pkts_sent, 3);
        assert_eq!(sb.pkts_sent, 3);
        // Hub floods everything, so each receives the other's traffic.
        assert!(sa.bytes_recv > 0 && sb.bytes_recv > 0);
    }

    #[test]
    fn link_bytes_accounted() {
        let (mut sim, _, _) = two_hosts();
        sim.run_until(Time::from_ms(10));
        // Every host->switch byte is flooded to the other host, so total
        // channel bytes = 2x host bytes sent (one uplink, one downlink).
        let sent: u64 = [HostId(0), HostId(1)]
            .iter()
            .map(|&h| sim.host_stats(h).bytes_sent)
            .sum();
        assert_eq!(sim.total_link_bytes(), 2 * sent);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut sim, a, b) = two_hosts();
            sim.run_until(Time::from_ms(10));
            (
                sim.events_processed(),
                sim.total_link_bytes(),
                sim.app::<Kick>(a).got.clone(),
                sim.app::<Echo>(b).got.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    /// Timer-armed app for timer/crash interaction tests.
    #[derive(Default)]
    struct Ticker {
        fired: Vec<u64>,
    }
    impl App for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(Time::from_us(10), 1);
            ctx.set_timer(Time::from_us(20), 2);
        }
        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx) {
            self.fired.push(token);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(1);
        let h = sim.add_host(
            Box::new(Ticker::default()),
            HostCfg::new(Ipv4::new(1, 0, 0, 1), Mac(1)),
        );
        let _ = h;
        sim.run_until(Time::from_ms(1));
        assert_eq!(sim.app::<Ticker>(h).fired, vec![1, 2]);
    }

    #[test]
    fn crash_cancels_pending_timers() {
        let mut sim = Simulation::new(1);
        let h = sim.add_host(
            Box::new(Ticker::default()),
            HostCfg::new(Ipv4::new(1, 0, 0, 1), Mac(1)),
        );
        sim.schedule_crash(Time::from_us(15), h);
        sim.run_until(Time::from_ms(1));
        // token 1 fired at 10us; token 2 (20us) died with the crash.
        assert_eq!(sim.app::<Ticker>(h).fired, vec![1]);
    }

    #[test]
    fn fault_plan_total_loss_blackholes_udp() {
        let (mut sim, _a, b) = two_hosts();
        sim.set_fault_plan(crate::fault::FaultPlan::new(3).loss(1.0));
        sim.run_until(Time::from_ms(10));
        // ARP is spared, so the GARPs flow; the UDP kick never arrives.
        assert!(sim.app::<Echo>(b).got.is_empty());
        let stats = sim.fault_stats().expect("plan installed");
        assert!(stats.lost >= 1, "{stats:?}");
        assert!(!sim.fault_trace().is_empty());
    }

    #[test]
    fn fault_plan_duplication_delivers_twice() {
        let (mut sim, _a, b) = two_hosts();
        sim.set_fault_plan(crate::fault::FaultPlan::new(3).duplication(1.0));
        sim.run_until(Time::from_ms(10));
        // Every UDP packet doubles at each hop (uplink + downlink), so b
        // sees the kick 4x; it replies to each copy < 3.
        let got = &sim.app::<Echo>(b).got;
        assert!(got.iter().filter(|&&v| v == 0).count() >= 2, "{got:?}");
        assert!(sim.fault_stats().expect("plan").duplicated >= 2);
    }

    #[test]
    fn fault_plan_partition_blocks_pair() {
        let (mut sim, _a, b) = two_hosts();
        let a_ip = Ipv4::new(10, 0, 0, 1);
        let b_ip = Ipv4::new(10, 0, 0, 2);
        sim.set_fault_plan(crate::fault::FaultPlan::new(0).partition(
            vec![a_ip],
            vec![b_ip],
            Time::ZERO,
            Time::MAX,
        ));
        sim.run_until(Time::from_ms(10));
        assert!(sim.app::<Echo>(b).got.is_empty());
        assert!(sim.fault_stats().expect("plan").partitioned >= 1);
    }

    #[test]
    fn fault_plan_replay_is_byte_identical() {
        // The tentpole replay guarantee: same seed, same plan → the fault
        // trace renders byte-identical and the simulation outcome matches.
        let run = |seed: u64| {
            let (mut sim, a, b) = two_hosts();
            sim.set_fault_plan(
                crate::fault::FaultPlan::new(seed)
                    .loss(0.3)
                    .duplication(0.2)
                    .extra_delay(0.2, Time::from_us(40)),
            );
            sim.run_until(Time::from_ms(50));
            (
                sim.fault_trace(),
                sim.events_processed(),
                sim.app::<Kick>(a).got.clone(),
                sim.app::<Echo>(b).got.clone(),
            )
        };
        let first = run(11);
        assert!(!first.0.is_empty(), "plan with faults produced a trace");
        assert_eq!(first, run(11));
        assert_ne!(first.0, run(12).0, "different seed, different trace");
    }

    #[test]
    fn install_fault_plan_schedules_outages() {
        let (mut sim, _a, b) = two_hosts();
        let plan =
            crate::fault::FaultPlan::new(1).outage(0, Time::from_us(1), Some(Time::from_ms(5)));
        sim.install_fault_plan(plan, &[b]);
        sim.run_until(Time::from_ms(1));
        assert!(!sim.is_up(b));
        sim.run_until(Time::from_ms(6));
        assert!(sim.is_up(b));
    }

    #[test]
    fn cpu_queue_serializes_deliveries() {
        // Two packets arriving back-to-back are delivered one rx_cost apart.
        #[derive(Default)]
        struct Record {
            at: Vec<Time>,
        }
        impl App for Record {
            fn on_packet(&mut self, _pkt: Packet, ctx: &mut Ctx) {
                self.at.push(ctx.now());
            }
        }
        struct Blast {
            peer: Ipv4,
        }
        impl App for Blast {
            fn on_start(&mut self, ctx: &mut Ctx) {
                for _ in 0..2 {
                    let p = Packet::udp(ctx.ip(), ctx.mac(), self.peer, 1, 1, 1400, Rc::new(0u32));
                    ctx.send(p);
                }
            }
        }
        let mut sim = Simulation::new(7);
        let sw = sim.add_switch(Box::new(HubLogic), SwitchCfg::default());
        let b_ip = Ipv4::new(10, 0, 0, 2);
        let a = sim.add_host(
            Box::new(Blast { peer: b_ip }),
            HostCfg::new(Ipv4::new(10, 0, 0, 1), Mac(1)),
        );
        let b = sim.add_host(Box::new(Record::default()), HostCfg::new(b_ip, Mac(2)));
        sim.connect(a, sw, ChannelCfg::gigabit());
        sim.connect(b, sw, ChannelCfg::gigabit());
        sim.run_until(Time::from_ms(1));
        let at = &sim.app::<Record>(b).at;
        assert_eq!(at.len(), 2);
        let cpu = sim.host_cfg(b).cpu;
        let gap = at[1] - at[0];
        // Packets serialize on the 1G link 11.5us apart; rx cost ~1.9us, so
        // the gap equals the link serialization (the CPU is not the
        // bottleneck here), and both must have cleared the CPU.
        assert!(
            gap >= cpu.rx_cost(1442).saturating_sub(Time::from_ns(1)),
            "{gap}"
        );
    }
}

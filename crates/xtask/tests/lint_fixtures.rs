//! Fixture-based self-tests for the linter: every rule must fire on its
//! known-bad snippet and stay silent on the known-good one. This is the
//! proof that each rule is live — a refactor that silently disables a
//! rule breaks the `bad` half of its pair.
//!
//! Each fixture root mirrors the workspace shape (`crates/<name>/src/`)
//! so [`xtask::collect_findings`] runs against it unchanged.

use std::path::PathBuf;

use xtask::{collect_findings, Finding};

fn fixture(rule: &str, kind: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(kind);
    assert!(root.is_dir(), "missing fixture tree {}", root.display());
    collect_findings(&root)
}

fn assert_fires(rule: &str) -> Vec<Finding> {
    let found = fixture(rule, "bad");
    let hits: Vec<Finding> = found.iter().filter(|f| f.rule == rule).cloned().collect();
    assert!(
        !hits.is_empty(),
        "rule `{rule}` did not fire on its bad fixture; findings were: {found:?}"
    );
    hits
}

fn assert_silent(rule: &str) {
    let found = fixture(rule, "good");
    let hits: Vec<&Finding> = found.iter().filter(|f| f.rule == rule).collect();
    assert!(
        hits.is_empty(),
        "rule `{rule}` fired on its good fixture: {hits:?}"
    );
}

#[test]
fn panic_path_fires_on_bad_and_reports_the_chain() {
    let hits = assert_fires("panic_path");
    let msg = &hits[0].msg;
    assert!(
        msg.contains("Server::on_request") && msg.contains("first_byte") && msg.contains("→"),
        "expected the full entry→helper call chain in the message, got: {msg}"
    );
    assert_eq!(
        hits[0].ctx, "first_byte",
        "finding should sit on the panicking fn"
    );
}

#[test]
fn panic_path_silent_on_good() {
    assert_silent("panic_path");
}

#[test]
fn effect_purity_fires_on_bad_and_reports_the_chain() {
    let hits = assert_fires("effect_purity");
    let msg = &hits[0].msg;
    assert!(
        msg.contains("Engine::on_tick") && msg.contains("log_state"),
        "expected the transition→helper chain in the message, got: {msg}"
    );
}

#[test]
fn effect_purity_silent_on_good() {
    assert_silent("effect_purity");
}

#[test]
fn determinism_taint_fires_on_bad_and_reports_the_chain() {
    let hits = assert_fires("determinism_taint");
    let msg = &hits[0].msg;
    assert!(
        msg.contains("render") && msg.contains("stamp"),
        "expected the render→stamp chain in the message, got: {msg}"
    );
    // The telemetry snapshot surface is a root too: hash-order
    // iteration inside a `metrics` fn must be flagged.
    assert!(
        hits.iter()
            .any(|f| f.ctx.contains("metrics") && f.msg.contains("hash container")),
        "metrics snapshot root did not catch hash-order iteration: {hits:?}"
    );
}

#[test]
fn determinism_taint_silent_on_good() {
    assert_silent("determinism_taint");
}

#[test]
fn determinism_taint_stops_at_the_real_runtime_boundary() {
    // Two render fns reach clock reads: one through `crates/node-rt/src`
    // (the real runtime — exempt by scope), one through an ordinary
    // helper crate (the control — must still fire). The control proves
    // the cross-crate edge resolves, so the node-rt silence is the
    // carve-out working and not the walk going blind.
    let found = fixture("determinism_taint", "boundary");
    let hits: Vec<&Finding> = found
        .iter()
        .filter(|f| f.rule == "determinism_taint")
        .collect();
    assert!(
        hits.iter().any(|f| f.file.contains("crates/other/")),
        "control clock read was not flagged; findings: {found:?}"
    );
    assert!(
        hits.iter().all(|f| !f.file.contains("node-rt")),
        "real-runtime internals must be exempt, got: {hits:?}"
    );
}

#[test]
fn determinism_fires_on_bad() {
    assert_fires("determinism");
}

#[test]
fn determinism_silent_on_good() {
    assert_silent("determinism");
}

#[test]
fn unordered_iter_fires_on_bad() {
    assert_fires("unordered_iter");
}

#[test]
fn unordered_iter_silent_on_good() {
    assert_silent("unordered_iter");
}

#[test]
fn layering_fires_on_bad() {
    let hits = assert_fires("layering");
    // Both halves: the adapter store-mutation AND the protocol crate
    // naming the simulator instead of NodeIo.
    assert!(
        hits.iter().any(|f| f.detail == "nice_sim"),
        "nice_sim host-boundary violation not flagged: {hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.detail != "nice_sim"),
        "adapter store-mutation violation not flagged: {hits:?}"
    );
}

#[test]
fn layering_silent_on_good() {
    assert_silent("layering");
}

#[test]
fn unbounded_queue_fires_on_bad() {
    assert_fires("unbounded_queue");
}

#[test]
fn unbounded_queue_silent_on_good() {
    assert_silent("unbounded_queue");
}

#[test]
fn allow_reason_fires_on_bad() {
    let hits = assert_fires("allow_reason");
    assert!(
        hits[0].msg.contains("without a reason"),
        "got: {}",
        hits[0].msg
    );
}

#[test]
fn allow_reason_silent_on_good() {
    // The reasoned waiver must both satisfy allow_reason AND actually
    // suppress the determinism finding it sits on.
    let found = fixture("allow_reason", "good");
    assert!(
        found.is_empty(),
        "expected a fully clean run (waiver applied, reason accepted), got: {found:?}"
    );
}

#[test]
fn dead_effect_fires_on_bad_and_names_the_variant() {
    let hits = assert_fires("dead_effect");
    assert_eq!(hits.len(), 1, "only `Retire` is dead: {hits:?}");
    assert!(
        hits[0].msg.contains("`Retire`") && hits[0].file.contains("engine"),
        "expected the finding on Retire's declaration, got: {:?}",
        hits[0]
    );
}

#[test]
fn dead_effect_silent_on_good() {
    assert_silent("dead_effect");
}

#[test]
fn fsync_discipline_fires_on_bad() {
    let hits = assert_fires("fsync_discipline");
    // Both bad shapes: no barrier at all, and barrier after the push.
    assert_eq!(hits.len(), 2, "expected both ack sites flagged: {hits:?}");
    assert!(
        hits.iter().any(|f| f.detail == "Effect::Ack1")
            && hits.iter().any(|f| f.detail == "Effect::Commit"),
        "expected one Ack1 and one Commit finding: {hits:?}"
    );
    assert!(
        hits[0].msg.contains("fsync-before-ack"),
        "got: {}",
        hits[0].msg
    );
}

#[test]
fn fsync_discipline_silent_on_good() {
    assert_silent("fsync_discipline");
}

#[test]
fn stale_allow_fires_on_bad() {
    let hits = assert_fires("stale_allow");
    assert!(hits[0].msg.contains("determinism"), "got: {}", hits[0].msg);
}

#[test]
fn stale_allow_silent_on_good() {
    assert_silent("stale_allow");
}

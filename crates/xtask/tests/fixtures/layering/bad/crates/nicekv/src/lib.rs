//! BAD: a policy adapter holds the store and commits to it directly,
//! bypassing the engine's 2PC state machine.

pub struct Adapter {
    store: ObjectStore,
}

impl Adapter {
    pub fn apply(&mut self, key: &[u8], ts: u64) {
        self.store.commit(key, 0, ts);
    }
}

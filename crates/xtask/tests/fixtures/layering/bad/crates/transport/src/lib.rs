//! BAD: protocol code names the simulator directly instead of going
//! through the NodeIo host boundary.

use nice_sim::Ctx;

pub fn send_hello(ctx: &mut Ctx) {
    let _ = ctx;
}

//! GOOD: the sim-side cluster builder is the deliberate exception —
//! wiring apps onto simulated hosts is its whole purpose.

use nice_sim::Simulation;

pub fn build() -> Simulation {
    Simulation::new(7)
}

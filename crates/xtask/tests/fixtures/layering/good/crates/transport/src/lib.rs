//! GOOD: protocol code reaches its host only through the NodeIo trait.

use node_rt::NodeIo;

pub fn send_hello(ctx: &mut dyn NodeIo) {
    let _ = ctx;
}

//! GOOD: the adapter drives the engine's entry points; the engine owns
//! the store.

pub struct Adapter;

impl Adapter {
    pub fn apply(&mut self, engine: &mut Engine, key: &[u8], ts: u64) {
        engine.on_commit(key, 0, ts);
    }
}

//! GOOD: both emitted effects are interpreted by the host adapter —
//! `Retire` with an explicit (reviewed) ignore arm.

pub enum Effect {
    Send { dst: u32 },
    Retire { key: String },
}

pub struct Engine;

impl Engine {
    pub fn on_tick(&mut self) -> Vec<Effect> {
        vec![
            Effect::Send { dst: 1 },
            Effect::Retire { key: "k".to_string() },
        ]
    }
}

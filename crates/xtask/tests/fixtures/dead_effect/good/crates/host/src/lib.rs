//! The host adapter: every variant handled by name — the ignore of
//! `Retire` is an explicit per-host decision, not a wildcard accident.

pub fn apply(effects: Vec<engine::Effect>) {
    for e in effects {
        match e {
            engine::Effect::Send { dst } => deliver(dst),
            engine::Effect::Retire { .. } => {}
        }
    }
}

fn deliver(_dst: u32) {}

//! The host adapter: interprets `Send` but swallows everything else in
//! a wildcard — `Retire` is never acted on anywhere.

pub fn apply(effects: Vec<engine::Effect>) {
    for e in effects {
        match e {
            engine::Effect::Send { dst } => deliver(dst),
            _ => {}
        }
    }
}

fn deliver(_dst: u32) {}

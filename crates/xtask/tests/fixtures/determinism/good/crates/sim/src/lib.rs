//! GOOD: time is a logical counter owned by the harness.

pub struct Clock {
    pub now_ms: u64,
}

impl Clock {
    pub fn advance(&mut self, delta_ms: u64) {
        self.now_ms += delta_ms;
    }
}

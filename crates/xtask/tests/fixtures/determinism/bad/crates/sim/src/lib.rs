//! BAD: simulation code reads the wall clock directly.

pub fn wall_ms() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

//! GOOD: the waiver still suppresses a live finding on the next line.

pub fn wall_ms() -> u64 {
    // lint:allow(determinism) — startup banner only, never feeds the simulation
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

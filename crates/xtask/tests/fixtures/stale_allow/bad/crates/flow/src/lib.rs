//! BAD: the waiver carries a reason, but the wall-clock read it once
//! covered was removed — the marker is dead weight that would silently
//! excuse a future regression.

pub fn logical_ms(now: u64) -> u64 {
    // lint:allow(determinism) — used to waive a wall-clock read, since removed
    now
}

//! GOOD: entries are stamped with their logical position — identical
//! on every run.

pub fn render(log: &[u64]) -> String {
    let mut out = String::new();
    for (i, e) in log.iter().enumerate() {
        out.push_str(&stamp(*e, i));
    }
    out
}

fn stamp(e: u64, i: usize) -> String {
    format!("{i}:{e}")
}

//! GOOD: entries are stamped with their logical position — identical
//! on every run — and the metrics snapshot iterates a `BTreeMap`, so
//! registry order is stable across runs.

use std::collections::BTreeMap;

pub fn render(log: &[u64]) -> String {
    let mut out = String::new();
    for (i, e) in log.iter().enumerate() {
        out.push_str(&stamp(*e, i));
    }
    out
}

fn stamp(e: u64, i: usize) -> String {
    format!("{i}:{e}")
}

pub struct Registry {
    counters: BTreeMap<String, u64>,
}

impl Registry {
    pub fn metrics(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (k, v) in &self.counters {
            out.push((k.clone(), *v));
        }
        out
    }
}

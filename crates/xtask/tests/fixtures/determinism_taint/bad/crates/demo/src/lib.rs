//! BAD: a render helper stamps entries with the wall clock — replay
//! output differs across runs.

pub fn render(log: &[u64]) -> String {
    let mut out = String::new();
    for e in log {
        out.push_str(&stamp(*e));
    }
    out
}

fn stamp(e: u64) -> String {
    let t = std::time::SystemTime::now();
    format!("{e}@{t:?}")
}

//! BAD: a render helper stamps entries with the wall clock — replay
//! output differs across runs — and a metrics snapshot iterates a
//! hash container, so two same-seed runs order the registry
//! differently.

use std::collections::HashMap;

pub fn render(log: &[u64]) -> String {
    let mut out = String::new();
    for e in log {
        out.push_str(&stamp(*e));
    }
    out
}

fn stamp(e: u64) -> String {
    let t = std::time::SystemTime::now();
    format!("{e}@{t:?}")
}

pub struct Registry {
    counters: HashMap<String, u64>,
}

impl Registry {
    pub fn metrics(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (k, v) in &self.counters {
            out.push((k.clone(), *v));
        }
        out
    }
}

//! Control: an ordinary helper crate with a clock read. Unlike
//! `node-rt`, this one gets NO scope exemption — the taint walk must
//! still flag it, proving the carve-out is boundary-specific.

use std::time::Instant;

pub fn stamp() -> u64 {
    let _t = Instant::now();
    0
}

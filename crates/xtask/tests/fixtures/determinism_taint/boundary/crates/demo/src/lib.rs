//! BOUNDARY: a render fn reaches wall-clock code, but only inside the
//! real-runtime crate (`crates/node-rt/src`), which is exempt by scope
//! — its internals are wall-clock by design, no waiver needed.

pub fn render(log: &[u64]) -> String {
    node_rt::wait_quiesced();
    format!("{} entries", log.len())
}

pub fn render_debug(log: &[u64]) -> String {
    let t = other::stamp();
    format!("{} entries at {t}", log.len())
}

//! The real-runtime host: wall clocks and OS threads are its job.

use std::time::Instant;

pub fn wait_quiesced() {
    let _deadline = Instant::now();
}

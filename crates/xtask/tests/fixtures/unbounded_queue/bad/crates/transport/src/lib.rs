//! BAD: every received packet is pushed onto a field that nothing ever
//! drains — a remote-triggered memory leak.

pub struct Endpoint {
    inbox: Vec<u8>,
}

impl Endpoint {
    pub fn on_packet(&mut self, b: u8) {
        self.inbox.push(b);
    }
}

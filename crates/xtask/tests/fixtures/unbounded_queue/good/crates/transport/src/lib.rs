//! GOOD: the same push, but the field is drained elsewhere in the file.

pub struct Endpoint {
    inbox: Vec<u8>,
}

impl Endpoint {
    pub fn on_packet(&mut self, b: u8) {
        self.inbox.push(b);
    }

    pub fn next(&mut self) -> Option<u8> {
        self.inbox.pop()
    }
}

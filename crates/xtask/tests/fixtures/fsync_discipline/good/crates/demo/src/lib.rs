//! GOOD: every durability acknowledgement is behind a WAL force in the
//! same function — fsync-before-ack.

pub enum Effect {
    Ack1 { key: String },
    Commit { key: String },
    WriteDone { key: String },
}

pub struct Engine {
    synced: bool,
}

impl Engine {
    fn wal_barrier(&mut self) {
        self.synced = true;
    }

    pub fn on_write_done(&mut self, key: String) -> Vec<Effect> {
        let mut fx = Vec::new();
        self.wal_barrier();
        fx.push(Effect::Ack1 { key });
        fx
    }

    pub fn on_ack2(&mut self, key: String) -> Vec<Effect> {
        let mut fx = Vec::new();
        self.wal_barrier();
        fx.push(Effect::Commit { key });
        fx
    }

    pub fn on_local_write(&mut self, key: String) -> Vec<Effect> {
        let mut fx = Vec::new();
        // WriteDone is node-internal (no durability promise): no
        // barrier required.
        fx.push(Effect::WriteDone { key });
        fx
    }
}

//! BAD: an Ack1 is pushed with no WAL barrier anywhere before it —
//! a crash right after the send loses the acknowledged write.

pub enum Effect {
    Ack1 { key: String },
    Commit { key: String },
}

pub struct Engine {
    synced: bool,
}

impl Engine {
    fn wal_barrier(&mut self) {
        self.synced = true;
    }

    pub fn on_write_done(&mut self, key: String) -> Vec<Effect> {
        let mut fx = Vec::new();
        fx.push(Effect::Ack1 { key });
        fx
    }

    pub fn on_ack2(&mut self, key: String) -> Vec<Effect> {
        let mut fx = Vec::new();
        // The barrier exists in this type but runs AFTER the push:
        // ordering is the whole point of the discipline.
        fx.push(Effect::Commit { key });
        self.wal_barrier();
        fx
    }
}

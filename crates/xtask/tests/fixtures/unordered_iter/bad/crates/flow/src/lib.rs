//! BAD: iterating a HashMap in production code — visit order varies
//! across runs.

use std::collections::HashMap;

pub struct Tracker {
    pub coords: HashMap<u32, u32>,
}

impl Tracker {
    pub fn total(&self) -> u32 {
        let mut sum = 0;
        for (_, v) in self.coords.iter() {
            sum += v;
        }
        sum
    }
}

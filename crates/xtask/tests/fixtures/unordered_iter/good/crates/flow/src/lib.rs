//! GOOD: a BTreeMap iterates in key order — stable across runs.

use std::collections::BTreeMap;

pub struct Tracker {
    pub coords: BTreeMap<u32, u32>,
}

impl Tracker {
    pub fn total(&self) -> u32 {
        let mut sum = 0;
        for (_, v) in self.coords.iter() {
            sum += v;
        }
        sum
    }
}

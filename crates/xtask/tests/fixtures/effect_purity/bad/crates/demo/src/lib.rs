//! BAD: an engine transition reaches a helper that does console I/O.

pub enum Effect {
    Send,
}

pub trait ReplicationEngine {
    fn on_tick(&mut self) -> Vec<Effect>;
}

pub struct Engine;

impl ReplicationEngine for Engine {
    fn on_tick(&mut self) -> Vec<Effect> {
        log_state();
        vec![Effect::Send]
    }
}

fn log_state() {
    println!("tick");
}

//! GOOD: the transition stays pure — everything it wants done leaves
//! as an Effect value.

pub enum Effect {
    Send,
    Note(&'static str),
}

pub trait ReplicationEngine {
    fn on_tick(&mut self) -> Vec<Effect>;
}

pub struct Engine;

impl ReplicationEngine for Engine {
    fn on_tick(&mut self) -> Vec<Effect> {
        collect_effects()
    }
}

fn collect_effects() -> Vec<Effect> {
    vec![Effect::Note("tick"), Effect::Send]
}

//! BAD: an `unwrap()` two calls below a request entry point.

pub struct Server;

impl Server {
    pub fn on_request(&mut self, v: &[u8]) -> u8 {
        decode(v)
    }
}

fn decode(v: &[u8]) -> u8 {
    first_byte(v)
}

fn first_byte(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}

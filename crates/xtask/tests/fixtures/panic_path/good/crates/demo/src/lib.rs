//! GOOD: the same shape, but the helper degrades to a default instead
//! of panicking.

pub struct Server;

impl Server {
    pub fn on_request(&mut self, v: &[u8]) -> u8 {
        decode(v)
    }
}

fn decode(v: &[u8]) -> u8 {
    first_byte(v).unwrap_or(0)
}

fn first_byte(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

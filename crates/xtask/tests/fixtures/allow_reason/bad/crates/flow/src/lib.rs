//! BAD: the waiver suppresses a real finding but gives no reason.

pub fn wall_ms() -> u64 {
    // lint:allow(determinism)
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

//! GOOD: the waiver names a known rule, carries a reason, and sits on a
//! line that still triggers that rule.

pub fn wall_ms() -> u64 {
    // lint:allow(determinism) — startup banner only, never feeds the simulation
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

//! A hand-rolled, zero-dependency Rust lexer.
//!
//! Produces a flat token stream with 1-based line numbers, which is all
//! the call-graph pass (`callgraph.rs`) needs: item structure comes from
//! matching brace/paren/bracket delimiters over this stream, never from
//! regexes over raw text. Comments vanish; string/char literal *content*
//! is dropped from the code stream but string text is preserved on the
//! token (format strings like `"{:p}"` are a determinism-taint source).
//!
//! The lexer is deliberately lossy where the analysis does not care:
//! numeric literals keep no value, multi-character operators arrive as
//! single punctuation tokens (`::` is two `:` tokens), and identifiers
//! are not split into keywords vs names — the parser matches on the
//! ident text (`"fn"`, `"impl"`, ...) where it matters.

/// One lexical token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: Tok,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

/// Token payloads. See module docs for what is deliberately dropped.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `impl`, `self`, `unwrap`, ...).
    Ident(String),
    /// A lifetime (`'a`) — kept distinct so `'a` never looks like a
    /// char literal or an ident.
    Lifetime,
    /// String literal (regular, raw, byte); `text` is the literal's
    /// body so rules can inspect format strings.
    Str {
        /// Literal body, escapes left as written.
        text: String,
    },
    /// Char or byte literal; content dropped.
    Char,
    /// Numeric literal; value dropped.
    Num,
    /// Single punctuation character (`{`, `}`, `(`, `)`, `[`, `]`, `.`,
    /// `:`, `;`, `!`, `#`, `<`, `>`, `&`, ...).
    Punct(char),
}

impl Token {
    /// The ident text, if this token is an ident.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Is this token the punctuation `c`?
    pub fn is(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }
}

/// Lex `src` into a token stream. Never fails: unexpected bytes become
/// punctuation tokens, unterminated literals run to end of input — for
/// a linter, resilience beats strictness.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    match (b[i], b.get(i + 1).copied()) {
                        ('\n', _) => line += 1,
                        ('/', Some('*')) => {
                            depth += 1;
                            i += 1;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            i += 1;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            '"' => {
                let start = line;
                let mut text = String::new();
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => {
                            text.push('\\');
                            if let Some(&e) = b.get(i + 1) {
                                text.push(e);
                                if e == '\n' {
                                    line += 1;
                                }
                                i += 1;
                            }
                        }
                        '"' => break,
                        ch => {
                            if ch == '\n' {
                                line += 1;
                            }
                            text.push(ch);
                        }
                    }
                    i += 1;
                }
                i += 1; // closing quote
                out.push(Token {
                    kind: Tok::Str { text },
                    line: start,
                });
            }
            'r' | 'b' if starts_raw_or_byte_literal(&b, i) => {
                let start = line;
                let (tok, ni, nl) = lex_prefixed_literal(&b, i, line);
                line = nl;
                i = ni;
                out.push(Token {
                    kind: tok,
                    line: start,
                });
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`, `'\u{1F600}'`).
                let is_char = matches!(
                    (b.get(i + 1), b.get(i + 2)),
                    (Some('\\'), _) | (Some(_), Some('\''))
                );
                if is_char {
                    let mut j = i + 1;
                    if b.get(j) == Some(&'\\') {
                        j += 2;
                        while j < b.len() && b[j] != '\'' {
                            j += 1; // \u{...}
                        }
                    } else {
                        j += 1;
                    }
                    out.push(Token {
                        kind: Tok::Char,
                        line,
                    });
                    i = j + 1;
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.push(Token {
                        kind: Tok::Lifetime,
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                // Fractional part: `.` followed by a digit (so `0..n`
                // and `1.max(x)` stay three tokens).
                if b.get(j) == Some(&'.') && b.get(j + 1).is_some_and(char::is_ascii_digit) {
                    j += 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                }
                out.push(Token {
                    kind: Tok::Num,
                    line,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let s: String = b[i..j].iter().collect();
                out.push(Token {
                    kind: Tok::Ident(s),
                    line,
                });
                i = j;
            }
            c => {
                out.push(Token {
                    kind: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Does `r"`, `r#"`, `b"`, `br"`, `br#"`, or `b'` start at `i`?
fn starts_raw_or_byte_literal(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if b.get(j) == Some(&'\'') {
            return true; // byte char b'x'
        }
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
    }
    b.get(j) == Some(&'"')
}

/// Lex a raw/byte string (or byte char) starting at `i`. Returns the
/// token, the index after the literal, and the updated line counter.
fn lex_prefixed_literal(b: &[char], mut i: usize, mut line: usize) -> (Tok, usize, usize) {
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
        if b.get(i) == Some(&'\'') {
            // byte char literal b'x' / b'\n'
            i += 1;
            if b.get(i) == Some(&'\\') {
                i += 1;
            }
            while i < b.len() && b[i] != '\'' {
                i += 1;
            }
            return (Tok::Char, i + 1, line);
        }
    }
    let mut hashes = 0usize;
    if b.get(i) == Some(&'r') {
        raw = true;
        i += 1;
        while b.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
    }
    debug_assert_eq!(b.get(i), Some(&'"'));
    i += 1;
    let mut text = String::new();
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
        }
        if c == '\\' && !raw {
            text.push('\\');
            if let Some(&e) = b.get(i + 1) {
                text.push(e);
                i += 2;
                continue;
            }
        }
        if c == '"' {
            if !raw {
                return (Tok::Str { text }, i + 1, line);
            }
            let closes = (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#'));
            if closes {
                return (Tok::Str { text }, i + 1 + hashes, line);
            }
        }
        text.push(c);
        i += 1;
    }
    (Tok::Str { text }, i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_disappear_from_idents() {
        let src =
            "let a = 1; // Instant::now()\nlet s = \"SystemTime\"; /* thread_rng */ let b = 2;";
        assert_eq!(idents(src), vec!["let", "a", "let", "s", "let", "b"]);
    }

    #[test]
    fn string_text_is_preserved_on_the_token() {
        let toks = lex("format!(\"p={:p}\", x)");
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, Tok::Str { text } if text.contains("{:p}"))));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let toks = lex(r##"let a = r#"quote " inside"#; let b = b"bytes";"##);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, Tok::Str { .. }))
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(
            idents(r##"let a = r#"fn fake() {"#;"##),
            vec!["let", "a"],
            "item keywords inside raw strings must not leak"
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == Tok::Lifetime).count(),
            2,
            "two lifetime uses"
        );
        assert_eq!(toks.iter().filter(|t| t.kind == Tok::Char).count(), 1);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n/* c\nc */ b\n\"s\ns\" d";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.ident() == Some(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 3);
        assert_eq!(find("d"), 5);
    }

    #[test]
    fn numbers_do_not_eat_range_or_method_dots() {
        assert_eq!(
            idents("for i in 0..n { x.f(1.5); }")[..4],
            ["for", "i", "in", "n"]
        );
        let toks = lex("0..n");
        let dots = toks.iter().filter(|t| t.is('.')).count();
        assert_eq!(dots, 2, "`..` survives as two dot tokens");
    }
}

//! Workspace-wide function/call-graph model for the graph-based rules.
//!
//! Built on the token stream from [`crate::lexer`]: a lightweight item
//! parser walks each file's tokens, tracking `mod`/`impl`/`trait`/`fn`
//! scopes by delimiter matching, and records for every function
//!
//! * its identity (name, impl type, trait, file, line span, test-ness),
//! * every call site in its body (bare `f(...)`, path `T::f(...)`,
//!   method `recv.f(...)` with the receiver shape), and
//! * its may-panic sites (`unwrap`/`expect`/panic-family macros and
//!   slice/array indexing).
//!
//! Name resolution is heuristic but type-assisted: struct field types,
//! `let` bindings, fn parameter types, and generic bounds let most
//! method calls resolve to the concrete impl. Unresolvable method names
//! fall back to every workspace method of that name — *except* a list
//! of ubiquitous std names (`push`, `get`, `insert`, ...) whose fallback
//! edges would wire the whole graph together through `Vec`/`BTreeMap`
//! calls. The result is deliberately conservative in the direction that
//! matters for the lint: a false edge can at worst surface a finding a
//! human then waives; a pruned std edge cannot hide a workspace call
//! because workspace methods sharing a std name still resolve through
//! their receiver type.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, Token};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq)]
pub enum CallStyle {
    /// `name(...)` — a free function in scope.
    Bare,
    /// `Qual::name(...)` — `qual` is the path segment before the name.
    Path {
        /// Last path segment before `::name` (type, trait, or module).
        qual: String,
    },
    /// `recv.name(...)`.
    Method {
        /// Receiver shape, for type lookup.
        recv: Recv,
    },
}

/// Receiver of a method call, as far as the parser can see.
#[derive(Debug, Clone, PartialEq)]
pub enum Recv {
    /// Literally `self.name(...)`.
    SelfVal,
    /// `self.field.name(...)` — one field deep.
    SelfField(String),
    /// `var.name(...)` on a local or parameter.
    Var(String),
    /// Anything else (chained calls, temporaries, paths).
    Other,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name as written.
    pub name: String,
    /// Shape of the call.
    pub style: CallStyle,
    /// 1-based source line.
    pub line: usize,
}

/// A may-panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based source line.
    pub line: usize,
    /// What panics: `unwrap()`, `expect(..)`, `panic!`, `indexing` ...
    pub what: String,
}

/// One parsed function (free fn, inherent/trait-impl method, or trait
/// default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// `impl` self type (last path segment), if a method.
    pub self_ty: Option<String>,
    /// Trait name for `impl Trait for T` methods and trait defaults.
    pub trait_name: Option<String>,
    /// Workspace-relative file.
    pub file: String,
    /// Crate directory, e.g. `crates/kv-core` (or `src` for the facade).
    pub crate_dir: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the closing brace.
    pub end_line: usize,
    /// Inside `#[cfg(test)]` or carrying `#[test]`.
    pub is_test: bool,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Call sites in the body.
    pub calls: Vec<Call>,
    /// May-panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Local/param name → type last-segment, for receiver resolution.
    pub locals: BTreeMap<String, String>,
    /// Generic param → bound trait names (from fn + enclosing impl).
    pub bounds: BTreeMap<String, Vec<String>>,
}

impl FnItem {
    /// `Type::name` or bare `name`, for diagnostics.
    pub fn qualname(&self) -> String {
        match (&self.self_ty, &self.trait_name) {
            (Some(t), _) => format!("{t}::{}", self.name),
            (None, Some(tr)) => format!("{tr}::{}", self.name),
            _ => self.name.clone(),
        }
    }
}

/// The parsed workspace: all functions plus the indexes used to resolve
/// calls into edges.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every parsed function.
    pub fns: Vec<FnItem>,
    /// Trait name → declared method names (from `trait T { fn m(..); }`).
    pub traits: BTreeMap<String, BTreeSet<String>>,
    /// Struct name → field name → field type last-segment.
    pub fields: BTreeMap<String, BTreeMap<String, String>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_ty_method: BTreeMap<(String, String), Vec<usize>>,
    by_trait_method: BTreeMap<(String, String), Vec<usize>>,
}

/// Method names whose *unresolved* fallback edges are suppressed: they
/// are overwhelmingly std collection/option/iterator calls, and a
/// workspace method of the same name still resolves via its receiver
/// type. See module docs for why this cannot hide real calls.
const STD_COMMON: &[&str] = &[
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_str",
    "borrow",
    "borrow_mut",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "default",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "into_keys",
    "into_values",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "map",
    "map_err",
    "map_or",
    "map_while",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partition",
    "peek",
    "pop",
    "pop_front",
    "position",
    "push",
    "push_back",
    "push_str",
    "range",
    "remove",
    "repeat",
    "replace",
    "rev",
    "retain",
    "rfind",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_off",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "swap_remove",
    "take",
    "then",
    "then_some",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "zip",
];

/// Path qualifiers that are std/core modules or primitives: a
/// `qual::name(...)` call through one of these never targets workspace
/// code.
const STD_QUALS: &[&str] = &[
    "std", "core", "alloc", "mem", "ptr", "fmt", "cmp", "iter", "slice", "str", "char", "u8",
    "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32", "f64",
    "bool", "Box", "Vec", "String", "Option", "Result", "Some", "None", "Ok", "Err", "BTreeMap",
    "BTreeSet", "HashMap", "HashSet", "VecDeque", "Ordering", "Duration", "Iterator", "array",
    "env", "process", "thread", "time", "convert", "TryFrom", "TryInto", "From", "Into",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Rust keywords that look like `ident (` call heads but are not calls.
const KEYWORDS: &[&str] = &[
    "as", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

impl Workspace {
    /// Parse every `(rel_path, source)` pair into one workspace model
    /// and build the resolution indexes.
    pub fn parse(files: &[(String, String)]) -> Workspace {
        let mut ws = Workspace::default();
        for (rel, text) in files {
            parse_file(rel, text, &mut ws);
        }
        for (i, f) in ws.fns.iter().enumerate() {
            ws.by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(ty) = &f.self_ty {
                ws.by_ty_method
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
            if let Some(tr) = &f.trait_name {
                ws.by_trait_method
                    .entry((tr.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
        ws
    }

    /// All production (non-test) function indexes.
    pub fn production(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.fns.len()).filter(|&i| !self.fns[i].is_test)
    }

    /// Resolve one call site in `caller` to candidate callee indexes.
    /// Conservative: may return several candidates (trait dispatch,
    /// same-name fallback), or none (std calls).
    pub fn resolve(&self, caller: usize, call: &Call) -> Vec<usize> {
        let f = &self.fns[caller];
        let out = match &call.style {
            CallStyle::Bare => {
                if KEYWORDS.contains(&call.name.as_str()) {
                    return Vec::new();
                }
                self.candidates_by_name(&call.name, f, /* methods_only */ false)
            }
            CallStyle::Path { qual } => self.resolve_path(f, qual, &call.name),
            CallStyle::Method { recv } => self.resolve_method(f, recv, &call.name),
        };
        out.into_iter().filter(|&i| !self.fns[i].is_test).collect()
    }

    fn resolve_path(&self, f: &FnItem, qual: &str, name: &str) -> Vec<usize> {
        let qual = if qual == "Self" {
            match &f.self_ty {
                Some(t) => t.clone(),
                None => return Vec::new(),
            }
        } else {
            qual.to_string()
        };
        if let Some(v) = self.by_ty_method.get(&(qual.clone(), name.to_string())) {
            return v.clone();
        }
        if let Some(v) = self.by_trait_method.get(&(qual.clone(), name.to_string())) {
            return v.clone();
        }
        if STD_QUALS.contains(&qual.as_str()) {
            return Vec::new();
        }
        // Module-qualified free fn: `history::check(...)` — match fns of
        // that name defined in a file named after the module.
        let modfile = format!("/{qual}.rs");
        if let Some(v) = self.by_name.get(name) {
            let in_mod: Vec<usize> = v
                .iter()
                .copied()
                .filter(|&i| self.fns[i].file.ends_with(&modfile))
                .collect();
            if !in_mod.is_empty() {
                return in_mod;
            }
        }
        // Unknown qualifier (type from std, enum constructor path, ...):
        // fall back by name, minus ubiquitous std names.
        if STD_COMMON.contains(&name) || name == "new" {
            return Vec::new();
        }
        self.candidates_by_name(name, f, false)
    }

    fn resolve_method(&self, f: &FnItem, recv: &Recv, name: &str) -> Vec<usize> {
        let recv_ty: Option<String> = match recv {
            Recv::SelfVal => f.self_ty.clone(),
            Recv::SelfField(field) => f
                .self_ty
                .as_ref()
                .and_then(|t| self.fields.get(t))
                .and_then(|m| m.get(field))
                .cloned(),
            Recv::Var(v) => f.locals.get(v).cloned(),
            Recv::Other => None,
        };
        if let Some(ty) = recv_ty {
            if let Some(v) = self.by_ty_method.get(&(ty.clone(), name.to_string())) {
                return v.clone();
            }
            // Trait object / generic bound receiver → all impls of the
            // trait (plus its default methods).
            let mut traits: Vec<&str> = Vec::new();
            if self.traits.contains_key(&ty) {
                traits.push(&ty);
            }
            if let Some(bs) = f.bounds.get(&ty) {
                traits.extend(bs.iter().map(String::as_str));
            }
            let mut out = Vec::new();
            for tr in traits {
                if let Some(v) = self
                    .by_trait_method
                    .get(&(tr.to_string(), name.to_string()))
                {
                    out.extend(v.iter().copied());
                }
            }
            if !out.is_empty() {
                return out;
            }
            // `self.method()` reaching a Deref target or an unparsed
            // receiver type: fall through to the name-based fallback.
        }
        if STD_COMMON.contains(&name) {
            return Vec::new();
        }
        self.candidates_by_name(name, f, true)
    }

    /// Same-file, then same-crate, then workspace candidates named
    /// `name`.
    fn candidates_by_name(&self, name: &str, from: &FnItem, methods_only: bool) -> Vec<usize> {
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        let all: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| !methods_only || self.fns[i].has_self)
            .collect();
        for narrower in [
            |f: &FnItem, from: &FnItem| f.file == from.file,
            |f: &FnItem, from: &FnItem| f.crate_dir == from.crate_dir,
        ] {
            let sub: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| narrower(&self.fns[i], from))
                .collect();
            if !sub.is_empty() {
                return sub;
            }
        }
        // Workspace-wide tier: a call landing on a ubiquitous std name
        // with no same-file/same-crate match is almost surely std —
        // every real workspace call of such a name resolves through a
        // receiver type or one of the nearer tiers above.
        if STD_COMMON.contains(&name) {
            return Vec::new();
        }
        all
    }

    /// Breadth-first reachability from `roots` over resolved call
    /// edges, restricted to production fns. Returns, for each reached
    /// fn, the index of the fn it was first reached from (roots map to
    /// themselves), enabling shortest-chain reconstruction.
    pub fn reach(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if !self.fns[r].is_test && parent.insert(r, r).is_none() {
                queue.push(r);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let cur = queue[qi];
            qi += 1;
            for call in &self.fns[cur].calls {
                for cand in self.resolve(cur, call) {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(cand) {
                        e.insert(cur);
                        queue.push(cand);
                    }
                }
            }
        }
        parent
    }

    /// `root → ... → target` as ` → `-joined qualified names, read off
    /// the `reach` parent map.
    pub fn chain(&self, parent: &BTreeMap<usize, usize>, target: usize) -> String {
        let mut rev = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.iter()
            .map(|&i| self.fns[i].qualname())
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

/// Crate directory of a workspace-relative path: `crates/<name>` for
/// crate sources, the first component otherwise (`src`, `tests`, ...).
fn crate_dir_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 && parts[0] == "crates" {
        format!("crates/{}", parts[1])
    } else {
        parts[0].to_string()
    }
}

// ---------------------------------------------------------------------
// File parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Scope {
    /// Any `{}` block we do not model (struct body already handled,
    /// expression blocks, match arms, ...). Carries `fn_idx` when the
    /// block is (inside) a function body.
    Block { fn_idx: Option<usize> },
    /// An `impl` block: (self type, trait name, generic bounds).
    Impl {
        self_ty: Option<String>,
        trait_name: Option<String>,
        bounds: BTreeMap<String, Vec<String>>,
        is_test: bool,
    },
    /// A `trait Name { ... }` definition body.
    Trait { name: String, is_test: bool },
    /// `mod name { ... }`.
    Mod { is_test: bool },
    /// A function body (index into `ws.fns`).
    Fn { fn_idx: usize },
    /// `struct Name { ... }` field list.
    Struct { name: String },
}

struct Parser<'a> {
    toks: &'a [Token],
    rel: &'a str,
    crate_dir: String,
    /// Tokens accumulated since the last `;`, `{`, or `}` at item
    /// level — the candidate item head.
    head: Vec<Token>,
    scopes: Vec<Scope>,
}

fn parse_file(rel: &str, text: &str, ws: &mut Workspace) {
    let toks = lex(text);
    let mut p = Parser {
        toks: &toks,
        rel,
        crate_dir: crate_dir_of(rel),
        head: Vec::new(),
        scopes: Vec::new(),
    };
    p.run(ws);
}

impl<'a> Parser<'a> {
    fn enclosing_fn(&self) -> Option<usize> {
        for s in self.scopes.iter().rev() {
            match s {
                Scope::Fn { fn_idx } => return Some(*fn_idx),
                Scope::Block { fn_idx } => {
                    if fn_idx.is_some() {
                        return *fn_idx;
                    }
                }
                _ => return None,
            }
        }
        None
    }

    fn enclosing_impl(
        &self,
    ) -> (
        Option<String>,
        Option<String>,
        BTreeMap<String, Vec<String>>,
    ) {
        for s in self.scopes.iter().rev() {
            match s {
                Scope::Impl {
                    self_ty,
                    trait_name,
                    bounds,
                    ..
                } => return (self_ty.clone(), trait_name.clone(), bounds.clone()),
                Scope::Trait { name, .. } => return (None, Some(name.clone()), BTreeMap::new()),
                _ => {}
            }
        }
        (None, None, BTreeMap::new())
    }

    fn in_test_scope(&self) -> bool {
        self.scopes.iter().any(|s| match s {
            Scope::Impl { is_test, .. } | Scope::Trait { is_test, .. } | Scope::Mod { is_test } => {
                *is_test
            }
            _ => false,
        })
    }

    fn run(&mut self, ws: &mut Workspace) {
        let mut i = 0usize;
        while i < self.toks.len() {
            let t = &self.toks[i];
            match &t.kind {
                Tok::Punct('{') => {
                    let scope = self.classify_head(ws);
                    // A fn head opens a body: record the item now so
                    // nested calls attribute to it.
                    self.scopes.push(scope);
                    self.head.clear();
                    i += 1;
                    // Struct bodies and fn bodies get scanned by their
                    // dedicated loops to keep head tracking simple.
                    match self.scopes.last().cloned() {
                        Some(Scope::Struct { name }) => {
                            i = self.scan_struct_fields(ws, i, &name);
                        }
                        Some(Scope::Fn { fn_idx }) => {
                            i = self.scan_fn_body(ws, i, fn_idx);
                        }
                        _ => {}
                    }
                }
                Tok::Punct('}') => {
                    self.scopes.pop();
                    self.head.clear();
                    i += 1;
                }
                Tok::Punct(';') => {
                    // Bodyless trait method: record the declaration.
                    self.note_trait_decl(ws);
                    self.head.clear();
                    i += 1;
                }
                _ => {
                    self.head.push(t.clone());
                    i += 1;
                }
            }
        }
    }

    /// Decide what an opening `{` opens, from the accumulated head
    /// tokens. Registers `FnItem`s as a side effect.
    fn classify_head(&mut self, ws: &mut Workspace) -> Scope {
        let head = std::mem::take(&mut self.head);
        let idents: Vec<(usize, &str)> = head
            .iter()
            .enumerate()
            .filter_map(|(k, t)| t.ident().map(|s| (k, s)))
            .collect();
        let is_test_attr = head_has_test_attr(&head);
        let in_test = self.in_test_scope() || is_test_attr || is_test_file(self.rel);

        // The *last* item keyword wins: `pub fn f(x: impl Trait)` has
        // both `fn` and `impl`, and the head is a fn.
        let mut kw: Option<(usize, &str)> = None;
        for &(k, s) in &idents {
            if matches!(
                s,
                "fn" | "impl" | "trait" | "mod" | "struct" | "enum" | "union"
            ) {
                // `impl`/`fn` inside parens/brackets of an earlier item
                // head (e.g. `fn f(x: impl Fn())`) — keep the first
                // item keyword, not type-position ones.
                if kw.is_none() {
                    kw = Some((k, s));
                }
            }
        }
        match kw {
            Some((k, "fn")) => {
                let item = self.parse_fn_head(ws, &head, k, in_test);
                Scope::Fn { fn_idx: item }
            }
            Some((k, "impl")) => {
                let (self_ty, trait_name, bounds) = parse_impl_head(&head[k..]);
                Scope::Impl {
                    self_ty,
                    trait_name,
                    bounds,
                    is_test: in_test,
                }
            }
            Some((k, "trait")) => {
                let name = head
                    .get(k + 1)
                    .and_then(Token::ident)
                    .unwrap_or("")
                    .to_string();
                ws.traits.entry(name.clone()).or_default();
                Scope::Trait {
                    name,
                    is_test: in_test,
                }
            }
            Some((_, "mod")) => Scope::Mod { is_test: in_test },
            Some((k, "struct")) => {
                let name = head
                    .get(k + 1)
                    .and_then(Token::ident)
                    .unwrap_or("")
                    .to_string();
                Scope::Struct { name }
            }
            Some((_, "enum" | "union")) => Scope::Struct {
                name: String::new(),
            },
            _ => Scope::Block {
                fn_idx: self.enclosing_fn(),
            },
        }
    }

    /// Parse a fn head (`... fn name <generics> ( params ) -> ...`) and
    /// register the `FnItem`. Returns its index.
    fn parse_fn_head(
        &mut self,
        ws: &mut Workspace,
        head: &[Token],
        fn_kw: usize,
        is_test: bool,
    ) -> usize {
        let name = head
            .get(fn_kw + 1)
            .and_then(Token::ident)
            .unwrap_or("")
            .to_string();
        let line = head.get(fn_kw).map_or(1, |t| t.line);
        let (self_ty, trait_name, mut bounds) = self.enclosing_impl();
        for (p, bs) in parse_generic_bounds(&head[fn_kw..]) {
            bounds.entry(p).or_default().extend(bs);
        }
        let (has_self, locals) = parse_params(&head[fn_kw..]);
        let idx = ws.fns.len();
        ws.fns.push(FnItem {
            name: name.clone(),
            self_ty,
            trait_name: trait_name.clone(),
            file: self.rel.to_string(),
            crate_dir: self.crate_dir.clone(),
            line,
            end_line: line,
            is_test,
            has_self,
            calls: Vec::new(),
            panics: Vec::new(),
            locals,
            bounds,
        });
        if let Some(tr) = trait_name {
            ws.traits.entry(tr).or_default().insert(name);
        }
        idx
    }

    /// A head ending in `;`: record `fn` declarations inside `trait`
    /// bodies so bound-based dispatch knows the trait's surface.
    fn note_trait_decl(&mut self, ws: &mut Workspace) {
        let Some(Scope::Trait { name, .. }) = self
            .scopes
            .iter()
            .rev()
            .find(|s| !matches!(s, Scope::Block { .. }))
        else {
            self.head.clear();
            return;
        };
        let name = name.clone();
        let mut it = self.head.iter();
        while let Some(t) = it.next() {
            if t.ident() == Some("fn") {
                if let Some(m) = it.next().and_then(Token::ident) {
                    ws.traits.entry(name.clone()).or_default().insert(m.into());
                }
                break;
            }
        }
    }

    /// Scan `struct Name { field: Type, ... }`, recording field types.
    /// Returns the index just past the closing `}`.
    fn scan_struct_fields(&mut self, ws: &mut Workspace, mut i: usize, name: &str) -> usize {
        let mut depth = 1i32;
        let mut field: Option<String> = None;
        while i < self.toks.len() && depth > 0 {
            let t = &self.toks[i];
            match &t.kind {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                Tok::Punct(':')
                    if depth == 1 && self.toks.get(i + 1).is_some_and(|n| !n.is(':')) =>
                {
                    // `field :` at depth 1 — previous ident is the name,
                    // the type's last segment follows before `,`.
                    if let Some(f) = field.take() {
                        let (ty, ni) = last_type_segment(self.toks, i + 1);
                        if !name.is_empty() && !ty.is_empty() {
                            ws.fields.entry(name.to_string()).or_default().insert(f, ty);
                        }
                        i = ni;
                        continue;
                    }
                }
                Tok::Punct(':') => {
                    // second `:` of `::` — skip its pair
                    i += 1;
                    continue;
                }
                Tok::Ident(s) => field = Some(s.clone()),
                _ => {}
            }
            i += 1;
        }
        self.scopes.pop();
        i
    }

    /// Scan a fn body: collect call sites, panic sites, and local `let`
    /// types, handling nested blocks inline (nested *items* are rare
    /// and deliberately treated as part of this body). Returns the
    /// index just past the body's closing `}`.
    fn scan_fn_body(&mut self, ws: &mut Workspace, mut i: usize, fn_idx: usize) -> usize {
        let mut depth = 1i32;
        while i < self.toks.len() && depth > 0 {
            let t = &self.toks[i];
            match &t.kind {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        ws.fns[fn_idx].end_line = t.line;
                    }
                }
                Tok::Punct('[') => {
                    if let Some(site) = index_site(self.toks, i) {
                        ws.fns[fn_idx].panics.push(site);
                    }
                }
                Tok::Punct('!') => {
                    // macro call: `name ! ( / [ / {`
                    if let (Some(prev), Some(next)) = (
                        i.checked_sub(1).map(|k| &self.toks[k]),
                        self.toks.get(i + 1),
                    ) {
                        if next.is('(') || next.is('[') || next.is('{') {
                            if let Some(mac) = prev.ident() {
                                if PANIC_MACROS.contains(&mac) {
                                    ws.fns[fn_idx].panics.push(PanicSite {
                                        line: prev.line,
                                        what: format!("{mac}!"),
                                    });
                                }
                            }
                        }
                    }
                }
                Tok::Ident(name) if self.toks.get(i + 1).is_some_and(|n| n.is('(')) => {
                    if let Some(call) = call_site(self.toks, i, name) {
                        if matches!(call.style, CallStyle::Method { .. })
                            && (name == "unwrap" || name == "expect")
                        {
                            ws.fns[fn_idx].panics.push(PanicSite {
                                line: t.line,
                                what: if name == "unwrap" {
                                    "unwrap()".into()
                                } else {
                                    "expect(..)".into()
                                },
                            });
                        } else {
                            ws.fns[fn_idx].calls.push(call);
                        }
                    }
                }
                Tok::Ident(kw) if kw == "let" => {
                    if let Some((var, ty, ni)) = let_binding_type(self.toks, i) {
                        ws.fns[fn_idx].locals.insert(var, ty);
                        i = ni;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.scopes.pop();
        i
    }
}

/// `#[test]` / `#[cfg(test)]` present among the head's attributes?
fn head_has_test_attr(head: &[Token]) -> bool {
    let mut i = 0;
    while i + 1 < head.len() {
        if head[i].is('#') && head[i + 1].is('[') {
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut inner: Vec<&str> = Vec::new();
            while j < head.len() && depth > 0 {
                match &head[j].kind {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(s) => inner.push(s),
                    _ => {}
                }
                j += 1;
            }
            match inner.as_slice() {
                ["test"] => return true,
                ["cfg", rest @ ..] if rest.contains(&"test") => return true,
                _ => {}
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

/// Out-of-line test modules and integration-test trees.
fn is_test_file(rel: &str) -> bool {
    rel.ends_with("/tests.rs") || rel.ends_with("/prop_tests.rs") || rel.contains("/tests/")
}

/// Parse `impl<G> Trait for Type` / `impl Type` heads starting at the
/// `impl` keyword: returns (self type, trait, generic bounds incl.
/// `where` clause single-segment bounds).
fn parse_impl_head(
    head: &[Token],
) -> (
    Option<String>,
    Option<String>,
    BTreeMap<String, Vec<String>>,
) {
    let mut bounds = parse_generic_bounds(head);
    // Split at a depth-0 `for` (trait impl) if present.
    let mut angle = 0i32;
    let mut for_at: Option<usize> = None;
    let mut where_at: Option<usize> = None;
    for (k, t) in head.iter().enumerate() {
        match &t.kind {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(s) if s == "for" && angle == 0 && for_at.is_none() => {
                for_at = Some(k);
            }
            Tok::Ident(s) if s == "where" && angle == 0 => {
                where_at = Some(k);
                break;
            }
            _ => {}
        }
    }
    let end = where_at.unwrap_or(head.len());
    let (trait_name, self_ty) = match for_at {
        Some(f) => (
            last_path_ident(&head[..f]),
            last_path_ident(&head[f + 1..end]),
        ),
        None => (None, last_path_ident(&head[..end])),
    };
    if let Some(w) = where_at {
        for (p, bs) in parse_where_bounds(&head[w + 1..]) {
            bounds.entry(p).or_default().extend(bs);
        }
    }
    (self_ty, trait_name, bounds)
}

/// The last plain ident of a token slice that is part of a type path,
/// ignoring generic argument lists.
fn last_path_ident(toks: &[Token]) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    for t in toks {
        match &t.kind {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(s)
                if angle == 0
                    && !matches!(
                        s.as_str(),
                        "impl" | "dyn" | "for" | "pub" | "unsafe" | "mut"
                    ) =>
            {
                last = Some(s.clone());
            }
            _ => {}
        }
    }
    last
}

/// `<P: Trait + Trait2, Q: Trait3>` bounds from the first angle group.
fn parse_generic_bounds(toks: &[Token]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let Some(start) = toks.iter().position(|t| t.is('<')) else {
        return out;
    };
    // Only a generics list directly after the keyword/name region
    // counts; `(` before `<` means we hit the param list first.
    if let Some(paren) = toks.iter().position(|t| t.is('(')) {
        if paren < start {
            return out;
        }
    }
    let mut depth = 0i32;
    let mut param: Option<String> = None;
    let mut in_bounds = false;
    for t in &toks[start..] {
        match &t.kind {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct(',') if depth == 1 => {
                param = None;
                in_bounds = false;
            }
            Tok::Punct(':') if depth == 1 => in_bounds = true,
            Tok::Ident(s) if depth == 1 => {
                if in_bounds {
                    if let Some(p) = &param {
                        out.entry(p.clone())
                            .or_insert_with(Vec::new)
                            .push(s.clone());
                    }
                } else {
                    param = Some(s.clone());
                }
            }
            _ => {}
        }
    }
    out
}

/// `where E: ReplicationEngine, F: Other` — single-segment bounds.
fn parse_where_bounds(toks: &[Token]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut param: Option<String> = None;
    let mut in_bounds = false;
    let mut angle = 0i32;
    for t in toks {
        match &t.kind {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct(',') if angle == 0 => {
                param = None;
                in_bounds = false;
            }
            Tok::Punct(':') if angle == 0 => in_bounds = true,
            Tok::Ident(s) if angle == 0 => {
                if in_bounds {
                    if let Some(p) = &param {
                        out.entry(p.clone())
                            .or_insert_with(Vec::new)
                            .push(s.clone());
                    }
                } else {
                    param = Some(s.clone());
                }
            }
            _ => {}
        }
    }
    out
}

/// Parse a fn head's parameter list: whether it has a `self` receiver,
/// and `param → type last-segment` for every typed parameter.
fn parse_params(toks: &[Token]) -> (bool, BTreeMap<String, String>) {
    let mut locals = BTreeMap::new();
    let Some(start) = toks.iter().position(|t| t.is('(')) else {
        return (false, locals);
    };
    let mut depth = 0i32;
    let mut has_self = false;
    let mut i = start;
    let mut pending: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // Only a bare receiver (`self`, `&mut self`), not
            // `x: &Self` etc.
            Tok::Ident(s) if depth == 1 && s == "self" && pending.is_none() => {
                has_self = true;
            }
            Tok::Ident(s) if depth == 1 && pending.is_none() => {
                pending = Some(s.clone());
            }
            Tok::Punct(':') if depth == 1 && !toks.get(i + 1).is_some_and(|n| n.is(':')) => {
                if let Some(p) = pending.take() {
                    let (ty, ni) = last_type_segment(toks, i + 1);
                    if !ty.is_empty() {
                        locals.insert(p, ty);
                    }
                    i = ni;
                    continue;
                }
            }
            Tok::Punct(',') if depth == 1 => pending = None,
            _ => {}
        }
        i += 1;
    }
    (has_self, locals)
}

/// From `toks[i]`, consume a type up to a depth-0 `,`, `)`, `{`, or
/// `;`, returning its last meaningful path segment and the index of
/// the terminator.
fn last_type_segment(toks: &[Token], mut i: usize) -> (String, usize) {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut last = String::new();
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                if angle == 0 {
                    break; // `->` arrow tail or closing of outer generics
                }
                angle -= 1;
            }
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                if paren == 0 {
                    break; // incl. `}` closing the enclosing struct body
                }
                paren -= 1;
            }
            Tok::Punct(',') | Tok::Punct('{') | Tok::Punct(';') | Tok::Punct('=')
                if angle == 0 && paren == 0 =>
            {
                break;
            }
            Tok::Ident(s)
                if angle == 0
                    && paren == 0
                    && !matches!(
                        s.as_str(),
                        "dyn"
                            | "impl"
                            | "mut"
                            | "ref"
                            | "Box"
                            | "Rc"
                            | "Arc"
                            | "Option"
                            | "Vec"
                            | "where"
                    ) =>
            {
                last = s.clone();
            }
            _ => {}
        }
        i += 1;
    }
    (last, i)
}

/// Classify the call at `toks[i]` (an ident directly followed by `(`).
/// Returns `None` for keywords and for idents that are actually macro
/// names (`name!(`) or fn definitions (`fn name(`).
fn call_site(toks: &[Token], i: usize, name: &str) -> Option<Call> {
    if KEYWORDS.contains(&name) {
        return None;
    }
    let prev = i.checked_sub(1).map(|k| &toks[k]);
    if let Some(p) = prev {
        if p.ident() == Some("fn") {
            return None;
        }
        if p.is('!') {
            return None; // macro body scanned separately
        }
    }
    let line = toks[i].line;
    // `.name(` → method call; work out the receiver shape.
    if prev.is_some_and(|p| p.is('.')) {
        let recv = receiver_shape(toks, i - 1);
        return Some(Call {
            name: name.to_string(),
            style: CallStyle::Method { recv },
            line,
        });
    }
    // `Qual::name(` → path call (two `:` puncts precede the name).
    if i >= 3 && toks[i - 1].is(':') && toks[i - 2].is(':') {
        if let Some(q) = toks[i - 3].ident() {
            return Some(Call {
                name: name.to_string(),
                style: CallStyle::Path {
                    qual: q.to_string(),
                },
                line,
            });
        }
        // turbofish `Type::<..>::name(` — give up on the qualifier.
        return Some(Call {
            name: name.to_string(),
            style: CallStyle::Path {
                qual: String::new(),
            },
            line,
        });
    }
    Some(Call {
        name: name.to_string(),
        style: CallStyle::Bare,
        line,
    })
}

/// Shape of the receiver ending at the `.` at `toks[dot]`.
fn receiver_shape(toks: &[Token], dot: usize) -> Recv {
    // Walk back over `ident(.ident)*`.
    let mut segs: Vec<&str> = Vec::new();
    let mut k = dot;
    loop {
        if k == 0 {
            break;
        }
        let Some(id) = toks[k - 1].ident() else {
            break;
        };
        segs.push(id);
        if k >= 3 && toks[k - 2].is('.') {
            k -= 2;
        } else {
            break;
        }
    }
    segs.reverse();
    match segs.as_slice() {
        ["self"] => Recv::SelfVal,
        ["self", f] => Recv::SelfField((*f).to_string()),
        [v] => Recv::Var((*v).to_string()),
        // Deeper paths: resolve by the *first* hop when it's a self
        // field (`self.a.b.m()` → treat as field `a`'s type is at
        // least crate-local; give up otherwise).
        ["self", f, ..] => Recv::SelfField((*f).to_string()),
        _ => Recv::Other,
    }
}

/// Is the `[` at `toks[i]` an index expression that can panic?
fn index_site(toks: &[Token], i: usize) -> Option<PanicSite> {
    let prev = i.checked_sub(1).map(|k| &toks[k])?;
    let indexable = match &prev.kind {
        Tok::Ident(s) => !KEYWORDS.contains(&s.as_str()),
        Tok::Punct(')') | Tok::Punct(']') => true,
        _ => false,
    };
    if !indexable {
        return None;
    }
    // `xs[..]` — a full-range slice borrow never panics; skip it.
    if toks.get(i + 1).is_some_and(|t| t.is('.'))
        && toks.get(i + 2).is_some_and(|t| t.is('.'))
        && toks.get(i + 3).is_some_and(|t| t.is(']'))
    {
        return None;
    }
    let recv = prev.ident().unwrap_or("..");
    Some(PanicSite {
        line: toks[i].line,
        what: format!("indexing `{recv}[..]`"),
    })
}

/// `let [mut] name : Type = ...` or `let [mut] name = Type::...` /
/// `Type { ...`: returns (name, type last-segment, index to resume at).
fn let_binding_type(toks: &[Token], let_at: usize) -> Option<(String, String, usize)> {
    let mut i = let_at + 1;
    if toks.get(i).and_then(Token::ident) == Some("mut") {
        i += 1;
    }
    let name = toks.get(i).and_then(Token::ident)?.to_string();
    if KEYWORDS.contains(&name.as_str()) {
        return None;
    }
    i += 1;
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Punct(':')) if !toks.get(i + 1).is_some_and(|n| n.is(':')) => {
            let (ty, ni) = last_type_segment(toks, i + 1);
            if ty.is_empty() {
                None
            } else {
                Some((name, ty, ni))
            }
        }
        Some(Tok::Punct('=')) if !toks.get(i + 1).is_some_and(|n| n.is('=')) => {
            // `= Type::ctor(...)` / `= Type { ... }`
            let first = toks.get(i + 1)?.ident()?;
            if !first.chars().next().is_some_and(char::is_uppercase) {
                return None;
            }
            let is_path = toks.get(i + 2).is_some_and(|t| t.is(':'));
            let is_lit = toks.get(i + 2).is_some_and(|t| t.is('{'));
            if (is_path || is_lit) && !STD_QUALS.contains(&first) {
                // Resume *at* the `=` so the ctor call is still scanned.
                Some((name, first.to_string(), i))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::parse(&[("crates/demo/src/lib.rs".to_string(), src.to_string())])
    }

    fn find<'w>(w: &'w Workspace, name: &str) -> &'w FnItem {
        w.fns.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn parses_impl_methods_and_free_fns() {
        let w = ws("struct S { n: u32 }\nimpl S {\n    fn m(&self) -> u32 { helper(self.n) }\n}\nfn helper(x: u32) -> u32 { x }\n");
        let m = find(&w, "m");
        assert_eq!(m.self_ty.as_deref(), Some("S"));
        assert!(m.has_self);
        assert_eq!(m.calls.len(), 1);
        assert_eq!(m.calls[0].name, "helper");
        let h = find(&w, "helper");
        assert!(!h.has_self);
        assert_eq!(w.fields["S"]["n"], "u32");
    }

    #[test]
    fn trait_impls_and_bounds_resolve() {
        let src = "
trait Engine { fn tick(&mut self); }
struct A;
impl Engine for A { fn tick(&mut self) { self.go() } }
impl A { fn go(&self) {} }
struct Holder<E: Engine> { eng: E }
impl<E: Engine> Holder<E> {
    fn run(&mut self) { self.eng.tick() }
}";
        let w = ws(src);
        assert!(w.traits["Engine"].contains("tick"));
        let tick = find(&w, "tick");
        assert_eq!(tick.trait_name.as_deref(), Some("Engine"));
        // Holder::run's `self.eng.tick()` resolves via field type E →
        // bound Engine → impl Engine for A.
        let run_idx = w.fns.iter().position(|f| f.name == "run").unwrap();
        let run = &w.fns[run_idx];
        let call = run.calls.iter().find(|c| c.name == "tick").unwrap();
        let cands = w.resolve(run_idx, call);
        assert_eq!(cands.len(), 1);
        assert_eq!(w.fns[cands[0]].qualname(), "A::tick");
    }

    #[test]
    fn panic_sites_collected_not_treated_as_calls() {
        let w = ws("fn f(v: Vec<u32>) { v.first().unwrap(); panic!(\"x\"); let _ = v[0]; }");
        let f = find(&w, "f");
        let whats: Vec<&str> = f.panics.iter().map(|p| p.what.as_str()).collect();
        assert!(whats.contains(&"unwrap()"));
        assert!(whats.contains(&"panic!"));
        assert!(whats.iter().any(|wt| wt.starts_with("indexing")));
        assert!(f.calls.iter().all(|c| c.name != "unwrap"));
    }

    #[test]
    fn full_range_slice_and_attrs_are_not_index_sites() {
        let w = ws("#[derive(Debug)]\nstruct T;\nfn f(xs: &[u8]) -> &[u8] { &xs[..] }");
        let f = find(&w, "f");
        assert!(f.panics.is_empty());
    }

    #[test]
    fn std_common_fallback_suppressed_but_type_resolution_wins() {
        let src = "
struct Store;
impl Store { fn get(&self, k: u32) -> u32 { k } }
struct App { store: Store }
impl App {
    fn a(&self, m: &std::collections::BTreeMap<u32, u32>) { m.get(&1); }
    fn b(&self) { self.store.get(1); }
}";
        let w = ws(src);
        let a_idx = w.fns.iter().position(|f| f.name == "a").unwrap();
        let b_idx = w.fns.iter().position(|f| f.name == "b").unwrap();
        let a_call = w.fns[a_idx].calls.iter().find(|c| c.name == "get").unwrap();
        // `m` has a known type (BTreeMap last segment) with no
        // workspace impl → no edge, std suppression.
        assert!(w.resolve(a_idx, a_call).is_empty());
        let b_call = w.fns[b_idx].calls.iter().find(|c| c.name == "get").unwrap();
        let cands = w.resolve(b_idx, b_call);
        assert_eq!(cands.len(), 1);
        assert_eq!(w.fns[cands[0]].qualname(), "Store::get");
    }

    #[test]
    fn reach_and_chain_report_shortest_path() {
        let src = "
fn on_req() { mid() }
fn mid() { deep() }
fn deep() { x() }
fn x() {}";
        let w = ws(src);
        let root = w.fns.iter().position(|f| f.name == "on_req").unwrap();
        let parent = w.reach(&[root]);
        let deep = w.fns.iter().position(|f| f.name == "deep").unwrap();
        assert!(parent.contains_key(&deep));
        assert_eq!(w.chain(&parent, deep), "on_req → mid → deep");
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "
fn prod() {}
#[cfg(test)]
mod tests {
    fn helper() { prod() }
    #[test]
    fn t() { helper() }
}";
        let w = ws(src);
        assert!(!find(&w, "prod").is_test);
        assert!(find(&w, "helper").is_test);
        assert!(find(&w, "t").is_test);
    }

    #[test]
    fn let_bindings_type_locals() {
        let src = "
struct Engine;
impl Engine { fn fire(&self) {} }
fn f() {
    let e: Engine = Engine;
    e.fire();
    let g = Engine::default();
    g.fire();
}";
        let w = ws(src);
        let f_idx = w.fns.iter().position(|x| x.name == "f").unwrap();
        for call in w.fns[f_idx].calls.iter().filter(|c| c.name == "fire") {
            let cands = w.resolve(f_idx, call);
            assert_eq!(cands.len(), 1, "both lets resolve to Engine::fire");
        }
    }
}

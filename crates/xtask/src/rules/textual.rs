//! The single-line token rules: `determinism`, `unordered_iter`,
//! `layering`, `unbounded_queue`, and `allow_reason`. These scan blanked
//! source lines ([`crate::source`]) — no call graph needed, because the
//! banned fact and the place it is banned are the same line.

use crate::rules::{finding, RuleCtx};
use crate::source::{contains_token, ident_before_colon, last_ident, SourceFile};
use crate::Finding;

/// Deterministic decision paths: the simulator, the policy layer, the
/// engine, and the NICE adapter.
pub const DETERMINISM_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/flow/src",
    "crates/kv-core/src",
    "crates/nicekv/src",
];

const DETERMINISM_TOKENS: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
    ("thread_rng", "OS-seeded randomness"),
    ("OsRng", "OS randomness"),
    ("from_entropy", "OS-seeded randomness"),
    ("getrandom", "OS randomness"),
    ("rand::", "external randomness crate"),
];

/// No wall-clock time and no OS randomness inside the simulator and
/// protocol decision paths: the discrete-event simulator must replay
/// bit-for-bit from a seed.
pub fn determinism(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    for sf in ctx.files_under(DETERMINISM_DIRS, true) {
        for (i, line) in sf.code.iter().enumerate() {
            if sf.in_test[i] {
                continue;
            }
            for (tok, why) in DETERMINISM_TOKENS {
                if contains_token(line, tok) {
                    finding(
                        out,
                        "determinism",
                        &sf.rel,
                        i + 1,
                        "-",
                        tok,
                        format!(
                            "`{tok}` ({why}) in a deterministic decision path; \
                             derive everything from the seeded simulation clock/PRNG"
                        ),
                    );
                }
            }
        }
    }
}

/// Protocol crates where hash-container iteration order could leak into
/// a protocol decision.
pub const UNORDERED_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/flow/src",
    "crates/kv-core/src",
    "crates/nicekv/src",
    "crates/noob/src",
    "crates/transport/src",
];

/// Iterator-producing methods whose order is randomized on hash
/// containers.
pub const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// No iteration over `HashMap`/`HashSet` in protocol crates: iteration
/// order is randomized per process.
pub fn unordered_iter(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    for sf in ctx.files_under(UNORDERED_DIRS, true) {
        let names = hash_container_names(sf);
        if names.is_empty() {
            continue;
        }
        for (i, line) in sf.code.iter().enumerate() {
            if sf.in_test[i] {
                continue;
            }
            for name in &names {
                if iterates_name(line, name) {
                    finding(
                        out,
                        "unordered_iter",
                        &sf.rel,
                        i + 1,
                        "-",
                        name,
                        format!(
                            "iteration over hash container `{name}` (randomized order) \
                             may feed an ordered protocol decision; use BTreeMap/BTreeSet \
                             or sort first"
                        ),
                    );
                }
            }
        }
    }
}

/// Names declared in this file with a `HashMap`/`HashSet` type or
/// initialized from one (fields, lets, fn params).
pub fn hash_container_names(sf: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for (i, line) in sf.code.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        // `name: HashMap<...>` (field, param, or typed let)
        for ty in ["HashMap<", "HashSet<"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let abs = from + pos;
                if let Some(n) = ident_before_colon(&line[..abs]) {
                    push_unique(&mut names, n);
                }
                from = abs + ty.len();
            }
        }
        // `let [mut] name = HashMap::new()` / `::default()` / `::with_capacity`
        for ctor in ["HashMap::", "HashSet::"] {
            if let Some(pos) = line.find(ctor) {
                if let Some(eq) = line[..pos].rfind('=') {
                    if let Some(n) = last_ident(&line[..eq]) {
                        push_unique(&mut names, n);
                    }
                }
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, n: String) {
    if !names.contains(&n) {
        names.push(n);
    }
}

/// True when `name` appears on this line with an ident boundary and is
/// iterated: either `name.<iter-method>` or as the tail of a `for .. in`.
pub fn iterates_name(line: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let abs = from + pos;
        let before_ok = abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &line[abs + name.len()..];
        let after_first = after.chars().next();
        let boundary_ok = !after_first.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && boundary_ok {
            if ITER_METHODS.iter().any(|m| after.starts_with(m)) {
                return true;
            }
            // `for x in [&[mut]] [self.]name {` — direct IntoIterator use
            if let Some(in_pos) = line[..abs].rfind(" in ") {
                let between = line[in_pos + 4..abs].trim();
                let clean_tail = after.trim_start();
                let tail_ends_expr = clean_tail.is_empty() || clean_tail.starts_with('{');
                let between_ok = matches!(
                    between,
                    "" | "&" | "&mut" | "self." | "&self." | "&mut self."
                );
                if line[..in_pos].contains("for ") && between_ok && tail_ends_expr {
                    return true;
                }
            }
        }
        from = abs + name.len().max(1);
    }
    false
}

/// `ObjectStore` mutators and protocol-state transitions that only the
/// shared engine (`kv-core`) may invoke. A policy adapter calling one of
/// these is reimplementing lock-table or commit logic the engine owns.
/// (`.commit(`/`.abort(` match store calls only — the engine entry points
/// are `.on_commit(`/`.on_abort(`.)
const STORE_MUTATION_TOKENS: &[&str] = &[
    ": ObjectStore",
    "ObjectStore::new",
    ".lock(",
    ".pending_mut(",
    ".commit(",
    ".commit_direct(",
    ".abort(",
    ".write_delay(",
];

/// The policy-adapter source trees: addressing, transport, views and
/// failure policy only — no store mutation, no 2PC transitions.
const ADAPTER_DIRS: &[&str] = &["crates/nicekv/src", "crates/noob/src"];

/// Crates `kv-core` must not depend on: the engine sits beneath the
/// policy and topology layers and stays system- and transport-agnostic.
const CORE_FORBIDDEN_DEPS: &[&str] = &["nice-flow", "nice-ring", "nice-transport"];

/// Crates whose production code must be host-agnostic: everything the
/// apps need from their host comes through `node_rt::NodeIo`.
const NODEIO_DIRS: &[&str] = &[
    "crates/transport/src",
    "crates/noob/src",
    "crates/nicekv/src",
    "crates/kv-core/src",
    "crates/ring/src",
];

/// Sim-side files inside those crates: cluster builders wire apps onto
/// simulated hosts, and the metadata service programs simulated switch
/// tables (the in-network half of NICE has no real-runtime analogue).
const NODEIO_EXEMPT: &[&str] = &[
    "crates/noob/src/cluster.rs",
    "crates/nicekv/src/cluster.rs",
    "crates/nicekv/src/metadata.rs",
];

/// Protocol logic lives in exactly one crate: adapters must not mutate
/// the store or rerun 2PC transitions, and kv-core must not depend on
/// the policy/topology crates.
pub fn layering(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    // Adapters must not mutate the store or run protocol transitions.
    for sf in ctx.files_under(ADAPTER_DIRS, true) {
        for (i, line) in sf.code.iter().enumerate() {
            if sf.in_test[i] {
                continue;
            }
            for tok in STORE_MUTATION_TOKENS {
                if line.contains(tok) {
                    finding(
                        out,
                        "layering",
                        &sf.rel,
                        i + 1,
                        "-",
                        tok.trim(),
                        format!(
                            "`{}` in a policy adapter — store mutation and 2PC \
                             transitions belong to kv-core's ReplicationEngine",
                            tok.trim()
                        ),
                    );
                }
            }
        }
    }

    // kv-core must not link the policy/topology crates... (skipped when
    // the tree has no kv-core at all, e.g. a lint-fixture root).
    if ctx.root.join("crates/kv-core/src").is_dir() {
        let manifest_rel = "crates/kv-core/Cargo.toml";
        match std::fs::read_to_string(ctx.root.join(manifest_rel)) {
            Ok(manifest) => {
                for (i, line) in manifest.lines().enumerate() {
                    for dep in CORE_FORBIDDEN_DEPS {
                        if line.trim_start().starts_with(dep) {
                            finding(
                                out,
                                "layering",
                                manifest_rel,
                                i + 1,
                                "-",
                                dep,
                                format!("kv-core must not depend on `{dep}`"),
                            );
                        }
                    }
                }
            }
            Err(_) => finding(
                out,
                "layering",
                manifest_rel,
                1,
                "-",
                "manifest",
                "cannot read the kv-core manifest".to_string(),
            ),
        }
    }

    // ...nor name their modules in source (a `path =` workaround would
    // slip past the manifest check above).
    for sf in ctx.files_under(&["crates/kv-core/src"], false) {
        for (i, line) in sf.code.iter().enumerate() {
            for krate in &["nice_flow", "nice_ring", "nice_transport"] {
                if contains_token(line, &format!("{krate}::")) {
                    finding(
                        out,
                        "layering",
                        &sf.rel,
                        i + 1,
                        "-",
                        krate,
                        format!("kv-core references `{krate}` — the engine is layered beneath it"),
                    );
                }
            }
        }
    }

    // Protocol logic talks to its host only through `NodeIo` — naming
    // the simulator directly would silently tie an app to one host and
    // break the real-runtime deployment. The sim-side harness files
    // (cluster builders, the SDN metadata service that programs
    // simulated switch tables) are the deliberate exceptions; in-crate
    // test modules may also drive the simulator (skip_tests).
    for sf in ctx.files_under(NODEIO_DIRS, true) {
        if NODEIO_EXEMPT.contains(&sf.rel.as_str()) {
            continue;
        }
        for (i, line) in sf.code.iter().enumerate() {
            if sf.in_test[i] {
                continue;
            }
            if contains_token(line, "nice_sim") {
                finding(
                    out,
                    "layering",
                    &sf.rel,
                    i + 1,
                    "-",
                    "nice_sim",
                    "protocol code names the simulator — host access goes through \
                     node_rt::NodeIo so the same app runs on the sim and the real \
                     UDP runtime"
                        .to_string(),
                );
            }
        }
    }
}

/// Tokens that shrink a collection (or replace it wholesale). A `self.*`
/// push inside `on_packet` is fine as long as the same field sees one of
/// these somewhere in the file.
const DRAIN_TOKENS: &[&str] = &[
    ".pop(",
    ".pop_front(",
    ".pop_back(",
    ".drain(",
    ".drain(..)",
    ".clear(",
    ".remove(",
    ".retain(",
    ".truncate(",
    ".swap_remove(",
    ".split_off(",
];

/// A `push` onto a `self.*` collection inside an `on_packet` handler
/// without any drain of that collection elsewhere in the file is a
/// remote-triggered memory leak.
pub fn unbounded_queue(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    for sf in ctx.files_under(UNORDERED_DIRS, true) {
        for (i, path) in on_packet_self_pushes(sf) {
            let field = path.rsplit('.').next().unwrap_or(&path).to_string();
            if field_is_drained(sf, &field) {
                continue;
            }
            finding(
                out,
                "unbounded_queue",
                &sf.rel,
                i + 1,
                "-",
                &path,
                format!(
                    "`{path}.push(..)` in an on_packet path with no drain of \
                     `{field}` anywhere in this file: every received packet \
                     grows it forever; drain it, bound it, or waive with a reason"
                ),
            );
        }
    }
}

/// `(line, self-path)` for every `self.<path>.push(` inside a function
/// named `on_packet` (tracked by brace depth from the `fn on_packet`
/// header). Pushes onto locals are per-packet scratch and stay exempt.
fn on_packet_self_pushes(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // (depth at which the on_packet body opened)
    let mut body_until: Option<i64> = None;
    let mut in_header = false;
    for (i, line) in sf.code.iter().enumerate() {
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if body_until.is_none() && contains_token(line, "fn on_packet") {
            in_header = true;
        }
        if in_header && opens > 0 {
            body_until = Some(depth);
            in_header = false;
        }
        if body_until.is_some() && !sf.in_test[i] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(".push(") {
                let abs = from + pos;
                if let Some(path) = self_path_before(&line[..abs]) {
                    out.push((i, path));
                }
                from = abs + ".push(".len();
            }
        }
        depth += opens - closes;
        if let Some(d) = body_until {
            if depth <= d {
                body_until = None;
            }
        }
    }
    out
}

/// The `self.a.b` path ending at `prefix`'s tail, if the receiver of the
/// following method call is reached through `self`.
fn self_path_before(prefix: &str) -> Option<String> {
    let t = prefix.trim_end();
    let start = t
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_' || *c == '.')
        .map(|(i, _)| i)
        .last()?;
    let path = &t[start..];
    if path.starts_with("self.") && path.len() > "self.".len() {
        Some(path.to_string())
    } else {
        None
    }
}

/// Does any non-test line shrink or replace `field`? Reassignment
/// (`field = ...`) and `mem::take(&mut ...field)` both count.
fn field_is_drained(sf: &SourceFile, field: &str) -> bool {
    for (i, line) in sf.code.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        for tok in DRAIN_TOKENS {
            let pat = format!("{field}{tok}");
            if contains_token(line, &pat) {
                return true;
            }
        }
        if contains_token(line, &format!("{field} =")) && !line.contains("==") {
            return true;
        }
        if line.contains("take(&mut") && contains_token(line, field) {
            return true;
        }
    }
    false
}

/// Directories whose waiver markers are checked (`allow_reason` and
/// `stale_allow`). `crates/xtask` is excluded: it mentions markers in
/// its own diagnostics and tests.
pub const ALLOW_REASON_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/flow/src",
    "crates/kv-core/src",
    "crates/ring/src",
    "crates/transport/src",
    "crates/nicekv/src",
    "crates/noob/src",
    "crates/workload/src",
    "crates/bench/src",
];

/// `(0-based line, rule-name)` for every `lint:allow(<known rule>)`
/// marker in `sf` (raw lines — markers live in comments).
pub fn allow_markers(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, raw) in sf.raw.iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = raw[from..].find("lint:allow(") {
            let abs = from + pos;
            let rest = &raw[abs + "lint:allow(".len()..];
            from = abs + "lint:allow(".len();
            if let Some(close) = rest.find(')') {
                out.push((i, rest[..close].to_string()));
            }
        }
    }
    out
}

/// Every `lint:allow(<rule>)` waiver must name a known rule and carry a
/// reason on the same line.
pub fn allow_reason(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    for sf in ctx.files_under(ALLOW_REASON_DIRS, false) {
        for (i, raw) in sf.raw.iter().enumerate() {
            let mut from = 0;
            while let Some(pos) = raw[from..].find("lint:allow(") {
                let abs = from + pos;
                let rest = &raw[abs + "lint:allow(".len()..];
                from = abs + "lint:allow(".len();
                let Some(close) = rest.find(')') else {
                    continue;
                };
                let rule = &rest[..close];
                if !crate::rules::ALL_RULES.contains(&rule) {
                    finding(
                        out,
                        "allow_reason",
                        &sf.rel,
                        i + 1,
                        "-",
                        rule,
                        format!("waiver names unknown rule `{rule}`"),
                    );
                    continue;
                }
                let reason = rest[close + 1..]
                    .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
                    .trim();
                if reason.chars().filter(|c| c.is_alphanumeric()).count() < 8 {
                    finding(
                        out,
                        "allow_reason",
                        &sf.rel,
                        i + 1,
                        "-",
                        rule,
                        format!(
                            "`lint:allow({rule})` without a reason; write \
                             `lint:allow({rule}) — <why this is safe>`"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_detection() {
        assert!(iterates_name("for (k, v) in &self.coords {", "coords"));
        assert!(iterates_name(
            "let v: Vec<_> = coords.values().collect();",
            "coords"
        ));
        assert!(iterates_name("for k in coords.keys() {", "coords"));
        assert!(!iterates_name("self.coords.insert(k, v);", "coords"));
        assert!(!iterates_name("let x = coords.get(&k);", "coords"));
        assert!(!iterates_name("for x in &self.records {", "coords"));
    }

    #[test]
    fn declared_names_found() {
        let sf = sf_from_code(&[
            "    coords: HashMap<String, Coord>,",
            "    let mut seen = HashSet::new();",
            "    views: BTreeMap<PartitionId, View>,",
        ]);
        let names = hash_container_names(&sf);
        assert_eq!(names, vec!["coords".to_string(), "seen".to_string()]);
    }

    fn sf_from_code(lines: &[&str]) -> SourceFile {
        let code: Vec<String> = lines.iter().map(std::string::ToString::to_string).collect();
        let n = code.len();
        SourceFile {
            rel: "x".into(),
            raw: vec![String::new(); n],
            code,
            in_test: vec![false; n],
        }
    }

    #[test]
    fn self_path_extraction() {
        assert_eq!(
            self_path_before("        self.inbox"),
            Some("self.inbox".to_string())
        );
        assert_eq!(
            self_path_before("let v = self.a.b"),
            Some("self.a.b".to_string())
        );
        assert_eq!(self_path_before("local_vec"), None);
        assert_eq!(self_path_before("self."), None);
    }

    #[test]
    fn on_packet_pushes_detected_only_in_body() {
        let sf = sf_from_code(&[
            "impl App {",
            "    fn setup(&mut self) {",
            "        self.ready.push(1);",
            "    }",
            "    fn on_packet(&mut self, b: u8) {",
            "        let mut scratch = Vec::new();",
            "        scratch.push(b);",
            "        self.inbox.push(b);",
            "    }",
            "}",
        ]);
        let pushes = on_packet_self_pushes(&sf);
        assert_eq!(pushes, vec![(7, "self.inbox".to_string())]);
    }

    #[test]
    fn drained_fields_recognized() {
        let sf = sf_from_code(&[
            "self.inbox.push(b);",
            "let x = self.inbox.pop();",
            "self.log.push(e);",
            "self.backlog = Vec::new();",
        ]);
        assert!(field_is_drained(&sf, "inbox"));
        assert!(!field_is_drained(&sf, "log"));
        assert!(field_is_drained(&sf, "backlog"));
    }

    #[test]
    fn layering_tokens_hit_store_calls_not_engine_hooks() {
        // Store mutators must trip the rule...
        let banned = [
            "self.store.lock(&key, op);",
            "self.store.commit(&key, op, ts);",
            "self.store.abort(&key, op, t);",
            "let d = self.store.write_delay(size, true);",
            "store: ObjectStore,",
        ];
        for line in banned {
            assert!(
                STORE_MUTATION_TOKENS.iter().any(|t| line.contains(t)),
                "expected a layering hit in `{line}`"
            );
        }
        // ...while the engine's own entry points must not.
        let fine = [
            "self.engine.on_commit(&key, op, ts, role);",
            "self.engine.on_abort(&key, op, t);",
            "self.engine.on_ack1(&key, op, from);",
            "let r = self.engine.lock_report(|k| part(k) == pid);",
            "pub fn store(&self) -> &ObjectStore {",
        ];
        for line in fine {
            assert!(
                !STORE_MUTATION_TOKENS.iter().any(|t| line.contains(t)),
                "false layering hit in `{line}`"
            );
        }
    }

    #[test]
    fn allow_markers_found_in_comments() {
        let sf = SourceFile::from_text(
            "x.rs",
            "let a = 1; // lint:allow(determinism) — seeded elsewhere\nlet b = 2;\n",
        );
        assert_eq!(allow_markers(&sf), vec![(0, "determinism".to_string())]);
    }
}

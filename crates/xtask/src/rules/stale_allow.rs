//! `stale_allow`: a `lint:allow(<rule>)` marker that no longer waives
//! anything is itself a finding. Waivers rot — the code they excused
//! gets fixed or deleted, the comment stays, and the next reader
//! assumes the line below is still dangerous. This rule compares every
//! marker against the *pre-waiver* finding set: if no finding of the
//! named rule sits on the marker's line or the line below (the two
//! positions a marker covers), the marker is dead and must go.

use crate::rules::textual::{allow_markers, ALLOW_REASON_DIRS};
use crate::rules::{finding, RuleCtx};
use crate::Finding;

/// Run the rule. `pre` is the full finding set *before* waiver
/// filtering — a marker is live exactly when it suppresses one of
/// these.
pub fn run(ctx: &RuleCtx, pre: &[Finding], out: &mut Vec<Finding>) {
    for sf in ctx.files_under(ALLOW_REASON_DIRS, false) {
        for (m, rule) in allow_markers(sf) {
            if !crate::rules::ALL_RULES.contains(&rule.as_str()) {
                continue; // unknown rule name — allow_reason reports it
            }
            // A marker on 0-based line m waives findings on 1-based
            // lines m+1 (same line) and m+2 (next line).
            let live = pre.iter().any(|f| {
                f.rule == rule && f.file == sf.rel && (f.line == m + 1 || f.line == m + 2)
            });
            if !live {
                finding(
                    out,
                    "stale_allow",
                    &sf.rel,
                    m + 1,
                    "-",
                    &rule,
                    format!(
                        "`lint:allow({rule})` no longer suppresses any finding \
                         on this or the next line; delete the stale waiver"
                    ),
                );
            }
        }
    }
}

//! The lint rules, split by mechanism.
//!
//! * [`textual`] — the single-line token rules (`determinism`,
//!   `unordered_iter`, `layering`, `unbounded_queue`, `allow_reason`),
//!   scanning blanked source lines.
//! * [`panic_path`], [`effect_purity`], [`determinism_taint`] — the
//!   call-graph rules, propagating leaf facts transitively from
//!   request-path / engine / render roots over [`crate::callgraph`].
//! * [`dead_effect`] — cross-file reference rule: every `Effect` enum
//!   variant must be interpreted by some host adapter.
//! * [`stale_allow`] — meta-rule: a waiver whose line no longer
//!   triggers the waived rule is itself a finding.
//!
//! Every rule pushes findings *unconditionally* (no waiver filtering):
//! the orchestrator in `lib.rs` applies `lint:allow` waivers afterward,
//! which is what lets `stale_allow` see the pre-waiver finding set.

pub mod dead_effect;
pub mod determinism_taint;
pub mod effect_purity;
pub mod fsync_discipline;
pub mod panic_path;
pub mod stale_allow;
pub mod textual;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::callgraph::Workspace;
use crate::source::{rs_files, SourceFile};
use crate::Finding;

/// Every rule name a `lint:allow(...)` marker may reference.
pub const ALL_RULES: &[&str] = &[
    "determinism",
    "panic_path",
    "unordered_iter",
    "layering",
    "unbounded_queue",
    "allow_reason",
    "effect_purity",
    "determinism_taint",
    "dead_effect",
    "fsync_discipline",
    "stale_allow",
];

/// Crate source dirs excluded from the call graph: `xtask` is the lint
/// itself, `bench` is measurement harness code that drives the system
/// from outside any request path.
pub(crate) const GRAPH_EXCLUDED: &[&str] = &["crates/xtask", "crates/bench"];

/// Shared per-run state: every loaded source file plus the parsed
/// workspace call graph.
pub struct RuleCtx {
    /// Workspace root.
    pub root: PathBuf,
    /// rel path → loaded file, for every `.rs` under `crates/*/src`
    /// and the facade `src/`.
    pub files: BTreeMap<String, SourceFile>,
    /// The workspace function/call-graph model (protocol crates only;
    /// see [`GRAPH_EXCLUDED`]).
    pub graph: Workspace,
}

impl RuleCtx {
    /// Load all sources under `root` and build the call graph.
    pub fn load(root: &Path) -> RuleCtx {
        let mut files = BTreeMap::new();
        let mut dirs: Vec<String> = vec!["src".to_string()];
        if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
            for e in entries.flatten() {
                if e.path().is_dir() {
                    dirs.push(format!("crates/{}/src", e.file_name().to_string_lossy()));
                }
            }
        }
        dirs.sort();
        for dir in &dirs {
            for rel in rs_files(root, dir, &[]) {
                if let Some(sf) = SourceFile::load(root, &rel) {
                    files.insert(rel, sf);
                }
            }
        }
        let graph_inputs: Vec<(String, String)> = files
            .keys()
            .filter(|rel| {
                !GRAPH_EXCLUDED
                    .iter()
                    .any(|ex| rel.starts_with(&format!("{ex}/")))
            })
            .filter_map(|rel| {
                std::fs::read_to_string(root.join(rel))
                    .ok()
                    .map(|text| (rel.clone(), text))
            })
            .collect();
        let graph = Workspace::parse(&graph_inputs);
        RuleCtx {
            root: root.to_path_buf(),
            files,
            graph,
        }
    }

    /// Loaded files whose path starts with any of `dirs` (each given as
    /// a dir prefix like `crates/sim/src`), excluding out-of-line test
    /// modules when `skip_tests`.
    pub fn files_under<'c>(
        &'c self,
        dirs: &'c [&str],
        skip_tests: bool,
    ) -> impl Iterator<Item = &'c SourceFile> {
        self.files.iter().filter_map(move |(rel, sf)| {
            let in_dir = dirs.iter().any(|d| rel.starts_with(&format!("{d}/")));
            if !in_dir {
                return None;
            }
            if skip_tests && (rel.ends_with("/tests.rs") || rel.ends_with("/prop_tests.rs")) {
                return None;
            }
            Some(sf)
        })
    }
}

/// Push a finding, filling the common fields.
pub fn finding(
    out: &mut Vec<Finding>,
    rule: &'static str,
    file: &str,
    line: usize,
    ctx: &str,
    detail: &str,
    msg: String,
) {
    out.push(Finding {
        rule,
        file: file.to_string(),
        line,
        ctx: ctx.to_string(),
        detail: detail.to_string(),
        msg,
        key: String::new(), // assigned by the orchestrator
    });
}

//! `determinism_taint`: nondeterminism sources must not flow into
//! protocol state, message bytes, or replay output. Roots are the
//! deterministic surfaces — every `ReplicationEngine` transition,
//! every `render`/`render_*` fn (trace/replay output that must be
//! byte-identical across runs), and every `metrics`/`snapshot` fn (the
//! telemetry snapshot contract: two same-seed sim runs must produce
//! byte-identical registries) — and the rule walks everything they
//! transitively call, looking for:
//!
//! * wall-clock reads (`Instant::now`, `SystemTime`),
//! * iteration over `HashMap`/`HashSet` (order randomized per process),
//! * pointer/address formatting (`{:p}`, `.as_ptr()`, `as *const` /
//!   `as *mut` casts) — addresses differ across runs and ASLR.
//!
//! The textual `determinism`/`unordered_iter` rules ban some of these
//! per-directory; this rule follows the *flow*, so a clock read in a
//! helper crate the directory rules never look at is still caught the
//! moment a render fn or engine transition can reach it.
//!
//! One scope carve-out: the walk stops at [`REAL_RUNTIME_DIRS`] — the
//! threaded UDP runtime's internals are wall-clock by design and need
//! no waivers.

use crate::rules::textual::{hash_container_names, iterates_name};
use crate::rules::{finding, RuleCtx};
use crate::source::contains_token;
use crate::Finding;

/// The real-runtime host on the far side of the `NodeIo` boundary.
/// Wall clocks, OS threads, and sockets are that crate's *job* — it
/// implements `now()` with `Instant` by design — so the taint walk
/// stops at its door instead of demanding a per-line waiver for every
/// legitimate clock read. Protocol code stays covered: it only reaches
/// a wall clock through `NodeIo`, and under the simulator host that
/// same call is virtual time.
pub const REAL_RUNTIME_DIRS: &[&str] = &["crates/node-rt/src"];

fn in_real_runtime(file: &str) -> bool {
    REAL_RUNTIME_DIRS
        .iter()
        .any(|d| file.starts_with(&format!("{d}/")))
}

/// Run the rule: BFS from render fns + engine transitions, scan each
/// reached fn's body for nondeterminism sources.
pub fn run(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    let g = &ctx.graph;
    let roots: Vec<usize> = g
        .production()
        .filter(|&i| {
            let f = &g.fns[i];
            f.name == "render"
                || f.name.starts_with("render_")
                || f.name == "metrics"
                || f.name == "snapshot"
                || f.trait_name.as_deref() == Some("ReplicationEngine")
        })
        .collect();
    let parent = g.reach(&roots);
    for &idx in parent.keys() {
        let f = &g.fns[idx];
        if in_real_runtime(&f.file) {
            continue;
        }
        let Some(sf) = ctx.files.get(&f.file) else {
            continue;
        };
        let hash_names = hash_container_names(sf);
        for ln in f.line..=f.end_line.min(sf.code.len()) {
            let i = ln - 1; // 0-based
            if sf.in_test[i] {
                continue;
            }
            let code = &sf.code[i];
            let mut hit = |detail: &str, what: String| {
                let chain = g.chain(&parent, idx);
                finding(
                    out,
                    "determinism_taint",
                    &f.file,
                    ln,
                    &f.qualname(),
                    detail,
                    format!(
                        "{what} flows into deterministic output (via {chain}); \
                         protocol state, message bytes and render/replay output \
                         must be identical across runs"
                    ),
                );
            };
            for tok in ["Instant::now", "SystemTime"] {
                if contains_token(code, tok) {
                    hit(tok, format!("wall-clock read `{tok}`"));
                }
            }
            for name in &hash_names {
                if iterates_name(code, name) {
                    hit(
                        name,
                        format!("randomized-order iteration over hash container `{name}`"),
                    );
                }
            }
            if sf.raw[i].contains("{:p}") {
                hit("{:p}", "pointer formatting `{:p}`".to_string());
            }
            if code.contains(".as_ptr()") {
                hit(".as_ptr()", "pointer value `.as_ptr()`".to_string());
            }
            if contains_token(code, "as *const") || contains_token(code, "as *mut") {
                hit("ptr-cast", "pointer cast `as *const/*mut`".to_string());
            }
        }
    }
}

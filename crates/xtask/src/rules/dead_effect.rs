//! `dead_effect`: every variant of an `Effect` enum must be interpreted
//! by some host adapter. The engine's only output channel is emitted
//! `Effect` values (see `effect_purity`) — a variant no adapter matches
//! is a silently dropped side effect: the transition *believes* it
//! replied/armed a timer/sent an ack, and nothing happens.
//!
//! A variant counts as interpreted when `Effect::<Variant>` appears in
//! production code of some file *other than* the defining one. An
//! explicit ignore arm (`Effect::Foo { .. } => {}`) counts — that is a
//! per-host decision on the record; a `_ =>` wildcard does not, because
//! it swallows future variants without review (which is exactly the bug
//! this rule exists to surface).

use crate::rules::{finding, RuleCtx, GRAPH_EXCLUDED};
use crate::source::contains_token;
use crate::Finding;

/// Is this line the start of an `Effect` enum declaration?
fn is_effect_enum_decl(code: &str) -> bool {
    let t = code.trim_start();
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let Some(rest) = t.strip_prefix("enum Effect") else {
        return false;
    };
    !rest
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Variant name on a depth-1 enum-body line, if any. Attributes, blanked
/// doc comments, and field lines of brace variants don't match.
fn variant_name(code: &str) -> Option<String> {
    let t = code.trim_start();
    let name: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if !name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        return None;
    }
    let rest = t[name.len()..].trim_start();
    (rest.is_empty() || rest.starts_with(',') || rest.starts_with('{') || rest.starts_with('('))
        .then_some(name)
}

fn excluded(rel: &str) -> bool {
    GRAPH_EXCLUDED
        .iter()
        .any(|ex| rel.starts_with(&format!("{ex}/")))
}

/// Run the rule: collect every `Effect` variant declaration, then demand
/// a qualified `Effect::<Variant>` reference in production code outside
/// the defining file.
pub fn run(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    // (defining file, declaration line, variant name)
    let mut defs: Vec<(String, usize, String)> = Vec::new();
    for (rel, sf) in &ctx.files {
        if excluded(rel) || rel.ends_with("/tests.rs") || rel.ends_with("/prop_tests.rs") {
            continue;
        }
        let mut i = 0;
        while i < sf.code.len() {
            if sf.in_test[i] || !is_effect_enum_decl(&sf.code[i]) {
                i += 1;
                continue;
            }
            let mut depth =
                sf.code[i].matches('{').count() as i32 - sf.code[i].matches('}').count() as i32;
            let mut j = i + 1;
            while j < sf.code.len() && depth > 0 {
                let line = &sf.code[j];
                if depth == 1 {
                    if let Some(v) = variant_name(line) {
                        defs.push((rel.clone(), j + 1, v));
                    }
                }
                depth += line.matches('{').count() as i32;
                depth -= line.matches('}').count() as i32;
                j += 1;
            }
            i = j;
        }
    }
    for (def_file, line, v) in defs {
        let tok = format!("Effect::{v}");
        let interpreted = ctx.files.iter().any(|(rel, sf)| {
            rel != &def_file
                && !excluded(rel)
                && sf
                    .code
                    .iter()
                    .enumerate()
                    .any(|(i, l)| !sf.in_test[i] && contains_token(l, &tok))
        });
        if !interpreted {
            finding(
                out,
                "dead_effect",
                &def_file,
                line,
                &tok,
                &v,
                format!(
                    "Effect variant `{v}` is interpreted by no host: no file \
                     besides {def_file} mentions `{tok}`. An emitted effect \
                     nobody matches is a silently dropped side effect — handle \
                     it in every adapter, even if only as an explicit ignore arm"
                ),
            );
        }
    }
}

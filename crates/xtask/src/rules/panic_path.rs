//! Transitive `panic_path`: propagate may-panic sites (`unwrap`,
//! `expect`, `panic!`-family macros, slice indexing) up the workspace
//! call graph and flag every site reachable from a request-path entry
//! point — anywhere in the workspace, not a fixed file list.
//!
//! A malformed or re-ordered message must degrade to a typed `KvError`
//! or a counter bump, never a crash — including two helper calls deep.

use crate::callgraph::FnItem;
use crate::rules::{finding, RuleCtx};
use crate::Finding;

/// Non-`on_*` function names that start a request path: packet drivers,
/// client ops, and the engine/server step loops.
const ENTRY_NAMES: &[&str] = &["drive", "handle", "step", "issue_next", "complete"];

/// Is `f` a request-path entry point? Engine transitions (`on_*` and
/// every `ReplicationEngine` impl), handler/driver names, and the
/// transport send surface (`send` / `*_send`).
pub fn is_entry(f: &FnItem) -> bool {
    if f.is_test {
        return false;
    }
    if f.trait_name.as_deref() == Some("ReplicationEngine") {
        return true;
    }
    f.name.starts_with("on_")
        || ENTRY_NAMES.contains(&f.name.as_str())
        || f.name == "send"
        || f.name.ends_with("_send")
}

/// Run the rule: BFS from every entry point, report each panic site in
/// a reached fn with the full call chain from its entry.
pub fn run(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    let g = &ctx.graph;
    let roots: Vec<usize> = g.production().filter(|&i| is_entry(&g.fns[i])).collect();
    let parent = g.reach(&roots);
    for &idx in parent.keys() {
        let f = &g.fns[idx];
        for site in &f.panics {
            let chain = g.chain(&parent, idx);
            finding(
                out,
                "panic_path",
                &f.file,
                site.line,
                &f.qualname(),
                &site.what,
                format!(
                    "`{}` may panic on a request path (via {}); return a typed \
                     error (KvError) and bump a counter instead",
                    site.what, chain
                ),
            );
        }
    }
}

//! `effect_purity`: `kv-core`'s `ReplicationEngine` transition methods
//! must be pure state-machine steps. All side effects — sends, timers,
//! sleeps, logging, filesystem or network I/O — leave the engine only
//! as emitted `Effect` values; the adapter executes them. Enforced
//! transitively: a helper three calls below `on_ack1` doing a
//! `thread::sleep` is the same bug as the transition doing it directly.
//!
//! Clock reads (`Instant::now`/`SystemTime`) are reported by the
//! sibling `determinism_taint` rule over the same roots, not here.

use crate::rules::{finding, RuleCtx};
use crate::source::contains_token;
use crate::Finding;

/// Ambient-effect tokens banned anywhere reachable from an engine
/// transition, with the reason shown in the message.
const IMPURE_TOKENS: &[(&str, &str)] = &[
    (
        ".send(",
        "direct send — emit an Effect and let the adapter send",
    ),
    ("sleep(", "sleeping — deadlines come in via on_deadline"),
    ("println!", "console I/O"),
    ("eprintln!", "console I/O"),
    ("print!", "console I/O"),
    ("eprint!", "console I/O"),
    ("dbg!", "console I/O"),
    ("std::fs", "filesystem I/O"),
    ("File::", "filesystem I/O"),
    ("std::net", "network I/O"),
    ("UdpSocket", "network I/O"),
    ("TcpStream", "network I/O"),
    ("TcpListener", "network I/O"),
    ("std::process", "process control"),
    ("std::env", "ambient environment read"),
    ("io::stdin", "console I/O"),
    ("io::stdout", "console I/O"),
    ("io::stderr", "console I/O"),
];

/// Run the rule: BFS from every `ReplicationEngine` impl method, then
/// scan each reached fn's body lines for ambient-effect tokens.
pub fn run(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    let g = &ctx.graph;
    let roots: Vec<usize> = g
        .production()
        .filter(|&i| g.fns[i].trait_name.as_deref() == Some("ReplicationEngine"))
        .collect();
    let parent = g.reach(&roots);
    for &idx in parent.keys() {
        let f = &g.fns[idx];
        let Some(sf) = ctx.files.get(&f.file) else {
            continue;
        };
        for ln in f.line..=f.end_line.min(sf.code.len()) {
            let i = ln - 1; // 0-based
            if sf.in_test[i] {
                continue;
            }
            for (tok, why) in IMPURE_TOKENS {
                if contains_token(&sf.code[i], tok) {
                    let chain = g.chain(&parent, idx);
                    finding(
                        out,
                        "effect_purity",
                        &f.file,
                        ln,
                        &f.qualname(),
                        tok,
                        format!(
                            "`{}` inside an engine transition ({why}); reachable \
                             via {} — the ReplicationEngine is pure, side effects \
                             leave only as Effect values",
                            tok.trim_matches(['.', '(']),
                            chain
                        ),
                    );
                }
            }
        }
    }
}

//! `fsync_discipline`: durability acknowledgements must not leave the
//! engine before the WAL is forced. The crash-safety contract (DESIGN.md
//! §11) is fsync-before-ack: once a client or a coordinator sees `Ack1`,
//! `Ack2`, or `Commit`, the records behind it must already be on stable
//! storage, or a crash immediately after the send loses an acknowledged
//! write.
//!
//! Enforced structurally: every `push(Effect::Ack1/Ack2/Commit …)` in a
//! production function must be preceded — earlier in the same function
//! body — by a `wal_barrier(` or `wal_sync(` call. The rule is
//! deliberately same-function: hoisting the barrier into a caller hides
//! the pairing the next reader must verify, so the fix for a false
//! positive is to move the barrier next to the push (or waive with a
//! reason), not to weaken the rule.

use crate::rules::{finding, RuleCtx};
use crate::source::contains_token;
use crate::Finding;

/// Effect pushes that acknowledge durability to another node.
const ACK_PUSHES: &[(&str, &str)] = &[
    ("push(Effect::Ack1", "Effect::Ack1"),
    ("push(Effect::Ack2", "Effect::Ack2"),
    ("push(Effect::Commit", "Effect::Commit"),
];

/// Calls that force the WAL to stable storage.
const BARRIERS: &[&str] = &["wal_barrier(", "wal_sync("];

/// Run the rule: scan every production fn body; each ack push must see
/// a barrier on an earlier (or the same) line of the same function.
pub fn run(ctx: &RuleCtx, out: &mut Vec<Finding>) {
    let g = &ctx.graph;
    for i in g.production() {
        let f = &g.fns[i];
        let Some(sf) = ctx.files.get(&f.file) else {
            continue;
        };
        let mut barrier_seen = false;
        for ln in f.line..=f.end_line.min(sf.code.len()) {
            let line = &sf.code[ln - 1];
            if sf.in_test[ln - 1] {
                continue;
            }
            if BARRIERS.iter().any(|b| contains_token(line, b)) {
                barrier_seen = true;
            }
            for (tok, what) in ACK_PUSHES {
                if contains_token(line, tok) && !barrier_seen {
                    finding(
                        out,
                        "fsync_discipline",
                        &f.file,
                        ln,
                        &f.qualname(),
                        what,
                        format!(
                            "`{what}` pushed in {} with no preceding \
                             `wal_barrier()`/`wal_sync()` in the same function — \
                             an acknowledgement must not leave the node before \
                             its WAL records reach stable storage \
                             (fsync-before-ack)",
                            f.qualname()
                        ),
                    );
                }
            }
        }
    }
}

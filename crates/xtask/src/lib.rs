//! Workspace automation for the NICE reproduction.
//!
//! `cargo run -p xtask -- lint` runs the project-specific static-analysis
//! suite: invariants the compiler and clippy cannot express because they
//! are about *this* codebase's correctness story (see DESIGN.md, "Static
//! analysis & lint policy").
//!
//! The suite has two tiers. The **textual rules** scan blanked source
//! lines per directory:
//!
//! 1. **determinism** — no wall-clock time and no OS randomness inside
//!    the simulator and protocol decision paths; the discrete-event
//!    simulator must replay bit-for-bit from a seed.
//! 2. **unordered_iter** — no iteration over `HashMap`/`HashSet` in
//!    protocol crates: iteration order is randomized per process.
//! 3. **layering** — protocol logic lives in exactly one crate: policy
//!    adapters must not mutate the store or rerun 2PC transitions, and
//!    `kv-core` must not depend on the policy/topology crates.
//! 4. **unbounded_queue** — a `self.*` push in an `on_packet` handler
//!    with no drain anywhere in the file is a remote-triggered leak.
//! 5. **allow_reason** — every `lint:allow(<rule>)` waiver must name a
//!    known rule and carry a reason.
//!
//! The **graph rules** ([`lexer`] → [`callgraph`]) build a workspace-
//! wide function/call graph and propagate facts transitively:
//!
//! 6. **panic_path** — may-panic sites (`unwrap`/`expect`/panicking
//!    macros/slice indexing) reachable from any request-path entry
//!    point, with the full call chain in the message.
//! 7. **effect_purity** — `ReplicationEngine` transitions are pure:
//!    no sends/sleeps/I-O anywhere they can reach; effects leave the
//!    engine only as `Effect` values.
//! 8. **determinism_taint** — clock reads, hash-order iteration, and
//!    pointer formatting must not flow into protocol state or
//!    `render()`/replay output.
//! 9. **dead_effect** — every `Effect` enum variant must be matched by
//!    some host adapter outside its defining file; an effect nobody
//!    interprets is a silently dropped side effect.
//! 10. **fsync_discipline** — a durability acknowledgement
//!     (`Effect::Ack1`/`Ack2`/`Commit`) must be preceded by a
//!     `wal_barrier()`/`wal_sync()` call in the same function:
//!     fsync-before-ack, or a crash after the send loses an
//!     acknowledged write.
//! 11. **stale_allow** — a waiver that no longer suppresses a finding
//!     is itself a finding.
//!
//! Findings are compared against the committed `lint_baseline.json`
//! ([`baseline`]): new findings fail, fixed findings auto-shrink the
//! file, so CI ratchets toward zero without blocking on legacy debt.
//!
//! Exit status: 0 when no unbaselined finding, 1 otherwise.

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod source;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::RuleCtx;

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Containing function's qualified name, or `-` for file-level
    /// rules. Part of the baseline key, so findings survive line drift.
    pub ctx: String,
    /// Short machine-ish token naming what was found (part of the key).
    pub detail: String,
    /// Human message, including the call chain for graph rules.
    pub msg: String,
    /// Baseline identity: `rule|file|ctx|detail#ordinal`. Line-number
    /// free, so unrelated edits above a finding do not churn the
    /// baseline.
    pub key: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Run every rule over the workspace at `root` and return the
/// post-waiver finding set, keyed and sorted. This is the library
/// entry the fixture tests drive.
pub fn collect_findings(root: &Path) -> Vec<Finding> {
    let ctx = RuleCtx::load(root);
    let mut pre = Vec::new();
    rules::textual::determinism(&ctx, &mut pre);
    rules::textual::unordered_iter(&ctx, &mut pre);
    rules::textual::layering(&ctx, &mut pre);
    rules::textual::unbounded_queue(&ctx, &mut pre);
    rules::textual::allow_reason(&ctx, &mut pre);
    rules::panic_path::run(&ctx, &mut pre);
    rules::effect_purity::run(&ctx, &mut pre);
    rules::determinism_taint::run(&ctx, &mut pre);
    rules::dead_effect::run(&ctx, &mut pre);
    rules::fsync_discipline::run(&ctx, &mut pre);

    // Waiver pass: rules emit unconditionally; `lint:allow` markers are
    // applied here so stale_allow can see the pre-waiver set.
    let mut kept: Vec<Finding> = pre.iter().filter(|f| !waived(&ctx, f)).cloned().collect();
    rules::stale_allow::run(&ctx, &pre, &mut kept);

    kept.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.detail, &a.ctx)
            .cmp(&(&b.file, b.line, b.rule, &b.detail, &b.ctx))
    });
    assign_keys(&mut kept);
    kept
}

/// Is `f` suppressed by a `lint:allow` marker on its own or the
/// preceding line? Meta-rules about the markers themselves are never
/// waivable.
fn waived(ctx: &RuleCtx, f: &Finding) -> bool {
    if f.rule == "allow_reason" || f.rule == "stale_allow" {
        return false;
    }
    f.line >= 1
        && ctx
            .files
            .get(&f.file)
            .is_some_and(|sf| sf.allowed(f.line - 1, f.rule))
}

/// Assign baseline keys: `rule|file|ctx|detail#ordinal`, ordinal by
/// position in the (already file/line-sorted) finding list — the 2nd
/// `unwrap()` in the same fn is `#2` regardless of its line number.
fn assign_keys(findings: &mut [Finding]) {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in findings.iter_mut() {
        let base = format!("{}|{}|{}|{}", f.rule, f.file, f.ctx, f.detail);
        let n = counts.entry(base.clone()).or_insert(0);
        *n += 1;
        f.key = format!("{base}#{n}");
    }
}

/// Render the full findings report as byte-stable JSON (sorted input,
/// hand-rolled writer, no map iteration).
pub fn render_json(findings: &[Finding], baselined: &BTreeSet<String>) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    let mut first = true;
    for f in findings {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"key\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"baselined\": {}, \"msg\": \"{}\"}}",
            baseline::escape(&f.key),
            f.rule,
            baseline::escape(&f.file),
            f.line,
            baselined.contains(&f.key),
            baseline::escape(&f.msg),
        ));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

const USAGE: &str =
    "usage: cargo run -p xtask -- lint [--root <workspace>] [--json] [--no-baseline] [--write-baseline]";

/// CLI entry (the `xtask` binary is a thin wrapper around this).
pub fn cli(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut cmd = None;
    let mut json = false;
    let mut no_baseline = false;
    let mut write_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(r) => root = PathBuf::from(r),
                    None => {
                        eprintln!("--root requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => json = true,
            "--no-baseline" => no_baseline = true,
            "--write-baseline" => write_baseline = true,
            c if cmd.is_none() => cmd = Some(c.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    match cmd.as_deref() {
        Some("lint") => run_lint(&root, json, no_baseline, write_baseline),
        Some(other) => {
            eprintln!("unknown command: {other}\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(root: &Path, json: bool, no_baseline: bool, write_baseline: bool) -> ExitCode {
    let findings = collect_findings(root);
    let current: BTreeSet<String> = findings.iter().map(|f| f.key.clone()).collect();
    let baseline_path = root.join("lint_baseline.json");

    if write_baseline {
        if let Err(e) = baseline::write(&baseline_path, &current) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: baseline written with {} finding(s)",
            current.len()
        );
        return ExitCode::SUCCESS;
    }

    let known: BTreeSet<String> = if no_baseline {
        BTreeSet::new()
    } else {
        baseline::read(&baseline_path).unwrap_or_default()
    };
    let fresh: Vec<&Finding> = findings
        .iter()
        .filter(|f| !known.contains(&f.key))
        .collect();
    let gone: Vec<&String> = known.difference(&current).collect();

    if json {
        print!("{}", render_json(&findings, &known));
    } else {
        for f in &fresh {
            println!("{f}");
        }
    }

    if !fresh.is_empty() {
        eprintln!(
            "xtask lint: {} new finding(s) not in baseline ({} baselined)",
            fresh.len(),
            findings.len() - fresh.len()
        );
        return ExitCode::FAILURE;
    }
    if !gone.is_empty() && !no_baseline {
        // Ratchet: findings that disappeared leave the baseline for good.
        if let Err(e) = baseline::write(&baseline_path, &current) {
            eprintln!("cannot shrink {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "xtask lint: {} finding(s) fixed — baseline shrunk to {}",
            gone.len(),
            current.len()
        );
    }
    if !json {
        println!("xtask lint: clean ({} baselined finding(s))", current.len());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(rule: &'static str, file: &str, line: usize, ctx: &str, detail: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            ctx: ctx.into(),
            detail: detail.into(),
            msg: format!("{detail} at {file}:{line}"),
            key: String::new(),
        }
    }

    #[test]
    fn keys_are_line_free_and_ordinal_stable() {
        let mut fs = vec![
            fake("panic_path", "a.rs", 10, "T::f", "unwrap()"),
            fake("panic_path", "a.rs", 20, "T::f", "unwrap()"),
            fake("determinism", "a.rs", 30, "-", "SystemTime"),
        ];
        assign_keys(&mut fs);
        assert_eq!(fs[0].key, "panic_path|a.rs|T::f|unwrap()#1");
        assert_eq!(fs[1].key, "panic_path|a.rs|T::f|unwrap()#2");
        assert_eq!(fs[2].key, "determinism|a.rs|-|SystemTime#1");
        // Shifting every line must not change any key.
        let mut shifted = vec![
            fake("panic_path", "a.rs", 15, "T::f", "unwrap()"),
            fake("panic_path", "a.rs", 25, "T::f", "unwrap()"),
            fake("determinism", "a.rs", 35, "-", "SystemTime"),
        ];
        assign_keys(&mut shifted);
        for (a, b) in fs.iter().zip(&shifted) {
            assert_eq!(a.key, b.key);
        }
    }

    #[test]
    fn json_report_is_flagged_and_stable() {
        let mut fs = vec![fake("determinism", "a.rs", 3, "-", "SystemTime")];
        assign_keys(&mut fs);
        let known: BTreeSet<String> = [fs[0].key.clone()].into_iter().collect();
        let doc = render_json(&fs, &known);
        assert!(doc.contains("\"baselined\": true"));
        assert_eq!(doc, render_json(&fs, &known), "byte-stable");
        let empty = render_json(&[], &BTreeSet::new());
        assert!(empty.contains("\"findings\": []"));
    }
}

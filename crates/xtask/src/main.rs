//! Thin binary wrapper: all logic lives in the `xtask` library so the
//! fixture-based integration tests can drive the rules directly.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    xtask::cli(&args)
}

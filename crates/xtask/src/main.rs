//! Workspace automation for the NICE reproduction.
//!
//! `cargo run -p xtask -- lint` runs the project-specific static-analysis
//! suite: invariants the compiler and clippy cannot express because they
//! are about *this* codebase's correctness story (see DESIGN.md, "Static
//! analysis & lint policy"):
//!
//! 1. **determinism** — no wall-clock time (`Instant::now`, `SystemTime`)
//!    and no OS randomness (`thread_rng`, `OsRng`, `getrandom`,
//!    `from_entropy`) inside the simulator and protocol decision paths
//!    (`crates/sim`, `crates/flow`, `crates/nicekv`). The discrete-event
//!    simulator must replay bit-for-bit from a seed; even the fault
//!    injector (`sim/src/fault.rs`) draws loss, duplication, and delay
//!    from its plan's own seeded PRNG so a `FaultPlan` replays to a
//!    byte-identical trace.
//! 2. **panic_path** — no `unwrap()` / `expect()` / `panic!` /
//!    `unreachable!` / `todo!` / `unimplemented!` in request paths:
//!    `nicekv/src/server.rs`, `nicekv/src/client.rs`,
//!    `nicekv/src/metadata.rs`, `noob/src/server.rs`,
//!    `noob/src/gateway.rs`, and all of `crates/transport`. A malformed
//!    or re-ordered message must degrade to a typed `KvError` or a
//!    counter bump, never a crash.
//! 3. **unordered_iter** — no iteration over `HashMap` / `HashSet` in
//!    protocol crates: iteration order is randomized per process, so any
//!    protocol decision fed by it silently breaks determinism. Use
//!    `BTreeMap` / `BTreeSet`, or sort before use.
//! 4. **layering** — protocol logic lives in exactly one crate. The
//!    policy adapters (`crates/nicekv`, `crates/noob`) must not mutate
//!    the object store or reimplement lock/coordinator transitions —
//!    those belong to `kv-core`'s `ReplicationEngine`; and `kv-core`
//!    must not depend on the policy/topology crates (`nice-flow`,
//!    `nice-ring`, `nice-transport`) — the engine is system- and
//!    transport-agnostic. (This replaces the old textual `enum_parity`
//!    rule: with one shared state machine, parity is type-enforced.)
//! 5. **unbounded_queue** — a `push` onto a `self.*` collection inside an
//!    `on_packet` handler without any drain of that collection elsewhere
//!    in the file is a remote-triggered memory leak: every received
//!    packet grows state that nothing ever shrinks.
//! 6. **allow_reason** — every `lint:allow(<rule>)` waiver must carry a
//!    reason on the same line (`lint:allow(rule) — why this is safe`); a
//!    bare waiver is itself a violation.
//!
//! A violation that is intentional can be waived with a trailing or
//! preceding comment `lint:allow(<rule>) — <reason>`; the reason is
//! mandatory and enforced by the `allow_reason` rule.
//!
//! Exit status: 0 when clean, 1 with `file:line` diagnostics otherwise.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut cmd = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(r) => root = PathBuf::from(r),
                    None => {
                        eprintln!("--root requires a path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            c if cmd.is_none() => cmd = Some(c.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    match cmd.as_deref() {
        Some("lint") => run_lint(&root),
        Some(other) => {
            eprintln!("unknown command: {other}\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- lint [--root <workspace>]";

fn run_lint(root: &Path) -> ExitCode {
    let mut findings = Vec::new();
    determinism_lint(root, &mut findings);
    panic_path_lint(root, &mut findings);
    unordered_iter_lint(root, &mut findings);
    layering_lint(root, &mut findings);
    unbounded_queue_lint(root, &mut findings);
    allow_reason_lint(root, &mut findings);

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

// ---------------------------------------------------------------------------
// Source model: a file split into lines with comments/strings blanked out,
// plus a mask of lines that live inside `#[cfg(test)]` items.
// ---------------------------------------------------------------------------

struct SourceFile {
    /// Workspace-relative path, for diagnostics.
    rel: String,
    /// Original lines (markers like `lint:allow` live in comments).
    raw: Vec<String>,
    /// Lines with comments, string and char literals blanked.
    code: Vec<String>,
    /// Per line: is it inside a `#[cfg(test)]` module/item?
    in_test: Vec<bool>,
}

impl SourceFile {
    fn load(root: &Path, rel: &str) -> Option<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel)).ok()?;
        let code_text = strip_comments_and_strings(&text);
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let code: Vec<String> = code_text.lines().map(str::to_string).collect();
        let in_test = test_mask(&code);
        Some(SourceFile {
            rel: rel.to_string(),
            raw,
            code,
            in_test,
        })
    }

    /// Is line `i` (0-based) waived for `rule` by a `lint:allow` marker on
    /// the same or the immediately preceding line?
    fn allowed(&self, i: usize, rule: &str) -> bool {
        let marker = format!("lint:allow({rule})");
        if self.raw[i].contains(&marker) {
            return true;
        }
        i > 0 && self.raw[i - 1].contains(&marker)
    }
}

/// Blank out comments (`//`, nested `/* */`), string literals (incl. raw
/// strings), and char literals, preserving the line structure so that
/// byte offsets map to the same line numbers.
fn strip_comments_and_strings(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize), // number of `#`s
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // possible raw string r"..." / r#"..."#
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // char literal vs lifetime: 'x' or '\..' is a literal
                    let is_char = matches!(
                        (b.get(i + 1), b.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char {
                        // skip to the closing quote
                        let mut j = i + 1;
                        if b.get(j) == Some(&'\\') {
                            j += 2; // escape + escaped char
                            while j < b.len() && b[j] != '\'' {
                                j += 1; // \u{...}
                            }
                        } else {
                            j += 1;
                        }
                        for _ in i..=j.min(b.len() - 1) {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c); // lifetime tick
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    i += 2;
                    continue;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    if next == Some('\n') {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '"' {
                    st = St::Code;
                }
            }
            St::RawStr(hashes) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if b.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        st = St::Code;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Mark every line that is inside an item annotated `#[cfg(test)]`
/// (typically `mod tests { ... }`), tracked by brace depth.
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut pending_cfg = false;
    // (depth at which the test item opened)
    let mut test_until: Option<i64> = None;
    for (i, line) in code.iter().enumerate() {
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if test_until.is_some() {
            mask[i] = true;
        }
        if line.contains("#[cfg(test)]") {
            pending_cfg = true;
            mask[i] = true;
        } else if pending_cfg && test_until.is_none() {
            mask[i] = true;
            if opens > 0 {
                test_until = Some(depth);
                pending_cfg = false;
            } else if line.trim().ends_with(';') {
                // `#[cfg(test)] mod foo;` — out-of-line test module
                pending_cfg = false;
            }
        }
        depth += opens - closes;
        if let Some(d) = test_until {
            if depth <= d {
                test_until = None;
            }
        }
    }
    mask
}

/// Recursively collect `.rs` files under `root/<dir>`, as workspace-
/// relative path strings. `skip` entries are file names to ignore
/// (out-of-line test modules).
fn rs_files(root: &Path, dir: &str, skip: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(dir)];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if skip.contains(&name) {
                    continue;
                }
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------------
// Rule 1: determinism
// ---------------------------------------------------------------------------

const DETERMINISM_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/flow/src",
    "crates/kv-core/src",
    "crates/nicekv/src",
];
const DETERMINISM_TOKENS: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
    ("thread_rng", "OS-seeded randomness"),
    ("OsRng", "OS randomness"),
    ("from_entropy", "OS-seeded randomness"),
    ("getrandom", "OS randomness"),
    ("rand::", "external randomness crate"),
];

fn determinism_lint(root: &Path, findings: &mut Vec<Finding>) {
    for dir in DETERMINISM_DIRS {
        for rel in rs_files(root, dir, &["prop_tests.rs", "tests.rs"]) {
            let Some(sf) = SourceFile::load(root, &rel) else {
                continue;
            };
            for (i, line) in sf.code.iter().enumerate() {
                if sf.in_test[i] {
                    continue;
                }
                for (tok, why) in DETERMINISM_TOKENS {
                    if contains_token(line, tok) && !sf.allowed(i, "determinism") {
                        findings.push(Finding {
                            file: sf.rel.clone(),
                            line: i + 1,
                            rule: "determinism",
                            msg: format!(
                                "`{tok}` ({why}) in a deterministic decision path; \
                                 derive everything from the seeded simulation clock/PRNG"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: panic_path
// ---------------------------------------------------------------------------

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn panic_path_files(root: &Path) -> Vec<String> {
    let mut files = vec![
        "crates/nicekv/src/server.rs".to_string(),
        "crates/nicekv/src/client.rs".to_string(),
        "crates/nicekv/src/metadata.rs".to_string(),
        "crates/noob/src/server.rs".to_string(),
        "crates/noob/src/gateway.rs".to_string(),
    ];
    files.extend(rs_files(
        root,
        "crates/kv-core/src",
        &["prop_tests.rs", "tests.rs"],
    ));
    files.extend(rs_files(
        root,
        "crates/transport/src",
        &["prop_tests.rs", "tests.rs"],
    ));
    files
}

fn panic_path_lint(root: &Path, findings: &mut Vec<Finding>) {
    for rel in panic_path_files(root) {
        let Some(sf) = SourceFile::load(root, &rel) else {
            continue;
        };
        for (i, line) in sf.code.iter().enumerate() {
            if sf.in_test[i] {
                continue;
            }
            for tok in PANIC_TOKENS {
                if line.contains(tok) && !sf.allowed(i, "panic_path") {
                    findings.push(Finding {
                        file: sf.rel.clone(),
                        line: i + 1,
                        rule: "panic_path",
                        msg: format!(
                            "`{}` in a server request path; return a typed error \
                             (nice_kv::KvError) and bump a counter instead",
                            tok.trim_start_matches('.')
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: unordered_iter
// ---------------------------------------------------------------------------

const UNORDERED_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/flow/src",
    "crates/kv-core/src",
    "crates/nicekv/src",
    "crates/noob/src",
    "crates/transport/src",
];

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

fn unordered_iter_lint(root: &Path, findings: &mut Vec<Finding>) {
    for dir in UNORDERED_DIRS {
        for rel in rs_files(root, dir, &["prop_tests.rs", "tests.rs"]) {
            let Some(sf) = SourceFile::load(root, &rel) else {
                continue;
            };
            let names = hash_container_names(&sf);
            if names.is_empty() {
                continue;
            }
            for (i, line) in sf.code.iter().enumerate() {
                if sf.in_test[i] {
                    continue;
                }
                for name in &names {
                    if iterates_name(line, name) && !sf.allowed(i, "unordered_iter") {
                        findings.push(Finding {
                            file: sf.rel.clone(),
                            line: i + 1,
                            rule: "unordered_iter",
                            msg: format!(
                                "iteration over hash container `{name}` (randomized order) \
                                 may feed an ordered protocol decision; use BTreeMap/BTreeSet \
                                 or sort first"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Names declared in this file with a `HashMap`/`HashSet` type or
/// initialized from one (fields, lets, fn params).
fn hash_container_names(sf: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for (i, line) in sf.code.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        // `name: HashMap<...>` (field, param, or typed let)
        for ty in ["HashMap<", "HashSet<"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let abs = from + pos;
                if let Some(n) = ident_before_colon(&line[..abs]) {
                    push_unique(&mut names, n);
                }
                from = abs + ty.len();
            }
        }
        // `let [mut] name = HashMap::new()` / `::default()` / `::with_capacity`
        for ctor in ["HashMap::", "HashSet::"] {
            if let Some(pos) = line.find(ctor) {
                if let Some(eq) = line[..pos].rfind('=') {
                    if let Some(n) = last_ident(&line[..eq]) {
                        push_unique(&mut names, n);
                    }
                }
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, n: String) {
    if !names.contains(&n) {
        names.push(n);
    }
}

/// The identifier immediately before a `:` at the end of `prefix`
/// (ignoring whitespace), e.g. `    pub coords: ` → `coords`.
fn ident_before_colon(prefix: &str) -> Option<String> {
    let t = prefix.trim_end();
    let t = t.strip_suffix(':')?;
    last_ident(t)
}

/// The trailing identifier of `s`, if any.
fn last_ident(s: &str) -> Option<String> {
    let t = s.trim_end();
    let end = t.len();
    let start = t
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .map(|(i, _)| i)
        .last()?;
    let id = &t[start..end];
    let first = id.chars().next()?;
    if first.is_alphabetic() || first == '_' {
        Some(id.to_string())
    } else {
        None
    }
}

/// True when `name` appears on this line with an ident boundary and is
/// iterated: either `name.<iter-method>` or as the tail of a `for .. in`.
fn iterates_name(line: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let abs = from + pos;
        let before_ok = abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &line[abs + name.len()..];
        let after_first = after.chars().next();
        let boundary_ok = !after_first.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && boundary_ok {
            if ITER_METHODS.iter().any(|m| after.starts_with(m)) {
                return true;
            }
            // `for x in [&[mut]] [self.]name {` — direct IntoIterator use
            if let Some(in_pos) = line[..abs].rfind(" in ") {
                let between = line[in_pos + 4..abs].trim();
                let clean_tail = after.trim_start();
                let tail_ends_expr = clean_tail.is_empty() || clean_tail.starts_with('{');
                let between_ok = matches!(
                    between,
                    "" | "&" | "&mut" | "self." | "&self." | "&mut self."
                );
                if line[..in_pos].contains("for ") && between_ok && tail_ends_expr {
                    return true;
                }
            }
        }
        from = abs + name.len().max(1);
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 5: unbounded_queue
// ---------------------------------------------------------------------------

/// Tokens that shrink a collection (or replace it wholesale). A `self.*`
/// push inside `on_packet` is fine as long as the same field sees one of
/// these somewhere in the file.
const DRAIN_TOKENS: &[&str] = &[
    ".pop(",
    ".pop_front(",
    ".pop_back(",
    ".drain(",
    ".drain(..)",
    ".clear(",
    ".remove(",
    ".retain(",
    ".truncate(",
    ".swap_remove(",
    ".split_off(",
];

fn unbounded_queue_lint(root: &Path, findings: &mut Vec<Finding>) {
    for dir in UNORDERED_DIRS {
        for rel in rs_files(root, dir, &["prop_tests.rs", "tests.rs"]) {
            let Some(sf) = SourceFile::load(root, &rel) else {
                continue;
            };
            for (i, path) in on_packet_self_pushes(&sf) {
                let field = path.rsplit('.').next().unwrap_or(&path).to_string();
                if field_is_drained(&sf, &field) || sf.allowed(i, "unbounded_queue") {
                    continue;
                }
                findings.push(Finding {
                    file: sf.rel.clone(),
                    line: i + 1,
                    rule: "unbounded_queue",
                    msg: format!(
                        "`{path}.push(..)` in an on_packet path with no drain of \
                         `{field}` anywhere in this file: every received packet \
                         grows it forever; drain it, bound it, or waive with a reason"
                    ),
                });
            }
        }
    }
}

/// `(line, self-path)` for every `self.<path>.push(` inside a function
/// named `on_packet` (tracked by brace depth from the `fn on_packet`
/// header). Pushes onto locals are per-packet scratch and stay exempt.
fn on_packet_self_pushes(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // (depth at which the on_packet body opened)
    let mut body_until: Option<i64> = None;
    let mut in_header = false;
    for (i, line) in sf.code.iter().enumerate() {
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if body_until.is_none() && contains_token(line, "fn on_packet") {
            in_header = true;
        }
        if in_header && opens > 0 {
            body_until = Some(depth);
            in_header = false;
        }
        if body_until.is_some() && !sf.in_test[i] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(".push(") {
                let abs = from + pos;
                if let Some(path) = self_path_before(&line[..abs]) {
                    out.push((i, path));
                }
                from = abs + ".push(".len();
            }
        }
        depth += opens - closes;
        if let Some(d) = body_until {
            if depth <= d {
                body_until = None;
            }
        }
    }
    out
}

/// The `self.a.b` path ending at `prefix`'s tail, if the receiver of the
/// following method call is reached through `self`.
fn self_path_before(prefix: &str) -> Option<String> {
    let t = prefix.trim_end();
    let start = t
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_' || *c == '.')
        .map(|(i, _)| i)
        .last()?;
    let path = &t[start..];
    if path.starts_with("self.") && path.len() > "self.".len() {
        Some(path.to_string())
    } else {
        None
    }
}

/// Does any non-test line shrink or replace `field`? Reassignment
/// (`field = ...`) and `mem::take(&mut ...field)` both count.
fn field_is_drained(sf: &SourceFile, field: &str) -> bool {
    for (i, line) in sf.code.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        for tok in DRAIN_TOKENS {
            let pat = format!("{field}{tok}");
            if contains_token(line, &pat) {
                return true;
            }
        }
        if contains_token(line, &format!("{field} =")) && !line.contains("==") {
            return true;
        }
        if line.contains("take(&mut") && contains_token(line, field) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 6: allow_reason
// ---------------------------------------------------------------------------

const ALL_RULES: &[&str] = &[
    "determinism",
    "panic_path",
    "unordered_iter",
    "layering",
    "unbounded_queue",
    "allow_reason",
];

/// Directories whose waiver markers are checked. `crates/xtask` is
/// excluded: it mentions markers in its own diagnostics and tests.
const ALLOW_REASON_DIRS: &[&str] = &[
    "crates/sim/src",
    "crates/flow/src",
    "crates/kv-core/src",
    "crates/ring/src",
    "crates/transport/src",
    "crates/nicekv/src",
    "crates/noob/src",
    "crates/workload/src",
    "crates/bench/src",
];

fn allow_reason_lint(root: &Path, findings: &mut Vec<Finding>) {
    for dir in ALLOW_REASON_DIRS {
        for rel in rs_files(root, dir, &[]) {
            let Some(sf) = SourceFile::load(root, &rel) else {
                continue;
            };
            for (i, raw) in sf.raw.iter().enumerate() {
                let mut from = 0;
                while let Some(pos) = raw[from..].find("lint:allow(") {
                    let abs = from + pos;
                    let rest = &raw[abs + "lint:allow(".len()..];
                    from = abs + "lint:allow(".len();
                    let Some(close) = rest.find(')') else {
                        continue;
                    };
                    let rule = &rest[..close];
                    if !ALL_RULES.contains(&rule) {
                        findings.push(Finding {
                            file: sf.rel.clone(),
                            line: i + 1,
                            rule: "allow_reason",
                            msg: format!("waiver names unknown rule `{rule}`"),
                        });
                        continue;
                    }
                    let reason = rest[close + 1..]
                        .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
                        .trim();
                    if reason.chars().filter(|c| c.is_alphanumeric()).count() < 8 {
                        findings.push(Finding {
                            file: sf.rel.clone(),
                            line: i + 1,
                            rule: "allow_reason",
                            msg: format!(
                                "`lint:allow({rule})` without a reason; write \
                                 `lint:allow({rule}) — <why this is safe>`"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: layering
// ---------------------------------------------------------------------------

/// `ObjectStore` mutators and protocol-state transitions that only the
/// shared engine (`kv-core`) may invoke. A policy adapter calling one of
/// these is reimplementing lock-table or commit logic the engine owns.
/// (`.commit(`/`.abort(` match store calls only — the engine entry points
/// are `.on_commit(`/`.on_abort(`.)
const STORE_MUTATION_TOKENS: &[&str] = &[
    ": ObjectStore",
    "ObjectStore::new",
    ".lock(",
    ".pending_mut(",
    ".commit(",
    ".commit_direct(",
    ".abort(",
    ".write_delay(",
];

/// The policy-adapter source trees: addressing, transport, views and
/// failure policy only — no store mutation, no 2PC transitions.
const ADAPTER_DIRS: &[&str] = &["crates/nicekv/src", "crates/noob/src"];

/// Crates `kv-core` must not depend on: the engine sits beneath the
/// policy and topology layers and stays system- and transport-agnostic.
const CORE_FORBIDDEN_DEPS: &[&str] = &["nice-flow", "nice-ring", "nice-transport"];

fn layering_lint(root: &Path, findings: &mut Vec<Finding>) {
    // Adapters must not mutate the store or run protocol transitions.
    for dir in ADAPTER_DIRS {
        for rel in rs_files(root, dir, &["prop_tests.rs", "tests.rs"]) {
            let Some(sf) = SourceFile::load(root, &rel) else {
                continue;
            };
            for (i, line) in sf.code.iter().enumerate() {
                if sf.in_test[i] {
                    continue;
                }
                for tok in STORE_MUTATION_TOKENS {
                    if line.contains(tok) && !sf.allowed(i, "layering") {
                        findings.push(Finding {
                            file: sf.rel.clone(),
                            line: i + 1,
                            rule: "layering",
                            msg: format!(
                                "`{}` in a policy adapter — store mutation and 2PC \
                                 transitions belong to kv-core's ReplicationEngine",
                                tok.trim()
                            ),
                        });
                    }
                }
            }
        }
    }

    // kv-core must not link the policy/topology crates...
    let manifest_rel = "crates/kv-core/Cargo.toml";
    match std::fs::read_to_string(root.join(manifest_rel)) {
        Ok(manifest) => {
            for (i, line) in manifest.lines().enumerate() {
                for dep in CORE_FORBIDDEN_DEPS {
                    if line.trim_start().starts_with(dep) {
                        findings.push(Finding {
                            file: manifest_rel.to_string(),
                            line: i + 1,
                            rule: "layering",
                            msg: format!("kv-core must not depend on `{dep}`"),
                        });
                    }
                }
            }
        }
        Err(_) => findings.push(Finding {
            file: manifest_rel.to_string(),
            line: 1,
            rule: "layering",
            msg: "cannot read the kv-core manifest".to_string(),
        }),
    }

    // ...nor name their modules in source (a `path =` workaround would
    // slip past the manifest check above).
    for rel in rs_files(root, "crates/kv-core/src", &[]) {
        let Some(sf) = SourceFile::load(root, &rel) else {
            continue;
        };
        for (i, line) in sf.code.iter().enumerate() {
            for krate in &["nice_flow", "nice_ring", "nice_transport"] {
                if contains_token(line, &format!("{krate}::")) && !sf.allowed(i, "layering") {
                    findings.push(Finding {
                        file: sf.rel.clone(),
                        line: i + 1,
                        rule: "layering",
                        msg: format!(
                            "kv-core references `{krate}` — the engine is layered beneath it"
                        ),
                    });
                }
            }
        }
    }
}

/// `line.contains(tok)` with an identifier boundary on the left, so
/// `grand::` does not match `rand::`.
fn contains_token(line: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        let abs = from + pos;
        // A preceding identifier character means we matched the tail of a
        // longer name (`operand::` vs `rand::`). A preceding `:` is fine:
        // qualified paths (`std::time::Instant::now`) must still match.
        let ok = abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok {
            return true;
        }
        from = abs + tok.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_removes_comments_and_strings() {
        let src =
            "let a = 1; // Instant::now()\nlet s = \"SystemTime\"; /* thread_rng */ let b = 2;\n";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("Instant::now"));
        assert!(!out.contains("SystemTime"));
        assert!(!out.contains("thread_rng"));
        assert!(out.contains("let a = 1;"));
        assert!(out.contains("let b = 2;"));
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn stripping_handles_char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let out = strip_comments_and_strings(src);
        assert!(out.contains("fn f<'a>(x: &'a str)"));
        assert!(!out.contains("'x'"));
    }

    #[test]
    fn test_mask_covers_test_modules() {
        let code: Vec<String> = [
            "fn real() {",
            "}",
            "#[cfg(test)]",
            "mod tests {",
            "    fn t() {}",
            "}",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
        let mask = test_mask(&code);
        assert_eq!(mask, vec![false, false, true, true, true, true]);
    }

    #[test]
    fn token_boundary() {
        assert!(contains_token("let x = rand::random();", "rand::"));
        assert!(!contains_token("let x = grand::random();", "rand::"));
        assert!(!contains_token("operand::foo", "rand::"));
        // Fully qualified paths must still match.
        assert!(contains_token(
            "let t = std::time::Instant::now();",
            "Instant::now"
        ));
        assert!(contains_token("use std::time::SystemTime;", "SystemTime"));
    }

    #[test]
    fn iteration_detection() {
        assert!(iterates_name("for (k, v) in &self.coords {", "coords"));
        assert!(iterates_name(
            "let v: Vec<_> = coords.values().collect();",
            "coords"
        ));
        assert!(iterates_name("for k in coords.keys() {", "coords"));
        assert!(!iterates_name("self.coords.insert(k, v);", "coords"));
        assert!(!iterates_name("let x = coords.get(&k);", "coords"));
        assert!(!iterates_name("for x in &self.records {", "coords"));
    }

    #[test]
    fn declared_names_found() {
        let sf = SourceFile {
            rel: "x".into(),
            raw: vec![String::new(); 3],
            code: vec![
                "    coords: HashMap<String, Coord>,".to_string(),
                "    let mut seen = HashSet::new();".to_string(),
                "    views: BTreeMap<PartitionId, View>,".to_string(),
            ],
            in_test: vec![false; 3],
        };
        let names = hash_container_names(&sf);
        assert_eq!(names, vec!["coords".to_string(), "seen".to_string()]);
    }

    fn sf_from_code(lines: &[&str]) -> SourceFile {
        let code: Vec<String> = lines.iter().map(std::string::ToString::to_string).collect();
        let n = code.len();
        SourceFile {
            rel: "x".into(),
            raw: vec![String::new(); n],
            code,
            in_test: vec![false; n],
        }
    }

    #[test]
    fn self_path_extraction() {
        assert_eq!(
            self_path_before("        self.inbox"),
            Some("self.inbox".to_string())
        );
        assert_eq!(
            self_path_before("let v = self.a.b"),
            Some("self.a.b".to_string())
        );
        assert_eq!(self_path_before("local_vec"), None);
        assert_eq!(self_path_before("self."), None);
    }

    #[test]
    fn on_packet_pushes_detected_only_in_body() {
        let sf = sf_from_code(&[
            "impl App {",
            "    fn setup(&mut self) {",
            "        self.ready.push(1);",
            "    }",
            "    fn on_packet(&mut self, b: u8) {",
            "        let mut scratch = Vec::new();",
            "        scratch.push(b);",
            "        self.inbox.push(b);",
            "    }",
            "}",
        ]);
        let pushes = on_packet_self_pushes(&sf);
        assert_eq!(pushes, vec![(7, "self.inbox".to_string())]);
    }

    #[test]
    fn drained_fields_recognized() {
        let sf = sf_from_code(&[
            "self.inbox.push(b);",
            "let x = self.inbox.pop();",
            "self.log.push(e);",
            "self.backlog = Vec::new();",
        ]);
        assert!(field_is_drained(&sf, "inbox"));
        assert!(!field_is_drained(&sf, "log"));
        assert!(field_is_drained(&sf, "backlog"));
    }

    #[test]
    fn layering_tokens_hit_store_calls_not_engine_hooks() {
        // Store mutators must trip the rule...
        let banned = [
            "self.store.lock(&key, op);",
            "self.store.commit(&key, op, ts);",
            "self.store.abort(&key, op, t);",
            "let d = self.store.write_delay(size, true);",
            "store: ObjectStore,",
        ];
        for line in banned {
            assert!(
                STORE_MUTATION_TOKENS.iter().any(|t| line.contains(t)),
                "expected a layering hit in `{line}`"
            );
        }
        // ...while the engine's own entry points must not.
        let fine = [
            "self.engine.on_commit(&key, op, ts, role);",
            "self.engine.on_abort(&key, op, t);",
            "self.engine.on_ack1(&key, op, from);",
            "let r = self.engine.lock_report(|k| part(k) == pid);",
            "pub fn store(&self) -> &ObjectStore {",
        ];
        for line in fine {
            assert!(
                !STORE_MUTATION_TOKENS.iter().any(|t| line.contains(t)),
                "false layering hit in `{line}`"
            );
        }
    }
}

//! Shared source model for the line-based rules: a file split into
//! lines with comments/strings blanked out, plus a mask of lines that
//! live inside `#[cfg(test)]` items, plus the directory walker.
//!
//! The graph-based rules use the token stream from [`crate::lexer`]
//! instead; this module survives for the textual rules (whose
//! single-line token scans are simpler to express over blanked lines)
//! and for waiver (`lint:allow`) lookups, which must see comments.

use std::path::Path;

/// One loaded source file.
pub struct SourceFile {
    /// Workspace-relative path, for diagnostics.
    pub rel: String,
    /// Original lines (markers like `lint:allow` live in comments).
    pub raw: Vec<String>,
    /// Lines with comments, string and char literals blanked.
    pub code: Vec<String>,
    /// Per line: is it inside a `#[cfg(test)]` module/item?
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Load `root/rel`, blanking comments/strings and masking test
    /// items.
    pub fn load(root: &Path, rel: &str) -> Option<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel)).ok()?;
        Some(SourceFile::from_text(rel, &text))
    }

    /// Build the model from in-memory text (fixtures, tests).
    pub fn from_text(rel: &str, text: &str) -> SourceFile {
        let code_text = strip_comments_and_strings(text);
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let code: Vec<String> = code_text.lines().map(str::to_string).collect();
        let in_test = test_mask(&code);
        SourceFile {
            rel: rel.to_string(),
            raw,
            code,
            in_test,
        }
    }

    /// Is line `i` (0-based) waived for `rule` by a `lint:allow` marker
    /// on the same or the immediately preceding line?
    pub fn allowed(&self, i: usize, rule: &str) -> bool {
        let marker = format!("lint:allow({rule})");
        if self.raw.get(i).is_some_and(|l| l.contains(&marker)) {
            return true;
        }
        i > 0 && self.raw[i - 1].contains(&marker)
    }
}

/// Blank out comments (`//`, nested `/* */`), string literals (incl.
/// raw strings), and char literals, preserving the line structure so
/// that byte offsets map to the same line numbers.
pub fn strip_comments_and_strings(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize), // number of `#`s
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push(' ');
                }
                '"' => {
                    st = St::Str;
                    out.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // possible raw string r"..." / r#"..."#
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // char literal vs lifetime: 'x' or '\..' is a literal
                    let is_char = matches!(
                        (b.get(i + 1), b.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char {
                        // skip to the closing quote
                        let mut j = i + 1;
                        if b.get(j) == Some(&'\\') {
                            j += 2; // escape + escaped char
                            while j < b.len() && b[j] != '\'' {
                                j += 1; // \u{...}
                            }
                        } else {
                            j += 1;
                        }
                        for _ in i..=j.min(b.len() - 1) {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c); // lifetime tick
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    i += 2;
                    continue;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    if next == Some('\n') {
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '"' {
                    st = St::Code;
                }
            }
            St::RawStr(hashes) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if b.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        st = St::Code;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Mark every line that is inside an item annotated `#[cfg(test)]`
/// (typically `mod tests { ... }`), tracked by brace depth.
pub fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut pending_cfg = false;
    // (depth at which the test item opened)
    let mut test_until: Option<i64> = None;
    for (i, line) in code.iter().enumerate() {
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if test_until.is_some() {
            mask[i] = true;
        }
        if line.contains("#[cfg(test)]") {
            pending_cfg = true;
            mask[i] = true;
        } else if pending_cfg && test_until.is_none() {
            mask[i] = true;
            if opens > 0 {
                test_until = Some(depth);
                pending_cfg = false;
            } else if line.trim().ends_with(';') {
                // `#[cfg(test)] mod foo;` — out-of-line test module
                pending_cfg = false;
            }
        }
        depth += opens - closes;
        if let Some(d) = test_until {
            if depth <= d {
                test_until = None;
            }
        }
    }
    mask
}

/// Recursively collect `.rs` files under `root/<dir>`, as workspace-
/// relative path strings. `skip` entries are file names to ignore
/// (out-of-line test modules).
pub fn rs_files(root: &Path, dir: &str, skip: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(dir)];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if skip.contains(&name) {
                    continue;
                }
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// `line.contains(tok)` with an identifier boundary on the left, so
/// `grand::` does not match `rand::`.
pub fn contains_token(line: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        let abs = from + pos;
        // A preceding identifier character means we matched the tail of a
        // longer name (`operand::` vs `rand::`). A preceding `:` is fine:
        // qualified paths (`std::time::Instant::now`) must still match.
        let ok = abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok {
            return true;
        }
        from = abs + tok.len();
    }
    false
}

/// The identifier immediately before a `:` at the end of `prefix`
/// (ignoring whitespace), e.g. `    pub coords: ` → `coords`.
pub fn ident_before_colon(prefix: &str) -> Option<String> {
    let t = prefix.trim_end();
    let t = t.strip_suffix(':')?;
    last_ident(t)
}

/// The trailing identifier of `s`, if any.
pub fn last_ident(s: &str) -> Option<String> {
    let t = s.trim_end();
    let end = t.len();
    let start = t
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .map(|(i, _)| i)
        .last()?;
    let id = &t[start..end];
    let first = id.chars().next()?;
    if first.is_alphabetic() || first == '_' {
        Some(id.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_removes_comments_and_strings() {
        let src =
            "let a = 1; // Instant::now()\nlet s = \"SystemTime\"; /* thread_rng */ let b = 2;\n";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("Instant::now"));
        assert!(!out.contains("SystemTime"));
        assert!(!out.contains("thread_rng"));
        assert!(out.contains("let a = 1;"));
        assert!(out.contains("let b = 2;"));
        assert_eq!(out.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn stripping_handles_char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let out = strip_comments_and_strings(src);
        assert!(out.contains("fn f<'a>(x: &'a str)"));
        assert!(!out.contains("'x'"));
    }

    #[test]
    fn test_mask_covers_test_modules() {
        let code: Vec<String> = [
            "fn real() {",
            "}",
            "#[cfg(test)]",
            "mod tests {",
            "    fn t() {}",
            "}",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
        let mask = test_mask(&code);
        assert_eq!(mask, vec![false, false, true, true, true, true]);
    }

    #[test]
    fn token_boundary() {
        assert!(contains_token("let x = rand::random();", "rand::"));
        assert!(!contains_token("let x = grand::random();", "rand::"));
        assert!(!contains_token("operand::foo", "rand::"));
        // Fully qualified paths must still match.
        assert!(contains_token(
            "let t = std::time::Instant::now();",
            "Instant::now"
        ));
        assert!(contains_token("use std::time::SystemTime;", "SystemTime"));
    }
}

//! The findings baseline (`lint_baseline.json`) and the hand-rolled,
//! byte-stable JSON it is written in (zero dependencies, so no serde).
//!
//! The baseline is a sorted list of finding *keys* — line-number-free
//! identities of known findings (`rule|file|fn|detail#ordinal`). CI
//! ratchets toward zero: a finding whose key is not in the baseline
//! fails the build; a baselined finding that disappears auto-shrinks
//! the file. The baseline never grows implicitly — only
//! `--write-baseline` adds keys.

use std::collections::BTreeSet;
use std::path::Path;

/// Read the baseline key set. `None` when the file is missing or not
/// parsable (callers treat both as "no baseline").
pub fn read(path: &Path) -> Option<BTreeSet<String>> {
    let text = std::fs::read_to_string(path).ok()?;
    parse(&text)
}

/// Parse the baseline document: everything inside the `"findings"`
/// array. Deliberately minimal — this parser reads only what
/// [`render`] writes.
pub fn parse(text: &str) -> Option<BTreeSet<String>> {
    let arr_start = text.find("\"findings\"")?;
    let rest = &text[arr_start..];
    let open = rest.find('[')?;
    let rest = &rest[open + 1..];
    let mut keys = BTreeSet::new();
    let b: Vec<char> = rest.chars().collect();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            ']' => return Some(keys),
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1;
                        match b.get(i) {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(&c) => s.push(c),
                            None => return None,
                        }
                    } else {
                        s.push(b[i]);
                    }
                    i += 1;
                }
                if i >= b.len() {
                    return None; // unterminated string
                }
                keys.insert(s);
            }
            c if c.is_whitespace() || c == ',' => {}
            _ => return None,
        }
        i += 1;
    }
    None // unterminated array
}

/// Render the baseline document: 2-space indent, one key per line,
/// sorted (the input set is already ordered), trailing newline — so
/// diffs are one line per added/removed finding.
pub fn render(keys: &BTreeSet<String>) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    let mut first = true;
    for k in keys {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(&escape(k));
        out.push('"');
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Write the baseline to `path`.
pub fn write(path: &Path, keys: &BTreeSet<String>) -> std::io::Result<()> {
    std::fs::write(path, render(keys))
}

/// Minimal JSON string escaping.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_byte_stable() {
        let keys: BTreeSet<String> = ["b|f.rs|X::g|unwrap()#1", "a|f.rs|-|tok#2"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let doc = render(&keys);
        assert_eq!(parse(&doc), Some(keys.clone()));
        assert_eq!(render(&parse(&doc).unwrap()), doc);
        // Sorted output: "a|..." precedes "b|...".
        assert!(doc.find("a|f.rs").unwrap() < doc.find("b|f.rs").unwrap());
    }

    #[test]
    fn empty_baseline() {
        let keys = BTreeSet::new();
        let doc = render(&keys);
        assert_eq!(doc, "{\n  \"version\": 1,\n  \"findings\": []\n}\n");
        assert_eq!(parse(&doc), Some(keys));
    }

    #[test]
    fn escapes_round_trip() {
        let keys: BTreeSet<String> = [r#"rule|a"b\c|f|d#1"#.to_string()].into_iter().collect();
        assert_eq!(parse(&render(&keys)), Some(keys));
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(parse("not json"), None);
        assert_eq!(parse("{\"findings\": [\"unterminated"), None);
    }
}

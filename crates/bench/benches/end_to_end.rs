//! End-to-end benchmarks: whole-cluster put/get rounds on both systems —
//! scaled-down versions of the paper's Figure 4/5 points, runnable via
//! `cargo bench`.
//!
//! Runs on the in-tree `nice_bench::timing` harness (`harness = false`),
//! so `cargo bench` works offline with no criterion dependency.

use std::hint::black_box;

use nice_bench::timing::{bench, bench_batched};
use nice_kv::{ClientOp, ClusterCfg, NiceCluster, Value};
use nice_noob::{Access, NoobCluster, NoobClusterCfg, NoobMode};
use nice_sim::Time;

fn ops(size: u32, n: usize) -> Vec<ClientOp> {
    let mut v = Vec::new();
    for i in 0..n {
        v.push(ClientOp::Put {
            key: format!("k{i}"),
            value: Value::synthetic(size),
        });
        v.push(ClientOp::Get {
            key: format!("k{i}"),
        });
    }
    v
}

fn bench_nice() {
    for size in [1u32 << 10, 64 << 10] {
        bench_batched(
            &format!("e2e/nice/put_get_10x_{}k", size >> 10),
            || NiceCluster::build(ClusterCfg::new(8, 3, vec![ops(size, 10)])),
            |mut cl| {
                assert!(cl.run_until_done(Time::from_secs(60)));
                black_box(cl.sim.events_processed())
            },
        );
    }
}

fn bench_noob() {
    for size in [1u32 << 10, 64 << 10] {
        bench_batched(
            &format!("e2e/noob_rac_primary/put_get_10x_{}k", size >> 10),
            || {
                NoobCluster::build(NoobClusterCfg::new(
                    8,
                    3,
                    Access::Rac,
                    NoobMode::PrimaryOnly,
                    vec![ops(size, 10)],
                ))
            },
            |mut cl| {
                assert!(cl.run_until_done(Time::from_secs(60)));
                black_box(cl.sim.events_processed())
            },
        );
    }
}

fn bench_cluster_build() {
    // How long does standing up the full 15-node deployment take?
    bench("e2e/build_15_node_cluster", || {
        black_box(NiceCluster::build(ClusterCfg::new(15, 3, vec![])))
    });
}

fn main() {
    bench_nice();
    bench_noob();
    bench_cluster_build();
}

//! End-to-end benchmarks: whole-cluster put/get rounds on both systems —
//! scaled-down versions of the paper's Figure 4/5 points, runnable via
//! `cargo bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use nice_kv::{ClientOp, ClusterCfg, NiceCluster, Value};
use nice_noob::{Access, NoobCluster, NoobClusterCfg, NoobMode};
use nice_sim::Time;

fn ops(size: u32, n: usize) -> Vec<ClientOp> {
    let mut v = Vec::new();
    for i in 0..n {
        v.push(ClientOp::Put {
            key: format!("k{i}"),
            value: Value::synthetic(size),
        });
        v.push(ClientOp::Get { key: format!("k{i}") });
    }
    v
}

fn bench_nice(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/nice");
    g.sample_size(10);
    for size in [1u32 << 10, 64 << 10] {
        g.bench_function(format!("put_get_10x_{}k", size >> 10), |b| {
            b.iter_batched(
                || NiceCluster::build(ClusterCfg::new(8, 3, vec![ops(size, 10)])),
                |mut cl| {
                    assert!(cl.run_until_done(Time::from_secs(60)));
                    black_box(cl.sim.events_processed())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_noob(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e/noob_rac_primary");
    g.sample_size(10);
    for size in [1u32 << 10, 64 << 10] {
        g.bench_function(format!("put_get_10x_{}k", size >> 10), |b| {
            b.iter_batched(
                || {
                    NoobCluster::build(NoobClusterCfg::new(
                        8,
                        3,
                        Access::Rac,
                        NoobMode::PrimaryOnly,
                        vec![ops(size, 10)],
                    ))
                },
                |mut cl| {
                    assert!(cl.run_until_done(Time::from_secs(60)));
                    black_box(cl.sim.events_processed())
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_cluster_build(c: &mut Criterion) {
    // How long does standing up the full 15-node deployment take?
    c.bench_function("e2e/build_15_node_cluster", |b| {
        b.iter(|| black_box(NiceCluster::build(ClusterCfg::new(15, 3, vec![]))));
    });
}

criterion_group!(benches, bench_nice, bench_noob, bench_cluster_build);
criterion_main!(benches);

//! Micro-benchmarks of the substrates: key hashing, ring lookups,
//! flow-table matching, zipf sampling, and raw event-kernel throughput.
//!
//! Runs on the in-tree `nice_bench::timing` harness (`harness = false`),
//! so `cargo bench` works offline with no criterion dependency.

use std::hint::black_box;

use nice_bench::timing::{bench, bench_batched};
use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowTable};
use nice_ring::{hash_str, NodeIdx, PartitionId, PhysicalRing, VRing};
use nice_sim::{
    App, ChannelCfg, Ctx, HostCfg, Ipv4, Mac, Packet, Port, Simulation, SwitchCfg, Time,
    XorShiftRng,
};
use nice_workload::Zipf;
use std::rc::Rc;

fn bench_hash() {
    bench("ring/hash_key", || hash_str(black_box("user12345")));
}

fn bench_ring_lookup() {
    let ring = PhysicalRing::new(1024, (0..64).map(NodeIdx).collect(), 3);
    bench("ring/partition+replicas", || {
        let p = ring.partition_of_key(black_box(b"user12345"));
        black_box(ring.replica_set(p));
    });
    let v = VRing::unicast(1024);
    bench("ring/vnode_for_key", || {
        v.vnode_for_key(black_box(PartitionId(17)), black_box(b"user12345"))
    });
}

fn bench_flow_table() {
    // A table shaped like a real deployment: 256 partitions x (unicast +
    // multicast + 4 LB rules) + 64 physical rules.
    let mut t = FlowTable::new();
    let uni = VRing::unicast(256);
    let mc = VRing::multicast(256);
    for p in 0..256u32 {
        let (n1, l1) = uni.subgroup_prefix(PartitionId(p));
        let (n2, l2) = mc.subgroup_prefix(PartitionId(p));
        t.install(
            FlowRule::new(
                prio::VRING,
                FlowMatch::any().dst_prefix(n1, l1),
                vec![Action::Output(Port(1))],
            ),
            Time::ZERO,
        );
        t.install(
            FlowRule::new(
                prio::VRING,
                FlowMatch::any().dst_prefix(n2, l2),
                vec![Action::Output(Port(2))],
            ),
            Time::ZERO,
        );
        for d in 0..4u32 {
            t.install(
                FlowRule::new(
                    prio::LB,
                    FlowMatch::any()
                        .src_prefix(Ipv4(Ipv4::new(10, 0, 1, 0).0 + (d << 6)), 26)
                        .dst_prefix(n1, l1),
                    vec![Action::Output(Port(d as u16))],
                ),
                Time::ZERO,
            );
        }
    }
    for h in 0..64u32 {
        t.install(
            FlowRule::new(
                prio::PHYS,
                FlowMatch::any().dst_ip(Ipv4(Ipv4::new(10, 0, 0, 0).0 + h)),
                vec![Action::Output(Port(h as u16))],
            ),
            Time::ZERO,
        );
    }
    let pkt = Packet::udp(
        Ipv4::new(10, 0, 1, 77),
        Mac(1),
        Ipv4::new(10, 10, 128, 9),
        9000,
        9000,
        100,
        Rc::new(()),
    );
    bench("flow/apply_1600_rules", || {
        t.apply(black_box(Port(0)), black_box(&pkt), Time::from_us(1))
    });
}

fn bench_zipf() {
    let z = Zipf::ycsb(100_000);
    let mut rng = XorShiftRng::seed_from_u64(7);
    bench("workload/zipf_sample", move || z.sample(&mut rng));
}

fn bench_event_kernel() {
    // Raw kernel throughput: two apps ping-pong 1000 packets through a
    // flow-less hub; measures events/sec of the DES core.
    struct Pong;
    impl App for Pong {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
            let n = *pkt.payload_as::<u32>().unwrap();
            if n > 0 {
                let reply = Packet::udp(ctx.ip(), ctx.mac(), pkt.src, 1, 1, 8, Rc::new(n - 1));
                ctx.send(reply);
            }
        }
    }
    struct Kick {
        peer: Ipv4,
    }
    impl App for Kick {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let p = Packet::udp(ctx.ip(), ctx.mac(), self.peer, 1, 1, 8, Rc::new(1000u32));
            ctx.send(p);
        }
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
            let n = *pkt.payload_as::<u32>().unwrap();
            if n > 0 {
                let reply = Packet::udp(ctx.ip(), ctx.mac(), pkt.src, 1, 1, 8, Rc::new(n - 1));
                ctx.send(reply);
            }
        }
    }
    bench_batched(
        "sim/pingpong_1000",
        || {
            let mut sim = Simulation::new(3);
            let sw = sim.add_switch(Box::new(nice_sim::switch::HubLogic), SwitchCfg::default());
            let b_ip = Ipv4::new(10, 0, 0, 2);
            let a = sim.add_host(
                Box::new(Kick { peer: b_ip }),
                HostCfg::new(Ipv4::new(10, 0, 0, 1), Mac(1)),
            );
            let bb = sim.add_host(Box::new(Pong), HostCfg::new(b_ip, Mac(2)));
            sim.connect(a, sw, ChannelCfg::gigabit());
            sim.connect(bb, sw, ChannelCfg::gigabit());
            sim
        },
        |mut sim| {
            sim.run_until(Time::from_secs(1));
            black_box(sim.events_processed())
        },
    );
}

fn main() {
    bench_hash();
    bench_ring_lookup();
    bench_flow_table();
    bench_zipf();
    bench_event_kernel();
}

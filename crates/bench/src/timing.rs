//! A minimal wall-clock micro-benchmark harness.
//!
//! Replaces criterion so the workspace builds `--offline` with no
//! registry access. Wall-clock time is *only* legal here: benches
//! measure the real machine, never simulated behavior, and are outside
//! the determinism envelope checked by `cargo run -p xtask -- lint`.

use std::time::Instant;

/// Default measured batches per benchmark.
const BATCHES: u32 = 12;

/// Time `f` and report ns/iter, calibrating the batch size so each
/// measured batch runs for roughly `target_batch_ms`.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    bench_with(name, 20, &mut f);
}

/// Like [`bench`] but with an explicit per-batch time budget (ms) —
/// use a smaller budget for very slow setups.
pub fn bench_with<R>(name: &str, target_batch_ms: u64, f: &mut impl FnMut() -> R) {
    // Calibrate: grow the iteration count until one batch is long enough
    // to dwarf timer overhead.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let el = t0.elapsed();
        if el.as_millis() as u64 >= target_batch_ms || iters >= 1 << 24 {
            break;
        }
        // Aim past the budget in one step when we can extrapolate.
        let step = if el.as_micros() == 0 {
            16
        } else {
            ((target_batch_ms as u128 * 1500) / el.as_millis().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(step);
    }
    let mut best = u128::MAX;
    let mut total: u128 = 0;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t0.elapsed().as_nanos();
        best = best.min(ns / u128::from(iters));
        total += ns / u128::from(iters);
    }
    let mean = total / u128::from(BATCHES);
    println!("{name:<40} {mean:>12} ns/iter (best {best} ns, {iters} iters/batch)");
}

/// Time `f` over fresh inputs built by `setup` (setup excluded from the
/// measurement), reporting ns/iter of the routine alone.
pub fn bench_batched<T, R>(name: &str, mut setup: impl FnMut() -> T, mut f: impl FnMut(T) -> R) {
    let mut samples = Vec::new();
    for _ in 0..BATCHES {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(f(input));
        samples.push(t0.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let best = samples[0];
    let mean: u128 = samples.iter().sum::<u128>() / samples.len() as u128;
    println!("{name:<40} {mean:>12} ns/iter (best {best} ns, {BATCHES} samples)");
}

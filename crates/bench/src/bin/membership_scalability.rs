//! **Membership maintenance scalability (§1, §2.1, §4.1).**
//!
//! "Membership maintenance in NICEKV is highly scalable and eliminates
//! the maintenance operations overhead." — NICE needs O(S) switch updates
//! plus O(R) node notifications per membership change; NOOB's
//! full-membership model needs O(N) messages (or an epidemic protocol
//! with O(log N) steps and over O(N) messages).
//!
//! This binary measures the *actual* bytes and messages the NICE metadata
//! service emits to handle one node failure at several cluster sizes, and
//! prints them next to the analytic NOOB costs.

use nice_bench::harness::CsvOut;
use nice_bench::systems::nice_cluster;
use nice_bench::{RunSpec, System};
use nice_sim::Time;

fn main() {
    let mut out = CsvOut::new(
        "membership_scalability",
        "Membership update cost for one node failure: measured NICE vs analytic NOOB",
    );
    out.header(&[
        "nodes",
        "nice_meta_msgs",
        "nice_meta_kb",
        "nice_rules_touched",
        "noob_full_membership_msgs",
        "noob_epidemic_msgs",
    ]);

    for nodes in [5usize, 10, 15] {
        let mut spec = RunSpec::new(System::Nice { lb: true }, 3, vec![]);
        spec.storage_nodes = nodes;
        let mut c = nice_cluster(&spec);
        // settle, snapshot, fail one node, settle again
        c.sim.run_until(Time::from_secs(1));
        let before = c.sim.host_stats(c.meta);
        let victim = c.servers[1];
        c.sim.schedule_crash(Time::from_secs(1), victim);
        c.sim.run_until(Time::from_secs(5));
        let after = c.sim.host_stats(c.meta);
        // subtract steady-state control traffic measured on an idle twin
        let mut idle_spec = spec.clone();
        idle_spec.client_ops = vec![];
        let mut ic = nice_cluster(&idle_spec);
        ic.sim.run_until(Time::from_secs(1));
        let ib = ic.sim.host_stats(ic.meta);
        ic.sim.run_until(Time::from_secs(5));
        let ia = ic.sim.host_stats(ic.meta);
        let msgs = (after.pkts_sent - before.pkts_sent).saturating_sub(ia.pkts_sent - ib.pkts_sent);
        let bytes =
            (after.bytes_sent - before.bytes_sent).saturating_sub(ia.bytes_sent - ib.bytes_sent);
        // rules touched = partitions where the victim was a replica, times
        // (unicast + LB + group updates)
        let affected = c.ring.partitions_of(nice_ring::NodeIdx(1)).len();
        out.row(&[
            nodes.to_string(),
            msgs.to_string(),
            format!("{:.1}", bytes as f64 / 1024.0),
            affected.to_string(),
            // NOOB full-membership: contact every node
            nodes.to_string(),
            // epidemic: O(log n) rounds, >= O(N) messages
            (nodes as f64 * (nodes as f64).log2().ceil()).to_string(),
        ]);
    }
    println!("# NICE per-failure cost depends on R (partitions the victim served), not on N");
}

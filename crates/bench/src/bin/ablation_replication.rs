//! **Ablation: replication strategies** (the §4.2 design discussion).
//!
//! The paper argues chain replication "may distribute the replication
//! load across the nodes, [but] significantly increases the operation
//! latency, and is equally network non-optimal". This harness puts the
//! four strategies side by side at R=3 and R=5:
//!
//! * NICE switch multicast (the paper's design),
//! * NOOB primary fan-out (primary-only),
//! * NOOB chain replication,
//! * NOOB 2PC (fan-out + timestamp round).
//!
//! Reported: mean put latency and network bytes per put.

use nice_bench::harness::{par_map, size_label, ArgSpec, CsvOut, Stats};
use nice_bench::{run, RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};

const SIZES: [u32; 3] = [1 << 10, 64 << 10, 1 << 20];

fn systems() -> Vec<System> {
    vec![
        System::Nice { lb: false },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::Chain,
            lb_gets: false,
        },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::TwoPc,
            lb_gets: false,
        },
    ]
}

fn main() {
    let args = ArgSpec::parse(200, 10);
    let mut out = CsvOut::new(
        "ablation_replication",
        "Ablation: replication strategy — mean put latency (us) and network KB per put",
    );
    out.header(&["strategy", "size", "replication", "mean_us", "kb_per_put"]);

    let mut jobs = Vec::new();
    for sys in systems() {
        for size in SIZES {
            for r in [3usize, 5] {
                jobs.push((sys, size, r));
            }
        }
    }
    let results = par_map(jobs, |(sys, size, r)| {
        let ops: Vec<ClientOp> = (0..args.ops)
            .map(|i| ClientOp::Put {
                key: format!("abl-{size}-{r}-{i}"),
                value: Value::synthetic(size),
            })
            .collect();
        let mut spec = RunSpec::new(sys, r, vec![ops]);
        spec.seed = args.seed;
        let res = run(&spec);
        assert!(res.done, "{} size={size} r={r}", sys.label());
        let kb_per_put = res.total_link_bytes as f64 / args.ops as f64 / 1024.0;
        (sys, size, r, Stats::of(&res.put_lat), kb_per_put)
    });
    for (sys, size, r, st, kb) in results {
        let label = match sys {
            System::Nice { .. } => "multicast (NICE)".to_string(),
            System::Noob {
                mode: NoobMode::PrimaryOnly,
                ..
            } => "primary fan-out".to_string(),
            System::Noob {
                mode: NoobMode::Chain,
                ..
            } => "chain".to_string(),
            System::Noob {
                mode: NoobMode::TwoPc,
                ..
            } => "fan-out + 2PC".to_string(),
            other => other.label(),
        };
        out.row(&[
            label,
            size_label(size),
            r.to_string(),
            format!("{:.1}", st.mean_us),
            format!("{kb:.1}"),
        ]);
    }
}

//! **Figure 8 — Quorum-based Replication.**
//!
//! "The experiment puts 1000 1MB objects using a replication level of 7,
//! while varying the quorum write-set size. To emulate slow nodes we
//! configured the network connection of 3 replicas to be 50Mbps, while
//! the rest of the nodes enjoy a 1Gbps connection. … we note that NICE
//! storage achieves up to 5.6x better performance with quorum sizes of
//! 1 and 3."
//!
//! All keys are pinned to one partition so the same 3 replicas can be
//! throttled in every run.

use nice_bench::harness::{par_map, ArgSpec, CsvOut, Stats};
use nice_bench::systems::nice_cluster;
use nice_bench::{run, RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};
use nice_ring::PartitionId;

const SIZE: u32 = 1 << 20;
const R: usize = 7;

fn main() {
    let args = ArgSpec::parse(1000, 50);
    let mut out = CsvOut::new(
        "fig08_quorum",
        "Figure 8: quorum put time (ms) and bandwidth (MB/s); R=7, 3 replicas at 50 Mbps",
    );
    out.header(&["system", "quorum_k", "put_ms", "std_ms", "bandwidth_mbps"]);

    // Probe placement: partition 0's replica set; throttle its last 3.
    let probe = nice_cluster(&RunSpec::new(System::Nice { lb: false }, R, vec![]));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, args.ops);
    let replicas: Vec<usize> = probe
        .ring
        .replica_set(p)
        .iter()
        .map(|n| n.0 as usize)
        .collect();
    let slow: Vec<(usize, u64)> = replicas[R - 3..].iter().map(|&i| (i, 50_000_000)).collect();
    drop(probe);

    let mut jobs = Vec::new();
    for k in [1usize, 3, 5, 7] {
        jobs.push((System::NiceQuorum { k }, k));
        jobs.push((
            System::Noob {
                access: Access::Rac,
                mode: NoobMode::Quorum { k },
                lb_gets: false,
            },
            k,
        ));
    }
    let keys = &keys;
    let slow = &slow;
    let results = par_map(jobs, move |(sys, k)| {
        let ops: Vec<ClientOp> = keys
            .iter()
            .map(|key| ClientOp::Put {
                key: key.clone(),
                value: Value::synthetic(SIZE),
            })
            .collect();
        let mut spec = RunSpec::new(sys, R, vec![ops]);
        spec.seed = args.seed;
        spec.throttled = slow.clone();
        let r = run(&spec);
        assert!(r.done, "{} k={k} did not finish", sys.label());
        (sys, k, Stats::of(&r.put_lat))
    });
    for (sys, k, st) in results {
        let ms = st.mean_us / 1e3;
        let bw = (SIZE as f64 / 1e6) / (st.mean_us / 1e6);
        out.row(&[
            sys.label(),
            k.to_string(),
            format!("{ms:.2}"),
            format!("{:.2}", st.std_us / 1e3),
            format!("{bw:.1}"),
        ]);
    }
}

//! **Figure 10 — Load Balancing Evaluation.**
//!
//! "This experiment measures the performance of NICE storage and two NOOB
//! storage configurations (primary-only and 2PC) when serving
//! highly-popular frequently-updated objects. We design a weak scaling
//! experiment: we increase the number of clients proportional to the
//! replication level. In each configuration 1 client puts the same object
//! 1000 times, while R-1 clients get the same object 1000 times. … The
//! line markers on the bars show the performance of the workload without
//! updating the shared key."
//!
//! Expected shape: NICE up to ~7.5x better than primary-only and ~5.5x
//! better than 2PC; NOOB degrades badly with R (not weakly scalable),
//! NICE degrades only slightly.

use nice_bench::harness::{par_map, size_label, ArgSpec, CsvOut, Stats};
use nice_bench::{run, RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};
use nice_sim::Time;

const LEVELS: [usize; 5] = [1, 3, 5, 7, 9];
const SIZES: [u32; 2] = [4, 1 << 20];
const KEY: &str = "hot-object";

fn systems() -> Vec<System> {
    vec![
        System::Nice { lb: true },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
        // 2PC with client-side get balancing, as the paper's 2PC config
        // load balances gets across replicas.
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::TwoPc,
            lb_gets: true,
        },
    ]
}

/// Build the weak-scaling client op lists: client 0 puts, clients 1..R
/// get. With `with_put = false` the putter only seeds the object (the
/// get-only marker series).
fn client_ops(r: usize, size: u32, n: usize, with_put: bool) -> Vec<Vec<ClientOp>> {
    let mut all = Vec::new();
    let putter_n = if with_put { n } else { 1 };
    all.push(
        (0..putter_n)
            .map(|_| ClientOp::Put {
                key: KEY.into(),
                value: Value::synthetic(size),
            })
            .collect(),
    );
    for _ in 1..r {
        all.push((0..n).map(|_| ClientOp::Get { key: KEY.into() }).collect());
    }
    all
}

fn main() {
    let args = ArgSpec::parse(300, 15);
    let mut out = CsvOut::new(
        "fig10_load_balancing",
        "Figure 10: weak scaling on a hot key — mean op latency (us); marker = get-only",
    );
    out.header(&[
        "system",
        "size",
        "replication",
        "clients",
        "makespan_ms",
        "getonly_makespan_ms",
        "mean_op_us",
        "failures",
    ]);

    let mut jobs = Vec::new();
    for sys in systems() {
        for size in SIZES {
            for r in LEVELS {
                jobs.push((sys, size, r));
            }
        }
    }
    let results = par_map(jobs, |(sys, size, r)| {
        // Mixed run: 1 putter + (R-1) getters; the bar is the makespan —
        // weak scaling means it should stay flat as R (and the client
        // count) grows.
        let mut spec = RunSpec::new(sys, r, client_ops(r, size, args.ops, true));
        spec.seed = args.seed;
        spec.deadline = Time::from_secs(3600);
        spec.retry_not_found = true;
        let mixed = run(&spec);
        assert!(
            mixed.done,
            "{} size={size} r={r} mixed did not finish",
            sys.label()
        );
        let mixed_span = mixed.finish.saturating_sub(mixed.start);
        let mut lats = mixed.put_lat.clone();
        lats.extend(mixed.get_lat.iter().copied());
        let mixed_stats = Stats::of(&lats);

        // Get-only marker run (the putter just seeds once).
        let mut spec = RunSpec::new(sys, r, client_ops(r, size, args.ops, false));
        spec.seed = args.seed;
        spec.skip = 0;
        spec.deadline = Time::from_secs(3600);
        spec.retry_not_found = true;
        let getonly = run(&spec);
        let get_span = getonly.finish.saturating_sub(getonly.start);
        (
            sys,
            size,
            r,
            mixed_span,
            get_span,
            mixed_stats,
            mixed.failures,
        )
    });
    for (sys, size, r, span, get_span, mixed, failures) in results {
        out.row(&[
            sys.label(),
            size_label(size),
            r.to_string(),
            r.to_string(),
            format!("{:.1}", span.as_ns() as f64 / 1e6),
            format!("{:.1}", get_span.as_ns() as f64 / 1e6),
            format!("{:.1}", mixed.mean_us),
            failures.to_string(),
        ]);
    }
}

//! **Figure 4 — Request Routing Performance.**
//!
//! "We compare the request routing performance of the NICEKV prototype,
//! and three NOOB storage configurations: ROG, RAG, and RAC. We measure
//! the performance of get requests issued from a single client. The
//! evaluation shows the average of 1000 get operations while varying the
//! object's size from 4 bytes to 1 MB."
//!
//! Expected shape: NICE ≈ NOOB+RAC (both single-hop); ~2x faster than
//! NOOB+ROG and ~1.5x faster than NOOB+RAG for small objects; converging
//! as transfer time dominates.

use nice_bench::harness::{par_map, size_label, ArgSpec, CsvOut, Stats};
use nice_bench::{run, RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};

const SIZES: [u32; 6] = [4, 1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];

fn systems() -> Vec<System> {
    vec![
        System::Nice { lb: false },
        System::Noob {
            access: Access::Rog,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
        System::Noob {
            access: Access::Rag,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
    ]
}

fn main() {
    let args = ArgSpec::parse(1000, 20);
    let mut out = CsvOut::new(
        "fig04_routing",
        "Figure 4: mean get latency (us) vs object size, one client",
    );
    out.header(&["system", "size", "mean_us", "std_us", "n"]);

    let mut jobs = Vec::new();
    for sys in systems() {
        for size in SIZES {
            jobs.push((sys, size));
        }
    }
    let results = par_map(jobs, |(sys, size)| {
        // one put to seed, then N gets of the same object
        let key = format!("routing-{size}");
        let mut ops = vec![ClientOp::Put {
            key: key.clone(),
            value: Value::synthetic(size),
        }];
        ops.extend((0..args.ops).map(|_| ClientOp::Get { key: key.clone() }));
        let mut spec = RunSpec::new(sys, 3, vec![ops]);
        spec.skip = 1;
        spec.seed = args.seed;
        let r = run(&spec);
        assert!(r.done, "{} size {size} did not finish", sys.label());
        (sys, size, Stats::of(&r.get_lat))
    });
    for (sys, size, st) in results {
        out.row(&[
            sys.label(),
            size_label(size),
            format!("{:.1}", st.mean_us),
            format!("{:.1}", st.std_us),
            st.n.to_string(),
        ]);
    }
}

//! **Figure 9 — Consistency Mechanism Performance.**
//!
//! "We compare NICE storage to two NOOB storage configurations:
//! primary-only and 2PC. … This experiment evaluates the efficiency of
//! the put operation while varying the replication level. NOOB storage
//! use RAC request routing. We show the results for … small 4-byte
//! objects and large 1MB objects."
//!
//! Expected shape: (a) 4 B — NICE ≈ primary-only, up to ~1.3x faster than
//! NOOB-2PC, all degrading with R; (b) 1 MB — NOOB degrades ~7x from R=1
//! to R=9 while NICE degrades only ~17%, up to ~5.5x better.

use nice_bench::harness::{par_map, size_label, ArgSpec, CsvOut, Stats};
use nice_bench::{run, RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};

const LEVELS: [usize; 5] = [1, 3, 5, 7, 9];
const SIZES: [u32; 2] = [4, 1 << 20];

fn systems() -> Vec<System> {
    vec![
        System::Nice { lb: false },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::TwoPc,
            lb_gets: false,
        },
    ]
}

fn main() {
    let args = ArgSpec::parse(500, 25);
    let mut out = CsvOut::new(
        "fig09_consistency",
        "Figure 9: mean put latency (us) vs replication level, 4B and 1MB objects",
    );
    out.header(&["system", "size", "replication", "mean_us", "std_us"]);

    let mut jobs = Vec::new();
    for sys in systems() {
        for size in SIZES {
            for r in LEVELS {
                jobs.push((sys, size, r));
            }
        }
    }
    let results = par_map(jobs, |(sys, size, r)| {
        let ops: Vec<ClientOp> = (0..args.ops)
            .map(|i| ClientOp::Put {
                key: format!("cons-{size}-{r}-{i}"),
                value: Value::synthetic(size),
            })
            .collect();
        let mut spec = RunSpec::new(sys, r, vec![ops]);
        spec.seed = args.seed;
        let res = run(&spec);
        assert!(res.done, "{} size={size} r={r} did not finish", sys.label());
        (sys, size, r, Stats::of(&res.put_lat))
    });
    for (sys, size, r, st) in results {
        out.row(&[
            sys.label(),
            size_label(size),
            r.to_string(),
            format!("{:.1}", st.mean_us),
            format!("{:.1}", st.std_us),
        ]);
    }
}

//! **Fault sweep (Figure 11 companion): availability and latency under
//! increasing message-loss rates.**
//!
//! Both systems run the same 20/80 put/get workload under the same
//! deterministic [`FaultPlan`] — loss applied at the simulator's single
//! delivery choke point, so NICE's switch-multicast path and NOOB's
//! gateway hops see identical per-packet draws. Each (system, loss)
//! point reports the fraction of ops answered successfully
//! (availability), mean and p99 get latency, mean put latency, how many
//! packets the injector actually dropped, and whether the run drained
//! before the deadline.

use nice_bench::harness::{par_map, ArgSpec, CsvOut};
use nice_bench::systems::run;
use nice_bench::{RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};
use nice_sim::FaultPlan;
use nice_workload::{Rng, XorShiftRng};

const RECORDS: u64 = 100;
const CLIENTS: usize = 3;
const OBJ: u32 = 1024;
const LOSS: [f64; 5] = [0.0, 0.002, 0.005, 0.01, 0.02];

/// Which scalar to pull out of a histogram.
enum Hx {
    Mean,
    P99,
    P999,
}

/// A histogram statistic in microseconds (0 when the histogram is
/// missing or empty).
fn hist_us(m: &nice_kv::MetricsRegistry, name: &str, which: Hx) -> f64 {
    m.hist(name).map_or(0.0, |h| {
        let t = match which {
            Hx::Mean => h.mean(),
            Hx::P99 => h.quantile(99, 100),
            Hx::P999 => h.quantile(999, 1000),
        };
        t.as_ns() as f64 / 1e3
    })
}

fn main() {
    let args = ArgSpec::parse(400, 20);
    let mut out = CsvOut::new(
        "fault_sweep",
        "Fault sweep: availability and latency vs message-loss rate (one FaultPlan, both systems)",
    );
    out.header(&[
        "system",
        "loss",
        "availability",
        "ops_ok",
        "ops_failed",
        "get_mean_us",
        "get_p99_us",
        "get_p999_us",
        "put_mean_us",
        "pkts_lost",
        "done",
    ]);

    let systems = [
        System::Nice { lb: true },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::TwoPc,
            lb_gets: true,
        },
    ];
    let mut jobs = Vec::new();
    for sys in systems {
        for loss in LOSS {
            jobs.push((sys, loss));
        }
    }
    let results = par_map(jobs, |(sys, loss)| {
        // Preload striped across clients, then a seeded 20/80 put/get
        // stream per client over the preloaded keyspace.
        let mut per_client: Vec<Vec<ClientOp>> = vec![Vec::new(); CLIENTS];
        for i in 0..RECORDS {
            per_client[(i % CLIENTS as u64) as usize].push(ClientOp::Put {
                key: format!("f{i}"),
                value: Value::synthetic(OBJ),
            });
        }
        let skip = per_client.iter().map(std::vec::Vec::len).max().unwrap();
        for (j, ops) in per_client.iter_mut().enumerate() {
            let mut rng = XorShiftRng::seed_from_u64(args.seed ^ (j as u64 + 1));
            for _ in 0..args.ops {
                let key = format!("f{}", rng.random_range(0..RECORDS));
                if rng.random_f64() < 0.2 {
                    ops.push(ClientOp::Put {
                        key,
                        value: Value::synthetic(OBJ),
                    });
                } else {
                    ops.push(ClientOp::Get { key });
                }
            }
        }
        let mut spec = RunSpec::new(sys, 3, per_client);
        spec.skip = skip;
        spec.seed = args.seed;
        if loss > 0.0 {
            spec.fault_plan = Some(FaultPlan::new(args.seed).loss(loss));
        }
        (sys, loss, run(&spec))
    });
    for (sys, loss, r) in results {
        let ok = r.put_lat.len() + r.get_lat.len();
        let avail = ok as f64 / (ok + r.failures).max(1) as f64;
        out.row(&[
            sys.label(),
            format!("{loss}"),
            format!("{avail:.4}"),
            ok.to_string(),
            r.failures.to_string(),
            // Latency columns come from the telemetry histograms — the
            // same distribution `metrics()` reports — so the CSV and the
            // registry cannot disagree. (They cover every op the clients
            // issued, preload included.)
            format!("{:.1}", hist_us(&r.metrics, "client.get_e2e", Hx::Mean)),
            format!("{:.1}", hist_us(&r.metrics, "client.get_e2e", Hx::P99)),
            format!("{:.1}", hist_us(&r.metrics, "client.get_e2e", Hx::P999)),
            format!("{:.1}", hist_us(&r.metrics, "client.put_e2e", Hx::Mean)),
            r.fault.map_or(0, |s| s.lost).to_string(),
            r.done.to_string(),
        ]);
    }
}

//! **Figure 5 — Replication Performance.**
//!
//! "We compare the replication performance of the NICE design and three
//! configurations of the NOOB storage primary-only design: ROG, RAG, and
//! RAC. The experiment measures the put performance of one client …
//! average of 1000 put operations with objects sizes ranging from 4 bytes
//! to 1 MB."
//!
//! Expected shape: NICE consistently fastest — up to ~4.3x vs ROG, ~3.4x
//! vs RAG, ~2.6x vs RAC — because the switch replicates the payload while
//! NOOB's primary forwards R-1 copies serially over its own uplink.

use nice_bench::harness::{par_map, size_label, ArgSpec, CsvOut, Stats};
use nice_bench::{run, RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};

const SIZES: [u32; 6] = [4, 1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];

fn systems() -> Vec<System> {
    vec![
        System::Nice { lb: false },
        System::Noob {
            access: Access::Rog,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
        System::Noob {
            access: Access::Rag,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
    ]
}

fn main() {
    let args = ArgSpec::parse(1000, 20);
    let mut out = CsvOut::new(
        "fig05_replication",
        "Figure 5: mean put latency (us) vs object size, one client, R=3",
    );
    out.header(&[
        "system", "size", "mean_us", "std_us", "p50_us", "p99_us", "p999_us", "n",
    ]);

    let mut jobs = Vec::new();
    for sys in systems() {
        for size in SIZES {
            jobs.push((sys, size));
        }
    }
    let results = par_map(jobs, |(sys, size)| {
        let ops: Vec<ClientOp> = (0..args.ops)
            .map(|i| ClientOp::Put {
                key: format!("rep-{size}-{i}"),
                value: Value::synthetic(size),
            })
            .collect();
        let mut spec = RunSpec::new(sys, 3, vec![ops]);
        spec.seed = args.seed;
        let r = run(&spec);
        assert!(r.done, "{} size {size} did not finish", sys.label());
        // Tails come from the telemetry histogram — the same
        // distribution `metrics()` reports.
        let hist = r
            .metrics
            .hist("client.put_e2e")
            .cloned()
            .unwrap_or_default();
        (sys, size, Stats::of(&r.put_lat), hist)
    });
    for (sys, size, st, hist) in results {
        let q_us = |num, den| hist.quantile(num, den).as_ns() as f64 / 1e3;
        out.row(&[
            sys.label(),
            size_label(size),
            format!("{:.1}", st.mean_us),
            format!("{:.1}", st.std_us),
            format!("{:.1}", q_us(1, 2)),
            format!("{:.1}", q_us(99, 100)),
            format!("{:.1}", q_us(999, 1000)),
            st.n.to_string(),
        ]);
    }
}

//! **Reproduction report**: reads the CSVs under `bench_results/` and
//! prints a one-screen paper-vs-measured scorecard — the key factor from
//! each figure next to the value the paper reports.
//!
//! Run after `./run_all_figures.sh`:
//! `cargo run --release -p nice-bench --bin report`

use std::collections::HashMap;
use std::fs;
use std::path::Path;

/// A parsed CSV: header names → column index, plus rows of strings.
struct Csv {
    cols: HashMap<String, usize>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    fn load(path: &Path) -> Option<Csv> {
        let text = fs::read_to_string(path).ok()?;
        let mut lines = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty());
        let header = lines.next()?;
        let cols = header
            .split(',')
            .enumerate()
            .map(|(i, c)| (c.trim().to_string(), i))
            .collect();
        let rows = lines
            .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
            .collect();
        Some(Csv { cols, rows })
    }

    /// The value of `col` in the first row where every `(key, value)`
    /// selector matches.
    fn lookup(&self, selectors: &[(&str, &str)], col: &str) -> Option<f64> {
        let ci = *self.cols.get(col)?;
        'rows: for row in &self.rows {
            for &(k, v) in selectors {
                let ki = *self.cols.get(k)?;
                if row.get(ki).map(String::as_str) != Some(v) {
                    continue 'rows;
                }
            }
            return row.get(ci)?.parse().ok();
        }
        None
    }
}

/// One scorecard line: measured ratio vs the paper's.
struct Line {
    figure: &'static str,
    what: &'static str,
    paper: &'static str,
    measured: Option<f64>,
}

fn ratio(csv: Option<&Csv>, num: &[(&str, &str)], den: &[(&str, &str)], col: &str) -> Option<f64> {
    let csv = csv?;
    Some(csv.lookup(num, col)? / csv.lookup(den, col)?)
}

fn main() {
    let dir = Path::new("bench_results");
    let load = |name: &str| Csv::load(&dir.join(format!("{name}.csv")));
    let f4 = load("fig04_routing");
    let f5 = load("fig05_replication");
    let f6 = load("fig06_network_load");
    let f7 = load("fig07_load_ratio_rsweep");
    let f8 = load("fig08_quorum");
    let f9 = load("fig09_consistency");
    let f10 = load("fig10_load_balancing");
    let f12 = load("fig12_ycsb");

    let lines = vec![
        Line {
            figure: "Fig 4",
            what: "ROG/NICE get latency, 4B",
            paper: "~2x",
            measured: ratio(
                f4.as_ref(),
                &[("system", "NOOB+ROG-primary"), ("size", "4B")],
                &[("system", "NICE"), ("size", "4B")],
                "mean_us",
            ),
        },
        Line {
            figure: "Fig 4",
            what: "RAG/NICE get latency, 4B",
            paper: "~1.5x",
            measured: ratio(
                f4.as_ref(),
                &[("system", "NOOB+RAG-primary"), ("size", "4B")],
                &[("system", "NICE"), ("size", "4B")],
                "mean_us",
            ),
        },
        Line {
            figure: "Fig 5",
            what: "ROG/NICE put latency, 1MB",
            paper: "up to 4.3x",
            measured: ratio(
                f5.as_ref(),
                &[("system", "NOOB+ROG-primary"), ("size", "1MB")],
                &[("system", "NICE"), ("size", "1MB")],
                "mean_us",
            ),
        },
        Line {
            figure: "Fig 6",
            what: "ROG/NICE network load, 1MB",
            paper: "1.7-3.5x",
            measured: ratio(
                f6.as_ref(),
                &[("system", "NOOB+ROG-primary"), ("size", "1MB")],
                &[("system", "NICE"), ("size", "1MB")],
                "kb_per_put",
            ),
        },
        Line {
            figure: "Fig 7",
            what: "NOOB primary/secondary load, R=9",
            paper: "9x",
            measured: f7.as_ref().and_then(|c| {
                c.lookup(
                    &[("system", "NOOB+RAC-primary"), ("replication", "9")],
                    "ratio",
                )
            }),
        },
        Line {
            figure: "Fig 8",
            what: "NOOB/NICE quorum put, k=1",
            paper: "up to 5.6x",
            measured: ratio(
                f8.as_ref(),
                &[("system", "NOOB+RAC-quorum"), ("quorum_k", "1")],
                &[("system", "NICE-quorum"), ("quorum_k", "1")],
                "put_ms",
            ),
        },
        Line {
            figure: "Fig 9b",
            what: "NOOB put degradation R=1→9, 1MB",
            paper: "7x",
            measured: ratio(
                f9.as_ref(),
                &[
                    ("system", "NOOB+RAC-primary"),
                    ("size", "1MB"),
                    ("replication", "9"),
                ],
                &[
                    ("system", "NOOB+RAC-primary"),
                    ("size", "1MB"),
                    ("replication", "1"),
                ],
                "mean_us",
            ),
        },
        Line {
            figure: "Fig 9b",
            what: "NOOB-2PC/NICE put, R=9, 1MB",
            paper: "up to 5.5x",
            measured: ratio(
                f9.as_ref(),
                &[
                    ("system", "NOOB+RAC-2pc"),
                    ("size", "1MB"),
                    ("replication", "9"),
                ],
                &[("system", "NICE"), ("size", "1MB"), ("replication", "9")],
                "mean_us",
            ),
        },
        Line {
            figure: "Fig 10",
            what: "primary-only/NICE makespan, R=9, 1MB",
            paper: "up to 7.5x",
            measured: ratio(
                f10.as_ref(),
                &[
                    ("system", "NOOB+RAC-primary"),
                    ("size", "1MB"),
                    ("replication", "9"),
                ],
                &[("system", "NICE"), ("size", "1MB"), ("replication", "9")],
                "makespan_ms",
            ),
        },
        Line {
            figure: "Fig 12",
            what: "NICE/primary-only throughput, C",
            paper: "1.6x",
            measured: ratio(
                f12.as_ref(),
                &[("system", "NICE"), ("workload", "C")],
                &[("system", "NOOB+RAC-primary"), ("workload", "C")],
                "throughput_ops_s",
            ),
        },
    ];

    println!("NICE (HPDC '17) reproduction scorecard — bench_results/ vs the paper");
    println!("{:-<78}", "");
    println!(
        "{:<8} {:<38} {:>12} {:>10}",
        "figure", "metric", "paper", "measured"
    );
    println!("{:-<78}", "");
    let mut missing = 0;
    for l in &lines {
        match l.measured {
            Some(m) => println!("{:<8} {:<38} {:>12} {:>9.2}x", l.figure, l.what, l.paper, m),
            None => {
                missing += 1;
                println!(
                    "{:<8} {:<38} {:>12} {:>10}",
                    l.figure, l.what, l.paper, "(no data)"
                );
            }
        }
    }
    println!("{:-<78}", "");
    if missing > 0 {
        println!("{missing} metric(s) missing — run ./run_all_figures.sh first.");
    } else {
        println!("Full narrative: EXPERIMENTS.md. Raw series: bench_results/*.csv.");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csv {
        let mut cols = HashMap::new();
        for (i, c) in ["system", "size", "mean_us"].iter().enumerate() {
            cols.insert(c.to_string(), i);
        }
        Csv {
            cols,
            rows: vec![
                vec!["NICE".into(), "4B".into(), "100.0".into()],
                vec!["NOOB".into(), "4B".into(), "250.0".into()],
                vec!["NOOB".into(), "1MB".into(), "9000".into()],
            ],
        }
    }

    #[test]
    fn lookup_selects_the_right_row() {
        let c = sample();
        assert_eq!(
            c.lookup(&[("system", "NOOB"), ("size", "1MB")], "mean_us"),
            Some(9000.0)
        );
        assert_eq!(
            c.lookup(&[("system", "NICE"), ("size", "4B")], "mean_us"),
            Some(100.0)
        );
        assert_eq!(
            c.lookup(&[("system", "NICE"), ("size", "1MB")], "mean_us"),
            None
        );
        assert_eq!(c.lookup(&[("system", "NICE")], "nosuchcol"), None);
    }

    #[test]
    fn ratio_math() {
        let c = sample();
        let r = ratio(
            Some(&c),
            &[("system", "NOOB"), ("size", "4B")],
            &[("system", "NICE"), ("size", "4B")],
            "mean_us",
        );
        assert_eq!(r, Some(2.5));
        assert_eq!(ratio(None, &[], &[], "x"), None);
    }
}

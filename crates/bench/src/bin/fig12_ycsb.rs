//! **Figure 12 — Yahoo Benchmark (YCSB) Evaluation.**
//!
//! "We use two workloads: C, the read-only workload, and F, the
//! read-modify-write workload … The system is accessed by 10 clients,
//! each issuing 20K operations. We use the default YCSB configuration
//! with 1KB objects [and a zipf popularity distribution]."
//!
//! Expected shape: NICE ~1.6x (C) / ~2.3x (F) better than primary-only,
//! and ~1.25x (C) / ~1.5x (F) better than 2PC.

use nice_bench::harness::{par_map, ArgSpec, CsvOut, Stats};
use nice_bench::{run, RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};
use nice_sim::Time;
use nice_workload::XorShiftRng;
use nice_workload::{OpKind, Workload, WorkloadRun};

const CLIENTS: usize = 10;
const RECORDS: u64 = 1000;

fn systems() -> Vec<System> {
    vec![
        System::Nice { lb: true },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::TwoPc,
            lb_gets: true,
        },
    ]
}

/// Build per-client op lists: a striped load phase (each record put once)
/// followed by the run phase. Returns `(ops, load_len per client)`.
fn build_ops(wl: &Workload, ops_per_client: usize, seed: u64) -> (Vec<Vec<ClientOp>>, Vec<usize>) {
    let mut per_client: Vec<Vec<ClientOp>> = vec![Vec::new(); CLIENTS];
    // Load phase: stripe the records.
    for i in 0..wl.records {
        per_client[(i % CLIENTS as u64) as usize].push(ClientOp::Put {
            key: wl.key(i),
            value: Value::synthetic(wl.object_size),
        });
    }
    let load_len: Vec<usize> = per_client.iter().map(std::vec::Vec::len).collect();
    // Run phase.
    for (j, ops) in per_client.iter_mut().enumerate() {
        let mut rng = XorShiftRng::seed_from_u64(seed ^ (j as u64 + 1));
        let mut gen = WorkloadRun::new(wl.clone());
        while ops.len() - load_len[j] < ops_per_client {
            for op in gen.next_ops(&mut rng) {
                ops.push(match op.kind {
                    OpKind::Get => ClientOp::Get { key: op.key },
                    OpKind::Put => ClientOp::Put {
                        key: op.key,
                        value: Value::synthetic(op.size),
                    },
                });
            }
        }
    }
    (per_client, load_len)
}

fn main() {
    let args = ArgSpec::parse(20_000, 20);
    let mut out = CsvOut::new(
        "fig12_ycsb",
        "Figure 12: YCSB workloads C (read-only) and F (read-modify-write); 10 clients, 1KB objects, zipf",
    );
    out.header(&[
        "system",
        "workload",
        "throughput_ops_s",
        "mean_us",
        "std_us",
        "p50_us",
        "p99_us",
        "p999_us",
        "ops_measured",
    ]);

    let mut jobs = Vec::new();
    for sys in systems() {
        for wl_name in ["C", "F"] {
            jobs.push((sys, wl_name));
        }
    }
    let results = par_map(jobs, |(sys, wl_name)| {
        let wl = match wl_name {
            "C" => Workload::c(RECORDS),
            _ => Workload::f(RECORDS),
        };
        let (ops, load_len) = build_ops(&wl, args.ops, args.seed);
        let skip = *load_len.iter().max().expect("clients");
        let mut spec = RunSpec::new(sys, 3, ops);
        spec.skip = skip;
        spec.seed = args.seed;
        spec.deadline = Time::from_secs(36_000);
        let r = run(&spec);
        assert!(r.done, "{} {wl_name} did not finish", sys.label());
        let mut lats = r.put_lat.clone();
        lats.extend(r.get_lat.iter().copied());
        // Tails come from the telemetry histograms (puts and gets
        // merged) — the same distribution `metrics()` reports.
        let mut hist = r
            .metrics
            .hist("client.put_e2e")
            .cloned()
            .unwrap_or_default();
        if let Some(gets) = r.metrics.hist("client.get_e2e") {
            hist.merge(gets);
        }
        (sys, wl_name, r.throughput(), Stats::of(&lats), hist)
    });
    for (sys, wl, tput, st, hist) in results {
        let q_us = |num, den| hist.quantile(num, den).as_ns() as f64 / 1e3;
        out.row(&[
            sys.label(),
            wl.to_string(),
            format!("{tput:.0}"),
            format!("{:.1}", st.mean_us),
            format!("{:.1}", st.std_us),
            format!("{:.1}", q_us(1, 2)),
            format!("{:.1}", q_us(99, 100)),
            format!("{:.1}", q_us(999, 1000)),
            st.n.to_string(),
        ]);
    }
}

//! **§4.6 — Switch Scalability (table).**
//!
//! "The proposed approach requires, for each physical partition, one entry
//! in the switch forwarding table for the unicast vring mapping and one
//! entry for the multicast vring mapping … a total of 2N entries … If
//! load balancing is enabled, it uses R entries per partition …, leading
//! to a total of (R+1)N entries. … Current switches support tables with
//! 128K or more entries; they can easily support storage systems with up
//! to 64K storage nodes without load balancing. With load balancing
//! enabled and with a replication level of 3 they can support up to 32K
//! storage nodes."
//!
//! This binary (a) reproduces the analytic table and (b) validates the
//! formula against the *live* flow table of small deployed clusters.

use nice_bench::harness::CsvOut;
use nice_bench::systems::nice_cluster;
use nice_bench::{RunSpec, System};
use nice_sim::Time;

const TABLE_CAPACITY: u64 = 128 * 1024;

fn main() {
    // (a) Analytic capacity table. LB uses next_pow2(R) division rules per
    // partition (pure-prefix matching), so the LB entry count is
    // (next_pow2(R)+1)N; the paper's idealized count is (R+1)N.
    let mut out = CsvOut::new(
        "switch_scalability",
        "Section 4.6: forwarding-table entries per deployment and max supported nodes (128K-entry switch)",
    );
    out.header(&["config", "entries_per_node", "max_nodes"]);
    out.row(&[
        "no-LB (2N)".into(),
        "2".into(),
        (TABLE_CAPACITY / 2).to_string(),
    ]);
    for r in [3u64, 5, 7] {
        let ideal = r + 1;
        out.row(&[
            format!("LB R={r} paper ((R+1)N)"),
            ideal.to_string(),
            (TABLE_CAPACITY / ideal).to_string(),
        ]);
        let ours = r.next_power_of_two() + 1;
        out.row(&[
            format!("LB R={r} ours ((2^ceil(lg R))+1)N"),
            ours.to_string(),
            (TABLE_CAPACITY / ours).to_string(),
        ]);
    }

    // (b) Validate against live tables for a few cluster sizes.
    let mut out2 = CsvOut::new(
        "switch_scalability_live",
        "Section 4.6 validation: live flow-table occupancy vs formula",
    );
    out2.header(&[
        "nodes",
        "partitions",
        "lb",
        "live_entries",
        "formula",
        "phys_rules",
        "groups",
    ]);
    for (nodes, lb) in [(8usize, false), (8, true), (15, false), (15, true)] {
        let mut spec = RunSpec::new(System::Nice { lb }, 3, vec![]);
        spec.storage_nodes = nodes;
        let mut c = nice_cluster(&spec);
        c.sim.run_until(Time::from_ms(200));
        let (entries, groups) = c.meta_app().table_occupancy(c.sim.now());
        let parts = c.cfg.partitions as usize;
        let phys = nodes + 1; // per-host unicast rules + metadata node
        let divisions = 3usize.next_power_of_two();
        let formula = if lb {
            // multicast + unicast base + division rules, per partition
            parts * (2 + divisions) + phys
        } else {
            parts * 2 + phys
        };
        out2.row(&[
            nodes.to_string(),
            parts.to_string(),
            lb.to_string(),
            entries.to_string(),
            formula.to_string(),
            phys.to_string(),
            groups.to_string(),
        ]);
        assert_eq!(entries, formula, "live table does not match the formula");
    }
    println!("# live occupancy matches the formula for every configuration");
}

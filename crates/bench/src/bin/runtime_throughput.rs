//! **Real-runtime throughput and tail latency.**
//!
//! Boots the loopback UDP NOOB cluster (real OS threads, real
//! datagrams, fsync-gated WAL) twice — once clean, once under the
//! socket-level nemesis — drives the same seeded put/get workload
//! through it, and reports wall-clock throughput plus the p50/p99/p99.9
//! end-to-end latency distribution harvested from the cluster's merged
//! telemetry registry. Output lands in
//! `bench_results/runtime_throughput.json`, one row per configuration.
//!
//! Unlike the simulator figures, these numbers are wall-clock: they
//! include scheduler jitter, socket syscalls, and real fsyncs, so they
//! are the repo's closest stand-in for the paper's hardware runs.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use nice_bench::harness::ArgSpec;
use nice_kv::MetricsRegistry;
use nice_noob::{NoobMode, RealNoobCfg, RealNoobCluster, RealOp};
use nice_sim::Time;
use nice_workload::{Rng, XorShiftRng};
use node_rt::FaultPlan;

const SERVERS: usize = 3;
const CLIENTS: usize = 3;
const RECORDS: u64 = 60;
const OBJ: usize = 1024;

/// The seeded 20/80 put/get stream every configuration replays.
fn workload(ops_per_client: usize, seed: u64) -> Vec<Vec<RealOp>> {
    let mut per_client: Vec<Vec<RealOp>> = vec![Vec::new(); CLIENTS];
    // Preload striped across clients so every later get can hit.
    for i in 0..RECORDS {
        per_client[(i % CLIENTS as u64) as usize].push(RealOp::Put {
            key: format!("rt{i}"),
            bytes: vec![0xA5; OBJ],
        });
    }
    for (j, ops) in per_client.iter_mut().enumerate() {
        let mut rng = XorShiftRng::seed_from_u64(seed ^ (j as u64 + 1));
        for _ in 0..ops_per_client {
            let key = format!("rt{}", rng.random_range(0..RECORDS));
            if rng.random_f64() < 0.2 {
                ops.push(RealOp::Put {
                    key,
                    bytes: vec![0x5A; OBJ],
                });
            } else {
                ops.push(RealOp::Get { key });
            }
        }
    }
    per_client
}

/// One measured configuration: label + whether the nemesis is armed.
struct Row {
    label: &'static str,
    ops: usize,
    elapsed: Duration,
    metrics: MetricsRegistry,
}

fn run(label: &'static str, args: ArgSpec, nemesis: Option<FaultPlan>) -> Row {
    let wal_root = std::env::temp_dir().join(format!("nice-rt-tput-{label}-{}", args.seed));
    let _ = fs::remove_dir_all(&wal_root);
    let mut cfg = RealNoobCfg::new(SERVERS, 2, workload(args.ops, args.seed));
    cfg.spec.seed = args.seed;
    cfg.mode = NoobMode::Quorum { k: 1 };
    cfg.spec.op_deadline = Some(Time::from_secs(5));
    cfg.host.wal_root = Some(wal_root.clone());
    cfg.host.nemesis = nemesis;
    let total_ops: usize = RECORDS as usize + args.ops * CLIENTS;

    let start = Instant::now();
    let cluster = RealNoobCluster::build(cfg);
    let deadline = Instant::now() + Duration::from_secs(240);
    while !cluster.all_done() {
        assert!(Instant::now() < deadline, "{label}: workload did not drain");
        std::thread::sleep(Duration::from_millis(10));
    }
    let elapsed = start.elapsed();
    let metrics = cluster.metrics();
    drop(cluster);
    let _ = fs::remove_dir_all(&wal_root);
    Row {
        label,
        ops: total_ops,
        elapsed,
        metrics,
    }
}

/// `"p50": ..., "p99": ..., "p999": ...` (µs) for one histogram, or
/// zeros when it recorded nothing.
fn quantiles_us(m: &MetricsRegistry, hist: &str) -> (f64, f64, f64) {
    let us = |t: Time| t.as_ns() as f64 / 1e3;
    match m.hist(hist) {
        Some(h) if h.count() > 0 => (
            us(h.quantile(1, 2)),
            us(h.quantile(99, 100)),
            us(h.quantile(999, 1000)),
        ),
        _ => (0.0, 0.0, 0.0),
    }
}

fn json_row(r: &Row) -> String {
    let (put_p50, put_p99, put_p999) = quantiles_us(&r.metrics, "client.put_e2e");
    let (get_p50, get_p99, get_p999) = quantiles_us(&r.metrics, "client.get_e2e");
    let secs = r.elapsed.as_secs_f64();
    format!(
        concat!(
            "    {{\"config\": \"{}\", \"servers\": {}, \"clients\": {}, ",
            "\"ops\": {}, \"elapsed_s\": {:.3}, \"ops_per_s\": {:.1}, ",
            "\"put_p50_us\": {:.1}, \"put_p99_us\": {:.1}, \"put_p999_us\": {:.1}, ",
            "\"get_p50_us\": {:.1}, \"get_p99_us\": {:.1}, \"get_p999_us\": {:.1}, ",
            "\"retries\": {}, \"failures\": {}, \"wal_syncs\": {}}}"
        ),
        r.label,
        SERVERS,
        CLIENTS,
        r.ops,
        secs,
        r.ops as f64 / secs.max(1e-9),
        put_p50,
        put_p99,
        put_p999,
        get_p50,
        get_p99,
        get_p999,
        r.metrics.counter("client.retries"),
        r.metrics.counter("client.failures"),
        r.metrics.counter("wal.syncs"),
    )
}

fn main() {
    let args = ArgSpec::parse(200, 10);
    println!("# Real-runtime throughput: loopback UDP cluster, wall-clock, fsync-gated WAL");

    let clean = run("clean", args, None);
    let nemesis = run(
        "nemesis",
        args,
        Some(FaultPlan {
            seed: args.seed,
            loss_ppm: 5_000,
            dup_ppm: 2_000,
            delay_ppm: 10_000,
            delay_max: Time::from_ms(2),
            active_from: Time::ZERO,
            active_until: Time::from_secs(3600),
            partitions: Vec::new(),
        }),
    );

    let rows: Vec<String> = [&clean, &nemesis].iter().map(|r| json_row(r)).collect();
    let doc = format!(
        "{{\n  \"bench\": \"runtime_throughput\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    print!("{doc}");

    let dir = PathBuf::from("bench_results");
    if fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut f) = fs::File::create(dir.join("runtime_throughput.json")) {
            let _ = f.write_all(doc.as_bytes());
        }
    }
}

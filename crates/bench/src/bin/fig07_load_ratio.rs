//! **Figure 7 — Storage Load Ratio.**
//!
//! "Figure 7 shows the ratio of the primary replica load to the secondary
//! replica load [in terms of amount of data sent/received during the put
//! operation]. While all NOOB storage system configurations impose 3x
//! more work on the primary compared to the secondary (this load
//! imbalance is proportional to the replication level), NICE load
//! balances the load evenly across the primary and secondary replicas."
//!
//! Method: pin all keys to one partition so the primary/secondary
//! identities are fixed, run the put workload, subtract an idle baseline
//! per host, and compare NIC bytes (sent + received).
//!
//! In addition to the paper's size sweep at R=3, this binary emits the
//! replication-level sweep at 1 MB that the abstract's "3x to 9x load
//! reduction, depending on replication level" refers to.

use nice_bench::harness::{par_map, size_label, ArgSpec, CsvOut};
use nice_bench::systems::{nice_cluster, noob_cluster};
use nice_bench::{RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_noob::{Access, NoobMode};
use nice_ring::PartitionId;
use nice_sim::{HostStats, Time};

const SIZES: [u32; 5] = [1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];

/// Run the pinned-partition put workload and return
/// `(primary_bytes, mean_secondary_bytes)` with idle baselines removed.
fn load_ratio(sys: System, r: usize, size: u32, ops: usize, seed: u64) -> (f64, f64) {
    // Probe for placement and pinned keys.
    let probe = nice_cluster(&RunSpec::new(System::Nice { lb: false }, r, vec![]));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, ops);
    let replicas: Vec<usize> = probe
        .ring
        .replica_set(p)
        .iter()
        .map(|n| n.0 as usize)
        .collect();
    drop(probe);

    let client_ops: Vec<ClientOp> = keys
        .iter()
        .map(|k| ClientOp::Put {
            key: k.clone(),
            value: Value::synthetic(size),
        })
        .collect();
    let mut spec = RunSpec::new(sys, r, vec![client_ops]);
    spec.seed = seed;

    let (stats, finish, idle): (Vec<HostStats>, Time, Vec<HostStats>) = match sys {
        System::Noob { .. } => {
            let mut c = noob_cluster(&spec);
            assert!(c.run_until_done(spec.deadline));
            let finish = c.finish_time().expect("finished");
            let stats = c.servers.iter().map(|&h| c.sim.host_stats(h)).collect();
            let mut idle_spec = spec.clone();
            idle_spec.client_ops = vec![vec![]];
            let mut ic = noob_cluster(&idle_spec);
            ic.sim.run_until(finish);
            (
                stats,
                finish,
                ic.servers.iter().map(|&h| ic.sim.host_stats(h)).collect(),
            )
        }
        _ => {
            let mut c = nice_cluster(&spec);
            assert!(c.run_until_done(spec.deadline));
            let finish = c.finish_time().expect("finished");
            let stats = c.servers.iter().map(|&h| c.sim.host_stats(h)).collect();
            let mut idle_spec = spec.clone();
            idle_spec.client_ops = vec![vec![]];
            let mut ic = nice_cluster(&idle_spec);
            ic.sim.run_until(finish);
            (
                stats,
                finish,
                ic.servers.iter().map(|&h| ic.sim.host_stats(h)).collect(),
            )
        }
    };
    let _ = finish;
    let data_bytes = |i: usize| -> f64 {
        let s = stats[i];
        let b = idle[i];
        ((s.bytes_sent + s.bytes_recv).saturating_sub(b.bytes_sent + b.bytes_recv)) as f64
    };
    let primary = data_bytes(replicas[0]);
    let secondaries: Vec<f64> = replicas[1..].iter().map(|&i| data_bytes(i)).collect();
    let mean_sec = secondaries.iter().sum::<f64>() / secondaries.len().max(1) as f64;
    (primary, mean_sec)
}

fn main() {
    let args = ArgSpec::parse(100, 10);
    let systems = [
        System::Nice { lb: false },
        System::Noob {
            access: Access::Rac,
            mode: NoobMode::PrimaryOnly,
            lb_gets: false,
        },
    ];

    let mut out = CsvOut::new(
        "fig07_load_ratio",
        "Figure 7: primary/secondary load ratio vs object size (R=3)",
    );
    out.header(&["system", "size", "ratio", "primary_mb", "secondary_mb"]);
    let mut jobs = Vec::new();
    for sys in systems {
        for size in SIZES {
            jobs.push((sys, size));
        }
    }
    let rows = par_map(jobs, |(sys, size)| {
        let (p, s) = load_ratio(sys, 3, size, args.ops, args.seed);
        (sys, size, p, s)
    });
    for (sys, size, p, s) in rows {
        out.row(&[
            sys.label(),
            size_label(size),
            format!("{:.2}", p / s.max(1.0)),
            format!("{:.2}", p / 1e6),
            format!("{:.2}", s / 1e6),
        ]);
    }

    // Extension: the replication-level sweep behind the "3x to 9x"
    // abstract claim, at 1 MB objects.
    let mut out2 = CsvOut::new(
        "fig07_load_ratio_rsweep",
        "Figure 7 (extension): primary/secondary load ratio vs replication level (1MB objects)",
    );
    out2.header(&["system", "replication", "ratio"]);
    let mut jobs = Vec::new();
    for sys in systems {
        for r in [3usize, 5, 7, 9] {
            jobs.push((sys, r));
        }
    }
    let ops = (args.ops / 2).max(10);
    let rows = par_map(jobs, |(sys, r)| {
        let (p, s) = load_ratio(sys, r, 1 << 20, ops, args.seed);
        (sys, r, p / s.max(1.0))
    });
    for (sys, r, ratio) in rows {
        out2.row(&[sys.label(), r.to_string(), format!("{ratio:.2}")]);
    }
}

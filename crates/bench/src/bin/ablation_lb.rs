//! **Ablation: the in-network load balancer** (§4.5) and its interaction
//! with skew.
//!
//! Same NICE system, LB rules on vs off, under increasing client counts
//! reading a zipf-hot keyspace. Shows where the source-prefix divisions
//! pay off and what they cost in flow-table entries.

use nice_bench::harness::{par_map, ArgSpec, CsvOut, Stats};
use nice_bench::{RunSpec, System};
use nice_kv::{ClientOp, Value};
use nice_sim::Time;
use nice_workload::XorShiftRng;
use nice_workload::Zipf;

const RECORDS: u64 = 200;

fn main() {
    let args = ArgSpec::parse(500, 25);
    let mut out = CsvOut::new(
        "ablation_lb",
        "Ablation: NICE load balancing off / static divisions / adaptive (future work) — get throughput under zipf skew",
    );
    out.header(&[
        "lb",
        "clients",
        "throughput_ops_s",
        "mean_us",
        "flow_entries",
    ]);

    // mode: 0 = off, 1 = static divisions (the paper), 2 = adaptive LPT
    let mut jobs = Vec::new();
    for mode in [0u8, 1, 2] {
        for clients in [2usize, 6, 10] {
            jobs.push((mode, clients));
        }
    }
    let results = par_map(jobs, |(mode, clients)| {
        // preload from client 0, then all clients read zipf-hot keys
        let mut per_client: Vec<Vec<ClientOp>> = vec![Vec::new(); clients];
        for i in 0..RECORDS {
            per_client[(i % clients as u64) as usize].push(ClientOp::Put {
                key: format!("z{i}"),
                value: Value::synthetic(1000),
            });
        }
        let loads: Vec<usize> = per_client.iter().map(std::vec::Vec::len).collect();
        let z = Zipf::ycsb(RECORDS);
        for (j, ops) in per_client.iter_mut().enumerate() {
            let mut rng = XorShiftRng::seed_from_u64(args.seed ^ (j as u64 + 1));
            for _ in 0..args.ops {
                ops.push(ClientOp::Get {
                    key: format!("z{}", z.sample(&mut rng)),
                });
            }
        }
        let mut spec = RunSpec::new(System::Nice { lb: mode > 0 }, 3, per_client);
        spec.skip = *loads.iter().max().unwrap();
        spec.seed = args.seed;
        spec.retry_not_found = true;
        let mut cfg = nice_kv::ClusterCfg::new(
            spec.storage_nodes,
            spec.replication,
            spec.client_ops.clone(),
        );
        cfg.spec.seed = spec.seed;
        cfg.spec.retry_not_found = true;
        cfg.kv.load_balancing = mode > 0;
        cfg.kv.adaptive_lb = mode == 2;
        let mut c = nice_kv::NiceCluster::build(cfg);
        let done = c.run_until_done(Time::from_secs(3600));
        assert!(done, "mode={mode} clients={clients}");
        let mut lats = Vec::new();
        let mut start = Time::MAX;
        let mut finish = Time::ZERO;
        for i in 0..c.clients.len() {
            for r in c.client(i).records.iter().skip(spec.skip) {
                if r.ok() && !r.is_put {
                    lats.push(r.end - r.start);
                    start = start.min(r.start);
                    finish = finish.max(r.end);
                }
            }
        }
        let tput = lats.len() as f64 / (finish.saturating_sub(start)).as_secs_f64();
        let entries = c.meta_app().table_occupancy(c.sim.now()).0;
        (mode, clients, tput, Stats::of(&lats), entries)
    });
    for (mode, clients, tput, st, entries) in results {
        let label = ["off", "static", "adaptive"][mode as usize];
        out.row(&[
            label.to_string(),
            clients.to_string(),
            format!("{tput:.0}"),
            format!("{:.1}", st.mean_us),
            entries.to_string(),
        ]);
    }
}

//! **Figure 11 — Fault Tolerance Evaluation.**
//!
//! "Three clients access the system with 20/80 put/get ratio and key size
//! of 1KB. All objects are in the same partition. Figure 11 shows the
//! number of put and get requests served per second. At the 30s mark, the
//! secondary node 2 fails. … This process makes the partition unavailable
//! for put for less than 2 seconds. … At 90s mark, the failed node joins
//! back, and starts retrieving the objects it missed."
//!
//! Output: one row per second — puts/sec, gets/sec, gets forwarded by the
//! handoff so far, the recovered node's object count, and the
//! cumulative put/get p99 pulled from the cluster's telemetry
//! histograms (so the CSV and `metrics()` cannot disagree).

use nice_bench::harness::{ArgSpec, CsvOut};
use nice_bench::systems::nice_cluster;
use nice_bench::{RunSpec, System};
use nice_kv::{ClientApp, ClientOp, MetaEvent, MetadataApp, Value};
use nice_ring::PartitionId;
use nice_sim::Time;
use nice_workload::{Rng, XorShiftRng};

const DURATION_S: u64 = 120;
const FAIL_AT_S: u64 = 30;
const REJOIN_AT_S: u64 = 90;
const OBJ: u32 = 1024;

fn main() {
    let args = ArgSpec::parse(200_000, 20);
    let mut out = CsvOut::new(
        "fig11_fault_tolerance",
        "Figure 11: ops served per second; secondary fails at 30s, rejoins at 90s",
    );
    out.header(&[
        "second",
        "puts_per_sec",
        "gets_per_sec",
        "handoff_forwarded",
        "victim_objects",
        "put_p99_us_cum",
        "get_p99_us_cum",
    ]);

    // Pin everything to one partition; identify the victim secondary.
    let probe = nice_cluster(&RunSpec::new(System::Nice { lb: true }, 3, vec![]));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 100);
    let replicas: Vec<usize> = probe
        .ring
        .replica_set(p)
        .iter()
        .map(|n| n.0 as usize)
        .collect();
    let victim = replicas[1];
    drop(probe);

    // 20/80 put/get streams over the pinned keys for three clients.
    let mut rng = XorShiftRng::seed_from_u64(args.seed);
    let mk_ops = |rng: &mut XorShiftRng, n: usize| -> Vec<ClientOp> {
        (0..n)
            .map(|_| {
                let key = keys[rng.random_range(0..keys.len())].clone();
                if rng.random_f64() < 0.2 {
                    ClientOp::Put {
                        key,
                        value: Value::synthetic(OBJ),
                    }
                } else {
                    ClientOp::Get { key }
                }
            })
            .collect()
    };
    let client_ops = vec![
        mk_ops(&mut rng, args.ops),
        mk_ops(&mut rng, args.ops),
        mk_ops(&mut rng, args.ops),
    ];

    let spec = RunSpec::new(System::Nice { lb: true }, 3, client_ops);
    let mut c = nice_cluster(&spec);
    c.sim
        .schedule_crash(Time::from_secs(FAIL_AT_S), c.servers[victim]);
    c.sim
        .schedule_restart(Time::from_secs(REJOIN_AT_S), c.servers[victim]);

    let mut prev_puts = 0usize;
    let mut prev_gets = 0usize;
    for sec in 1..=DURATION_S {
        c.sim.run_until(Time::from_secs(sec));
        let (mut puts, mut gets) = (0, 0);
        for &cl in &c.clients {
            let recs = &c.sim.app::<ClientApp>(cl).records;
            for r in recs {
                if r.is_put {
                    // a put only counts when it committed
                    if r.ok() {
                        puts += 1;
                    }
                } else {
                    // a get counts when it got a response (NotFound for a
                    // never-written key is still a served request)
                    gets += 1;
                }
            }
        }
        let handoff_fwd: u64 = (0..c.servers.len())
            .map(|i| c.server(i).metrics().counter("engine.forwarded"))
            .sum();
        let victim_objects = c.server(victim).store().len();
        // Cumulative-so-far tails from the merged client histograms:
        // the same distribution a `metrics()` caller would see.
        let m = c.metrics();
        let p99_us = |name: &str| {
            m.hist(name)
                .map_or(0.0, |h| h.quantile(99, 100).as_ns() as f64 / 1e3)
        };
        out.row(&[
            sec.to_string(),
            (puts - prev_puts).to_string(),
            (gets - prev_gets).to_string(),
            handoff_fwd.to_string(),
            victim_objects.to_string(),
            format!("{:.1}", p99_us("client.put_e2e")),
            format!("{:.1}", p99_us("client.get_e2e")),
        ]);
        prev_puts = puts;
        prev_gets = gets;
    }

    // The paper's headline claim — "this process makes the partition
    // unavailable for put for less than 2 seconds" — asserted from the
    // run's own records rather than eyeballed off the plot. The three
    // closed-loop clients cannot resolve the window by themselves: a
    // put in flight at the crash sleeps the full fixed §6.6 2 s retry
    // period before re-attempting, so every client-side completion gap
    // straddling the failure is ~2 s even though the partition healed
    // much earlier. The run's own failover timeline is the measurement:
    // the partition is put-unavailable from the crash until the
    // metadata service declares the failure (3 missed heartbeats) and
    // installs the handoff view at the survivors (`HandoffAssigned`,
    // logged for exactly this analysis).
    let crash = Time::from_secs(FAIL_AT_S);
    let healed = c
        .sim
        .app::<MetadataApp>(c.meta)
        .events
        .iter()
        .filter(|&&(t, ref ev)| {
            t >= crash
                && matches!(ev, MetaEvent::HandoffAssigned { partition, failed, .. }
                    if *partition == p && failed.0 as usize == victim)
        })
        .map(|&(t, _)| t)
        .min()
        .expect("the metadata service never assigned a handoff for the workload partition");
    let unavail_ms = (healed - crash).as_ns() / 1_000_000;
    assert!(
        healed - crash < Time::from_secs(2),
        "put-unavailability window was {unavail_ms} ms; the paper promises <2 s"
    );

    // Corroborate the bound end-to-end from the client records: every
    // put that straddled the failure committed on its first retry — the
    // first probe after the window found the partition writable again.
    // A window ≥ the 2 s retry period would force a second retry.
    let put_records: Vec<(Time, Time, u32)> = c
        .clients
        .iter()
        .flat_map(|&cl| c.sim.app::<ClientApp>(cl).records.iter())
        .filter(|r| r.is_put && r.ok())
        .map(|r| (r.start, r.end, r.attempts))
        .collect();
    assert!(
        put_records.len() > 100,
        "too few committed puts ({}) to measure the window",
        put_records.len()
    );
    let straddlers: Vec<u32> = put_records
        .iter()
        .filter(|&&(start, end, _)| start <= healed && end >= crash)
        .map(|&(_, _, attempts)| attempts)
        .collect();
    assert!(
        straddlers.iter().any(|&a| a > 1),
        "no put was blocked by the failure; the workload cannot corroborate the window"
    );
    assert!(
        straddlers.iter().all(|&a| a <= 2),
        "a put straddling the failure needed {} attempts — the partition \
         was still unavailable a full retry period after the crash",
        straddlers.iter().max().unwrap()
    );
    assert!(
        !c.server(victim).store().is_empty(),
        "the rejoined node never drained its missed objects"
    );
    eprintln!(
        "put-unavailability window across the t={FAIL_AT_S}s failure: {unavail_ms} ms \
         (paper: <2s); victim holds {} objects after its t={REJOIN_AT_S}s rejoin.",
        c.server(victim).store().len()
    );
}

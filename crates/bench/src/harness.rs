//! Statistics, CSV output, and CLI-argument plumbing shared by the
//! figure binaries.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use nice_sim::Time;

/// Latency statistics over a set of operation records.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Sample count.
    pub n: usize,
    /// Mean, in microseconds.
    pub mean_us: f64,
    /// Standard deviation, in microseconds.
    pub std_us: f64,
    /// Minimum, in microseconds.
    pub min_us: f64,
    /// Maximum, in microseconds.
    pub max_us: f64,
}

impl Stats {
    /// Compute stats from latencies.
    pub fn of(latencies: &[Time]) -> Stats {
        if latencies.is_empty() {
            return Stats::default();
        }
        let us: Vec<f64> = latencies.iter().map(|t| t.as_ns() as f64 / 1e3).collect();
        let n = us.len();
        let mean = us.iter().sum::<f64>() / n as f64;
        let var = us.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        Stats {
            n,
            mean_us: mean,
            std_us: var.sqrt(),
            min_us: us.iter().copied().fold(f64::INFINITY, f64::min),
            max_us: us.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// The `p`-th percentile (0..=100) of latencies.
pub fn percentile(latencies: &[Time], p: f64) -> Time {
    if latencies.is_empty() {
        return Time::ZERO;
    }
    let mut v: Vec<Time> = latencies.to_vec();
    v.sort();
    let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[idx.min(v.len() - 1)]
}

/// Writes a CSV both to stdout and to `bench_results/<name>.csv`.
pub struct CsvOut {
    file: Option<fs::File>,
}

impl CsvOut {
    /// Open `bench_results/<name>.csv` (best effort) and announce the
    /// experiment on stdout.
    pub fn new(name: &str, title: &str) -> CsvOut {
        println!("# {title}");
        let dir = PathBuf::from("bench_results");
        let file = fs::create_dir_all(&dir)
            .ok()
            .and_then(|()| fs::File::create(dir.join(format!("{name}.csv"))).ok());
        CsvOut { file }
    }

    /// Emit one CSV row.
    pub fn row(&mut self, cols: &[String]) {
        let line = cols.join(",");
        println!("{line}");
        if let Some(f) = self.file.as_mut() {
            let _ = writeln!(f, "{line}");
        }
    }

    /// Emit a header row.
    pub fn header(&mut self, cols: &[&str]) {
        self.row(
            &cols
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>(),
        );
    }
}

/// Tiny CLI parsing: `--quick` shrinks op counts for smoke runs,
/// `--ops N` overrides the op count, `--seed N` the seed.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    /// Operations per data point (paper default differs per figure).
    pub ops: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Quick mode active?
    pub quick: bool,
}

impl ArgSpec {
    /// Parse `std::env::args`, defaulting to `default_ops` operations.
    /// `--quick` divides the default by `quick_div` (min 10).
    pub fn parse(default_ops: usize, quick_div: usize) -> ArgSpec {
        let args: Vec<String> = std::env::args().collect();
        let mut spec = ArgSpec {
            ops: default_ops,
            seed: 42,
            quick: false,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    spec.quick = true;
                    spec.ops = (default_ops / quick_div).max(10);
                }
                "--ops" => {
                    i += 1;
                    spec.ops = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(spec.ops);
                }
                "--seed" => {
                    i += 1;
                    spec.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(spec.seed);
                }
                other => {
                    eprintln!("ignoring unknown argument {other}");
                }
            }
            i += 1;
        }
        spec
    }
}

/// Run one simulation per input on its own OS thread (each config builds
/// an independent world, so this is embarrassingly parallel) and return
/// results in input order.
pub fn par_map<I: Send, T: Send>(inputs: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T> {
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = inputs.into_iter().map(|i| s.spawn(move || f(i))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    })
}

/// Human-readable object-size label (the paper's x-axis ticks).
pub fn size_label(bytes: u32) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1024 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let lats = vec![Time::from_us(10), Time::from_us(20), Time::from_us(30)];
        let s = Stats::of(&lats);
        assert_eq!(s.n, 3);
        assert!((s.mean_us - 20.0).abs() < 1e-9);
        assert!((s.min_us - 10.0).abs() < 1e-9);
        assert!((s.max_us - 30.0).abs() < 1e-9);
        assert!(s.std_us > 8.0 && s.std_us < 9.0);
    }

    #[test]
    fn stats_empty() {
        let s = Stats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn percentile_ordering() {
        let lats: Vec<Time> = (1..=100).map(Time::from_us).collect();
        assert_eq!(percentile(&lats, 0.0), Time::from_us(1));
        assert_eq!(percentile(&lats, 100.0), Time::from_us(100));
        let p50 = percentile(&lats, 50.0);
        assert!(p50 >= Time::from_us(49) && p50 <= Time::from_us(52));
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(4), "4B");
        assert_eq!(size_label(1024), "1KB");
        assert_eq!(size_label(1 << 20), "1MB");
    }
}

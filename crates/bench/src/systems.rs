//! Drivers that run one experiment configuration on either system and
//! collect the measurements every figure needs.

use nice_kv::{ClientOp, ClusterCfg, MetricsRegistry, NiceCluster, PutMode};
use nice_noob::{Access, NoobCluster, NoobClusterCfg, NoobMode};
use nice_sim::{FaultPlan, FaultStats, HostStats, Time};

/// Which system (and configuration) an experiment runs on. Labels match
/// the paper's legends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// NICEKV (2PC consistency; `lb` = in-network get load balancing).
    Nice {
        /// Load balancing on?
        lb: bool,
    },
    /// NICEKV with quorum (any-k) replication (§6.3).
    NiceQuorum {
        /// Write-set size.
        k: usize,
    },
    /// The NOOB baseline in one of its configurations.
    Noob {
        /// Access mechanism.
        access: Access,
        /// Replication/consistency mode.
        mode: NoobMode,
        /// Client/gateway-side get balancing.
        lb_gets: bool,
    },
}

impl System {
    /// The paper's name for this configuration.
    pub fn label(&self) -> String {
        match self {
            System::Nice { .. } => "NICE".into(),
            System::NiceQuorum { .. } => "NICE-quorum".into(),
            System::Noob { access, mode, .. } => {
                let a = match access {
                    Access::Rog => "ROG",
                    Access::Rag => "RAG",
                    Access::Rac => "RAC",
                };
                let m = match mode {
                    NoobMode::PrimaryOnly => "primary",
                    NoobMode::TwoPc => "2pc",
                    NoobMode::Quorum { .. } => "quorum",
                    NoobMode::Chain => "chain",
                };
                format!("NOOB+{a}-{m}")
            }
        }
    }
}

/// One experiment run specification.
#[derive(Clone)]
pub struct RunSpec {
    /// System under test.
    pub system: System,
    /// Storage node count (the paper uses 15).
    pub storage_nodes: usize,
    /// Replication level.
    pub replication: usize,
    /// Per-client op lists.
    pub client_ops: Vec<Vec<ClientOp>>,
    /// Records to skip per client when computing latency (preload ops).
    pub skip: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Give up after this much simulated time.
    pub deadline: Time,
    /// Throttle these server indices to this rate at t=0.
    pub throttled: Vec<(usize, u64)>,
    /// Clients retry NotFound gets (hot-object benchmarks).
    pub retry_not_found: bool,
    /// Deterministic fault plan (loss/dup/delay/partitions/outages)
    /// applied identically to either system.
    pub fault_plan: Option<FaultPlan>,
}

impl RunSpec {
    /// A run of `system` with the paper's 15-node deployment.
    pub fn new(system: System, replication: usize, client_ops: Vec<Vec<ClientOp>>) -> RunSpec {
        RunSpec {
            system,
            storage_nodes: 15,
            replication,
            client_ops,
            skip: 0,
            seed: 42,
            deadline: Time::from_secs(600),
            throttled: Vec::new(),
            retry_not_found: false,
            fault_plan: None,
        }
    }

    /// The shared layered config this spec describes (system-specific
    /// knobs are layered on top by `nice_cluster` / `noob_cluster`).
    fn cluster_cfg(&self) -> ClusterCfg {
        let mut cfg = ClusterCfg::new(
            self.storage_nodes,
            self.replication,
            self.client_ops.clone(),
        );
        cfg.spec.seed = self.seed;
        cfg.spec.retry_not_found = self.retry_not_found;
        cfg.host.fault_plan = self.fault_plan.clone();
        cfg
    }
}

/// What one run produced.
pub struct ExpResult {
    /// Successful put latencies (after `skip`).
    pub put_lat: Vec<Time>,
    /// Successful get latencies (after `skip`).
    pub get_lat: Vec<Time>,
    /// Failed operations (after `skip`).
    pub failures: usize,
    /// Total wire bytes over all links.
    pub total_link_bytes: u64,
    /// Per-server NIC stats (index = node index).
    pub server_stats: Vec<HostStats>,
    /// Per-server gets served from the local store.
    pub server_gets: Vec<u64>,
    /// When the first client started issuing ops.
    pub start: Time,
    /// When the last client finished.
    pub finish: Time,
    /// All measured ops completed?
    pub done: bool,
    /// Injector counters when the spec carried a fault plan.
    pub fault: Option<FaultStats>,
    /// Cluster-wide telemetry snapshot (merged server + client
    /// registries), harvested after the run.
    pub metrics: MetricsRegistry,
}

impl ExpResult {
    /// Aggregate throughput over the measured window, in ops/sec.
    pub fn throughput(&self) -> f64 {
        let ops = (self.put_lat.len() + self.get_lat.len()) as f64;
        let secs = (self.finish.saturating_sub(self.start)).as_secs_f64();
        if secs > 0.0 {
            ops / secs
        } else {
            0.0
        }
    }
}

/// Build a NICE cluster for a spec (callers may inspect the ring before
/// running, e.g. to pin keys).
pub fn nice_cluster(spec: &RunSpec) -> NiceCluster {
    let (put_mode, lb) = match spec.system {
        System::Nice { lb } => (PutMode::TwoPc, lb),
        System::NiceQuorum { k } => (PutMode::Quorum { k }, false),
        System::Noob { .. } => panic!("use noob_cluster for NOOB systems"),
    };
    let mut cfg = spec.cluster_cfg();
    cfg.kv.put_mode = put_mode;
    cfg.kv.load_balancing = lb;
    NiceCluster::build(cfg)
}

/// Build a NOOB cluster for a spec.
pub fn noob_cluster(spec: &RunSpec) -> NoobCluster {
    let System::Noob {
        access,
        mode,
        lb_gets,
    } = spec.system
    else {
        panic!("use nice_cluster for NICE systems");
    };
    let mut cfg = NoobClusterCfg::from_nice(&spec.cluster_cfg(), access, mode);
    cfg.lb_gets = lb_gets;
    NoobCluster::build(cfg)
}

fn collect_lat(
    records: &[nice_kv::OpRecord],
    skip: usize,
    puts: &mut Vec<Time>,
    gets: &mut Vec<Time>,
    failures: &mut usize,
) {
    for r in records.iter().skip(skip) {
        if !r.ok() {
            *failures += 1;
            continue;
        }
        let lat = r.end - r.start;
        if r.is_put {
            puts.push(lat);
        } else {
            gets.push(lat);
        }
    }
}

/// Run a spec on the NICE system.
pub fn run_nice(spec: &RunSpec) -> ExpResult {
    let mut c = nice_cluster(spec);
    for &(idx, bps) in &spec.throttled {
        c.sim.schedule_link_rate(Time::ZERO, c.servers[idx], bps);
    }
    let done = c.run_until_done(spec.deadline);
    let mut put_lat = Vec::new();
    let mut get_lat = Vec::new();
    let mut failures = 0;
    let mut start = Time::MAX;
    for i in 0..c.clients.len() {
        let recs = &c.client(i).records;
        if let Some(r) = recs.get(spec.skip) {
            start = start.min(r.start);
        }
        collect_lat(recs, spec.skip, &mut put_lat, &mut get_lat, &mut failures);
    }
    let finish = c.finish_time().unwrap_or(c.sim.now());
    ExpResult {
        put_lat,
        get_lat,
        failures,
        total_link_bytes: c.sim.total_link_bytes(),
        server_stats: c.servers.iter().map(|&h| c.sim.host_stats(h)).collect(),
        server_gets: (0..c.servers.len())
            .map(|i| c.server(i).metrics().counter("engine.gets_served"))
            .collect(),
        start: if start == Time::MAX {
            Time::ZERO
        } else {
            start
        },
        finish,
        done,
        fault: c.sim.fault_stats(),
        metrics: c.metrics(),
    }
}

/// Run a spec on the NOOB system.
pub fn run_noob(spec: &RunSpec) -> ExpResult {
    let mut c = noob_cluster(spec);
    for &(idx, bps) in &spec.throttled {
        c.sim.schedule_link_rate(Time::ZERO, c.servers[idx], bps);
    }
    let done = c.run_until_done(spec.deadline);
    let mut put_lat = Vec::new();
    let mut get_lat = Vec::new();
    let mut failures = 0;
    let mut start = Time::MAX;
    for i in 0..c.clients.len() {
        let recs = &c.client(i).records;
        if let Some(r) = recs.get(spec.skip) {
            start = start.min(r.start);
        }
        collect_lat(recs, spec.skip, &mut put_lat, &mut get_lat, &mut failures);
    }
    let finish = c.finish_time().unwrap_or(c.sim.now());
    ExpResult {
        put_lat,
        get_lat,
        failures,
        total_link_bytes: c.sim.total_link_bytes(),
        server_stats: c.servers.iter().map(|&h| c.sim.host_stats(h)).collect(),
        server_gets: (0..c.servers.len())
            .map(|i| c.server(i).metrics().counter("engine.gets_served"))
            .collect(),
        start: if start == Time::MAX {
            Time::ZERO
        } else {
            start
        },
        finish,
        done,
        fault: c.sim.fault_stats(),
        metrics: c.metrics(),
    }
}

/// Run a spec on whichever system it names.
pub fn run(spec: &RunSpec) -> ExpResult {
    match spec.system {
        System::Noob { .. } => run_noob(spec),
        _ => run_nice(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_kv::Value;

    fn small_ops(n: usize) -> Vec<ClientOp> {
        let mut ops = Vec::new();
        for i in 0..n {
            ops.push(ClientOp::Put {
                key: format!("k{i}"),
                value: Value::synthetic(128),
            });
            ops.push(ClientOp::Get {
                key: format!("k{i}"),
            });
        }
        ops
    }

    #[test]
    fn nice_run_collects_latencies() {
        let spec = RunSpec::new(System::Nice { lb: true }, 3, vec![small_ops(5)]);
        let r = run(&spec);
        assert!(r.done);
        assert_eq!(r.put_lat.len(), 5);
        assert_eq!(r.get_lat.len(), 5);
        assert_eq!(r.failures, 0);
        assert!(r.total_link_bytes > 0);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn noob_run_collects_latencies() {
        let spec = RunSpec::new(
            System::Noob {
                access: Access::Rac,
                mode: NoobMode::PrimaryOnly,
                lb_gets: false,
            },
            3,
            vec![small_ops(5)],
        );
        let r = run(&spec);
        assert!(r.done);
        assert_eq!(r.put_lat.len(), 5);
        assert_eq!(r.get_lat.len(), 5);
    }

    #[test]
    fn skip_excludes_preload() {
        let mut spec = RunSpec::new(System::Nice { lb: true }, 3, vec![small_ops(5)]);
        spec.skip = 2;
        let r = run(&spec);
        assert_eq!(r.put_lat.len() + r.get_lat.len(), 8);
    }

    #[test]
    fn labels() {
        assert_eq!(System::Nice { lb: true }.label(), "NICE");
        assert_eq!(
            System::Noob {
                access: Access::Rog,
                mode: NoobMode::PrimaryOnly,
                lb_gets: false
            }
            .label(),
            "NOOB+ROG-primary"
        );
        assert_eq!(System::NiceQuorum { k: 3 }.label(), "NICE-quorum");
    }
}

//! # nice-bench — harnesses that regenerate every table and figure of the
//! NICE (HPDC '17) evaluation
//!
//! One binary per experiment (`fig04_routing` … `fig12_ycsb`,
//! `switch_scalability`, `membership_scalability`); each prints the CSV
//! series the paper plots and writes a copy under `bench_results/`.
//! Micro-benches live in `benches/` on the in-tree [`timing`] harness.
//!
//! Shared here: experiment configuration, cluster drivers for the NICE and
//! NOOB systems, latency statistics, CSV output, and the micro-benchmark
//! timing harness.

#![warn(missing_docs)]

pub mod harness;
pub mod systems;
pub mod timing;

pub use harness::size_label;
pub use harness::{ArgSpec, CsvOut, Stats};
pub use systems::{run, run_nice, run_noob, ExpResult, RunSpec, System};

//! End-to-end transport tests over a flow switch with real routing rules.

use crate::*;
use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowSwitch, FlowTable, GroupBucket, GroupId};
use nice_sim::{
    App, ChannelCfg, Ctx, HostCfg, HostId, Ipv4, Mac, Packet, Simulation, SwitchCfg, Time,
};
use std::cell::RefCell;
use std::rc::Rc;

/// What a test app should send on start.
#[derive(Clone)]
enum Plan {
    Udp {
        dst: Ipv4,
        size: u32,
    },
    Rudp {
        dst: Ipv4,
        size: u32,
    },
    Tcp {
        dst: Ipv4,
        size: u32,
    },
    Mcast {
        group: Ipv4,
        size: u32,
        expected: usize,
    },
    AnyK {
        group: Ipv4,
        size: u32,
        expected: usize,
        k: usize,
    },
}

const PORT: u16 = 9000;

struct TestApp {
    tp: Transport,
    plan: Vec<Plan>,
    delivered: Vec<(Ipv4, u32, Carrier, Time)>,
    sent: Vec<(MsgToken, Vec<Ipv4>, Time)>,
    failed: Vec<MsgToken>,
}

impl TestApp {
    fn new(plan: Vec<Plan>) -> TestApp {
        TestApp {
            tp: Transport::new(PORT),
            plan,
            delivered: vec![],
            sent: vec![],
            failed: vec![],
        }
    }

    fn handle(&mut self, evs: Vec<TransportEvent>, ctx: &mut Ctx) {
        for ev in evs {
            match ev {
                TransportEvent::Delivered {
                    from, carrier, msg, ..
                } => {
                    self.delivered.push((from.0, msg.size, carrier, ctx.now()));
                }
                TransportEvent::Sent { token, acked_by } => {
                    self.sent.push((token, acked_by, ctx.now()));
                }
                TransportEvent::Failed { token } => self.failed.push(token),
            }
        }
    }
}

impl App for TestApp {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for p in self.plan.clone() {
            match p {
                Plan::Udp { dst, size } => self.tp.udp_send(ctx, dst, PORT, Msg::new(0u64, size)),
                Plan::Rudp { dst, size } => {
                    self.tp.rudp_send(ctx, dst, PORT, Msg::new(0u64, size));
                }
                Plan::Tcp { dst, size } => {
                    self.tp.tcp_send(ctx, dst, PORT, Msg::new(0u64, size));
                }
                Plan::Mcast {
                    group,
                    size,
                    expected,
                } => {
                    self.tp
                        .mcast_send(ctx, group, PORT, Msg::new(0u64, size), expected);
                }
                Plan::AnyK {
                    group,
                    size,
                    expected,
                    k,
                } => {
                    self.tp
                        .anyk_send(ctx, group, PORT, Msg::new(0u64, size), expected, k);
                }
            }
        }
    }
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let evs = self.tp.on_packet(&pkt, ctx);
        self.handle(evs, ctx);
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        let evs = self.tp.on_timer(token, ctx);
        self.handle(evs, ctx);
    }
    fn on_crash(&mut self) {
        self.tp.on_crash();
    }
}

/// A star with a flow switch, pre-installed physical rules for every
/// host, and (optionally) one multicast group covering `group_members`.
struct World {
    sim: Simulation,
    hosts: Vec<HostId>,
    ips: Vec<Ipv4>,
    table: Rc<RefCell<FlowTable>>,
}

const GROUP_ADDR: Ipv4 = Ipv4::new(10, 11, 0, 1);

fn build(plans: Vec<Vec<Plan>>, group_members: &[usize], link_overrides: &[(usize, u64)]) -> World {
    let mut sim = Simulation::new(99);
    let table = Rc::new(RefCell::new(FlowTable::new()));
    let sw = sim.add_switch(
        Box::new(FlowSwitch::new(Rc::clone(&table))),
        SwitchCfg::default(),
    );
    let mut hosts = vec![];
    let mut ips = vec![];
    for (i, plan) in plans.into_iter().enumerate() {
        let ip = Ipv4::new(10, 0, 0, 1 + i as u8);
        let mac = Mac(1 + i as u64);
        let h = sim.add_host(Box::new(TestApp::new(plan)), HostCfg::new(ip, mac));
        let rate = link_overrides
            .iter()
            .find(|&&(idx, _)| idx == i)
            .map_or(1_000_000_000, |&(_, bps)| bps);
        let cfg = ChannelCfg::with_rate(rate);
        let port = sim.connect_asym(h, sw, cfg.host_uplink(), cfg);
        table.borrow_mut().install(
            FlowRule::new(
                prio::PHYS,
                FlowMatch::any().dst_ip(ip),
                vec![Action::SetMacDst(mac), Action::Output(port)],
            ),
            Time::ZERO,
        );
        hosts.push(h);
        ips.push(ip);
    }
    if !group_members.is_empty() {
        let buckets = group_members
            .iter()
            .map(|&i| GroupBucket::rewrite_to(ips[i], Mac(1 + i as u64), nice_sim::Port(i as u16)))
            .collect();
        let g = GroupId(1);
        table.borrow_mut().set_group(g, buckets, Time::ZERO);
        table.borrow_mut().install(
            FlowRule::new(
                prio::VRING,
                FlowMatch::any().dst_ip(GROUP_ADDR),
                vec![Action::Group(g)],
            ),
            Time::ZERO,
        );
    }
    World {
        sim,
        hosts,
        ips,
        table,
    }
}

#[test]
fn udp_datagram_delivery() {
    let mut w = build(
        vec![
            vec![Plan::Udp {
                dst: Ipv4::new(10, 0, 0, 2),
                size: 100,
            }],
            vec![],
        ],
        &[],
        &[],
    );
    w.sim.run_until(Time::from_ms(5));
    let b = w.sim.app::<TestApp>(w.hosts[1]);
    assert_eq!(b.delivered.len(), 1);
    assert_eq!(b.delivered[0].1, 100);
    assert_eq!(b.delivered[0].2, Carrier::Datagram);
}

#[test]
fn rudp_small_message_roundtrip() {
    let mut w = build(
        vec![
            vec![Plan::Rudp {
                dst: Ipv4::new(10, 0, 0, 2),
                size: 500,
            }],
            vec![],
        ],
        &[],
        &[],
    );
    w.sim.run_until(Time::from_ms(50));
    let a = w.sim.app::<TestApp>(w.hosts[0]);
    assert_eq!(a.sent.len(), 1, "sender saw completion");
    assert_eq!(a.sent[0].1, vec![w.ips[1]]);
    let b = w.sim.app::<TestApp>(w.hosts[1]);
    assert_eq!(b.delivered.len(), 1);
    assert_eq!(b.delivered[0].2, Carrier::ReliableUdp);
}

#[test]
fn rudp_one_megabyte_at_line_rate() {
    let size = 1 << 20;
    let mut w = build(
        vec![
            vec![Plan::Rudp {
                dst: Ipv4::new(10, 0, 0, 2),
                size,
            }],
            vec![],
        ],
        &[],
        &[],
    );
    w.sim.run_until(Time::from_ms(100));
    let b = w.sim.app::<TestApp>(w.hosts[1]);
    assert_eq!(b.delivered.len(), 1);
    let t = b.delivered[0].3;
    // 1 MiB + per-chunk overhead at 1 Gbps is ~8.8 ms; allow for acks
    // and CPU but fail if windowing throttles us below ~half line rate.
    assert!(t > Time::from_ms(8), "{t} too fast to be real");
    assert!(t < Time::from_ms(20), "{t} too slow: window is throttling");
}

#[test]
fn tcp_handshake_then_data() {
    let mut w = build(
        vec![
            vec![
                Plan::Tcp {
                    dst: Ipv4::new(10, 0, 0, 2),
                    size: 2000,
                },
                Plan::Tcp {
                    dst: Ipv4::new(10, 0, 0, 2),
                    size: 3000,
                },
            ],
            vec![],
        ],
        &[],
        &[],
    );
    w.sim.run_until(Time::from_ms(50));
    let b = w.sim.app::<TestApp>(w.hosts[1]);
    assert_eq!(b.delivered.len(), 2);
    assert_eq!(b.delivered.iter().map(|d| d.1).sum::<u32>(), 5000);
    assert!(b.delivered.iter().all(|d| d.2 == Carrier::Tcp));
    let a = w.sim.app::<TestApp>(w.hosts[0]);
    assert_eq!(a.sent.len(), 2);
    assert!(a.failed.is_empty());
}

#[test]
fn tcp_to_dead_host_fails() {
    let mut w = build(
        vec![
            vec![Plan::Tcp {
                dst: Ipv4::new(10, 0, 0, 2),
                size: 100,
            }],
            vec![],
        ],
        &[],
        &[],
    );
    w.sim.schedule_crash(Time::ZERO, w.hosts[1]);
    w.sim.run_until(Time::from_secs(2));
    let a = w.sim.app::<TestApp>(w.hosts[0]);
    assert!(a.sent.is_empty());
    assert_eq!(a.failed.len(), 1, "SYN retries must exhaust");
}

#[test]
fn multicast_replicates_once_per_link() {
    // sender (0) multicasts 1 MiB to receivers 1,2,3 via the group.
    let size = 1 << 20;
    let mut w = build(
        vec![
            vec![Plan::Mcast {
                group: GROUP_ADDR,
                size,
                expected: 3,
            }],
            vec![],
            vec![],
            vec![],
        ],
        &[1, 2, 3],
        &[],
    );
    w.sim.run_until(Time::from_ms(200));
    for i in 1..4 {
        let r = w.sim.app::<TestApp>(w.hosts[i]);
        assert_eq!(r.delivered.len(), 1, "receiver {i}");
    }
    let a = w.sim.app::<TestApp>(w.hosts[0]);
    assert_eq!(a.sent.len(), 1);
    let mut acked = a.sent[0].1.clone();
    acked.sort();
    assert_eq!(acked, vec![w.ips[1], w.ips[2], w.ips[3]]);
    // The sender's uplink carried the data once (the switch replicated):
    // sender sent ~1x the wire bytes, not 3x.
    let sent = w.sim.host_stats(w.hosts[0]).bytes_sent;
    let one_copy = Transport::wire_bytes(size, false);
    assert!(
        sent < one_copy + one_copy / 4,
        "sender sent {sent}, expected ~{one_copy}"
    );
}

#[test]
fn anyk_completes_at_kth_receiver_and_serves_stragglers() {
    let size = 1 << 20;
    // receiver 3 is throttled to 50 Mbps (the Fig. 8 setup).
    let mut w = build(
        vec![
            vec![Plan::AnyK {
                group: GROUP_ADDR,
                size,
                expected: 3,
                k: 2,
            }],
            vec![],
            vec![],
            vec![],
        ],
        &[1, 2, 3],
        &[(3, 50_000_000)],
    );
    w.sim.run_until(Time::from_secs(3));
    let a = w.sim.app::<TestApp>(w.hosts[0]);
    assert_eq!(a.sent.len(), 1);
    let done_at = a.sent[0].2;
    // k=2 fast receivers finish near line rate; must NOT wait for the
    // 50 Mbps straggler (which alone needs ~170 ms).
    assert!(
        done_at < Time::from_ms(40),
        "any-k waited for the straggler: {done_at}"
    );
    assert_eq!(a.sent[0].1.len(), 2);
    // the straggler is still served to completion afterwards
    let slow = w.sim.app::<TestApp>(w.hosts[3]);
    assert_eq!(slow.delivered.len(), 1, "straggler served after return");
    assert!(slow.delivered[0].3 > done_at);
}

#[test]
fn drops_are_repaired_by_nacks() {
    // Tiny switch egress queue to the receiver forces drops; NACK
    // repair must still complete the transfer exactly once.
    let size = 512 * 1024;
    let mut sim = Simulation::new(7);
    let table = Rc::new(RefCell::new(FlowTable::new()));
    let sw = sim.add_switch(
        Box::new(FlowSwitch::new(Rc::clone(&table))),
        SwitchCfg::default(),
    );
    let add = |sim: &mut Simulation, i: usize, plan: Vec<Plan>, down_q: u64| {
        let ip = Ipv4::new(10, 0, 0, 1 + i as u8);
        let mac = Mac(1 + i as u64);
        let h = sim.add_host(Box::new(TestApp::new(plan)), HostCfg::new(ip, mac));
        let mut down = ChannelCfg::gigabit();
        down.queue_bytes = down_q;
        let port = sim.connect_asym(h, sw, ChannelCfg::gigabit().host_uplink(), down);
        table.borrow_mut().install(
            FlowRule::new(
                prio::PHYS,
                FlowMatch::any().dst_ip(ip),
                vec![Action::SetMacDst(mac), Action::Output(port)],
            ),
            Time::ZERO,
        );
        (h, ip)
    };
    let (a, _) = add(
        &mut sim,
        0,
        vec![Plan::Rudp {
            dst: Ipv4::new(10, 0, 0, 2),
            size,
        }],
        1 << 20,
    );
    // Receiver drains at 100 Mbps behind a 16 KiB egress queue: the
    // initial 64-chunk burst (~92 KiB) overflows it.
    let (b, _) = add(&mut sim, 1, vec![], 16 * 1024);
    sim.schedule_link_rate(Time::ZERO, b, 100_000_000);
    sim.run_until(Time::from_secs(2));
    assert!(
        sim.total_link_drops() > 0,
        "test should actually drop packets"
    );
    let recv = sim.app::<TestApp>(b);
    assert_eq!(recv.delivered.len(), 1, "delivered despite drops");
    let send = sim.app::<TestApp>(a);
    assert_eq!(send.sent.len(), 1);
}

#[test]
fn simultaneous_open_flushes_both_sides() {
    // Both hosts tcp_send to each other at the same instant: the SYNs
    // cross on the wire and each side sees an incoming SYN while in
    // SynSent. Both messages must still be delivered (simultaneous open).
    let mut w = build(
        vec![
            vec![Plan::Tcp {
                dst: Ipv4::new(10, 0, 0, 2),
                size: 700,
            }],
            vec![Plan::Tcp {
                dst: Ipv4::new(10, 0, 0, 1),
                size: 900,
            }],
        ],
        &[],
        &[],
    );
    w.sim.run_until(Time::from_ms(100));
    let a = w.sim.app::<TestApp>(w.hosts[0]);
    let b = w.sim.app::<TestApp>(w.hosts[1]);
    assert_eq!(a.delivered.len(), 1, "a got b's message");
    assert_eq!(a.delivered[0].1, 900);
    assert_eq!(b.delivered.len(), 1, "b got a's message");
    assert_eq!(b.delivered[0].1, 700);
    assert_eq!(a.sent.len(), 1);
    assert_eq!(b.sent.len(), 1);
}

#[test]
fn zero_byte_message_works() {
    let mut w = build(
        vec![
            vec![Plan::Rudp {
                dst: Ipv4::new(10, 0, 0, 2),
                size: 0,
            }],
            vec![],
        ],
        &[],
        &[],
    );
    w.sim.run_until(Time::from_ms(10));
    let b = w.sim.app::<TestApp>(w.hosts[1]);
    assert_eq!(b.delivered.len(), 1);
    assert_eq!(b.delivered[0].1, 0);
}

#[test]
fn concurrent_transfers_share_fairly() {
    // Host 0 sends 1 MiB to hosts 1 and 2 simultaneously (unicast
    // each): both must complete in ~2x the single-transfer time.
    let size = 1 << 20;
    let mut w = build(
        vec![
            vec![
                Plan::Rudp {
                    dst: Ipv4::new(10, 0, 0, 2),
                    size,
                },
                Plan::Rudp {
                    dst: Ipv4::new(10, 0, 0, 3),
                    size,
                },
            ],
            vec![],
            vec![],
        ],
        &[],
        &[],
    );
    w.sim.run_until(Time::from_ms(100));
    for i in [1, 2] {
        let r = w.sim.app::<TestApp>(w.hosts[i]);
        assert_eq!(r.delivered.len(), 1, "receiver {i}");
        let t = r.delivered[0].3;
        assert!(
            t > Time::from_ms(14) && t < Time::from_ms(30),
            "receiver {i} at {t}"
        );
    }
}

#[test]
fn group_version_bump_mid_transfer_is_invisible() {
    // Replacing the group with identical membership mid-transfer must not
    // disturb the stream.
    let size = 1 << 20;
    let mut w = build(
        vec![
            vec![Plan::Mcast {
                group: GROUP_ADDR,
                size,
                expected: 2,
            }],
            vec![],
            vec![],
        ],
        &[1, 2],
        &[],
    );
    let buckets = vec![
        GroupBucket::rewrite_to(w.ips[1], Mac(2), nice_sim::Port(1)),
        GroupBucket::rewrite_to(w.ips[2], Mac(3), nice_sim::Port(2)),
    ];
    w.table
        .borrow_mut()
        .set_group(GroupId(1), buckets, Time::from_ms(2));
    w.sim.run_until(Time::from_ms(100));
    for i in [1, 2] {
        assert_eq!(w.sim.app::<TestApp>(w.hosts[i]).delivered.len(), 1);
    }
}

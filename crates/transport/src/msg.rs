//! Transport-level message types and wire payloads.

use std::any::Any;
use std::rc::Rc;

use node_rt::Ipv4;

/// An application message: an opaque value plus its logical size in bytes
/// (the size drives chunking, serialization delay, and byte accounting).
#[derive(Clone)]
pub struct Msg {
    /// The application value (delivered intact to the receiver).
    pub data: Rc<dyn Any>,
    /// Logical size in bytes.
    pub size: u32,
}

impl Msg {
    /// Wrap `data` with an explicit logical size.
    pub fn new<T: Any>(data: T, size: u32) -> Msg {
        Msg {
            data: Rc::new(data),
            size,
        }
    }

    /// Downcast the payload.
    pub fn downcast<T: Any>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for Msg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Msg({}B)", self.size)
    }
}

/// Token identifying an in-flight reliable send on the sending side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgToken(pub u64);

/// How a reliable message was carried (receivers may care whether a
/// message arrived via the multicast ring or a direct stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carrier {
    /// Unreliable single datagram.
    Datagram,
    /// Reliable UDP (unicast or switch multicast), the §5 data path.
    ReliableUdp,
    /// TCP-like stream.
    Tcp,
}

/// Events surfaced to the application by [`crate::Transport`].
#[derive(Debug)]
pub enum TransportEvent {
    /// A complete message arrived.
    Delivered {
        /// Sender's physical address and transport port.
        from: (Ipv4, u16),
        /// Destination IP as seen on the wire at the receiver (after any
        /// switch rewrite this is the receiver's physical address; it is
        /// the *original* vnode address only if no rewrite rule matched).
        dst_ip: Ipv4,
        /// How it arrived.
        carrier: Carrier,
        /// The message.
        msg: Msg,
    },
    /// A reliable send completed: the required receivers (all, or the
    /// quorum k) hold the entire message.
    Sent {
        /// The send this resolves.
        token: MsgToken,
        /// Receivers known to have completed, in completion order.
        acked_by: Vec<Ipv4>,
    },
    /// A reliable send exhausted its retries.
    Failed {
        /// The send this resolves.
        token: MsgToken,
    },
}

/// Wire payloads the transport exchanges. These ride inside
/// `node_rt::Packet::payload`.
#[derive(Debug, Clone)]
pub enum TpPayload {
    /// One MTU-sized chunk of a reliable message. Every chunk carries the
    /// `Rc` of the app data (cheap clone); receivers deliver on assembly.
    Chunk {
        /// Sender's physical address (survives dst rewriting).
        sender: Ipv4,
        /// Sender-unique message id.
        msg_id: u64,
        /// Chunk index.
        seq: u32,
        /// Total number of chunks.
        total: u32,
        /// Logical size of the whole message.
        msg_size: u32,
        /// The application payload.
        data: Rc<dyn Any>,
        /// True if this chunk is a retransmission (repair traffic).
        retx: bool,
    },
    /// Cumulative acknowledgment for a reliable message (flow control).
    Ack {
        /// The message being acknowledged.
        msg_id: u64,
        /// Chunks `0..cum` received contiguously.
        cum: u32,
        /// Receiver holds the complete message.
        complete: bool,
    },
    /// Negative ack: the receiver is missing these chunks (repair is sent
    /// unicast, as in §5: "the client sends the missing packets using a
    /// unicast connection").
    Nack {
        /// The message being repaired.
        msg_id: u64,
        /// Missing chunk indexes (bounded per NACK).
        missing: Vec<u32>,
    },
    /// TCP connection request.
    Syn,
    /// TCP connection accept.
    SynAck,
    /// Unreliable single-datagram app message.
    Datagram {
        /// The application payload.
        data: Rc<dyn Any>,
        /// Logical size.
        size: u32,
    },
}

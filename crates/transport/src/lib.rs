//! # nice-transport — message transports over the NodeIo boundary
//!
//! Implements the transport layer the NICEKV prototype describes in §5:
//! UDP for client requests (so vnode addresses can be rewritten freely and
//! switch multicast works), a TCP-like reliable stream for replies and
//! inter-node traffic, a reliable UDP multicast with cumulative-ACK flow
//! control and unicast NACK repair, and the *reliable any-k multicast*
//! used for quorum replication.
//!
//! The entry point is [`Transport`]: one per application, bound to a local
//! port; see its docs for the send-path menu.

#![warn(missing_docs)]

pub mod msg;
pub mod rudp;
pub mod transport;
pub mod wire;

pub use msg::{Carrier, Msg, MsgToken, TpPayload, TransportEvent};
pub use rudp::{chunk_bytes, num_chunks, RudpCfg};
pub use transport::{TpStats, Transport, TRANSPORT_TICK};
pub use wire::TpCodec;

#[cfg(test)]
mod prop_tests;
#[cfg(test)]
mod tests;

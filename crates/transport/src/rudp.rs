//! The reliable transfer engine shared by every carrier.
//!
//! Implements §5 of the paper ("Replication" / implementation details):
//!
//! * data is divided into chunks of at most one MTU,
//! * cumulative ACKs drive a fixed sender window (flow control),
//! * NACKs report missing chunks, which are repaired over *unicast*,
//! * the quorum variant ("reliable any-k multicasting") advances the
//!   window when any `k` of the recipients acknowledge, returns when any
//!   `k` fully receive the data, and "keeps supporting straggling nodes
//!   until they finish or timeout".
//!
//! The same state machines carry unicast reliable UDP (`expected = 1`),
//! switch-multicast UDP, and the data phase of the TCP-like streams.

use std::collections::BTreeMap;
use std::rc::Rc;

use node_rt::{Ipv4, NodeIo, Packet, Proto, Time, HDR_TCP, HDR_UDP, MTU};

use crate::msg::{Carrier, Msg, MsgToken, TpPayload, TransportEvent};

/// Tuning knobs for the reliable engine. Defaults are calibrated for the
/// simulated 1 Gbps / ~30 µs RTT fabric.
#[derive(Debug, Clone, Copy)]
pub struct RudpCfg {
    /// Sender window, in chunks.
    pub window: u32,
    /// Engine tick period (drives stall detection and NACK scans).
    pub tick: Time,
    /// Receiver NACK period, in ticks: an incomplete message older than
    /// this re-requests its missing chunks.
    pub nack_ticks: u32,
    /// Max missing chunks listed per NACK.
    pub nack_cap: usize,
    /// Sender stall threshold, in ticks, before a probe retransmission.
    pub stall_ticks: u32,
    /// Consecutive stalls before the send fails.
    pub max_stalls: u32,
    /// How long completed state lingers (serving late NACKs / stragglers),
    /// in ticks.
    pub linger_ticks: u32,
}

impl Default for RudpCfg {
    fn default() -> RudpCfg {
        RudpCfg {
            window: 64,
            tick: Time::from_ms(1),
            nack_ticks: 4,
            // Repair pacing: each NACK asks for at most this many chunks,
            // bounding repair injection to ~nack_cap*MTU per nack period
            // (~46 Mbps at the defaults) so straggler repair cannot
            // starve the fast path (Figure 8's any-k experiment).
            nack_cap: 16,
            stall_ticks: 30,
            max_stalls: 40,
            linger_ticks: 4000,
        }
    }
}

/// Number of chunks for a message of `size` bytes (at least one).
#[inline]
pub fn num_chunks(size: u32) -> u32 {
    size.div_ceil(MTU).max(1)
}

/// Payload bytes of chunk `seq` of a `size`-byte message.
#[inline]
pub fn chunk_bytes(size: u32, seq: u32) -> u32 {
    let start = seq * MTU;
    (size.saturating_sub(start)).min(MTU)
}

fn wire(proto: Proto, payload_bytes: u32) -> u32 {
    match proto {
        // rudp frames are only ever UDP or TCP; ARP falls back to the
        // UDP framing rather than panicking in the datapath.
        Proto::Udp | Proto::Arp => HDR_UDP + payload_bytes,
        Proto::Tcp => HDR_TCP + payload_bytes,
    }
}

/// Control-message logical size (ack/nack wire bodies).
const CTRL_BYTES: u32 = 22;

/// An in-flight reliable send.
pub struct SendState {
    /// Sender-unique message id.
    pub msg_id: u64,
    /// The app-facing token.
    pub token: MsgToken,
    /// Destination address (vnode, multicast vnode, or physical).
    pub dst: Ipv4,
    /// Destination transport port.
    pub dst_port: u16,
    /// Carrier protocol (Udp for rudp/multicast, Tcp for streams).
    pub proto: Proto,
    msg: Msg,
    total: u32,
    /// Receivers that must complete before `Sent` fires.
    quorum: usize,
    /// Total receivers expected to exist (window pacing waits for the
    /// slowest of the top-k among these).
    expected: usize,
    cums: BTreeMap<Ipv4, u32>,
    completed: Vec<Ipv4>,
    next: u32,
    done: bool,
    /// Ticks remaining before this state is garbage collected (counts only
    /// once `done`).
    linger_left: u32,
    stall_left: u32,
    stalls: u32,
    last_progress: (usize, u64, u32),
}

/// What a sender-side step produced.
pub enum SendOutcome {
    /// Nothing to report.
    Quiet,
    /// The send completed (quorum reached).
    Sent(Vec<Ipv4>),
    /// The send failed (stalled too long).
    Failed,
}

impl SendState {
    /// Start a reliable send and transmit the initial window.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        cfg: &RudpCfg,
        ctx: &mut dyn NodeIo,
        msg_id: u64,
        token: MsgToken,
        dst: Ipv4,
        dst_port: u16,
        src_port: u16,
        proto: Proto,
        msg: Msg,
        expected: usize,
        quorum: usize,
    ) -> SendState {
        assert!(expected >= 1 && quorum >= 1 && quorum <= expected);
        let total = num_chunks(msg.size);
        let mut s = SendState {
            msg_id,
            token,
            dst,
            dst_port,
            proto,
            msg,
            total,
            quorum,
            expected,
            cums: BTreeMap::new(),
            completed: Vec::new(),
            next: 0,
            done: false,
            linger_left: cfg.linger_ticks,
            stall_left: cfg.stall_ticks,
            stalls: 0,
            last_progress: (0, 0, 0),
        };
        s.pump(cfg, ctx, src_port);
        s
    }

    fn chunk_packet(
        &self,
        seq: u32,
        src_port: u16,
        dst: Ipv4,
        ctx: &dyn NodeIo,
        retx: bool,
    ) -> Packet {
        let body = chunk_bytes(self.msg.size, seq) + CTRL_BYTES;
        let payload = Rc::new(TpPayload::Chunk {
            sender: ctx.ip(),
            msg_id: self.msg_id,
            seq,
            total: self.total,
            msg_size: self.msg.size,
            data: Rc::clone(&self.msg.data),
            retx,
        });
        let mut pkt = match self.proto {
            Proto::Tcp => Packet::tcp(
                ctx.ip(),
                ctx.mac(),
                dst,
                src_port,
                self.dst_port,
                body,
                payload,
            ),
            _ => Packet::udp(
                ctx.ip(),
                ctx.mac(),
                dst,
                src_port,
                self.dst_port,
                body,
                payload,
            ),
        };
        pkt.wire_size = wire(self.proto, body);
        pkt
    }

    /// The window base: the `quorum`-th highest cumulative ack over the
    /// `expected` receivers (unknown receivers count as zero).
    fn window_base(&self) -> u32 {
        if self.cums.len() < self.quorum {
            // Not enough receivers heard from yet; if fewer receivers than
            // expected have appeared, the missing ones pin the base to 0
            // only when they are needed for the quorum.
            return 0;
        }
        let mut cums: Vec<u32> = self.cums.values().copied().collect();
        // Pad with zeros for expected-but-silent receivers.
        cums.resize(self.expected.max(cums.len()), 0);
        cums.sort_unstable_by(|a, b| b.cmp(a));
        // quorum >= 1 and cums.len() >= quorum here (early return above);
        // written panic-free anyway so the whole tick path stays total.
        cums.get(self.quorum.saturating_sub(1))
            .copied()
            .unwrap_or(0)
    }

    /// Transmit as many new chunks as the window allows.
    fn pump(&mut self, cfg: &RudpCfg, ctx: &mut dyn NodeIo, src_port: u16) {
        let limit = self
            .window_base()
            .saturating_add(cfg.window)
            .min(self.total);
        while self.next < limit {
            let pkt = self.chunk_packet(self.next, src_port, self.dst, ctx, false);
            ctx.send(pkt);
            self.next += 1;
        }
    }

    /// Handle a cumulative ack from `from`.
    pub fn on_ack(
        &mut self,
        cfg: &RudpCfg,
        ctx: &mut dyn NodeIo,
        src_port: u16,
        from: Ipv4,
        cum: u32,
    ) -> SendOutcome {
        let e = self.cums.entry(from).or_insert(0);
        if cum > *e {
            *e = cum;
        }
        if cum >= self.total && !self.completed.contains(&from) {
            self.completed.push(from);
        }
        self.pump(cfg, ctx, src_port);
        if !self.done && self.completed.len() >= self.quorum {
            self.done = true;
            return SendOutcome::Sent(self.completed.clone());
        }
        SendOutcome::Quiet
    }

    /// Handle a NACK: repair the listed chunks over unicast to `from`.
    /// Returns how many chunks were retransmitted (telemetry).
    pub fn on_nack(
        &mut self,
        ctx: &mut dyn NodeIo,
        src_port: u16,
        from: Ipv4,
        missing: &[u32],
    ) -> u64 {
        let mut repaired = 0;
        for &seq in missing {
            if seq < self.total {
                let pkt = self.chunk_packet(seq, src_port, from, ctx, true);
                ctx.send(pkt);
                repaired += 1;
            }
        }
        repaired
    }

    /// Everyone expected has completed: state can be dropped immediately.
    pub fn fully_acked(&self) -> bool {
        self.completed.len() >= self.expected
    }

    /// Periodic tick: stall detection, probe retransmission, lingering.
    /// Returns the outcome plus whether the state should be dropped;
    /// bumps `probes` when a stall probe is retransmitted (telemetry).
    pub fn on_tick(
        &mut self,
        cfg: &RudpCfg,
        ctx: &mut dyn NodeIo,
        src_port: u16,
        probes: &mut u64,
    ) -> (SendOutcome, bool) {
        if self.done {
            if self.fully_acked() {
                return (SendOutcome::Quiet, true);
            }
            self.linger_left = self.linger_left.saturating_sub(1);
            return (SendOutcome::Quiet, self.linger_left == 0);
        }
        let progress = (
            self.completed.len(),
            self.cums.values().map(|&c| c as u64).sum::<u64>(),
            self.next,
        );
        if progress != self.last_progress {
            self.last_progress = progress;
            self.stalls = 0;
            self.stall_left = cfg.stall_ticks;
            return (SendOutcome::Quiet, false);
        }
        self.stall_left = self.stall_left.saturating_sub(1);
        if self.stall_left > 0 {
            return (SendOutcome::Quiet, false);
        }
        self.stall_left = cfg.stall_ticks;
        self.stalls += 1;
        if self.stalls > cfg.max_stalls {
            return (SendOutcome::Failed, true);
        }
        // Probe: retransmit the chunk at the window base to the group so
        // silent receivers (or a fully-lost tail) re-engage.
        let probe = self.window_base().min(self.total - 1);
        let pkt = self.chunk_packet(probe, src_port, self.dst, ctx, true);
        ctx.send(pkt);
        *probes += 1;
        (SendOutcome::Quiet, false)
    }
}

/// Reassembly state for one incoming reliable message.
pub struct RecvState {
    /// The original sender's physical address.
    pub sender: Ipv4,
    /// The sender's transport port (acks go back here).
    pub sender_port: u16,
    /// The message id.
    pub msg_id: u64,
    total: u32,
    msg_size: u32,
    data: Rc<dyn std::any::Any>,
    carrier: Carrier,
    dst_ip: Ipv4,
    proto: Proto,
    bitmap: Vec<u64>,
    have: u32,
    cum: u32,
    max_seen: u32,
    delivered: bool,
    nack_left: u32,
    linger_left: u32,
}

impl RecvState {
    /// Create reassembly state from the first chunk observed.
    #[allow(clippy::too_many_arguments)]
    pub fn from_chunk(
        cfg: &RudpCfg,
        sender: Ipv4,
        sender_port: u16,
        msg_id: u64,
        total: u32,
        msg_size: u32,
        data: Rc<dyn std::any::Any>,
        dst_ip: Ipv4,
        proto: Proto,
    ) -> RecvState {
        RecvState {
            sender,
            sender_port,
            msg_id,
            total,
            msg_size,
            data,
            carrier: if proto == Proto::Tcp {
                Carrier::Tcp
            } else {
                Carrier::ReliableUdp
            },
            dst_ip,
            proto,
            bitmap: vec![0; total.div_ceil(64) as usize],
            have: 0,
            cum: 0,
            max_seen: 0,
            delivered: false,
            nack_left: cfg.nack_ticks,
            linger_left: cfg.linger_ticks,
        }
    }

    fn mark(&mut self, seq: u32) -> bool {
        let (w, b) = ((seq / 64) as usize, seq % 64);
        let bit = 1u64 << b;
        // A seq beyond the transfer's chunk count is a malformed or
        // corrupted packet: drop it instead of panicking the receiver.
        let Some(word) = self.bitmap.get_mut(w) else {
            return false;
        };
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.have += 1;
        while self.cum < self.total && self.has(self.cum) {
            self.cum += 1;
        }
        true
    }

    fn has(&self, seq: u32) -> bool {
        self.bitmap
            .get((seq / 64) as usize)
            .is_some_and(|w| w & (1 << (seq % 64)) != 0)
    }

    /// The message is fully assembled.
    pub fn complete(&self) -> bool {
        self.have >= self.total
    }

    fn send_ack(&self, ctx: &mut dyn NodeIo, my_port: u16) {
        let payload = Rc::new(TpPayload::Ack {
            msg_id: self.msg_id,
            cum: self.cum,
            complete: self.complete(),
        });
        let mut pkt = match self.proto {
            Proto::Tcp => Packet::tcp(
                ctx.ip(),
                ctx.mac(),
                self.sender,
                my_port,
                self.sender_port,
                CTRL_BYTES,
                payload,
            ),
            _ => Packet::udp(
                ctx.ip(),
                ctx.mac(),
                self.sender,
                my_port,
                self.sender_port,
                CTRL_BYTES,
                payload,
            ),
        };
        pkt.wire_size = wire(self.proto, CTRL_BYTES);
        ctx.send(pkt);
    }

    /// Handle one data chunk; returns a `Delivered` event on completion of
    /// an undelivered message.
    pub fn on_chunk(
        &mut self,
        cfg: &RudpCfg,
        ctx: &mut dyn NodeIo,
        my_port: u16,
        seq: u32,
    ) -> Option<TransportEvent> {
        self.max_seen = self.max_seen.max(seq);
        self.mark(seq);
        self.nack_left = cfg.nack_ticks;
        self.linger_left = cfg.linger_ticks;
        self.send_ack(ctx, my_port);
        if self.complete() && !self.delivered {
            self.delivered = true;
            return Some(TransportEvent::Delivered {
                from: (self.sender, self.sender_port),
                dst_ip: self.dst_ip,
                carrier: self.carrier,
                msg: Msg {
                    data: Rc::clone(&self.data),
                    size: self.msg_size,
                },
            });
        }
        None
    }

    /// Periodic tick: fire NACKs while incomplete; expire when lingered
    /// out. Returns true when the state should be dropped. `may_nack`
    /// paces repair: the owning [`crate::Transport`] permits only one
    /// reassembly state to request repair per tick, bounding repair
    /// injection per receiver regardless of how many transfers lag.
    /// Bumps `nacks` when a NACK goes out (telemetry).
    pub fn on_tick(
        &mut self,
        cfg: &RudpCfg,
        ctx: &mut dyn NodeIo,
        my_port: u16,
        may_nack: bool,
        nacks: &mut u64,
    ) -> bool {
        if self.complete() {
            self.linger_left = self.linger_left.saturating_sub(1);
            return self.linger_left == 0;
        }
        self.linger_left = self.linger_left.saturating_sub(1);
        if self.linger_left == 0 {
            return true; // abandoned transfer
        }
        if !may_nack {
            return false;
        }
        self.nack_left = self.nack_left.saturating_sub(1);
        if self.nack_left == 0 {
            self.nack_left = cfg.nack_ticks;
            // Request everything missing below the frontier we know about.
            let frontier = if self.max_seen + 1 >= self.total {
                self.total
            } else {
                (self.max_seen + 1).min(self.total)
            };
            let mut missing = Vec::new();
            for seq in self.cum..frontier {
                if !self.has(seq) {
                    missing.push(seq);
                    if missing.len() >= cfg.nack_cap {
                        break;
                    }
                }
            }
            if missing.is_empty() && frontier < self.total {
                // Tail entirely lost: ask for the next unseen chunk.
                missing.push(frontier);
            }
            if !missing.is_empty() {
                let payload = Rc::new(TpPayload::Nack {
                    msg_id: self.msg_id,
                    missing,
                });
                let mut pkt = match self.proto {
                    Proto::Tcp => Packet::tcp(
                        ctx.ip(),
                        ctx.mac(),
                        self.sender,
                        my_port,
                        self.sender_port,
                        CTRL_BYTES,
                        payload,
                    ),
                    _ => Packet::udp(
                        ctx.ip(),
                        ctx.mac(),
                        self.sender,
                        my_port,
                        self.sender_port,
                        CTRL_BYTES,
                        payload,
                    ),
                };
                pkt.wire_size = wire(self.proto, CTRL_BYTES);
                ctx.send(pkt);
                *nacks += 1;
            }
        }
        false
    }

    /// Re-acknowledge (used when a duplicate chunk arrives after delivery).
    pub fn reack(&self, ctx: &mut dyn NodeIo, my_port: u16) {
        self.send_ack(ctx, my_port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_math() {
        assert_eq!(num_chunks(0), 1);
        assert_eq!(num_chunks(1), 1);
        assert_eq!(num_chunks(MTU), 1);
        assert_eq!(num_chunks(MTU + 1), 2);
        assert_eq!(num_chunks(1 << 20), (1u32 << 20).div_ceil(MTU));
        assert_eq!(chunk_bytes(MTU + 1, 0), MTU);
        assert_eq!(chunk_bytes(MTU + 1, 1), 1);
        assert_eq!(chunk_bytes(0, 0), 0);
        // all chunks of a message sum to its size
        for size in [0u32, 1, 1399, 1400, 1401, 1 << 20] {
            let sum: u32 = (0..num_chunks(size)).map(|s| chunk_bytes(size, s)).sum();
            assert_eq!(sum, size, "size={size}");
        }
    }
}

//! Wire serialization of [`TpPayload`] for the real UDP runtime.
//!
//! In the simulator, transport payloads travel as `Rc<dyn Any>` and are
//! never serialized. The threaded UDP runtime ([`node_rt::runtime`])
//! frames every packet onto a real socket, so [`TpCodec`] turns the
//! transport's control vocabulary (chunks, acks, nacks, handshakes) into
//! bytes, delegating the opaque application payload inside `Chunk` and
//! `Datagram` frames to an inner application codec.
//!
//! One deliberate loopback simplification: a `Chunk` frame carries the
//! *entire* encoded application message (exactly like the simulator's
//! `Rc` chunks, which all alias the same message). Reassembly semantics,
//! acks, windowing, and repair behave identically; only the per-chunk
//! wire volume differs, which the loopback runtime does not meter.

use std::any::Any;
use std::rc::Rc;

use node_rt::{ByteReader, ByteWriter, Payload, WireCodec};

use crate::msg::TpPayload;

const TAG_CHUNK: u8 = 0;
const TAG_ACK: u8 = 1;
const TAG_NACK: u8 = 2;
const TAG_SYN: u8 = 3;
const TAG_SYNACK: u8 = 4;
const TAG_DATAGRAM: u8 = 5;

/// Serializes [`TpPayload`] frames, delegating application payloads to
/// the inner codec `C` (e.g. a codec for a KV store's message enum).
pub struct TpCodec<C> {
    inner: C,
}

impl<C> TpCodec<C> {
    /// A transport codec around an application-payload codec.
    pub fn new(inner: C) -> TpCodec<C> {
        TpCodec { inner }
    }
}

impl<C: WireCodec> WireCodec for TpCodec<C> {
    fn encode(&self, payload: &dyn Any) -> Option<Vec<u8>> {
        let tp = payload.downcast_ref::<TpPayload>()?;
        let mut w = ByteWriter::new();
        match tp {
            TpPayload::Chunk {
                sender,
                msg_id,
                seq,
                total,
                msg_size,
                data,
                retx,
            } => {
                w.u8(TAG_CHUNK);
                w.u32(sender.0);
                w.u64(*msg_id);
                w.u32(*seq);
                w.u32(*total);
                w.u32(*msg_size);
                w.u8(u8::from(*retx));
                w.bytes(&self.inner.encode(data.as_ref())?);
            }
            TpPayload::Ack {
                msg_id,
                cum,
                complete,
            } => {
                w.u8(TAG_ACK);
                w.u64(*msg_id);
                w.u32(*cum);
                w.u8(u8::from(*complete));
            }
            TpPayload::Nack { msg_id, missing } => {
                w.u8(TAG_NACK);
                w.u64(*msg_id);
                w.u32(missing.len() as u32);
                for &seq in missing {
                    w.u32(seq);
                }
            }
            TpPayload::Syn => w.u8(TAG_SYN),
            TpPayload::SynAck => w.u8(TAG_SYNACK),
            TpPayload::Datagram { data, size } => {
                w.u8(TAG_DATAGRAM);
                w.u32(*size);
                w.bytes(&self.inner.encode(data.as_ref())?);
            }
        }
        Some(w.into_vec())
    }

    fn decode(&self, bytes: &[u8]) -> Option<Payload> {
        let mut r = ByteReader::new(bytes);
        let tp = match r.u8()? {
            TAG_CHUNK => {
                let sender = node_rt::Ipv4(r.u32()?);
                let msg_id = r.u64()?;
                let seq = r.u32()?;
                let total = r.u32()?;
                let msg_size = r.u32()?;
                let retx = r.u8()? != 0;
                let data = self.inner.decode(r.bytes()?)?;
                TpPayload::Chunk {
                    sender,
                    msg_id,
                    seq,
                    total,
                    msg_size,
                    data,
                    retx,
                }
            }
            TAG_ACK => TpPayload::Ack {
                msg_id: r.u64()?,
                cum: r.u32()?,
                complete: r.u8()? != 0,
            },
            TAG_NACK => {
                let msg_id = r.u64()?;
                let n = r.u32()? as usize;
                // A NACK datagram is small; a huge count is corruption.
                if n > 4096 {
                    return None;
                }
                let mut missing = Vec::with_capacity(n);
                for _ in 0..n {
                    missing.push(r.u32()?);
                }
                TpPayload::Nack { msg_id, missing }
            }
            TAG_SYN => TpPayload::Syn,
            TAG_SYNACK => TpPayload::SynAck,
            TAG_DATAGRAM => {
                let size = r.u32()?;
                let data = self.inner.decode(r.bytes()?)?;
                TpPayload::Datagram { data, size }
            }
            _ => return None,
        };
        Some(Rc::new(tp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inner codec for plain `String` app payloads.
    struct StrCodec;
    impl WireCodec for StrCodec {
        fn encode(&self, payload: &dyn Any) -> Option<Vec<u8>> {
            payload
                .downcast_ref::<String>()
                .map(|s| s.clone().into_bytes())
        }
        fn decode(&self, bytes: &[u8]) -> Option<Payload> {
            Some(Rc::new(String::from_utf8(bytes.to_vec()).ok()?))
        }
    }

    fn roundtrip(tp: &TpPayload) -> TpPayload {
        let codec = TpCodec::new(StrCodec);
        let wire = codec.encode(tp).expect("encodable");
        let back = codec.decode(&wire).expect("decodable");
        back.downcast_ref::<TpPayload>()
            .expect("a TpPayload")
            .clone()
    }

    #[test]
    fn chunk_roundtrips_with_inner_payload() {
        let tp = TpPayload::Chunk {
            sender: node_rt::Ipv4::new(10, 0, 0, 3),
            msg_id: 42,
            seq: 7,
            total: 9,
            msg_size: 12_000,
            data: Rc::new("hello".to_string()),
            retx: true,
        };
        match roundtrip(&tp) {
            TpPayload::Chunk {
                sender,
                msg_id,
                seq,
                total,
                msg_size,
                data,
                retx,
            } => {
                assert_eq!(sender, node_rt::Ipv4::new(10, 0, 0, 3));
                assert_eq!(
                    (msg_id, seq, total, msg_size, retx),
                    (42, 7, 9, 12_000, true)
                );
                assert_eq!(
                    data.downcast_ref::<String>().map(String::as_str),
                    Some("hello")
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn control_frames_roundtrip() {
        assert!(matches!(roundtrip(&TpPayload::Syn), TpPayload::Syn));
        assert!(matches!(roundtrip(&TpPayload::SynAck), TpPayload::SynAck));
        match roundtrip(&TpPayload::Ack {
            msg_id: 9,
            cum: 3,
            complete: false,
        }) {
            TpPayload::Ack {
                msg_id,
                cum,
                complete,
            } => assert_eq!((msg_id, cum, complete), (9, 3, false)),
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(&TpPayload::Nack {
            msg_id: 5,
            missing: vec![1, 4, 6],
        }) {
            TpPayload::Nack { msg_id, missing } => {
                assert_eq!(msg_id, 5);
                assert_eq!(missing, vec![1, 4, 6]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn corrupt_frames_are_dropped() {
        let codec = TpCodec::new(StrCodec);
        assert!(codec.decode(&[]).is_none());
        assert!(codec.decode(&[99]).is_none());
        assert!(codec.decode(&[TAG_ACK, 1]).is_none());
    }
}

//! Randomized transport properties: for arbitrary message sizes and
//! fan-outs, the reliable transports deliver every message exactly once,
//! intact, to every required receiver — and the chunker conserves bytes.
//!
//! Cases are drawn from the in-tree seeded PRNG so the suite is fully
//! deterministic and builds offline (no proptest dependency).

use std::cell::RefCell;
use std::rc::Rc;

use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowSwitch, FlowTable, GroupBucket, GroupId};
use nice_sim::{
    App, ChannelCfg, Ctx, HostCfg, Ipv4, Mac, Packet, Rng, Simulation, SwitchCfg, Time, XorShiftRng,
};

use crate::{chunk_bytes, num_chunks, Msg, Transport, TransportEvent};

const PORT: u16 = 9100;

struct Node {
    tp: Transport,
    to_send: Vec<(Ipv4, u32, bool)>, // (dst, size, tcp?)
    mcast: Option<(Ipv4, u32, usize)>,
    delivered: Vec<(Ipv4, u32)>,
    sent_done: usize,
}

impl Node {
    fn new() -> Node {
        Node {
            tp: Transport::new(PORT),
            to_send: Vec::new(),
            mcast: None,
            delivered: Vec::new(),
            sent_done: 0,
        }
    }
    fn handle(&mut self, evs: Vec<TransportEvent>) {
        for ev in evs {
            match ev {
                TransportEvent::Delivered { from, msg, .. } => {
                    self.delivered.push((from.0, msg.size));
                }
                TransportEvent::Sent { .. } => self.sent_done += 1,
                TransportEvent::Failed { .. } => {}
            }
        }
    }
}

impl App for Node {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for (dst, size, tcp) in self.to_send.clone() {
            if tcp {
                self.tp.tcp_send(ctx, dst, PORT, Msg::new((), size));
            } else {
                self.tp.rudp_send(ctx, dst, PORT, Msg::new((), size));
            }
        }
        if let Some((group, size, expected)) = self.mcast {
            self.tp
                .mcast_send(ctx, group, PORT, Msg::new((), size), expected);
        }
    }
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let evs = self.tp.on_packet(&pkt, ctx);
        self.handle(evs);
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        let evs = self.tp.on_timer(token, ctx);
        self.handle(evs);
    }
}

fn world(n_hosts: usize, group: &[usize]) -> (Simulation, Vec<nice_sim::HostId>, Vec<Ipv4>) {
    let mut sim = Simulation::new(1234);
    let table = Rc::new(RefCell::new(FlowTable::new()));
    let sw = sim.add_switch(
        Box::new(FlowSwitch::new(Rc::clone(&table))),
        SwitchCfg::default(),
    );
    let mut hosts = Vec::new();
    let mut ips = Vec::new();
    for i in 0..n_hosts {
        let ip = Ipv4::new(10, 0, 0, 1 + i as u8);
        let mac = Mac(1 + i as u64);
        let h = sim.add_host(Box::new(Node::new()), HostCfg::new(ip, mac));
        let port = sim.connect_asym(
            h,
            sw,
            ChannelCfg::gigabit().host_uplink(),
            ChannelCfg::gigabit(),
        );
        table.borrow_mut().install(
            FlowRule::new(
                prio::PHYS,
                FlowMatch::any().dst_ip(ip),
                vec![Action::SetMacDst(mac), Action::Output(port)],
            ),
            Time::ZERO,
        );
        hosts.push(h);
        ips.push(ip);
    }
    if !group.is_empty() {
        let buckets = group
            .iter()
            .map(|&i| GroupBucket::rewrite_to(ips[i], Mac(1 + i as u64), nice_sim::Port(i as u16)))
            .collect();
        table
            .borrow_mut()
            .set_group(GroupId(1), buckets, Time::ZERO);
        table.borrow_mut().install(
            FlowRule::new(
                prio::VRING,
                FlowMatch::any().dst_ip(Ipv4::new(10, 11, 0, 1)),
                vec![Action::Group(GroupId(1))],
            ),
            Time::ZERO,
        );
    }
    (sim, hosts, ips)
}

/// Chunking conserves every byte for any size.
#[test]
fn chunker_conserves_bytes() {
    let mut rng = XorShiftRng::seed_from_u64(0x7261_0001);
    let mut sizes: Vec<u32> = (0..48).map(|_| rng.random_range(0u32..8_000_000)).collect();
    sizes.extend([
        0,
        1,
        nice_sim::MTU - 1,
        nice_sim::MTU,
        nice_sim::MTU + 1,
        7_999_999,
    ]);
    for size in sizes {
        let total: u64 = (0..num_chunks(size))
            .map(|s| u64::from(chunk_bytes(size, s)))
            .sum();
        assert_eq!(total, u64::from(size));
        // every chunk except possibly the last is a full MTU
        let n = num_chunks(size);
        for s in 0..n.saturating_sub(1) {
            assert_eq!(chunk_bytes(size, s), nice_sim::MTU, "size {size} chunk {s}");
        }
    }
}

/// Any batch of unicast messages (mixed rudp/tcp, arbitrary sizes) is
/// delivered exactly once each, with the right sizes.
#[test]
fn unicast_delivers_exactly_once() {
    for case in 0..24u64 {
        let mut rng = XorShiftRng::seed_from_u64(0x7261_0002 ^ case);
        let n = rng.random_range(1usize..6);
        let sizes: Vec<(u32, bool)> = (0..n)
            .map(|_| (rng.random_range(0u32..300_000), rng.next_u64() & 1 == 0))
            .collect();
        let (mut sim, hosts, ips) = world(2, &[]);
        {
            let sender = sim.app_mut::<Node>(hosts[0]);
            sender.to_send = sizes.iter().map(|&(s, tcp)| (ips[1], s, tcp)).collect();
        }
        sim.run_until(Time::from_secs(5));
        let recv = sim.app::<Node>(hosts[1]);
        let mut got: Vec<u32> = recv.delivered.iter().map(|&(_, s)| s).collect();
        let mut want: Vec<u32> = sizes.iter().map(|&(s, _)| s).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
        assert_eq!(
            sim.app::<Node>(hosts[0]).sent_done,
            sizes.len(),
            "case {case}"
        );
    }
}

/// Multicast delivers one copy to every group member, none elsewhere.
#[test]
fn multicast_delivers_to_all_members() {
    for case in 0..24u64 {
        let mut rng = XorShiftRng::seed_from_u64(0x7261_0003 ^ case);
        let size = rng.random_range(0u32..500_000);
        let members = rng.random_range(1usize..4);
        let group: Vec<usize> = (1..=members).collect();
        let (mut sim, hosts, _ips) = world(5, &group);
        {
            let sender = sim.app_mut::<Node>(hosts[0]);
            sender.mcast = Some((Ipv4::new(10, 11, 0, 1), size, members));
        }
        sim.run_until(Time::from_secs(5));
        for &m in &group {
            let n = sim.app::<Node>(hosts[m]);
            assert_eq!(n.delivered.len(), 1, "member {m} deliveries (case {case})");
            assert_eq!(n.delivered[0].1, size);
        }
        // the non-member host saw nothing
        assert_eq!(sim.app::<Node>(hosts[4]).delivered.len(), 0, "case {case}");
        assert_eq!(sim.app::<Node>(hosts[0]).sent_done, 1, "case {case}");
    }
}

//! The per-host transport stack.
//!
//! Each application owns one [`Transport`] bound to a local port. The app
//! forwards its `on_packet`/`on_timer` hooks to the stack and receives
//! [`TransportEvent`]s back. The stack multiplexes:
//!
//! * unreliable datagrams ([`Transport::udp_send`]),
//! * reliable UDP messages to one destination ([`Transport::rudp_send`]) —
//!   used for client requests to unicast vnode addresses,
//! * reliable switch-multicast messages ([`Transport::mcast_send`]) with
//!   all-ack or any-k quorum semantics ([`Transport::anyk_send`]) — the
//!   put data path of §4.2/§5,
//! * TCP-like streams with connection handshakes and caching
//!   ([`Transport::tcp_send`]) — replies and inter-node traffic.

use std::collections::BTreeMap;
use std::rc::Rc;

use node_rt::{Ipv4, NodeIo, Packet, Proto, HDR_TCP, HDR_UDP, MTU};

use crate::msg::{Carrier, Msg, MsgToken, TpPayload, TransportEvent};
use crate::rudp::{RecvState, RudpCfg, SendOutcome, SendState};

/// The timer token the transport reserves. Applications must forward this
/// token from their `on_timer` hook to [`Transport::on_timer`] and must not
/// use it themselves.
pub const TRANSPORT_TICK: u64 = 1 << 63;

/// SYN retransmit period in ticks.
const SYN_RETRY_TICKS: u32 = 20;
/// SYN attempts before the connection fails.
const SYN_MAX_TRIES: u32 = 10;

/// Reliability-layer counters: how hard the stack had to work to get
/// messages through. Zero across the board on a clean network; loss,
/// duplication, and delay show up here before they show up in latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TpStats {
    /// Stall-probe retransmissions (sender-side RTO equivalent).
    pub probes: u64,
    /// NACK control messages sent by reassembly states.
    pub nacks_sent: u64,
    /// NACK control messages received by send states.
    pub nacks_received: u64,
    /// Chunks retransmitted in response to NACKs.
    pub repairs: u64,
    /// SYN handshake retransmissions.
    pub syn_retries: u64,
}

struct Pending {
    token: MsgToken,
    msg: Msg,
    dst_port: u16,
}

enum Conn {
    SynSent {
        pending: Vec<Pending>,
        retry_left: u32,
        tries: u32,
    },
    Established,
}

/// The transport stack. See module docs.
pub struct Transport {
    cfg: RudpCfg,
    port: u16,
    next_msg_id: u64,
    senders: BTreeMap<u64, SendState>,
    recvs: BTreeMap<(Ipv4, u64), RecvState>,
    conns: BTreeMap<Ipv4, Conn>,
    tick_armed: bool,
    /// Round-robin cursor for NACK pacing across reassembly states.
    nack_rr: u64,
    /// Reliability-layer effort counters.
    stats: TpStats,
}

impl Transport {
    /// A stack bound to `port` with default tuning.
    pub fn new(port: u16) -> Transport {
        Transport::with_cfg(port, RudpCfg::default())
    }

    /// A stack bound to `port` with explicit tuning.
    pub fn with_cfg(port: u16, cfg: RudpCfg) -> Transport {
        Transport {
            cfg,
            port,
            next_msg_id: 1,
            senders: BTreeMap::new(),
            recvs: BTreeMap::new(),
            conns: BTreeMap::new(),
            tick_armed: false,
            nack_rr: 0,
            stats: TpStats::default(),
        }
    }

    /// Reliability-layer counters (probes, NACKs, repairs, SYN retries).
    pub fn stats(&self) -> TpStats {
        self.stats
    }

    /// The local transport port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// In-flight reliable sends (diagnostics).
    pub fn inflight_sends(&self) -> usize {
        self.senders.len()
    }

    fn arm(&mut self, ctx: &mut dyn NodeIo) {
        if !self.tick_armed {
            self.tick_armed = true;
            ctx.set_timer(self.cfg.tick, TRANSPORT_TICK);
        }
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    // -----------------------------------------------------------------
    // Send paths
    // -----------------------------------------------------------------

    /// Fire-and-forget datagram (must fit one MTU).
    pub fn udp_send(&mut self, ctx: &mut dyn NodeIo, dst: Ipv4, dst_port: u16, msg: Msg) {
        assert!(msg.size <= MTU, "datagram exceeds MTU; use rudp_send");
        let body = msg.size;
        let payload = Rc::new(TpPayload::Datagram {
            data: msg.data,
            size: msg.size,
        });
        let mut pkt = Packet::udp(ctx.ip(), ctx.mac(), dst, self.port, dst_port, body, payload);
        pkt.wire_size = HDR_UDP + body;
        ctx.send(pkt);
    }

    /// Reliable UDP message to a single destination (physical or unicast
    /// vnode address).
    pub fn rudp_send(
        &mut self,
        ctx: &mut dyn NodeIo,
        dst: Ipv4,
        dst_port: u16,
        msg: Msg,
    ) -> MsgToken {
        self.start_send(ctx, dst, dst_port, Proto::Udp, msg, 1, 1)
    }

    /// Reliable multicast: complete when **all** `expected` receivers hold
    /// the message.
    pub fn mcast_send(
        &mut self,
        ctx: &mut dyn NodeIo,
        group: Ipv4,
        dst_port: u16,
        msg: Msg,
        expected: usize,
    ) -> MsgToken {
        self.start_send(ctx, group, dst_port, Proto::Udp, msg, expected, expected)
    }

    /// Reliable any-k multicast: window advances with the k fastest
    /// receivers and the send completes when any `k` hold the message;
    /// stragglers are served until the linger timeout (§5).
    pub fn anyk_send(
        &mut self,
        ctx: &mut dyn NodeIo,
        group: Ipv4,
        dst_port: u16,
        msg: Msg,
        expected: usize,
        k: usize,
    ) -> MsgToken {
        self.start_send(ctx, group, dst_port, Proto::Udp, msg, expected, k)
    }

    /// Reliable message over a TCP-like stream; performs (and caches) the
    /// connection handshake to `dst` on first use.
    pub fn tcp_send(
        &mut self,
        ctx: &mut dyn NodeIo,
        dst: Ipv4,
        dst_port: u16,
        msg: Msg,
    ) -> MsgToken {
        self.arm(ctx);
        let token = MsgToken(self.next_id());
        match self.conns.get_mut(&dst) {
            Some(Conn::Established) => {
                let id = token.0;
                let s = SendState::start(
                    &self.cfg,
                    ctx,
                    id,
                    token,
                    dst,
                    dst_port,
                    self.port,
                    Proto::Tcp,
                    msg,
                    1,
                    1,
                );
                self.senders.insert(id, s);
            }
            Some(Conn::SynSent { pending, .. }) => {
                pending.push(Pending {
                    token,
                    msg,
                    dst_port,
                });
            }
            None => {
                self.conns.insert(
                    dst,
                    Conn::SynSent {
                        pending: vec![Pending {
                            token,
                            msg,
                            dst_port,
                        }],
                        retry_left: SYN_RETRY_TICKS,
                        tries: 1,
                    },
                );
                self.send_ctl(ctx, dst, dst_port, TpPayload::Syn);
            }
        }
        token
    }

    #[allow(clippy::too_many_arguments)]
    fn start_send(
        &mut self,
        ctx: &mut dyn NodeIo,
        dst: Ipv4,
        dst_port: u16,
        proto: Proto,
        msg: Msg,
        expected: usize,
        quorum: usize,
    ) -> MsgToken {
        self.arm(ctx);
        let id = self.next_id();
        let token = MsgToken(id);
        let s = SendState::start(
            &self.cfg, ctx, id, token, dst, dst_port, self.port, proto, msg, expected, quorum,
        );
        self.senders.insert(id, s);
        token
    }

    fn send_ctl(&self, ctx: &mut dyn NodeIo, dst: Ipv4, dst_port: u16, payload: TpPayload) {
        let mut pkt = Packet::tcp(
            ctx.ip(),
            ctx.mac(),
            dst,
            self.port,
            dst_port,
            0,
            Rc::new(payload),
        );
        pkt.wire_size = HDR_TCP;
        ctx.send(pkt);
    }

    // -----------------------------------------------------------------
    // Receive path
    // -----------------------------------------------------------------

    /// Feed a received packet through the stack. Packets not destined to
    /// our port (or not transport-shaped) are ignored.
    pub fn on_packet(&mut self, pkt: &Packet, ctx: &mut dyn NodeIo) -> Vec<TransportEvent> {
        let mut events = Vec::new();
        if pkt.dst_port != self.port {
            return events;
        }
        let Some(payload) = pkt.payload_as::<TpPayload>() else {
            return events;
        };
        match payload {
            TpPayload::Datagram { data, size } => {
                events.push(TransportEvent::Delivered {
                    from: (pkt.src, pkt.src_port),
                    dst_ip: pkt.dst,
                    carrier: Carrier::Datagram,
                    msg: Msg {
                        data: Rc::clone(data),
                        size: *size,
                    },
                });
            }
            TpPayload::Chunk {
                sender,
                msg_id,
                seq,
                total,
                msg_size,
                data,
                retx: _,
            } => {
                self.arm(ctx);
                let key = (*sender, *msg_id);
                let st = self.recvs.entry(key).or_insert_with(|| {
                    RecvState::from_chunk(
                        &self.cfg,
                        *sender,
                        pkt.src_port,
                        *msg_id,
                        *total,
                        *msg_size,
                        Rc::clone(data),
                        pkt.dst,
                        pkt.proto,
                    )
                });
                if let Some(ev) = st.on_chunk(&self.cfg, ctx, self.port, *seq) {
                    events.push(ev);
                }
            }
            TpPayload::Ack {
                msg_id,
                cum,
                complete: _,
            } => {
                if let Some(s) = self.senders.get_mut(msg_id) {
                    match s.on_ack(&self.cfg, ctx, self.port, pkt.src, *cum) {
                        SendOutcome::Sent(acked_by) => {
                            let token = s.token;
                            if s.fully_acked() {
                                self.senders.remove(msg_id);
                            }
                            events.push(TransportEvent::Sent { token, acked_by });
                        }
                        // Failed is unreachable for acks (an ack never
                        // expands the send window); treat it like Quiet
                        // to keep the datapath panic-free.
                        SendOutcome::Failed | SendOutcome::Quiet => {
                            if s.fully_acked() {
                                self.senders.remove(msg_id);
                            }
                        }
                    }
                }
            }
            TpPayload::Nack { msg_id, missing } => {
                if let Some(s) = self.senders.get_mut(msg_id) {
                    self.stats.nacks_received += 1;
                    self.stats.repairs += s.on_nack(ctx, self.port, pkt.src, missing);
                }
            }
            TpPayload::Syn => {
                // Simultaneous open: if we were mid-handshake to this
                // peer, the connection is now established both ways —
                // flush anything we had queued rather than dropping it.
                let prior = self.conns.insert(pkt.src, Conn::Established);
                self.send_ctl(ctx, pkt.src, pkt.src_port, TpPayload::SynAck);
                if let Some(Conn::SynSent { pending, .. }) = prior {
                    for p in pending {
                        let id = p.token.0;
                        let s = SendState::start(
                            &self.cfg,
                            ctx,
                            id,
                            p.token,
                            pkt.src,
                            p.dst_port,
                            self.port,
                            Proto::Tcp,
                            p.msg,
                            1,
                            1,
                        );
                        self.senders.insert(id, s);
                    }
                }
            }
            TpPayload::SynAck => {
                if let Some(Conn::SynSent { pending, .. }) = self.conns.get_mut(&pkt.src) {
                    let pending = std::mem::take(pending);
                    self.conns.insert(pkt.src, Conn::Established);
                    for p in pending {
                        let id = p.token.0;
                        let s = SendState::start(
                            &self.cfg,
                            ctx,
                            id,
                            p.token,
                            pkt.src,
                            p.dst_port,
                            self.port,
                            Proto::Tcp,
                            p.msg,
                            1,
                            1,
                        );
                        self.senders.insert(id, s);
                    }
                }
            }
        }
        events
    }

    /// Drive the stack's periodic work. Call from the app's `on_timer`
    /// when the token is [`TRANSPORT_TICK`].
    pub fn on_timer(&mut self, token: u64, ctx: &mut dyn NodeIo) -> Vec<TransportEvent> {
        let mut events = Vec::new();
        if token != TRANSPORT_TICK {
            return events;
        }
        self.tick_armed = false;

        // Sender ticks.
        let mut drop_ids = Vec::new();
        for (&id, s) in self.senders.iter_mut() {
            let (outcome, drop) = s.on_tick(&self.cfg, ctx, self.port, &mut self.stats.probes);
            match outcome {
                SendOutcome::Sent(acked_by) => events.push(TransportEvent::Sent {
                    token: s.token,
                    acked_by,
                }),
                SendOutcome::Failed => events.push(TransportEvent::Failed { token: s.token }),
                SendOutcome::Quiet => {}
            }
            if drop {
                drop_ids.push(id);
            }
        }
        for id in drop_ids {
            self.senders.remove(&id);
        }

        // Receiver ticks. NACK pacing: at most one incomplete reassembly
        // may request repair per tick (round-robin, deterministic order),
        // so total repair demand per receiver stays bounded no matter how
        // many straggling transfers it has.
        let mut incomplete: Vec<(Ipv4, u64)> = self
            .recvs
            .iter()
            .filter(|(_, r)| !r.complete())
            .map(|(&k, _)| k)
            .collect();
        incomplete.sort_unstable();
        let rr_at = (self.nack_rr % incomplete.len().max(1) as u64) as usize;
        let allowed = incomplete.get(rr_at).copied();
        if allowed.is_some() {
            self.nack_rr += 1;
        }
        let mut drop_keys = Vec::new();
        for (&key, r) in self.recvs.iter_mut() {
            if r.on_tick(
                &self.cfg,
                ctx,
                self.port,
                allowed == Some(key),
                &mut self.stats.nacks_sent,
            ) {
                drop_keys.push(key);
            }
        }
        for k in drop_keys {
            self.recvs.remove(&k);
        }

        // Handshake retries.
        let mut failed_conns = Vec::new();
        for (&dst, conn) in self.conns.iter_mut() {
            if let Conn::SynSent {
                pending,
                retry_left,
                tries,
            } = conn
            {
                *retry_left = retry_left.saturating_sub(1);
                if *retry_left == 0 {
                    if *tries >= SYN_MAX_TRIES {
                        for p in pending.drain(..) {
                            events.push(TransportEvent::Failed { token: p.token });
                        }
                        failed_conns.push(dst);
                    } else {
                        *tries += 1;
                        *retry_left = SYN_RETRY_TICKS;
                        self.stats.syn_retries += 1;
                        let dst_port = pending.first().map_or(self.port, |p| p.dst_port);
                        let mut pkt = Packet::tcp(
                            ctx.ip(),
                            ctx.mac(),
                            dst,
                            self.port,
                            dst_port,
                            0,
                            Rc::new(TpPayload::Syn),
                        );
                        pkt.wire_size = HDR_TCP;
                        ctx.send(pkt);
                    }
                }
            }
        }
        for d in failed_conns {
            self.conns.remove(&d);
        }

        if !self.senders.is_empty()
            || !self.recvs.is_empty()
            || self
                .conns
                .values()
                .any(|c| matches!(c, Conn::SynSent { .. }))
        {
            self.tick_armed = true;
            ctx.set_timer(self.cfg.tick, TRANSPORT_TICK);
        }
        events
    }

    /// Forget all volatile state (crash semantics: connections, in-flight
    /// transfers, and reassembly buffers are all lost).
    pub fn on_crash(&mut self) {
        self.senders.clear();
        self.recvs.clear();
        self.conns.clear();
        self.tick_armed = false;
    }

    /// Apparent one-way wire cost of a message of `size` bytes over this
    /// transport (chunk headers included) — useful for analytic checks.
    pub fn wire_bytes(size: u32, tcp: bool) -> u64 {
        let chunks = crate::rudp::num_chunks(size);
        let hdr = if tcp { HDR_TCP } else { HDR_UDP };
        let ctrl = 22u64; // per-chunk transport header
        size as u64 + chunks as u64 * (hdr as u64 + ctrl)
    }
}

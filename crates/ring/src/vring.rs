//! Virtual rings (vrings): the client-visible address space.
//!
//! "The client accesses a virtual storage system deployed on a set of
//! virtual nodes (vnodes). The virtual addresses are organized in a
//! virtual consistent hashing ring (vring). … we divide the virtual ring
//! addresses into subgroups such that the number of vnodes per subgroup is
//! a multiple of 2 (e.g., all vnodes in 10.10.1.0/24 form a subgroup). The
//! metadata service maps any packets sent to a particular subgroup to a
//! particular physical node." (§3.2)
//!
//! NICE uses two vrings (§4.2): a *unicast* ring (e.g. `10.10.0.0/16`)
//! whose subgroups map to a partition's primary (or, with load balancing,
//! to a per-client-division replica), and a *multicast* ring (e.g.
//! `10.11.0.0/16`) whose subgroups map to the whole replica set.

use node_rt::Ipv4;

use crate::hash::hash_key;
use crate::physical::PartitionId;

/// One virtual ring: a base prefix carved into per-partition subgroups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VRing {
    base: Ipv4,
    /// Prefix length of the whole ring (e.g. 16 for 10.10.0.0/16).
    prefix_len: u8,
    /// Prefix length of one subgroup (e.g. 24 → 256 vnodes per subgroup).
    subgroup_len: u8,
}

impl VRing {
    /// Create a vring on `base/prefix_len` with `2^(subgroup_len -
    /// prefix_len)` subgroups of `2^(32 - subgroup_len)` vnodes each.
    ///
    /// # Panics
    /// If the lengths are not `prefix_len <= subgroup_len <= 32`
    /// (`prefix_len == subgroup_len` is the degenerate one-subgroup ring).
    pub fn new(base: Ipv4, prefix_len: u8, subgroup_len: u8) -> VRing {
        assert!(prefix_len <= subgroup_len && subgroup_len <= 32);
        VRing {
            base: base.network(prefix_len),
            prefix_len,
            subgroup_len,
        }
    }

    /// The conventional unicast ring used throughout the paper:
    /// `10.10.0.0/16` with `num_partitions` subgroups.
    pub fn unicast(num_partitions: u32) -> VRing {
        VRing::with_partitions(Ipv4::new(10, 10, 0, 0), num_partitions)
    }

    /// The conventional multicast ring: `10.11.0.0/16`.
    pub fn multicast(num_partitions: u32) -> VRing {
        VRing::with_partitions(Ipv4::new(10, 11, 0, 0), num_partitions)
    }

    /// A /16 ring under `base` with exactly `num_partitions` subgroups
    /// (`num_partitions` must be a power of two ≤ 65536).
    pub fn with_partitions(base: Ipv4, num_partitions: u32) -> VRing {
        assert!(num_partitions.is_power_of_two() && num_partitions <= 1 << 16);
        let bits = num_partitions.trailing_zeros() as u8;
        VRing::new(base, 16, 16 + bits)
    }

    /// The ring's base network.
    pub fn base(&self) -> Ipv4 {
        self.base
    }

    /// The ring's prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Number of subgroups (= partitions this ring can address).
    pub fn num_subgroups(&self) -> u32 {
        1 << (self.subgroup_len - self.prefix_len)
    }

    /// Number of vnode addresses per subgroup.
    pub fn subgroup_size(&self) -> u32 {
        1u32.checked_shl(32 - self.subgroup_len as u32)
            .unwrap_or(0)
            .max(1)
    }

    /// Does `ip` belong to this ring?
    pub fn contains(&self, ip: Ipv4) -> bool {
        ip.in_prefix(self.base, self.prefix_len)
    }

    /// The `(network, len)` match prefix of partition `p`'s subgroup —
    /// exactly what goes into the switch flow rule.
    pub fn subgroup_prefix(&self, p: PartitionId) -> (Ipv4, u8) {
        assert!(p.0 < self.num_subgroups());
        let net = Ipv4(self.base.0 + (p.0 << (32 - self.subgroup_len as u32)));
        (net, self.subgroup_len)
    }

    /// The partition whose subgroup contains `ip` (if `ip` is in-ring).
    pub fn partition_of(&self, ip: Ipv4) -> Option<PartitionId> {
        if !self.contains(ip) {
            return None;
        }
        Some(PartitionId(
            ip.host_bits(self.prefix_len) >> (32 - self.subgroup_len as u32),
        ))
    }

    /// The vnode address a client sends to for `key`, given the key's
    /// partition: an address inside the partition's subgroup, picked by
    /// the key hash (so distinct keys exercise distinct vnodes).
    pub fn vnode_for_key(&self, p: PartitionId, key: &[u8]) -> Ipv4 {
        let (net, _) = self.subgroup_prefix(p);
        let salt = (hash_key(key) as u32) % self.subgroup_size();
        Ipv4(net.0 + salt)
    }
}

/// The client source-address divisions used by the in-network load
/// balancer (§4.5): "The metadata service divides the client address
/// space into R divisions, such that each division size is a multiple
/// of 2. Requests coming from each division will be forwarded to a
/// different replica."
///
/// Prefix-match rules require a power-of-two number of divisions; for
/// non-power-of-two R we create `next_power_of_two(R)` prefix divisions
/// and assign them to replicas round-robin, so every replica serves at
/// least one division and rules stay pure prefixes.
#[derive(Debug, Clone, Copy)]
pub struct ClientDivisions {
    base: Ipv4,
    prefix_len: u8,
    replicas: u32,
}

impl ClientDivisions {
    /// Divide `base/prefix_len` (the client address space) among
    /// `replicas` replicas.
    ///
    /// # Panics
    /// If `replicas` is 0 or the space is too small to split.
    pub fn new(base: Ipv4, prefix_len: u8, replicas: u32) -> ClientDivisions {
        assert!(replicas >= 1);
        let d = replicas.next_power_of_two();
        let div_bits = d.trailing_zeros() as u8;
        assert!(
            prefix_len + div_bits <= 32,
            "client space too small for {replicas} divisions"
        );
        ClientDivisions {
            base: base.network(prefix_len),
            prefix_len,
            replicas,
        }
    }

    /// Number of prefix divisions generated.
    pub fn num_divisions(&self) -> u32 {
        self.replicas.next_power_of_two()
    }

    /// Iterate `(division prefix, replica index)` pairs: the flow rules to
    /// install for one partition, one per division.
    pub fn assignments(&self) -> impl Iterator<Item = ((Ipv4, u8), usize)> + '_ {
        let d = self.num_divisions();
        let div_bits = d.trailing_zeros() as u8;
        let div_len = self.prefix_len + div_bits;
        (0..d).map(move |i| {
            let net = Ipv4(self.base.0 + (i << (32 - div_len as u32)));
            ((net, div_len), (i % self.replicas) as usize)
        })
    }

    /// Which replica serves a client at `ip` (primary index 0 if the ip is
    /// outside the divided space — the paper forwards unknown sources to
    /// the primary).
    pub fn replica_for(&self, ip: Ipv4) -> usize {
        for ((net, len), r) in self.assignments() {
            if ip.in_prefix(net, len) {
                return r;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subgroup_prefixes_partition_the_ring() {
        let v = VRing::unicast(16);
        assert_eq!(v.num_subgroups(), 16);
        // every subgroup prefix is inside the ring, disjoint from others
        for p in 0..16 {
            let (net, len) = v.subgroup_prefix(PartitionId(p));
            assert!(v.contains(net));
            assert_eq!(v.partition_of(net), Some(PartitionId(p)));
            assert_eq!(len, 20); // /16 + 4 bits of partition
        }
    }

    #[test]
    fn partition_of_roundtrips_vnode_addresses() {
        let v = VRing::multicast(64);
        for p in 0..64 {
            let ip = v.vnode_for_key(PartitionId(p), format!("k{p}").as_bytes());
            assert_eq!(v.partition_of(ip), Some(PartitionId(p)), "ip={ip}");
        }
    }

    #[test]
    fn out_of_ring_addresses_rejected() {
        let v = VRing::unicast(16);
        assert_eq!(v.partition_of(Ipv4::new(10, 12, 0, 1)), None);
        assert!(!v.contains(Ipv4::new(192, 168, 0, 1)));
    }

    #[test]
    fn unicast_and_multicast_rings_disjoint() {
        let u = VRing::unicast(16);
        let m = VRing::multicast(16);
        for p in 0..16 {
            let ip = u.vnode_for_key(PartitionId(p), b"x");
            assert!(!m.contains(ip));
        }
    }

    #[test]
    fn single_partition_ring() {
        let v = VRing::with_partitions(Ipv4::new(10, 10, 0, 0), 1);
        // degenerate but valid: one subgroup covering the whole ring
        assert_eq!(v.num_subgroups(), 1);
        let ip = v.vnode_for_key(PartitionId(0), b"anything");
        assert_eq!(v.partition_of(ip), Some(PartitionId(0)));
    }

    #[test]
    fn divisions_cover_space_disjointly() {
        for r in [1u32, 2, 3, 5, 7, 9] {
            let d = ClientDivisions::new(Ipv4::new(10, 0, 0, 0), 24, r);
            let prefixes: Vec<_> = d.assignments().collect();
            assert_eq!(prefixes.len() as u32, r.next_power_of_two());
            // every address in the /24 falls in exactly one division
            for host in [0u32, 1, 63, 64, 127, 128, 200, 255] {
                let ip = Ipv4(Ipv4::new(10, 0, 0, 0).0 + host);
                let n = prefixes
                    .iter()
                    .filter(|((net, len), _)| ip.in_prefix(*net, *len))
                    .count();
                assert_eq!(n, 1, "r={r} host={host}");
            }
            // every replica index in 0..r appears
            let mut seen: Vec<usize> = prefixes.iter().map(|&(_, r)| r).collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen, (0..r as usize).collect::<Vec<_>>());
        }
    }

    #[test]
    fn replica_for_outside_space_is_primary() {
        let d = ClientDivisions::new(Ipv4::new(10, 0, 0, 0), 24, 3);
        assert_eq!(d.replica_for(Ipv4::new(10, 0, 1, 5)), 0);
    }
}

//! Key hashing.
//!
//! A stable 64-bit FNV-1a hash partitions the object space. Stability
//! matters: clients, storage nodes, and the metadata service must all
//! agree on `key -> partition` without communicating, and a simulation
//! must be reproducible across runs and platforms (so we do not use
//! `std::hash`, whose output is unspecified).

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a key to a point in the 64-bit object space.
#[inline]
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Finalize with a strong mixer so short sequential keys spread over
    // the whole space (raw FNV clusters in the low bits).
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Hash a string key.
#[inline]
pub fn hash_str(key: &str) -> u64 {
    hash_key(key.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_str("user:42"), hash_str("user:42"));
        assert_ne!(hash_str("user:42"), hash_str("user:43"));
    }

    #[test]
    fn empty_key_hashes() {
        // must not panic and must be stable
        assert_eq!(hash_key(b""), hash_key(b""));
    }

    #[test]
    fn sequential_keys_spread_over_partitions() {
        // 10k sequential keys into 16 top-bit partitions: every partition
        // should see a roughly fair share (chi-square would be overkill;
        // assert within 3x of fair).
        let parts = 16u64;
        let mut counts = vec![0u64; parts as usize];
        let n = 10_000;
        for i in 0..n {
            let h = hash_str(&format!("key-{i}"));
            counts[(h >> 60) as usize] += 1;
        }
        let fair = n / parts;
        for (p, &c) in counts.iter().enumerate() {
            assert!(c > fair / 3 && c < fair * 3, "partition {p} got {c} of {n}");
        }
    }
}

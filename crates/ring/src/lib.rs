//! # nice-ring — consistent hashing, virtual rings, and placement
//!
//! Implements the addressing layer the NICE paper builds on:
//!
//! * [`hash_key`] — stable 64-bit key hashing (clients, servers, and the
//!   metadata service must agree on `key → partition` without talking),
//! * [`PhysicalRing`] — equal-partition consistent hashing with R-way
//!   replica sets, handoff selection (§4.4), and permanent ring
//!   reconfiguration,
//! * [`VRing`] — the client-visible virtual rings (§3.2): a unicast ring
//!   and a multicast ring, each carved into power-of-two IP-prefix
//!   subgroups that map 1:1 to partitions (these prefixes *are* the
//!   switch match rules),
//! * [`ClientDivisions`] — the source-address divisions of the in-network
//!   load balancer (§4.5).

#![warn(missing_docs)]

pub mod hash;
pub mod physical;
pub mod vring;

pub use hash::{hash_key, hash_str};
pub use physical::{NodeIdx, PartitionId, PhysicalRing};
pub use vring::{ClientDivisions, VRing};

// Randomized property tests, driven by the in-tree seeded PRNG so they
// stay deterministic and build offline (no proptest dependency).
#[cfg(test)]
mod prop_tests {
    use super::*;
    use node_rt::{Ipv4, Rng, XorShiftRng};

    fn random_key(rng: &mut XorShiftRng) -> String {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:_-";
        let len = rng.random_range(1usize..41);
        (0..len)
            .map(|_| CHARS[rng.random_range(0usize..CHARS.len())] as char)
            .collect()
    }

    /// Every key lands in exactly one partition and its vnode address
    /// maps back to that partition on both rings.
    #[test]
    fn key_to_vnode_roundtrip() {
        let mut rng = XorShiftRng::seed_from_u64(0x4146_0001);
        for _ in 0..128 {
            let key = random_key(&mut rng);
            let parts = 1u32 << rng.random_range(2u32..10);
            let ring = PhysicalRing::new(parts, (0..4).map(NodeIdx).collect(), 3);
            let p = ring.partition_of_key(key.as_bytes());
            assert!(p.0 < parts);
            let u = VRing::unicast(parts);
            let m = VRing::multicast(parts);
            assert_eq!(
                u.partition_of(u.vnode_for_key(p, key.as_bytes())),
                Some(p),
                "key {key:?}"
            );
            assert_eq!(
                m.partition_of(m.vnode_for_key(p, key.as_bytes())),
                Some(p),
                "key {key:?}"
            );
        }
    }

    /// Replica sets always hold R distinct nodes, primary included.
    #[test]
    fn replica_sets_valid() {
        let mut rng = XorShiftRng::seed_from_u64(0x4146_0002);
        for _ in 0..24 {
            let bits = rng.random_range(6u32..10);
            let parts = 1u32 << bits;
            let nodes = rng.random_range(1usize..40).min(parts as usize);
            let r = rng.random_range(1usize..10);
            let ring = PhysicalRing::new(parts, (0..nodes as u32).map(NodeIdx).collect(), r);
            let want = r.min(nodes);
            for p in 0..parts {
                let set = ring.replica_set(PartitionId(p));
                assert_eq!(set.len(), want);
                let mut u = set.to_vec();
                u.sort();
                u.dedup();
                assert_eq!(u.len(), want);
                assert_eq!(set[0], ring.primary(PartitionId(p)));
            }
        }
    }

    /// The handoff node is never part of the replica set nor excluded.
    #[test]
    fn handoff_valid() {
        let mut rng = XorShiftRng::seed_from_u64(0x4146_0003);
        for _ in 0..256 {
            let nodes = rng.random_range(4usize..30);
            let r = rng.random_range(1usize..4);
            let part = rng.random_range(0u32..64);
            let ring = PhysicalRing::new(64, (0..nodes as u32).map(NodeIdx).collect(), r);
            let p = PartitionId(part);
            let excl = [NodeIdx(0), NodeIdx(1)];
            if let Some(h) = ring.handoff_for(p, &excl) {
                assert!(!ring.is_replica(p, h));
                assert!(!excl.contains(&h));
            } else {
                // Only possible when every node is a replica or excluded.
                assert!(nodes <= r.min(nodes) + excl.len());
            }
        }
    }

    /// Subgroup prefixes are disjoint and collectively cover the ring.
    #[test]
    fn subgroups_partition_space() {
        let mut rng = XorShiftRng::seed_from_u64(0x4146_0004);
        for _ in 0..128 {
            let parts = 1u32 << rng.random_range(0u32..12);
            let host = rng.random_range(0u32..65536);
            let v = VRing::unicast(parts);
            let ip = Ipv4(v.base().0 + host);
            let p = v.partition_of(ip).expect("in ring");
            // membership in exactly one subgroup prefix
            let mut hits = 0;
            for q in 0..parts {
                let (net, len) = v.subgroup_prefix(PartitionId(q));
                if ip.in_prefix(net, len) {
                    hits += 1;
                    assert_eq!(q, p.0);
                }
            }
            assert_eq!(hits, 1);
        }
    }

    /// Client divisions: every source address maps to exactly one
    /// division, and the replica index is always < R.
    #[test]
    fn divisions_function() {
        let mut rng = XorShiftRng::seed_from_u64(0x4146_0005);
        for _ in 0..256 {
            let r = rng.random_range(1u32..12);
            let host = rng.random_range(0u32..256);
            let d = ClientDivisions::new(Ipv4::new(10, 0, 0, 0), 24, r);
            let ip = Ipv4(Ipv4::new(10, 0, 0, 0).0 + host);
            let replica = d.replica_for(ip);
            assert!((replica as u32) < r);
        }
    }
}

//! The physical consistent-hashing ring: equal partitions of the 64-bit
//! object space assigned to storage nodes with an R-way replica set each.
//!
//! "Nodes are placed in a consistent hashing ring, such that each node
//! serves part of the ring. … Every storage node is the primary replica
//! for one or more partitions, and can serve as a secondary replica for
//! other partitions." (§3.1)
//!
//! We use the equal-partition variant of consistent hashing (as Dynamo's
//! production strategy does): the space is split into `P` equal partitions
//! (`P` a power of two, so partitions correspond 1:1 to vring IP-prefix
//! subgroups, §3.2), and nodes take turns as primaries. The replica set of
//! a partition is its primary followed by the next `R-1` distinct nodes
//! walking the ring.

use crate::hash::hash_key;

pub use kv_core::{NodeIdx, PartitionId};

/// The static placement: partitions, nodes, and replica sets.
#[derive(Debug, Clone)]
pub struct PhysicalRing {
    /// log2 of the partition count.
    bits: u32,
    /// Replication level R.
    replication: usize,
    /// Node order around the ring (the "ring positions").
    nodes: Vec<NodeIdx>,
    /// `replica_sets[p]` = primary first, then R-1 secondaries.
    replica_sets: Vec<Vec<NodeIdx>>,
}

impl PhysicalRing {
    /// Build a ring of `num_partitions` (must be a power of two, and at
    /// least the node count) over `nodes` with replication level
    /// `replication` (clamped to the node count).
    ///
    /// # Panics
    /// If `num_partitions` is not a power of two, is zero, or is smaller
    /// than the node count; or if `nodes` is empty or `replication` is 0.
    pub fn new(num_partitions: u32, nodes: Vec<NodeIdx>, replication: usize) -> PhysicalRing {
        assert!(
            num_partitions.is_power_of_two(),
            "partition count must be a power of two"
        );
        assert!(!nodes.is_empty(), "ring needs at least one node");
        assert!(replication >= 1, "replication level must be at least 1");
        assert!(
            num_partitions as usize >= nodes.len(),
            "need at least one partition per node"
        );
        let replication = replication.min(nodes.len());
        let mut ring = PhysicalRing {
            bits: num_partitions.trailing_zeros(),
            replication,
            nodes,
            replica_sets: Vec::new(),
        };
        ring.rebuild();
        ring
    }

    fn rebuild(&mut self) {
        let p = self.num_partitions() as usize;
        let n = self.nodes.len();
        self.replica_sets = (0..p)
            .map(|part| {
                // Walk the ring once from the partition's home position,
                // collecting distinct nodes until the set is full.
                let mut set = Vec::with_capacity(self.replication);
                let start = part % n;
                for off in 0..n {
                    if set.len() >= self.replication {
                        break;
                    }
                    if let Some(&cand) = self.nodes.get((start + off) % n) {
                        if !set.contains(&cand) {
                            set.push(cand);
                        }
                    }
                }
                set
            })
            .collect();
    }

    /// Number of partitions (a power of two).
    #[inline]
    pub fn num_partitions(&self) -> u32 {
        1 << self.bits
    }

    /// log2 of the partition count.
    #[inline]
    pub fn partition_bits(&self) -> u32 {
        self.bits
    }

    /// Replication level R.
    #[inline]
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The nodes currently in the ring, in ring order.
    pub fn nodes(&self) -> &[NodeIdx] {
        &self.nodes
    }

    /// Map a hash to its partition (the top `bits` of the hash).
    #[inline]
    pub fn partition_of_hash(&self, h: u64) -> PartitionId {
        PartitionId((h >> (64 - self.bits)) as u32)
    }

    /// Map a key to its partition.
    #[inline]
    pub fn partition_of_key(&self, key: &[u8]) -> PartitionId {
        self.partition_of_hash(hash_key(key))
    }

    /// The replica set of `p`: primary first, then `R-1` secondaries.
    /// Empty for a partition id outside the ring (callers treat that as
    /// "no replicas" instead of panicking on a request path).
    #[inline]
    pub fn replica_set(&self, p: PartitionId) -> &[NodeIdx] {
        self.replica_sets
            .get(p.0 as usize)
            .map_or(&[][..], Vec::as_slice)
    }

    /// The primary replica of `p` (the ring's first node if `p` is
    /// somehow outside the ring — degraded routing, not a panic).
    #[inline]
    pub fn primary(&self, p: PartitionId) -> NodeIdx {
        self.replica_set(p).first().copied().unwrap_or(NodeIdx(0))
    }

    /// Is `node` a member of `p`'s replica set?
    pub fn is_replica(&self, p: PartitionId, node: NodeIdx) -> bool {
        self.replica_set(p).contains(&node)
    }

    /// All partitions where `node` appears (as primary or secondary).
    pub fn partitions_of(&self, node: NodeIdx) -> Vec<PartitionId> {
        (0..self.num_partitions())
            .map(PartitionId)
            .filter(|&p| self.is_replica(p, node))
            .collect()
    }

    /// Pick a handoff node for partition `p`: "Any storage node in the
    /// system that is not already part of the effected replication set"
    /// (§4.4). Deterministic: the first eligible node walking the ring
    /// from `p`'s replica range, skipping `exclude` (e.g. other failed
    /// nodes).
    pub fn handoff_for(&self, p: PartitionId, exclude: &[NodeIdx]) -> Option<NodeIdx> {
        let n = self.nodes.len();
        let start = p.0 as usize % n;
        for off in 0..n {
            let Some(&cand) = self.nodes.get((start + off) % n) else {
                continue;
            };
            if !self.is_replica(p, cand) && !exclude.contains(&cand) {
                return Some(cand);
            }
        }
        None
    }

    /// Permanently add a node (ring reconfiguration, §4.4). Partitions are
    /// re-spread; returns the partitions whose replica set changed.
    pub fn add_node(&mut self, node: NodeIdx) -> Vec<PartitionId> {
        assert!(!self.nodes.contains(&node), "node already in ring");
        let before = self.replica_sets.clone();
        self.nodes.push(node);
        self.replication = self.replication.min(self.nodes.len());
        self.rebuild();
        self.diff(&before)
    }

    /// Permanently remove a node; returns the partitions whose replica set
    /// changed.
    ///
    /// # Panics
    /// If removing the last node.
    pub fn remove_node(&mut self, node: NodeIdx) -> Vec<PartitionId> {
        assert!(self.nodes.len() > 1, "cannot remove the last node");
        let before = self.replica_sets.clone();
        self.nodes.retain(|&n| n != node);
        self.replication = self.replication.min(self.nodes.len());
        self.rebuild();
        self.diff(&before)
    }

    fn diff(&self, before: &[Vec<NodeIdx>]) -> Vec<PartitionId> {
        self.replica_sets
            .iter()
            .enumerate()
            .filter(|&(i, set)| before.get(i) != Some(set))
            .map(|(i, _)| PartitionId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeIdx> {
        (0..n).map(NodeIdx).collect()
    }

    #[test]
    fn replica_sets_are_distinct_and_sized() {
        let ring = PhysicalRing::new(32, nodes(15), 3);
        for p in 0..32 {
            let set = ring.replica_set(PartitionId(p));
            assert_eq!(set.len(), 3);
            let mut uniq = set.to_vec();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "partition {p} has duplicate replicas");
        }
    }

    #[test]
    fn replication_clamped_to_node_count() {
        let ring = PhysicalRing::new(4, nodes(2), 5);
        assert_eq!(ring.replication(), 2);
        assert_eq!(ring.replica_set(PartitionId(0)).len(), 2);
    }

    #[test]
    fn primary_load_is_balanced() {
        // 64 partitions over 16 nodes: each node primary for exactly 4.
        let ring = PhysicalRing::new(64, nodes(16), 3);
        let mut counts = vec![0; 16];
        for p in 0..64 {
            counts[ring.primary(PartitionId(p)).0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn partition_of_hash_uses_top_bits() {
        let ring = PhysicalRing::new(16, nodes(4), 2);
        assert_eq!(ring.partition_of_hash(0), PartitionId(0));
        assert_eq!(ring.partition_of_hash(u64::MAX), PartitionId(15));
        assert_eq!(ring.partition_of_hash(1 << 60), PartitionId(1));
    }

    #[test]
    fn handoff_not_in_replica_set() {
        let ring = PhysicalRing::new(16, nodes(15), 3);
        for p in 0..16 {
            let p = PartitionId(p);
            let h = ring.handoff_for(p, &[]).unwrap();
            assert!(!ring.is_replica(p, h));
        }
    }

    #[test]
    fn handoff_respects_exclusions() {
        let ring = PhysicalRing::new(8, nodes(5), 3);
        let p = PartitionId(0);
        let h1 = ring.handoff_for(p, &[]).unwrap();
        let h2 = ring.handoff_for(p, &[h1]).unwrap();
        assert_ne!(h1, h2);
        assert!(!ring.is_replica(p, h2));
        // with everything excluded there is no handoff
        let all: Vec<_> = ring.nodes().to_vec();
        assert_eq!(ring.handoff_for(p, &all), None);
    }

    #[test]
    fn node_addition_moves_few_partitions() {
        let mut ring = PhysicalRing::new(64, nodes(8), 3);
        let changed = ring.add_node(NodeIdx(100));
        // Adding one node must not reshuffle everything: with round-robin
        // equal partitions some movement is expected, but the new node
        // must now appear somewhere and sets stay valid.
        assert!(!changed.is_empty());
        assert!(!ring.partitions_of(NodeIdx(100)).is_empty());
        for p in 0..64 {
            let set = ring.replica_set(PartitionId(p));
            let mut u = set.to_vec();
            u.sort();
            u.dedup();
            assert_eq!(u.len(), set.len());
        }
    }

    #[test]
    fn node_removal_keeps_coverage() {
        let mut ring = PhysicalRing::new(16, nodes(4), 3);
        ring.remove_node(NodeIdx(2));
        for p in 0..16 {
            let set = ring.replica_set(PartitionId(p));
            assert_eq!(set.len(), 3);
            assert!(!set.contains(&NodeIdx(2)));
        }
    }

    #[test]
    fn partitions_of_covers_every_partition_r_times() {
        let ring = PhysicalRing::new(32, nodes(8), 3);
        let total: usize = ring
            .nodes()
            .iter()
            .map(|&n| ring.partitions_of(n).len())
            .sum();
        assert_eq!(total, 32 * 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        PhysicalRing::new(12, nodes(4), 2);
    }
}

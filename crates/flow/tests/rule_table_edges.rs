//! Rule-table edge cases for the control-plane operations the NICE
//! metadata service performs: overlapping load-balancer divisions,
//! cookie-tagged rule removal when a node fails, and virtual-ring group
//! re-pointing after a two-phase node rejoin (§4.4–§4.5).

use std::rc::Rc;

use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowTable, GroupBucket, GroupId};
use nice_sim::{Ipv4, Mac, Packet, Port, SwitchAction, Time};

/// Same tag the metadata service stamps on load-balancer rules
/// (`COOKIE_LB | partition`).
const COOKIE_LB: u64 = 0x2000_0000;

/// The virtual subgroup prefix LB divisions nest under.
const VNET: Ipv4 = Ipv4::new(10, 128, 7, 0);

fn pkt(src: Ipv4, dst: Ipv4) -> Packet {
    Packet::udp(src, Mac(1), dst, 9000, 9000, 100, Rc::new(()))
}

fn forward_ports(acts: &[SwitchAction]) -> Vec<Port> {
    acts.iter()
        .map(|a| match a {
            SwitchAction::Forward { port, .. } => *port,
            other => panic!("expected Forward, got {other:?}"),
        })
        .collect()
}

#[test]
fn overlapping_lb_divisions_pick_most_specific() {
    // Two LB divisions for the same vring destination overlap on the
    // client source space: a /24 catch-all division and a /26 carve-out
    // inside it. The /26 must win for its clients (prefix specificity),
    // the /24 for everyone else — OpenFlow leaves equal-priority overlap
    // undefined; the table must not.
    let mut t = FlowTable::new();
    t.install(
        FlowRule::new(
            prio::LB,
            FlowMatch::any()
                .src_prefix(Ipv4::new(10, 0, 1, 0), 24)
                .dst_prefix(VNET, 24),
            vec![Action::Output(Port(1))],
        )
        .cookie(COOKIE_LB | 7),
        Time::ZERO,
    );
    t.install(
        FlowRule::new(
            prio::LB,
            FlowMatch::any()
                .src_prefix(Ipv4::new(10, 0, 1, 64), 26)
                .dst_prefix(VNET, 24),
            vec![Action::Output(Port(2))],
        )
        .cookie(COOKIE_LB | 7),
        Time::ZERO,
    );
    let dst = Ipv4::new(10, 128, 7, 9);
    let now = Time::from_us(1);

    let inside = t
        .apply(Port(0), &pkt(Ipv4::new(10, 0, 1, 70), dst), now)
        .unwrap();
    assert_eq!(
        forward_ports(&inside),
        vec![Port(2)],
        "/26 carve-out must win inside it"
    );

    let outside = t
        .apply(Port(0), &pkt(Ipv4::new(10, 0, 1, 9), dst), now)
        .unwrap();
    assert_eq!(
        forward_ports(&outside),
        vec![Port(1)],
        "/24 division serves the rest"
    );
}

#[test]
fn equal_specificity_overlap_resolved_by_install_order() {
    // Two divisions with *equal* specificity that still overlap (one
    // constrains the source prefix further, the other adds an L4 match).
    // The tie must break deterministically: the later install wins, and
    // re-installing the first flips the winner back.
    let mut t = FlowTable::new();
    let by_src = FlowMatch::any()
        .src_prefix(Ipv4::new(10, 0, 1, 0), 24)
        .dst_prefix(VNET, 24);
    let by_l4 = FlowMatch::any()
        .src_prefix(Ipv4::new(10, 0, 0, 0), 8)
        .dst_prefix(VNET, 24)
        .dst_port(9000);
    assert_eq!(by_src.specificity(), by_l4.specificity());

    t.install(
        FlowRule::new(prio::LB, by_src, vec![Action::Output(Port(1))]),
        Time::ZERO,
    );
    t.install(
        FlowRule::new(prio::LB, by_l4, vec![Action::Output(Port(2))]),
        Time::ZERO,
    );

    let p = pkt(Ipv4::new(10, 0, 1, 33), Ipv4::new(10, 128, 7, 1));
    let acts = t.apply(Port(0), &p, Time::from_us(1)).unwrap();
    assert_eq!(
        forward_ports(&acts),
        vec![Port(2)],
        "later install wins the tie"
    );

    // A control-plane refresh of the first division makes it newest.
    t.install(
        FlowRule::new(prio::LB, by_src, vec![Action::Output(Port(1))]),
        Time::from_us(2),
    );
    let acts = t.apply(Port(0), &p, Time::from_us(3)).unwrap();
    assert_eq!(forward_ports(&acts), vec![Port(1)], "refresh flips the tie");
}

#[test]
fn node_failure_removes_only_its_lb_division() {
    // The metadata service reacts to a node failure by deleting that
    // partition's LB rules via their cookie (metadata.rs uses
    // `remove_by_cookie(COOKIE_LB | p)`); traffic must fall back to the
    // underlying vring rule, and other partitions' divisions must survive.
    let mut t = FlowTable::new();
    let vnet2 = Ipv4::new(10, 128, 8, 0);
    t.install(
        FlowRule::new(
            prio::VRING,
            FlowMatch::any().dst_prefix(VNET, 24),
            vec![Action::Output(Port(9))],
        ),
        Time::ZERO,
    );
    for (i, div) in [Ipv4::new(10, 0, 1, 0), Ipv4::new(10, 0, 1, 128)]
        .into_iter()
        .enumerate()
    {
        t.install(
            FlowRule::new(
                prio::LB,
                FlowMatch::any().src_prefix(div, 25).dst_prefix(VNET, 24),
                vec![Action::Output(Port(i as u16 + 1))],
            )
            .cookie(COOKIE_LB | 7),
            Time::ZERO,
        );
    }
    t.install(
        FlowRule::new(
            prio::LB,
            FlowMatch::any()
                .src_prefix(Ipv4::new(10, 0, 1, 0), 24)
                .dst_prefix(vnet2, 24),
            vec![Action::Output(Port(5))],
        )
        .cookie(COOKIE_LB | 8),
        Time::ZERO,
    );
    assert_eq!(t.live_entries(Time::from_us(1)), 4);

    // Partition 7's primary fails: its divisions go away atomically.
    assert_eq!(t.remove_by_cookie(COOKIE_LB | 7, Time::from_us(5)), 2);
    assert_eq!(t.live_entries(Time::from_us(6)), 2);
    // Removing them again (duplicate failure report) is a no-op.
    assert_eq!(t.remove_by_cookie(COOKIE_LB | 7, Time::from_us(5)), 0);

    let p7 = pkt(Ipv4::new(10, 0, 1, 200), Ipv4::new(10, 128, 7, 3));
    let acts = t.apply(Port(0), &p7, Time::from_us(6)).unwrap();
    assert_eq!(
        forward_ports(&acts),
        vec![Port(9)],
        "falls back to the vring rule"
    );

    let p8 = pkt(Ipv4::new(10, 0, 1, 200), Ipv4::new(10, 128, 8, 3));
    let acts = t.apply(Port(0), &p8, Time::from_us(6)).unwrap();
    assert_eq!(
        forward_ports(&acts),
        vec![Port(5)],
        "partition 8's division survives"
    );
}

#[test]
fn rejoin_repoints_vring_group_buckets() {
    // A recovered node rejoins in two phases (§4.4): it first syncs while
    // the handoff node still serves, then the metadata service atomically
    // re-points the partition's multicast group buckets. Packets matched
    // before the switchover time keep the old replica set; packets after
    // it see the new one — no window with a partial set.
    let mut t = FlowTable::new();
    let g = GroupId(7);
    t.install(
        FlowRule::new(
            prio::VRING,
            FlowMatch::any().dst_prefix(VNET, 24),
            vec![Action::Group(g)],
        ),
        Time::ZERO,
    );
    let (a, b, c) = (
        Ipv4::new(10, 0, 0, 1),
        Ipv4::new(10, 0, 0, 2),
        Ipv4::new(10, 0, 0, 3),
    );
    t.set_group(
        g,
        vec![
            GroupBucket::rewrite_to(a, Mac(0xa), Port(1)),
            GroupBucket::rewrite_to(b, Mac(0xb), Port(2)),
        ],
        Time::ZERO,
    );

    let dests = |acts: &[SwitchAction]| -> Vec<(Ipv4, Port)> {
        acts.iter()
            .map(|x| match x {
                SwitchAction::Forward { port, pkt } => (pkt.dst, *port),
                other => panic!("expected Forward, got {other:?}"),
            })
            .collect()
    };
    let p = pkt(Ipv4::new(10, 0, 1, 1), Ipv4::new(10, 128, 7, 44));

    let before = t.apply(Port(0), &p, Time::from_us(10)).unwrap();
    assert_eq!(dests(&before), vec![(a, Port(1)), (b, Port(2))]);

    // Phase two of the rejoin: node C replaces the handoff node B.
    let switchover = Time::from_us(100);
    t.set_group(
        g,
        vec![
            GroupBucket::rewrite_to(a, Mac(0xa), Port(1)),
            GroupBucket::rewrite_to(c, Mac(0xc), Port(3)),
        ],
        switchover,
    );
    assert_eq!(t.live_groups(Time::from_us(99)), 1);

    let during = t.apply(Port(0), &p, Time::from_us(99)).unwrap();
    assert_eq!(
        dests(&during),
        vec![(a, Port(1)), (b, Port(2))],
        "old set until the switchover"
    );

    let after = t.apply(Port(0), &p, switchover).unwrap();
    assert_eq!(
        dests(&after),
        vec![(a, Port(1)), (c, Port(3))],
        "new set from the switchover"
    );

    // The group is replaced, never duplicated.
    assert_eq!(t.live_groups(Time::from_us(200)), 1);
    t.remove_group(g, Time::from_us(300));
    assert_eq!(t.live_groups(Time::from_us(300)), 0);
    assert!(t.apply(Port(0), &p, Time::from_us(301)).unwrap().is_empty());
}

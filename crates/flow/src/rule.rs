//! Flow-rule primitives: match fields and action lists.
//!
//! This mirrors the OpenFlow 1.3 subset the paper relies on (§2.2, §5):
//! matching on header fields with IP-prefix wildcards, and actions that
//! rewrite destination IP/MAC, output to a port, fan out through a group
//! (network-level multicast), punt to the controller, or drop.

use nice_sim::{Ipv4, Mac, Packet, Port, Proto};

/// A match over packet headers plus ingress port. `None` fields are
/// wildcards. IP fields match a prefix `(network, len)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<Port>,
    /// Exact destination MAC.
    pub eth_dst: Option<Mac>,
    /// Source IPv4 prefix.
    pub ip_src: Option<(Ipv4, u8)>,
    /// Destination IPv4 prefix.
    pub ip_dst: Option<(Ipv4, u8)>,
    /// IP protocol.
    pub proto: Option<Proto>,
    /// Exact source transport port.
    pub src_port: Option<u16>,
    /// Exact destination transport port.
    pub dst_port: Option<u16>,
}

impl FlowMatch {
    /// Match everything (the table-miss rule).
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// Restrict to a destination prefix.
    pub fn dst_prefix(mut self, net: Ipv4, len: u8) -> FlowMatch {
        assert!(len <= 32);
        self.ip_dst = Some((net.network(len), len));
        self
    }

    /// Restrict to an exact destination IP.
    pub fn dst_ip(self, ip: Ipv4) -> FlowMatch {
        self.dst_prefix(ip, 32)
    }

    /// Restrict to a source prefix.
    pub fn src_prefix(mut self, net: Ipv4, len: u8) -> FlowMatch {
        assert!(len <= 32);
        self.ip_src = Some((net.network(len), len));
        self
    }

    /// Restrict to an IP protocol.
    pub fn proto(mut self, p: Proto) -> FlowMatch {
        self.proto = Some(p);
        self
    }

    /// Restrict to an exact transport destination port.
    pub fn dst_port(mut self, p: u16) -> FlowMatch {
        self.dst_port = Some(p);
        self
    }

    /// Restrict to an exact transport source port.
    pub fn src_port(mut self, p: u16) -> FlowMatch {
        self.src_port = Some(p);
        self
    }

    /// Restrict to an ingress port.
    pub fn in_port(mut self, p: Port) -> FlowMatch {
        self.in_port = Some(p);
        self
    }

    /// Restrict to an exact destination MAC.
    pub fn eth_dst(mut self, m: Mac) -> FlowMatch {
        self.eth_dst = Some(m);
        self
    }

    /// Does this match cover `pkt` arriving on `in_port`?
    pub fn matches(&self, in_port: Port, pkt: &Packet) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if m != pkt.dst_mac {
                return false;
            }
        }
        if let Some((net, len)) = self.ip_src {
            if !pkt.src.in_prefix(net, len) {
                return false;
            }
        }
        if let Some((net, len)) = self.ip_dst {
            if !pkt.dst.in_prefix(net, len) {
                return false;
            }
        }
        if let Some(p) = self.proto {
            if p != pkt.proto {
                return false;
            }
        }
        if let Some(p) = self.src_port {
            if p != pkt.src_port {
                return false;
            }
        }
        if let Some(p) = self.dst_port {
            if p != pkt.dst_port {
                return false;
            }
        }
        true
    }

    /// A specificity score used to break ties among equal-priority rules:
    /// longer prefixes and more specified fields win. This keeps table
    /// behavior deterministic where OpenFlow leaves it undefined.
    pub fn specificity(&self) -> u32 {
        let mut s = 0u32;
        if self.in_port.is_some() {
            s += 8;
        }
        if self.eth_dst.is_some() {
            s += 48;
        }
        if let Some((_, len)) = self.ip_src {
            s += len as u32;
        }
        if let Some((_, len)) = self.ip_dst {
            s += len as u32;
        }
        if self.proto.is_some() {
            s += 8;
        }
        if self.src_port.is_some() {
            s += 16;
        }
        if self.dst_port.is_some() {
            s += 16;
        }
        s
    }
}

/// Identifies a group-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// One OpenFlow action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Rewrite the destination IPv4 address (virtual→physical mapping).
    SetIpDst(Ipv4),
    /// Rewrite the destination MAC address.
    SetMacDst(Mac),
    /// Rewrite the source IPv4 address.
    SetIpSrc(Ipv4),
    /// Transmit out of a port.
    Output(Port),
    /// Fan out through a group-table entry (multicast replication).
    Group(GroupId),
    /// Punt to the controller (packet-in).
    Controller,
    /// Explicitly drop.
    Drop,
}

/// A flow rule: priority + match + action list + timeouts.
#[derive(Debug, Clone)]
pub struct FlowRule {
    /// Higher priority rules are consulted first.
    pub priority: u16,
    /// The match.
    pub m: FlowMatch,
    /// Actions applied in order to matching packets.
    pub actions: Vec<Action>,
    /// Expire if unmatched for this long (`None` = no idle expiry).
    pub idle_timeout: Option<nice_sim::Time>,
    /// Expire this long after installation (`None` = permanent).
    pub hard_timeout: Option<nice_sim::Time>,
    /// Controller-chosen tag for bulk deletion.
    pub cookie: u64,
}

impl FlowRule {
    /// A permanent rule with the given priority, match, and actions.
    pub fn new(priority: u16, m: FlowMatch, actions: Vec<Action>) -> FlowRule {
        FlowRule {
            priority,
            m,
            actions,
            idle_timeout: None,
            hard_timeout: None,
            cookie: 0,
        }
    }

    /// Tag with a cookie.
    pub fn cookie(mut self, c: u64) -> FlowRule {
        self.cookie = c;
        self
    }

    /// Set an idle timeout.
    pub fn idle(mut self, t: nice_sim::Time) -> FlowRule {
        self.idle_timeout = Some(t);
        self
    }

    /// Set a hard timeout.
    pub fn hard(mut self, t: nice_sim::Time) -> FlowRule {
        self.hard_timeout = Some(t);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn pkt(src: Ipv4, dst: Ipv4, proto: Proto, sport: u16, dport: u16) -> Packet {
        match proto {
            Proto::Udp => Packet::udp(src, Mac(1), dst, sport, dport, 10, Rc::new(())),
            Proto::Tcp => Packet::tcp(src, Mac(1), dst, sport, dport, 10, Rc::new(())),
            Proto::Arp => Packet::arp_request(src, Mac(1), dst),
        }
    }

    #[test]
    fn wildcard_matches_all() {
        let m = FlowMatch::any();
        let p = pkt(
            Ipv4::new(1, 2, 3, 4),
            Ipv4::new(5, 6, 7, 8),
            Proto::Udp,
            1,
            2,
        );
        assert!(m.matches(Port(0), &p));
    }

    #[test]
    fn dst_prefix_matching() {
        let m = FlowMatch::any().dst_prefix(Ipv4::new(10, 10, 1, 0), 24);
        assert!(m.matches(
            Port(0),
            &pkt(
                Ipv4::new(1, 1, 1, 1),
                Ipv4::new(10, 10, 1, 99),
                Proto::Udp,
                1,
                2
            )
        ));
        assert!(!m.matches(
            Port(0),
            &pkt(
                Ipv4::new(1, 1, 1, 1),
                Ipv4::new(10, 10, 2, 99),
                Proto::Udp,
                1,
                2
            )
        ));
    }

    #[test]
    fn src_and_dst_combined() {
        // The load-balancing rules of §4.5 match both src and dst.
        let m = FlowMatch::any()
            .src_prefix(Ipv4::new(10, 0, 0, 0), 30)
            .dst_prefix(Ipv4::new(10, 10, 1, 0), 24);
        assert!(m.matches(
            Port(0),
            &pkt(
                Ipv4::new(10, 0, 0, 2),
                Ipv4::new(10, 10, 1, 5),
                Proto::Udp,
                1,
                2
            )
        ));
        assert!(!m.matches(
            Port(0),
            &pkt(
                Ipv4::new(10, 0, 0, 7),
                Ipv4::new(10, 10, 1, 5),
                Proto::Udp,
                1,
                2
            )
        ));
    }

    #[test]
    fn proto_and_ports() {
        let m = FlowMatch::any().proto(Proto::Udp).dst_port(9000);
        assert!(m.matches(
            Port(0),
            &pkt(
                Ipv4::new(1, 1, 1, 1),
                Ipv4::new(2, 2, 2, 2),
                Proto::Udp,
                5,
                9000
            )
        ));
        assert!(!m.matches(
            Port(0),
            &pkt(
                Ipv4::new(1, 1, 1, 1),
                Ipv4::new(2, 2, 2, 2),
                Proto::Tcp,
                5,
                9000
            )
        ));
        assert!(!m.matches(
            Port(0),
            &pkt(
                Ipv4::new(1, 1, 1, 1),
                Ipv4::new(2, 2, 2, 2),
                Proto::Udp,
                5,
                9001
            )
        ));
    }

    #[test]
    fn in_port_matching() {
        let m = FlowMatch::any().in_port(Port(3));
        let p = pkt(
            Ipv4::new(1, 1, 1, 1),
            Ipv4::new(2, 2, 2, 2),
            Proto::Udp,
            1,
            2,
        );
        assert!(m.matches(Port(3), &p));
        assert!(!m.matches(Port(4), &p));
    }

    #[test]
    fn specificity_orders_prefix_lengths() {
        let a = FlowMatch::any().dst_prefix(Ipv4::new(10, 0, 0, 0), 8);
        let b = FlowMatch::any().dst_prefix(Ipv4::new(10, 10, 0, 0), 16);
        let c = FlowMatch::any().dst_ip(Ipv4::new(10, 10, 0, 1));
        assert!(a.specificity() < b.specificity());
        assert!(b.specificity() < c.specificity());
    }
}

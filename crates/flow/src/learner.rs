//! The layer-3 learning controller of §5 ("Mapping Service").
//!
//! "The SDN controller implements a layer 3 learning switch. If the
//! controller receives a packet destined to a not-yet-seen IP address, the
//! controller will check if the address is a vnode address ... else the
//! controller will buffer the packet and broadcast an ARP request for the
//! unknown address. On receiving an ARP reply, the controller will update
//! the forwarding tables and forward the buffered packets."
//!
//! [`L3Learner`] is that logic as an embeddable component: the NICE
//! metadata service (and the plain NOOB deployments) hold one and delegate
//! `on_packet_in` to it. Virtual-ring rules are installed *by the
//! embedding controller* at higher priority, so only physical addresses
//! reach this learner.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use nice_sim::{ArpOp, Ctx, Ipv4, Mac, Packet, Port, Proto, SwitchId, Time};

use crate::rule::{Action, FlowMatch, FlowRule};
use crate::table::FlowTable;

/// Rule priorities used across the system, lowest to highest. More
/// specific intents sit at higher priorities so e.g. a load-balancing rule
/// (src+dst match) beats the plain vring rule for the same partition.
pub mod prio {
    /// Learned physical-address unicast rules.
    pub const PHYS: u16 = 100;
    /// Virtual-ring (unicast and multicast) mapping rules.
    pub const VRING: u16 = 200;
    /// Load-balancing rules matching (client src prefix, vring dst prefix).
    pub const LB: u16 = 300;
}

/// Cookie tag for rules installed by the learner.
pub const LEARNER_COOKIE: u64 = 0x4c4e; // "LN"

/// What the learner discovered during a packet-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnEvent {
    /// A new `(ip, mac)` binding appeared at `(sw, port)`.
    NewBinding {
        /// Switch that saw the host.
        sw: SwitchId,
        /// Port the host is attached to.
        port: Port,
        /// The host's IP.
        ip: Ipv4,
        /// The host's MAC.
        mac: Mac,
    },
}

/// Per-switch state the learner manages.
struct SwitchState {
    table: Rc<RefCell<FlowTable>>,
    ctrl_latency: Time,
    bindings: BTreeMap<Ipv4, (Mac, Port)>,
    pending: BTreeMap<Ipv4, Vec<Packet>>,
}

/// An embeddable L3 learning controller.
#[derive(Default)]
pub struct L3Learner {
    switches: BTreeMap<SwitchId, SwitchState>,
    /// Cap on buffered packets per unknown destination.
    pending_cap: usize,
}

impl L3Learner {
    /// Create a learner; `pending_cap` bounds buffered packets per unknown
    /// destination address.
    pub fn new() -> L3Learner {
        L3Learner {
            switches: BTreeMap::new(),
            pending_cap: 64,
        }
    }

    /// Register a switch this controller manages.
    pub fn add_switch(&mut self, sw: SwitchId, table: Rc<RefCell<FlowTable>>, ctrl_latency: Time) {
        self.switches.insert(
            sw,
            SwitchState {
                table,
                ctrl_latency,
                bindings: BTreeMap::new(),
                pending: BTreeMap::new(),
            },
        );
    }

    /// The learned `(mac, port)` for `ip` on `sw`, if any.
    pub fn binding(&self, sw: SwitchId, ip: Ipv4) -> Option<(Mac, Port)> {
        self.switches.get(&sw)?.bindings.get(&ip).copied()
    }

    /// Look up `ip` across all switches (single-switch deployments).
    pub fn binding_any(&self, ip: Ipv4) -> Option<(SwitchId, Mac, Port)> {
        let mut found: Option<(SwitchId, Mac, Port)> = None;
        for (&sw, st) in &self.switches {
            if let Some(&(mac, port)) = st.bindings.get(&ip) {
                // Deterministic: smallest switch id wins.
                if found.is_none_or(|(s, _, _)| sw < s) {
                    found = Some((sw, mac, port));
                }
            }
        }
        found
    }

    /// Handle a packet-in from `sw`; learns sources, resolves/floods ARP,
    /// installs unicast rules, and forwards buffered packets. Returns
    /// discovery events for the embedding controller.
    pub fn on_packet_in(
        &mut self,
        sw: SwitchId,
        in_port: Port,
        pkt: Packet,
        ctx: &mut Ctx,
    ) -> Vec<LearnEvent> {
        let mut events = Vec::new();
        let Some(st) = self.switches.get_mut(&sw) else {
            return events;
        };
        let now = ctx.now();

        // 1. Learn the source binding.
        if pkt.src != Ipv4::UNSPECIFIED && !pkt.src_mac.is_broadcast() {
            let fresh = st.bindings.get(&pkt.src) != Some(&(pkt.src_mac, in_port));
            if fresh {
                st.bindings.insert(pkt.src, (pkt.src_mac, in_port));
                st.table.borrow_mut().install(
                    FlowRule::new(
                        prio::PHYS,
                        FlowMatch::any().dst_ip(pkt.src),
                        vec![Action::SetMacDst(pkt.src_mac), Action::Output(in_port)],
                    )
                    .cookie(LEARNER_COOKIE),
                    now + st.ctrl_latency,
                );
                events.push(LearnEvent::NewBinding {
                    sw,
                    port: in_port,
                    ip: pkt.src,
                    mac: pkt.src_mac,
                });
                // Flush packets that were waiting for this destination.
                if let Some(waiting) = st.pending.remove(&pkt.src) {
                    for mut w in waiting {
                        w.dst_mac = pkt.src_mac;
                        ctx.packet_out(sw, in_port, w);
                    }
                }
            }
        }

        // 2. Protocol-specific behavior.
        match pkt.proto {
            Proto::Arp => {
                if let Some(&ArpOp::Request { target }) = pkt.payload_as::<ArpOp>() {
                    if target == pkt.src {
                        // Gratuitous ARP: learning (above) is all we need.
                    } else if let Some(&(mac, _)) = st.bindings.get(&target) {
                        // Proxy-ARP the answer straight back.
                        let reply = Packet::arp_reply(target, mac, pkt.src, pkt.src_mac);
                        ctx.packet_out(sw, in_port, reply);
                    } else {
                        // Unknown: flood the request.
                        ctx.packet_out_flood(sw, Some(in_port), pkt);
                    }
                }
                // ARP replies: nothing beyond learning.
            }
            Proto::Udp | Proto::Tcp => {
                match st.bindings.get(&pkt.dst) {
                    Some(&(mac, port)) => {
                        // Known destination whose rule hasn't activated yet
                        // (or was idle-expired): forward this packet now.
                        let mut out = pkt;
                        out.dst_mac = mac;
                        ctx.packet_out(sw, port, out);
                    }
                    None => {
                        // Buffer and ARP for it (§5).
                        let q = st.pending.entry(pkt.dst).or_default();
                        let first = q.is_empty();
                        if q.len() < self.pending_cap {
                            q.push(pkt.clone());
                        }
                        if first {
                            let req = Packet::arp_request(pkt.src, pkt.src_mac, pkt.dst);
                            ctx.packet_out_flood(sw, Some(in_port), req);
                        }
                    }
                }
            }
        }
        events
    }
}

//! The flow table and group table of one switch.
//!
//! The controller shares the table with the switch logic through
//! `Rc<RefCell<FlowTable>>` (the simulation is single-threaded). To model
//! the control-channel delay honestly, every mutation takes an *activation
//! time*: a rule installed "now" by the controller only starts matching at
//! `now + ctrl_latency`, which is how the paper's failure-hiding window
//! (the <2 s unavailability of Figure 11) arises.

use std::collections::HashMap;

use nice_sim::{Packet, Port, SwitchAction, Time};

use crate::rule::{Action, FlowMatch, FlowRule, GroupId};

/// A bucket of a group-table entry: the action list applied to one copy of
/// the packet (OpenFlow "all" groups — the multicast replication of §4.2).
#[derive(Debug, Clone)]
pub struct GroupBucket {
    /// Actions applied to this copy.
    pub actions: Vec<Action>,
}

impl GroupBucket {
    /// Bucket that rewrites dst IP/MAC and outputs — the shape every NICE
    /// multicast bucket takes.
    pub fn rewrite_to(ip: nice_sim::Ipv4, mac: nice_sim::Mac, port: Port) -> GroupBucket {
        GroupBucket {
            actions: vec![
                Action::SetIpDst(ip),
                Action::SetMacDst(mac),
                Action::Output(port),
            ],
        }
    }
}

#[derive(Debug, Clone)]
struct GroupVersion {
    active_from: Time,
    buckets: Vec<GroupBucket>,
}

#[derive(Debug)]
struct Entry {
    rule: FlowRule,
    installed_at: Time,
    active_from: Time,
    /// Pending deletion: stops matching at this time.
    dead_from: Option<Time>,
    last_match: Time,
    seq: u64,
    /// Packets matched.
    hits: u64,
    /// Bytes matched.
    bytes: u64,
}

impl Entry {
    fn live(&self, now: Time) -> bool {
        if now < self.active_from {
            return false;
        }
        if let Some(d) = self.dead_from {
            if now >= d {
                return false;
            }
        }
        if let Some(h) = self.rule.hard_timeout {
            if now >= self.installed_at + h {
                return false;
            }
        }
        if let Some(i) = self.rule.idle_timeout {
            if now >= self.last_match + i {
                return false;
            }
        }
        true
    }
}

/// Statistics of one rule, for tests and the scalability table.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleStats {
    /// Packets that matched this rule.
    pub hits: u64,
    /// Wire bytes that matched this rule.
    pub bytes: u64,
}

/// A switch's flow + group tables.
#[derive(Debug, Default)]
pub struct FlowTable {
    entries: Vec<Entry>,
    groups: HashMap<GroupId, Vec<GroupVersion>>,
    next_seq: u64,
    /// Installs since the last amortized purge of dead entries.
    installs_since_purge: u64,
    /// Latest packet time observed by `apply` (a safe, never-future purge
    /// threshold).
    last_seen: Time,
    /// Packets that matched no rule (counted before the miss behavior —
    /// punt to controller — is applied by the switch logic).
    pub misses: u64,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Install `rule`, active from `at`. Replaces any live rule with an
    /// identical (priority, match): OpenFlow flow-mod semantics.
    ///
    /// Long-dead entries are purged on an amortized schedule so repeated
    /// replacements (failure handling, load-balancer rebalancing) do not
    /// grow the per-packet scan without bound.
    pub fn install(&mut self, rule: FlowRule, at: Time) {
        self.installs_since_purge += 1;
        if self.installs_since_purge >= 256 {
            self.installs_since_purge = 0;
            // Purge against the last *observed* packet time — never a
            // future activation time, which could still be served between
            // now and then.
            let t = self.last_seen;
            self.purge(t);
        }
        for e in &mut self.entries {
            if e.rule.priority == rule.priority && e.rule.m == rule.m && e.dead_from.is_none() {
                e.dead_from = Some(at);
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Entry {
            installed_at: at,
            active_from: at,
            dead_from: None,
            last_match: at,
            seq,
            hits: 0,
            bytes: 0,
            rule,
        });
    }

    /// Mark every rule with `cookie` dead from `at`; returns how many were
    /// affected.
    pub fn remove_by_cookie(&mut self, cookie: u64, at: Time) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if e.rule.cookie == cookie && e.dead_from.is_none() {
                e.dead_from = Some(at);
                n += 1;
            }
        }
        n
    }

    /// Install (or atomically replace) group `id` with `buckets`, active
    /// from `at`.
    pub fn set_group(&mut self, id: GroupId, buckets: Vec<GroupBucket>, at: Time) {
        let versions = self.groups.entry(id).or_default();
        versions.retain(|v| v.active_from < at);
        versions.push(GroupVersion {
            active_from: at,
            buckets,
        });
    }

    /// Remove group `id` entirely from `at` (an empty version).
    pub fn remove_group(&mut self, id: GroupId, at: Time) {
        self.set_group(id, Vec::new(), at);
    }

    /// Number of live flow entries at `now` — the forwarding-table
    /// occupancy of the §4.6 scalability analysis.
    pub fn live_entries(&self, now: Time) -> usize {
        self.entries.iter().filter(|e| e.live(now)).count()
    }

    /// Number of live groups (with at least one bucket) at `now`.
    pub fn live_groups(&self, now: Time) -> usize {
        self.groups
            .values()
            .filter(|vs| {
                vs.iter()
                    .filter(|v| v.active_from <= now)
                    .max_by_key(|v| v.active_from)
                    .is_some_and(|v| !v.buckets.is_empty())
            })
            .count()
    }

    /// Stats of the highest-priority live rule matching `(priority, m)`.
    pub fn rule_stats(&self, priority: u16, m: &FlowMatch, now: Time) -> Option<RuleStats> {
        self.entries
            .iter()
            .filter(|e| e.live(now) && e.rule.priority == priority && e.rule.m == *m)
            .max_by_key(|e| e.seq)
            .map(|e| RuleStats {
                hits: e.hits,
                bytes: e.bytes,
            })
    }

    /// Drop dead entries (bookkeeping only; matching already ignores them).
    pub fn purge(&mut self, now: Time) {
        self.entries.retain(|e| {
            e.live(now) || e.active_from > now // keep not-yet-active rules
        });
    }

    fn group_buckets(&self, id: GroupId, now: Time) -> Option<&[GroupBucket]> {
        let versions = self.groups.get(&id)?;
        versions
            .iter()
            .filter(|v| v.active_from <= now)
            .max_by_key(|v| v.active_from)
            .map(|v| v.buckets.as_slice())
    }

    /// Match `pkt` (arrived on `in_port` at `now`) and apply the winning
    /// rule's actions, producing switch actions. Returns `None` on a table
    /// miss (the caller decides the miss behavior).
    pub fn apply(&mut self, in_port: Port, pkt: &Packet, now: Time) -> Option<Vec<SwitchAction>> {
        self.last_seen = self.last_seen.max(now);
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.live(now) || !e.rule.m.matches(in_port, pkt) {
                continue;
            }
            let better = match best {
                None => true,
                Some(j) => {
                    let b = &self.entries[j];
                    let ka = (e.rule.priority, e.rule.m.specificity(), e.seq);
                    let kb = (b.rule.priority, b.rule.m.specificity(), b.seq);
                    ka > kb
                }
            };
            if better {
                best = Some(i);
            }
        }
        let Some(i) = best else {
            self.misses += 1;
            return None;
        };
        self.entries[i].last_match = now;
        self.entries[i].hits += 1;
        self.entries[i].bytes += pkt.wire_size as u64;
        let actions = self.entries[i].rule.actions.clone();
        Some(self.run_actions(&actions, pkt, now))
    }

    /// Apply an action list to (a copy of) `pkt`.
    fn run_actions(&self, actions: &[Action], pkt: &Packet, now: Time) -> Vec<SwitchAction> {
        let mut out = Vec::new();
        let mut cur = pkt.clone();
        for act in actions {
            match *act {
                Action::SetIpDst(ip) => cur.dst = ip,
                Action::SetMacDst(m) => cur.dst_mac = m,
                Action::SetIpSrc(ip) => cur.src = ip,
                Action::Output(port) => out.push(SwitchAction::Forward {
                    port,
                    pkt: cur.clone(),
                }),
                Action::Controller => out.push(SwitchAction::ToController { pkt: cur.clone() }),
                Action::Group(gid) => {
                    if let Some(buckets) = self.group_buckets(gid, now) {
                        // Each bucket operates on an independent copy.
                        let copies: Vec<Vec<Action>> =
                            buckets.iter().map(|b| b.actions.clone()).collect();
                        for b in copies {
                            out.extend(self.run_actions(&b, &cur, now));
                        }
                    }
                }
                Action::Drop => return Vec::new(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nice_sim::{Ipv4, Mac};
    use std::rc::Rc;

    fn pkt(dst: Ipv4) -> Packet {
        Packet::udp(Ipv4::new(10, 0, 0, 1), Mac(1), dst, 1, 2, 10, Rc::new(()))
    }

    fn fwd(port: u16) -> Vec<Action> {
        vec![Action::Output(Port(port))]
    }

    #[test]
    fn priority_wins() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, FlowMatch::any(), fwd(1)), Time::ZERO);
        t.install(
            FlowRule::new(10, FlowMatch::any().dst_ip(Ipv4::new(10, 10, 0, 1)), fwd(2)),
            Time::ZERO,
        );
        let acts = t
            .apply(Port(0), &pkt(Ipv4::new(10, 10, 0, 1)), Time::from_us(1))
            .unwrap();
        match &acts[0] {
            SwitchAction::Forward { port, .. } => assert_eq!(*port, Port(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(
                5,
                FlowMatch::any().dst_prefix(Ipv4::new(10, 10, 0, 0), 16),
                fwd(1),
            ),
            Time::ZERO,
        );
        t.install(
            FlowRule::new(
                5,
                FlowMatch::any().dst_prefix(Ipv4::new(10, 10, 1, 0), 24),
                fwd(2),
            ),
            Time::ZERO,
        );
        let acts = t
            .apply(Port(0), &pkt(Ipv4::new(10, 10, 1, 9)), Time::from_us(1))
            .unwrap();
        match &acts[0] {
            SwitchAction::Forward { port, .. } => assert_eq!(*port, Port(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn activation_time_respected() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(1, FlowMatch::any(), fwd(1)),
            Time::from_us(100),
        );
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(50))
            .is_none());
        assert_eq!(t.misses, 1);
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(100))
            .is_some());
    }

    #[test]
    fn cookie_removal_takes_effect_later() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(1, FlowMatch::any(), fwd(1)).cookie(7),
            Time::ZERO,
        );
        assert_eq!(t.remove_by_cookie(7, Time::from_us(10)), 1);
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(5))
            .is_some());
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(10))
            .is_none());
    }

    #[test]
    fn reinstall_replaces_same_match() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, FlowMatch::any(), fwd(1)), Time::ZERO);
        t.install(
            FlowRule::new(1, FlowMatch::any(), fwd(2)),
            Time::from_us(10),
        );
        // before the replacement activates, old rule matches
        let acts = t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(5))
            .unwrap();
        assert!(matches!(
            acts[0],
            SwitchAction::Forward { port: Port(1), .. }
        ));
        let acts = t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(10))
            .unwrap();
        assert!(matches!(
            acts[0],
            SwitchAction::Forward { port: Port(2), .. }
        ));
        assert_eq!(t.live_entries(Time::from_us(10)), 1);
    }

    #[test]
    fn hard_and_idle_timeouts() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(1, FlowMatch::any(), fwd(1)).hard(Time::from_us(100)),
            Time::ZERO,
        );
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(99))
            .is_some());
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(100))
            .is_none());

        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(1, FlowMatch::any(), fwd(1)).idle(Time::from_us(50)),
            Time::ZERO,
        );
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(40))
            .is_some());
        // refreshed by the match at 40us: still alive at 80us
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(80))
            .is_some());
        // but dies after 50us of silence
        assert!(t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(131))
            .is_none());
    }

    #[test]
    fn rewrite_then_output() {
        let mut t = FlowTable::new();
        let phys = Ipv4::new(10, 0, 0, 9);
        t.install(
            FlowRule::new(
                10,
                FlowMatch::any().dst_prefix(Ipv4::new(10, 10, 1, 0), 24),
                vec![
                    Action::SetIpDst(phys),
                    Action::SetMacDst(Mac(9)),
                    Action::Output(Port(4)),
                ],
            ),
            Time::ZERO,
        );
        let acts = t
            .apply(Port(0), &pkt(Ipv4::new(10, 10, 1, 77)), Time::from_us(1))
            .unwrap();
        match &acts[0] {
            SwitchAction::Forward { port, pkt } => {
                assert_eq!(*port, Port(4));
                assert_eq!(pkt.dst, phys);
                assert_eq!(pkt.dst_mac, Mac(9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_multicast_rewrites_per_bucket() {
        let mut t = FlowTable::new();
        let g = GroupId(3);
        t.set_group(
            g,
            vec![
                GroupBucket::rewrite_to(Ipv4::new(10, 0, 0, 1), Mac(1), Port(1)),
                GroupBucket::rewrite_to(Ipv4::new(10, 0, 0, 2), Mac(2), Port(2)),
                GroupBucket::rewrite_to(Ipv4::new(10, 0, 0, 3), Mac(3), Port(3)),
            ],
            Time::ZERO,
        );
        t.install(
            FlowRule::new(
                10,
                FlowMatch::any().dst_prefix(Ipv4::new(10, 11, 1, 0), 24),
                vec![Action::Group(g)],
            ),
            Time::ZERO,
        );
        let acts = t
            .apply(Port(0), &pkt(Ipv4::new(10, 11, 1, 5)), Time::from_us(1))
            .unwrap();
        assert_eq!(acts.len(), 3);
        let mut dsts: Vec<(Ipv4, Port)> = acts
            .iter()
            .map(|a| match a {
                SwitchAction::Forward { port, pkt } => (pkt.dst, *port),
                other => panic!("{other:?}"),
            })
            .collect();
        dsts.sort();
        assert_eq!(
            dsts,
            vec![
                (Ipv4::new(10, 0, 0, 1), Port(1)),
                (Ipv4::new(10, 0, 0, 2), Port(2)),
                (Ipv4::new(10, 0, 0, 3), Port(3)),
            ]
        );
    }

    #[test]
    fn group_replacement_versioned() {
        let mut t = FlowTable::new();
        let g = GroupId(1);
        t.set_group(
            g,
            vec![GroupBucket::rewrite_to(
                Ipv4::new(1, 0, 0, 1),
                Mac(1),
                Port(1),
            )],
            Time::ZERO,
        );
        t.set_group(
            g,
            vec![
                GroupBucket::rewrite_to(Ipv4::new(1, 0, 0, 2), Mac(2), Port(2)),
                GroupBucket::rewrite_to(Ipv4::new(1, 0, 0, 3), Mac(3), Port(3)),
            ],
            Time::from_us(10),
        );
        t.install(
            FlowRule::new(1, FlowMatch::any(), vec![Action::Group(g)]),
            Time::ZERO,
        );
        assert_eq!(
            t.apply(Port(0), &pkt(Ipv4::new(9, 9, 9, 9)), Time::from_us(5))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            t.apply(Port(0), &pkt(Ipv4::new(9, 9, 9, 9)), Time::from_us(10))
                .unwrap()
                .len(),
            2
        );
        assert_eq!(t.live_groups(Time::from_us(10)), 1);
        t.remove_group(g, Time::from_us(20));
        assert_eq!(t.live_groups(Time::from_us(20)), 0);
    }

    #[test]
    fn drop_action() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(1, FlowMatch::any(), vec![Action::Drop]),
            Time::ZERO,
        );
        let acts = t
            .apply(Port(0), &pkt(Ipv4::new(1, 1, 1, 1)), Time::from_us(1))
            .unwrap();
        assert!(acts.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        let m = FlowMatch::any();
        t.install(FlowRule::new(1, m, fwd(1)), Time::ZERO);
        let p = pkt(Ipv4::new(1, 1, 1, 1));
        t.apply(Port(0), &p, Time::from_us(1));
        t.apply(Port(0), &p, Time::from_us(2));
        let s = t.rule_stats(1, &m, Time::from_us(3)).unwrap();
        assert_eq!(s.hits, 2);
        assert_eq!(s.bytes, 2 * p.wire_size as u64);
    }

    #[test]
    fn purge_drops_dead_keeps_future() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(1, FlowMatch::any(), fwd(1)).hard(Time::from_us(10)),
            Time::ZERO,
        );
        t.install(FlowRule::new(2, FlowMatch::any(), fwd(2)), Time::from_ms(1));
        t.purge(Time::from_us(500));
        assert_eq!(t.live_entries(Time::from_us(500)), 0);
        assert_eq!(t.live_entries(Time::from_ms(1)), 1);
    }
}

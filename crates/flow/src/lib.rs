//! # nice-flow — OpenFlow-style flow tables and SDN control substrate
//!
//! The paper's network-integrated design rests on the OpenFlow 1.3
//! capabilities summarized in its §2.2: priority match rules over packet
//! headers (with IP-prefix wildcards), action lists that rewrite
//! destination IP/MAC and output to ports, group tables for in-network
//! multicast, rule timeouts, and a controller reached via packet-in.
//! This crate implements exactly that subset over `nice-sim` switches:
//!
//! * [`FlowMatch`] / [`Action`] / [`FlowRule`] — match-action rules,
//! * [`FlowTable`] — per-switch flow + group tables with *time-activated*
//!   mutations (a rule installed by the controller only matches after the
//!   control-channel latency),
//! * [`FlowSwitch`] — the `nice_sim::SwitchLogic` that consults the table
//!   and punts ARP/misses to the controller,
//! * [`L3Learner`] — the embeddable layer-3 learning controller of the
//!   paper's §5 (learn source bindings, proxy/flood ARP, buffer packets
//!   destined to unknown addresses).

#![warn(missing_docs)]

pub mod learner;
pub mod rule;
pub mod switch;
pub mod table;

pub use learner::{prio, L3Learner, LearnEvent, LEARNER_COOKIE};
pub use rule::{Action, FlowMatch, FlowRule, GroupId};
pub use switch::FlowSwitch;
pub use table::{FlowTable, GroupBucket, RuleStats};

#[cfg(test)]
mod integration_tests {
    //! End-to-end: two hosts behind a FlowSwitch with a learning
    //! controller — traffic to a fresh address triggers packet-in, ARP
    //! resolution, rule installation, and eventual direct forwarding.

    use super::*;
    use nice_sim::{
        App, ChannelCfg, Ctx, HostCfg, Ipv4, Mac, Packet, Port, Simulation, SwitchCfg, SwitchId,
        Time,
    };
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Controller app that just embeds the learner.
    struct Controller {
        learner: L3Learner,
        events: Vec<LearnEvent>,
    }

    impl App for Controller {
        fn on_packet_in(&mut self, sw: SwitchId, in_port: Port, pkt: Packet, ctx: &mut Ctx) {
            let ev = self.learner.on_packet_in(sw, in_port, pkt, ctx);
            self.events.extend(ev);
        }
    }

    struct Sender {
        peer: Ipv4,
        sent: u32,
    }
    impl App for Sender {
        fn on_start(&mut self, ctx: &mut Ctx) {
            // Fire a few packets over time; early ones exercise the
            // packet-in path, later ones the installed rule.
            for i in 0..5u64 {
                ctx.set_timer(Time::from_ms(i), 100 + i);
            }
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx) {
            let p = Packet::udp(
                ctx.ip(),
                ctx.mac(),
                self.peer,
                1,
                2,
                100,
                Rc::new(self.sent),
            );
            self.sent += 1;
            ctx.send(p);
        }
    }

    #[derive(Default)]
    struct Receiver {
        got: Vec<u32>,
    }
    impl App for Receiver {
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx) {
            self.got.push(*pkt.payload_as::<u32>().unwrap());
        }
    }

    #[test]
    fn learning_path_end_to_end() {
        let mut sim = Simulation::new(11);
        let table = Rc::new(RefCell::new(FlowTable::new()));
        let sw_cfg = SwitchCfg::default();
        let sw = sim.add_switch(Box::new(FlowSwitch::new(Rc::clone(&table))), sw_cfg);

        let mut learner = L3Learner::new();
        learner.add_switch(sw, Rc::clone(&table), sw_cfg.ctrl_latency);
        let ctrl = sim.add_host(
            Box::new(Controller {
                learner,
                events: vec![],
            }),
            HostCfg::new(Ipv4::new(10, 0, 0, 100), Mac(100)),
        );
        sim.connect(ctrl, sw, ChannelCfg::gigabit());
        sim.set_controller(sw, ctrl);

        let b_ip = Ipv4::new(10, 0, 0, 2);
        let a = sim.add_host(
            Box::new(Sender {
                peer: b_ip,
                sent: 0,
            }),
            HostCfg::new(Ipv4::new(10, 0, 0, 1), Mac(1)),
        );
        let b = sim.add_host(Box::new(Receiver::default()), HostCfg::new(b_ip, Mac(2)));
        sim.connect(a, sw, ChannelCfg::gigabit());
        sim.connect(b, sw, ChannelCfg::gigabit());

        sim.run_until(Time::from_ms(20));

        // All five packets arrive exactly once, in order (no duplication
        // from the learning path).
        assert_eq!(sim.app::<Receiver>(b).got, vec![0, 1, 2, 3, 4]);
        // The controller learned both hosts (from their gratuitous ARPs).
        let c = sim.app::<Controller>(ctrl);
        assert!(c.learner.binding(sw, b_ip).is_some());
        assert!(c.learner.binding(sw, Ipv4::new(10, 0, 0, 1)).is_some());
        assert!(!c.events.is_empty());
        // Later packets were switched in hardware: the phys rule has hits.
        let stats =
            table
                .borrow()
                .rule_stats(prio::PHYS, &FlowMatch::any().dst_ip(b_ip), sim.now());
        assert!(stats.is_some_and(|s| s.hits >= 1));
    }

    #[test]
    fn unknown_destination_buffers_then_delivers() {
        // A host that never announces (announce_on_boot = false) is only
        // discoverable via the controller's ARP flood; the first packet to
        // it must still be delivered (buffered then flushed).
        let mut sim = Simulation::new(12);
        let table = Rc::new(RefCell::new(FlowTable::new()));
        let sw_cfg = SwitchCfg::default();
        let sw = sim.add_switch(Box::new(FlowSwitch::new(Rc::clone(&table))), sw_cfg);
        let mut learner = L3Learner::new();
        learner.add_switch(sw, Rc::clone(&table), sw_cfg.ctrl_latency);
        let ctrl = sim.add_host(
            Box::new(Controller {
                learner,
                events: vec![],
            }),
            HostCfg::new(Ipv4::new(10, 0, 0, 100), Mac(100)),
        );
        sim.connect(ctrl, sw, ChannelCfg::gigabit());
        sim.set_controller(sw, ctrl);

        let b_ip = Ipv4::new(10, 0, 0, 2);
        let a = sim.add_host(
            Box::new(Sender {
                peer: b_ip,
                sent: 0,
            }),
            HostCfg::new(Ipv4::new(10, 0, 0, 1), Mac(1)),
        );
        let mut b_cfg = HostCfg::new(b_ip, Mac(2));
        b_cfg.announce_on_boot = false;
        let b = sim.add_host(Box::new(Receiver::default()), b_cfg);
        sim.connect(a, sw, ChannelCfg::gigabit());
        sim.connect(b, sw, ChannelCfg::gigabit());

        sim.run_until(Time::from_ms(20));
        assert_eq!(sim.app::<Receiver>(b).got, vec![0, 1, 2, 3, 4]);
    }
}

#[cfg(test)]
mod multi_switch_tests {
    //! "NICE can readily support multi-switch platforms, as the controller
    //! will install the same rules on all participating switches" (§6).
    //! Two flow switches joined by a trunk: a virtual-address packet is
    //! rewritten at the first switch it hits and forwarded across the
    //! trunk by physical rules.

    use super::*;
    use nice_sim::{
        App, ChannelCfg, Ctx, HostCfg, Ipv4, Mac, Packet, Port, Simulation, SwitchCfg, Time,
    };
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct Sink {
        got: Vec<Ipv4>,
    }
    impl App for Sink {
        fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx) {
            self.got.push(pkt.dst);
        }
    }
    struct Talker {
        vaddr: Ipv4,
    }
    impl App for Talker {
        fn on_start(&mut self, ctx: &mut Ctx) {
            let p = Packet::udp(ctx.ip(), ctx.mac(), self.vaddr, 7, 7, 64, Rc::new(()));
            ctx.send(p);
        }
    }

    #[test]
    fn vring_rewrite_travels_across_a_trunk() {
        let mut sim = Simulation::new(5);
        let t1 = Rc::new(RefCell::new(FlowTable::new()));
        let t2 = Rc::new(RefCell::new(FlowTable::new()));
        let sw1 = sim.add_switch(
            Box::new(FlowSwitch::new(Rc::clone(&t1))),
            SwitchCfg::default(),
        );
        let sw2 = sim.add_switch(
            Box::new(FlowSwitch::new(Rc::clone(&t2))),
            SwitchCfg::default(),
        );

        // client on sw1 (port 0), server on sw2 (port 0), trunk between.
        let client_ip = Ipv4::new(10, 0, 0, 1);
        let server_ip = Ipv4::new(10, 0, 0, 2);
        let vaddr = Ipv4::new(10, 10, 3, 9);
        let client = sim.add_host(Box::new(Talker { vaddr }), HostCfg::new(client_ip, Mac(1)));
        let server = sim.add_host(Box::new(Sink::default()), HostCfg::new(server_ip, Mac(2)));
        let _p_client = sim.connect(client, sw1, ChannelCfg::gigabit());
        let _p_server = sim.connect(server, sw2, ChannelCfg::gigabit());
        let (trunk1, _trunk2) = sim.connect_switches(sw1, sw2, ChannelCfg::gigabit());

        // The controller installs the SAME vring rule on both switches
        // (rewrite to the server's physical address); physical rules
        // differ per switch (ports differ).
        for (t, phys_port) in [(&t1, trunk1), (&t2, Port(0))] {
            t.borrow_mut().install(
                FlowRule::new(
                    prio::VRING,
                    FlowMatch::any().dst_prefix(Ipv4::new(10, 10, 3, 0), 24),
                    vec![
                        Action::SetIpDst(server_ip),
                        Action::SetMacDst(Mac(2)),
                        Action::Output(phys_port),
                    ],
                ),
                Time::ZERO,
            );
            t.borrow_mut().install(
                FlowRule::new(
                    prio::PHYS,
                    FlowMatch::any().dst_ip(server_ip),
                    vec![Action::SetMacDst(Mac(2)), Action::Output(phys_port)],
                ),
                Time::ZERO,
            );
        }

        sim.run_until(Time::from_ms(5));
        let got = &sim.app::<Sink>(server).got;
        assert_eq!(got.len(), 1, "delivered across the trunk exactly once");
        assert_eq!(got[0], server_ip, "virtual destination was rewritten");
    }
}

//! The OpenFlow switch logic: a [`FlowTable`] shared with the controller.

use std::cell::RefCell;
use std::rc::Rc;

use nice_sim::{Packet, Port, Proto, SwitchAction, SwitchLogic, SwitchView, Time};

use crate::table::FlowTable;

/// OpenFlow-style switch behavior: match the shared flow table; punt ARP
/// and table misses to the controller (packet-in), as the paper's learning
/// switch does (§5 "Mapping Service").
pub struct FlowSwitch {
    table: Rc<RefCell<FlowTable>>,
}

impl FlowSwitch {
    /// Create a switch logic over a shared table.
    pub fn new(table: Rc<RefCell<FlowTable>>) -> FlowSwitch {
        FlowSwitch { table }
    }

    /// The shared table handle (give a clone of this to the controller).
    pub fn table(&self) -> Rc<RefCell<FlowTable>> {
        Rc::clone(&self.table)
    }
}

impl SwitchLogic for FlowSwitch {
    fn handle(
        &mut self,
        _view: SwitchView,
        in_port: Port,
        pkt: Packet,
        now: Time,
    ) -> Vec<SwitchAction> {
        // ARP always goes to the controller: it owns address resolution.
        if pkt.proto == Proto::Arp {
            return vec![SwitchAction::ToController { pkt }];
        }
        match self.table.borrow_mut().apply(in_port, &pkt, now) {
            Some(actions) => actions,
            None => vec![SwitchAction::ToController { pkt }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Action, FlowMatch, FlowRule};
    use nice_sim::{Ipv4, Mac};
    use std::rc::Rc as StdRc;

    fn view() -> SwitchView {
        SwitchView {
            switch: 0,
            num_ports: 4,
            controller: None,
        }
    }

    #[test]
    fn arp_always_punted() {
        let table = StdRc::new(RefCell::new(FlowTable::new()));
        // even with a match-all rule installed, ARP goes to the controller
        table.borrow_mut().install(
            FlowRule::new(1, FlowMatch::any(), vec![Action::Output(Port(1))]),
            Time::ZERO,
        );
        let mut sw = FlowSwitch::new(StdRc::clone(&table));
        let arp = Packet::arp_request(Ipv4::new(1, 0, 0, 1), Mac(1), Ipv4::new(1, 0, 0, 2));
        let acts = sw.handle(view(), Port(0), arp, Time::from_us(1));
        assert!(matches!(acts[0], SwitchAction::ToController { .. }));
    }

    #[test]
    fn miss_punts_match_forwards() {
        let table = StdRc::new(RefCell::new(FlowTable::new()));
        let mut sw = FlowSwitch::new(StdRc::clone(&table));
        let pkt = Packet::udp(
            Ipv4::new(1, 0, 0, 1),
            Mac(1),
            Ipv4::new(1, 0, 0, 2),
            1,
            2,
            8,
            StdRc::new(()),
        );
        let acts = sw.handle(view(), Port(0), pkt.clone(), Time::from_us(1));
        assert!(matches!(acts[0], SwitchAction::ToController { .. }));
        table.borrow_mut().install(
            FlowRule::new(1, FlowMatch::any(), vec![Action::Output(Port(2))]),
            Time::from_us(1),
        );
        let acts = sw.handle(view(), Port(0), pkt, Time::from_us(2));
        assert!(matches!(
            acts[0],
            SwitchAction::Forward { port: Port(2), .. }
        ));
    }
}

//! kv-core — the system-agnostic KV substrate shared by NICEKV and NOOB.
//!
//! The two systems in this workspace differ in *routing policy*: NICE
//! addresses replicas through switch-resident virtual rings and
//! multicast; the NOOB baseline runs full-membership end-host
//! replication over unicast. Everything else — the object store and
//! persistent log, the 2PC and direct replication state machines, §4.4
//! lock resolution, the client retry engine, the counters — is protocol,
//! not policy, and lives here exactly once.
//!
//! Layering (enforced by `cargo xtask lint` rule `layering`):
//!
//! ```text
//!   nicekv, noob        policy adapters: wire formats, routing, timers
//!        │                 (no store mutation, no lock tables)
//!        ▼
//!   kv-core             protocol: ObjectStore, TwoPcEngine, ClientCore
//!        │                 (no dependency on nice-flow / nice-ring)
//!        ▼
//!   node-rt             host boundary: NodeIo, Time, packets
//!                         (hosted by the simulator or the UDP runtime)
//! ```
//!
//! The engine is transport-free: transitions return [`Effect`]s the
//! adapter turns into wire messages and timers, so the systems cannot
//! drift apart on protocol logic.

#![warn(missing_docs)]

mod chaos;
mod client;
mod engine;
mod error;
pub mod explore;
mod history;
mod spec;
mod store;
mod telemetry;
mod types;
mod wal;

pub use chaos::{AdminEvent, ChaosPlan, ChaosSpec, CrashEvent, IsolationEvent};
pub use client::{
    Attempt, ClientCore, ClientOp, Issue, KvClient, OpRecord, ReplyAction, RetryAction,
    RetryPolicy, IDLE_POLL, NOT_FOUND_BACKOFF, TOK_RETRY_BASE, TOK_START,
};
pub use engine::{
    Counters, Effect, EngineCfg, EngineRole, Group, LockResolution, ReplicationEngine, TwoPcEngine,
};
pub use error::KvError;
pub use explore::{
    conflict_dependence, normal_form, Choice, ChoiceKind, DepFn, ExploreStats, Explorer, Footprint,
    Model, Schedule, Visit,
};
pub use history::{History, HistoryOp, Outcome, Violation, ViolationKind, MAX_OPS_PER_KEY};
pub use spec::ClusterSpec;
pub use store::{Committed, LogEntry, ObjectStore, Pending, StorageCfg};
pub use telemetry::{
    LatencyHistogram, MetricsRegistry, Phase, Telemetry, TelemetryCfg, TraceEvent, TraceSink,
};
pub use types::{
    NodeIdx, OpId, PartitionId, Timestamp, Value, CTRL_COST, CTRL_MSG_BYTES, DATA_SEND_COST,
    DATA_SEND_THRESHOLD, REQ_COST,
};
pub use wal::{crc32, DurableLog, FileWal, MemLog, WalRecord};

//! The system-agnostic client core: closed-loop operation issue, the
//! retry/timeout engine, and completion records.
//!
//! Both systems' clients run the same loop — pop an op, stamp an
//! [`OpId`], send an attempt, arm a retry timer, classify the reply —
//! and differ only in *where* the attempt goes (NICE: reliable-UDP to a
//! vnode address; NOOB: TCP to a gateway or storage node). This module
//! owns the loop; the client adapters own the wire. Core methods return
//! small verdict enums ([`Issue`], [`ReplyAction`], [`RetryAction`])
//! instead of sending anything.

use std::collections::VecDeque;

use node_rt::{Ipv4, Time};

use crate::error::KvError;
use crate::telemetry::{MetricsRegistry, Phase, Telemetry};
use crate::types::{OpId, Value};

/// Timer token for the start/idle-poll timer.
pub const TOK_START: u64 = 1;
/// Idle poll period: a drained client re-checks its queue at this rate so
/// harnesses can push more work mid-run.
pub const IDLE_POLL: Time = Time::from_ms(10);
/// Retry timers carry the op sequence in the low bits.
pub const TOK_RETRY_BASE: u64 = 1 << 32;
/// Backoff before re-asking for a key that was not found (only with
/// [`ClientCore::retry_not_found`]).
pub const NOT_FOUND_BACKOFF: Time = Time::from_ms(5);

/// One client operation.
#[derive(Debug, Clone)]
pub enum ClientOp {
    /// Write `value` under `key`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: Value,
    },
    /// Read `key`.
    Get {
        /// The key.
        key: String,
    },
}

impl ClientOp {
    /// The key this op touches.
    pub fn key(&self) -> &str {
        match self {
            ClientOp::Put { key, .. } | ClientOp::Get { key } => key,
        }
    }
}

/// The completion record of one operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Was it a put?
    pub is_put: bool,
    /// The key.
    pub key: String,
    /// The client sequence number ([`OpId::client_seq`]) of the op —
    /// stable across retries, unique per client.
    pub seq: u64,
    /// When the first attempt was issued.
    pub start: Time,
    /// When the final reply arrived.
    pub end: Time,
    /// The typed outcome: `Ok(())` on success, or the [`KvError`] that
    /// ended the operation (not found, rejected, timed out).
    pub result: Result<(), KvError>,
    /// Attempts used (1 = no retries).
    pub attempts: u32,
    /// Value size moved (put: sent; get: received).
    pub size: u32,
    /// Put: the bytes written; get: the bytes returned (the history
    /// checker and tests assert on these).
    pub bytes: Option<Vec<u8>>,
}

impl OpRecord {
    /// Did the operation succeed?
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The error that ended the operation, if it failed.
    pub fn err(&self) -> Option<&KvError> {
        self.result.as_ref().err()
    }
}

/// One attempt the adapter must put on the wire (and arm a
/// [`ClientCore::retry_delay`] timer for, under token `TOK_RETRY_BASE |
/// id.client_seq`).
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The operation.
    pub op: ClientOp,
    /// Its id (stable across retries of the same op).
    pub id: OpId,
    /// Attempt number (1 = first try).
    pub attempts: u32,
}

/// What [`ClientCore::issue_next`] decided.
#[derive(Debug)]
pub enum Issue {
    /// Send this attempt.
    Attempt(Attempt),
    /// The queue is empty; `done_at` is set. Arm an [`IDLE_POLL`] timer
    /// to pick up work pushed later.
    Drained,
    /// An operation is already in flight; do nothing.
    Busy,
}

/// What a reply means for the in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyAction {
    /// Not for the in-flight op (stale or duplicate); ignore.
    NotMine,
    /// A failed put mid-retry-budget: keep waiting, the armed retry
    /// timer will re-attempt (the partition is healing).
    AwaitRetry,
    /// A NotFound get under `retry_not_found`: arm a short
    /// [`NOT_FOUND_BACKOFF`] timer (token `TOK_RETRY_BASE |
    /// op.client_seq`) and keep the op in flight.
    Backoff,
    /// The operation completed (recorded); issue the next one.
    Done,
}

/// What a retry-timer firing means.
#[derive(Debug)]
pub enum RetryAction {
    /// Re-send this attempt.
    Resend(Attempt),
    /// Retry budget exhausted: the op completed with
    /// [`KvError::Timeout`] (recorded); issue the next one.
    GaveUp,
    /// Stale timer for an already-completed op; ignore.
    Stale,
}

/// The client's retry schedule: either the paper's fixed period ("the
/// client will retry after waiting for 2 seconds", §6.6) or exponential
/// backoff with deterministic seeded jitter.
///
/// The delay is a pure function of `(policy, op id, attempt)`, so a
/// seeded run replays byte-for-byte: no RNG state is carried between
/// calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry (and the fixed period when
    /// `exponential` is off).
    pub base: Time,
    /// Upper bound on any single delay.
    pub cap: Time,
    /// Double the delay on every attempt (clamped to `cap`).
    pub exponential: bool,
    /// Jitter strength in percent: each delay is scaled by a factor
    /// drawn deterministically from `[100 - jitter_pct, 100] / 100`.
    /// `0` disables jitter.
    pub jitter_pct: u32,
    /// Seed mixed into the per-(op, attempt) jitter hash.
    pub seed: u64,
}

impl RetryPolicy {
    /// The classic fixed-period schedule: every retry waits `period`.
    pub const fn fixed(period: Time) -> RetryPolicy {
        RetryPolicy {
            base: period,
            cap: period,
            exponential: false,
            jitter_pct: 0,
            seed: 0,
        }
    }

    /// The delay to arm after attempt number `attempt` (1 = first try)
    /// of operation `id` failed or went unanswered.
    pub fn delay(&self, id: OpId, attempt: u32) -> Time {
        let mut d = self.base.as_ns();
        if self.exponential {
            // base * 2^(attempt-1), saturating, clamped to the cap.
            let shift = attempt.saturating_sub(1).min(20);
            d = d.saturating_mul(1u64 << shift).min(self.cap.as_ns());
        }
        d = d.min(self.cap.as_ns()).max(1);
        if self.jitter_pct > 0 {
            let h = splitmix64(
                self.seed
                    ^ (u64::from(id.client.0) << 32)
                    ^ id.client_seq.rotate_left(17)
                    ^ u64::from(attempt),
            );
            let pct = u64::from(self.jitter_pct.min(99));
            let scale = 100 - (h % (pct + 1)); // in [100 - pct, 100]
            d = (d.saturating_mul(scale) / 100).max(1);
        }
        Time(d)
    }
}

/// SplitMix64 finalizer: a stateless avalanche hash, good enough to
/// decorrelate jitter across (client, op, attempt) without carrying RNG
/// state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct InFlight {
    op: ClientOp,
    id: OpId,
    start: Time,
    attempts: u32,
}

/// The shared closed-loop client state machine. The NICE and NOOB client
/// apps deref to this and translate its verdicts into their transports.
pub struct ClientCore {
    ops: VecDeque<ClientOp>,
    inflight: Option<InFlight>,
    next_seq: u64,
    max_attempts: u32,
    /// Retry schedule armed per attempt (fixed period by default — "the
    /// client will retry after waiting for 2 seconds", §6.6 — or
    /// exponential backoff with seeded jitter).
    pub retry: RetryPolicy,
    /// When the client starts issuing.
    pub start_at: Time,
    /// Treat a NotFound get as transient and retry with a short backoff
    /// (hot-object workloads where the reader races the first writer).
    pub retry_not_found: bool,
    /// Total wall-clock budget per operation, measured from its first
    /// attempt. When a retry timer fires past this deadline the op
    /// completes with [`KvError::Timeout`] even if the attempt budget
    /// remains — the knob that keeps real-runtime clients from retrying
    /// into a crashed node for `max_attempts × period`. `None` (the
    /// default) keeps the attempt budget as the only bound.
    pub op_deadline: Option<Time>,
    /// Completed operations, in completion order.
    pub records: Vec<OpRecord>,
    /// Set once the queue drains.
    pub done_at: Option<Time>,
    /// Telemetry bundle: end-to-end and retry-wait histograms plus the
    /// issue/retry/complete trace ring. Shaped by
    /// [`TelemetryCfg`](crate::TelemetryCfg) through the cluster spec;
    /// defaults to enabled.
    pub tel: Telemetry,
}

impl ClientCore {
    /// A core that runs `ops` once, starting at `start_at`, re-attempting
    /// every `retry` (swap in a different [`RetryPolicy`] via the public
    /// `retry` field for backoff/jitter).
    pub fn new(ops: Vec<ClientOp>, retry: Time, start_at: Time) -> ClientCore {
        ClientCore {
            ops: ops.into(),
            inflight: None,
            next_seq: 1,
            max_attempts: 25,
            retry: RetryPolicy::fixed(retry),
            start_at,
            retry_not_found: false,
            op_deadline: None,
            records: Vec::new(),
            done_at: None,
            tel: Telemetry::default(),
        }
    }

    /// The metrics snapshot: the end-to-end/retry histograms plus
    /// completion counters derived from the records.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = self.tel.reg.clone();
        let ok = self.records.iter().filter(|r| r.ok()).count() as u64;
        m.add("client.completed", self.records.len() as u64);
        m.add("client.ok", ok);
        m.add("client.failed", self.records.len() as u64 - ok);
        m
    }

    /// Queue more operations (the driver may extend work mid-run); the
    /// idle poll picks them up within [`IDLE_POLL`].
    pub fn push_ops(&mut self, ops: impl IntoIterator<Item = ClientOp>) {
        self.ops.extend(ops);
        if !self.ops.is_empty() {
            self.done_at = None;
        }
    }

    /// Operations finished so far.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Mean latency of successful ops of one kind.
    pub fn mean_latency(&self, puts: bool) -> Option<Time> {
        let lats: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.is_put == puts && r.ok())
            .map(|r| (r.end - r.start).as_ns())
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(Time(lats.iter().sum::<u64>() / lats.len() as u64))
        }
    }

    /// The in-flight operation, if any (adapters use this to size
    /// transport-level completions).
    pub fn inflight_op(&self) -> Option<(&ClientOp, OpId)> {
        self.inflight.as_ref().map(|inf| (&inf.op, inf.id))
    }

    /// The in-flight operation with its id, first-issue time, and
    /// attempt count. History capture uses this to include an op that
    /// never completed before the run ended (its effect window is still
    /// open, so a put must be treated as "maybe applied").
    pub fn inflight_detail(&self) -> Option<(&ClientOp, OpId, Time, u32)> {
        self.inflight
            .as_ref()
            .map(|inf| (&inf.op, inf.id, inf.start, inf.attempts))
    }

    /// The retry delay to arm for attempt `attempt` of op `id`
    /// (convenience over `self.retry.delay`, used by the adapters when
    /// they put an attempt on the wire).
    pub fn retry_delay(&self, id: OpId, attempt: u32) -> Time {
        self.retry.delay(id, attempt)
    }

    /// Start the next queued operation, if idle.
    pub fn issue_next(&mut self, me: Ipv4, now: Time) -> Issue {
        if self.inflight.is_some() {
            return Issue::Busy;
        }
        let Some(op) = self.ops.pop_front() else {
            if self.done_at.is_none() {
                self.done_at = Some(now);
            }
            return Issue::Drained;
        };
        let id = OpId {
            client: me,
            client_seq: self.next_seq,
        };
        self.next_seq += 1;
        self.inflight = Some(InFlight {
            op: op.clone(),
            id,
            start: now,
            attempts: 1,
        });
        self.tel.event(now, id, Phase::Issue, 1);
        Issue::Attempt(Attempt {
            op,
            id,
            attempts: 1,
        })
    }

    /// Size accounted for the in-flight op when it completes (put: bytes
    /// sent; get replies carry their own size).
    fn inflight_put_size(&self) -> u32 {
        match self.inflight.as_ref().map(|inf| &inf.op) {
            Some(ClientOp::Put { value, .. }) => value.size(),
            _ => 0,
        }
    }

    /// Record the in-flight operation as completed. Most paths go
    /// through the `on_*` verdict methods; adapters with transport-level
    /// completions (quorum-mode Sent tokens) call this directly, then
    /// issue the next op.
    pub fn complete(
        &mut self,
        result: Result<(), KvError>,
        size: u32,
        bytes: Option<Vec<u8>>,
        now: Time,
    ) {
        let Some(inf) = self.inflight.take() else {
            return;
        };
        // Puts record the bytes they wrote (successful or not: a failed
        // put may still have taken effect, and the history checker needs
        // the candidate value); gets record whatever the reply carried.
        let bytes = match &inf.op {
            ClientOp::Put { value, .. } => Some(value.bytes.as_ref().clone()),
            ClientOp::Get { .. } => bytes,
        };
        let is_put = matches!(inf.op, ClientOp::Put { .. });
        let e2e = now.saturating_sub(inf.start);
        if result.is_ok() {
            let h = if is_put {
                "client.put_e2e"
            } else {
                "client.get_e2e"
            };
            self.tel.record(h, e2e);
        } else {
            self.tel.record("client.failed_e2e", e2e);
            self.tel.add("client.failures", 1);
        }
        self.tel
            .event(now, inf.id, Phase::Complete, u64::from(result.is_ok()));
        self.records.push(OpRecord {
            is_put: matches!(inf.op, ClientOp::Put { .. }),
            key: inf.op.key().to_owned(),
            seq: inf.id.client_seq,
            start: inf.start,
            end: now,
            result,
            attempts: inf.attempts,
            size,
            bytes,
        });
    }

    /// Classify a put reply.
    pub fn on_put_reply(&mut self, op: OpId, ok: bool, now: Time) -> ReplyAction {
        let Some(inf) = self.inflight.as_ref() else {
            return ReplyAction::NotMine;
        };
        if inf.id != op {
            return ReplyAction::NotMine;
        }
        if !ok && inf.attempts < self.max_attempts {
            return ReplyAction::AwaitRetry;
        }
        let size = self.inflight_put_size();
        let result = if ok {
            Ok(())
        } else {
            Err(KvError::PutRejected {
                key: inf.op.key().to_owned(),
            })
        };
        self.complete(result, size, None, now);
        ReplyAction::Done
    }

    /// Classify a get reply.
    pub fn on_get_reply(
        &mut self,
        op: OpId,
        found: bool,
        size: u32,
        bytes: Option<Vec<u8>>,
        now: Time,
    ) -> ReplyAction {
        let Some(inf) = self.inflight.as_ref() else {
            return ReplyAction::NotMine;
        };
        if inf.id != op {
            return ReplyAction::NotMine;
        }
        if !found && self.retry_not_found && inf.attempts < self.max_attempts {
            return ReplyAction::Backoff;
        }
        let result = if found {
            Ok(())
        } else {
            Err(KvError::NotFound {
                key: inf.op.key().to_owned(),
            })
        };
        self.complete(result, size, bytes, now);
        ReplyAction::Done
    }

    /// Classify a retry-timer firing for op sequence `seq`.
    pub fn on_retry_timer(&mut self, seq: u64, now: Time) -> RetryAction {
        let Some(inf) = self.inflight.as_mut() else {
            return RetryAction::Stale;
        };
        if inf.id.client_seq != seq {
            return RetryAction::Stale; // for a completed op
        }
        let past_deadline = self
            .op_deadline
            .is_some_and(|d| now.saturating_sub(inf.start) >= d);
        if inf.attempts >= self.max_attempts || past_deadline {
            // Budget exhausted (attempts or total deadline): complete with
            // a typed client-side timeout so histories and benches see the
            // failure (the paper's clients would retry until the partition
            // heals; a bounded budget keeps runs finite without hiding the
            // outcome).
            let err = KvError::Timeout {
                key: inf.op.key().to_owned(),
                attempts: inf.attempts,
            };
            let size = self.inflight_put_size();
            self.complete(Err(err), size, None, now);
            return RetryAction::GaveUp;
        }
        inf.attempts += 1;
        let (id, attempts, start) = (inf.id, inf.attempts, inf.start);
        let resend = Attempt {
            op: inf.op.clone(),
            id,
            attempts,
        };
        self.tel
            .record("client.retry_wait", now.saturating_sub(start));
        self.tel.add("client.retries", 1);
        self.tel.event(now, id, Phase::Retry, u64::from(attempts));
        RetryAction::Resend(resend)
    }

    /// Crash: the in-flight op (and its pending timers' meaning) dies
    /// with the process.
    pub fn on_crash(&mut self) {
        self.inflight = None;
    }
}

/// The shared client surface both systems' apps expose to harnesses.
///
/// NICE's `ClientApp` and NOOB's `NoobClientApp` differ only in how an
/// attempt reaches the wire; everything a test driver needs — queueing
/// work, reading completion records, capturing history — lives on the
/// embedded [`ClientCore`]. Implementing this trait lets a harness be
/// written once, generic over the app type, instead of as parallel
/// per-system code paths (`tests/differential.rs` and `tests/chaos.rs`
/// drive both systems through it).
///
/// Implementations only provide the two accessors; the drive-side
/// conveniences are defined once here.
pub trait KvClient {
    /// The protocol-level client state machine.
    fn core(&self) -> &ClientCore;
    /// Mutable access to the client state machine.
    fn core_mut(&mut self) -> &mut ClientCore;

    /// Queue more operations mid-run (see [`ClientCore::push_ops`]).
    fn push_ops(&mut self, ops: impl IntoIterator<Item = ClientOp>)
    where
        Self: Sized,
    {
        self.core_mut().push_ops(ops);
    }

    /// Completion records so far.
    fn records(&self) -> &[OpRecord] {
        &self.core().records
    }

    /// Operations finished so far.
    fn completed(&self) -> usize {
        self.core().completed()
    }

    /// True once the op queue drained with nothing in flight.
    fn is_done(&self) -> bool {
        self.core().done_at.is_some()
    }

    /// The client-side metrics snapshot (end-to-end latency histograms,
    /// retry counters) — the uniform surface harnesses and benches
    /// harvest instead of reaching into per-system internals.
    fn metrics(&self) -> MetricsRegistry {
        self.core().metrics()
    }
}

/// The core is trivially its own client surface (unit-test harnesses
/// drive it without an adapter app around it).
impl KvClient for ClientCore {
    fn core(&self) -> &ClientCore {
        self
    }
    fn core_mut(&mut self) -> &mut ClientCore {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ME: Ipv4 = Ipv4::new(10, 0, 1, 1);

    fn core(ops: Vec<ClientOp>) -> ClientCore {
        ClientCore::new(ops, Time::from_secs(2), Time::ZERO)
    }

    fn put(key: &str, n: u32) -> ClientOp {
        ClientOp::Put {
            key: key.to_owned(),
            value: Value::synthetic(n),
        }
    }

    #[test]
    fn issues_serially_and_records_completion() {
        let mut c = core(vec![put("a", 100), ClientOp::Get { key: "a".into() }]);
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        assert_eq!(a.id.client_seq, 1);
        assert!(matches!(c.issue_next(ME, Time::ZERO), Issue::Busy));
        assert_eq!(
            c.on_put_reply(a.id, true, Time::from_ms(3)),
            ReplyAction::Done
        );
        assert_eq!(c.records[0].size, 100, "put size from the op itself");
        let Issue::Attempt(g) = c.issue_next(ME, Time::from_ms(3)) else {
            panic!("expected the get");
        };
        assert_eq!(
            c.on_get_reply(g.id, true, 7, Some(vec![1]), Time::from_ms(5)),
            ReplyAction::Done
        );
        assert!(matches!(c.issue_next(ME, Time::from_ms(5)), Issue::Drained));
        assert_eq!(c.done_at, Some(Time::from_ms(5)));
        assert_eq!(c.completed(), 2);
    }

    #[test]
    fn failed_put_waits_for_retry_timer_then_resends() {
        let mut c = core(vec![put("a", 10)]);
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        assert_eq!(
            c.on_put_reply(a.id, false, Time::from_ms(1)),
            ReplyAction::AwaitRetry,
            "mid-budget failure does not complete the op"
        );
        let RetryAction::Resend(r) = c.on_retry_timer(a.id.client_seq, Time::from_secs(2)) else {
            panic!("expected a resend");
        };
        assert_eq!(r.attempts, 2);
        assert!(matches!(
            c.on_retry_timer(999, Time::from_secs(2)),
            RetryAction::Stale
        ));
    }

    #[test]
    fn exhausted_budget_records_the_typed_error() {
        let mut c = core(vec![put("a", 10)]);
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        let mut now = Time::ZERO;
        loop {
            now += Time::from_secs(2);
            match c.on_retry_timer(a.id.client_seq, now) {
                RetryAction::Resend(_) => {}
                RetryAction::GaveUp => break,
                RetryAction::Stale => panic!("live op cannot be stale"),
            }
        }
        let r = &c.records[0];
        assert_eq!(r.attempts, 25);
        assert_eq!(r.size, 10, "gave-up puts still account their size");
        assert!(matches!(
            r.err(),
            Some(KvError::Timeout { attempts: 25, .. })
        ));
    }

    #[test]
    fn op_deadline_times_out_before_the_attempt_budget() {
        let mut c = core(vec![put("a", 10)]);
        c.op_deadline = Some(Time::from_secs(5));
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        // First two retry firings are inside the deadline: resends.
        assert!(matches!(
            c.on_retry_timer(a.id.client_seq, Time::from_secs(2)),
            RetryAction::Resend(_)
        ));
        assert!(matches!(
            c.on_retry_timer(a.id.client_seq, Time::from_secs(4)),
            RetryAction::Resend(_)
        ));
        // The next firing is past the total budget: typed timeout, well
        // before the 25-attempt budget would have.
        assert!(matches!(
            c.on_retry_timer(a.id.client_seq, Time::from_secs(6)),
            RetryAction::GaveUp
        ));
        let r = &c.records[0];
        assert_eq!(r.attempts, 3);
        assert!(matches!(r.err(), Some(KvError::Timeout { .. })));
    }

    #[test]
    fn fixed_policy_is_attempt_independent() {
        let p = RetryPolicy::fixed(Time::from_secs(2));
        let id = OpId {
            client: ME,
            client_seq: 3,
        };
        for attempt in 1..10 {
            assert_eq!(p.delay(id, attempt), Time::from_secs(2));
        }
    }

    #[test]
    fn exponential_policy_doubles_and_caps() {
        let p = RetryPolicy {
            base: Time::from_ms(100),
            cap: Time::from_ms(1600),
            exponential: true,
            jitter_pct: 0,
            seed: 0,
        };
        let id = OpId {
            client: ME,
            client_seq: 1,
        };
        assert_eq!(p.delay(id, 1), Time::from_ms(100));
        assert_eq!(p.delay(id, 2), Time::from_ms(200));
        assert_eq!(p.delay(id, 5), Time::from_ms(1600));
        assert_eq!(p.delay(id, 24), Time::from_ms(1600), "stays capped");
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_varied() {
        let p = RetryPolicy {
            base: Time::from_ms(1000),
            cap: Time::from_ms(1000),
            exponential: false,
            jitter_pct: 30,
            seed: 42,
        };
        let mut distinct = std::collections::BTreeSet::new();
        for seq in 1..40u64 {
            let id = OpId {
                client: ME,
                client_seq: seq,
            };
            let d = p.delay(id, 1);
            assert_eq!(d, p.delay(id, 1), "pure function of (policy, id, attempt)");
            assert!(d >= Time::from_ms(700) && d <= Time::from_ms(1000), "{d:?}");
            distinct.insert(d);
        }
        assert!(distinct.len() > 5, "jitter actually spreads the delays");
    }

    #[test]
    fn record_carries_seq_and_put_bytes() {
        let mut c = core(vec![ClientOp::Put {
            key: "a".into(),
            value: Value::from_bytes(vec![7, 8, 9]),
        }]);
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        c.on_put_reply(a.id, true, Time::from_ms(1));
        let r = &c.records[0];
        assert_eq!(r.seq, 1);
        assert_eq!(r.bytes.as_deref(), Some(&[7u8, 8, 9][..]));
    }

    #[test]
    fn not_found_backoff_keeps_the_op_inflight() {
        let mut c = core(vec![ClientOp::Get { key: "a".into() }]);
        c.retry_not_found = true;
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        assert_eq!(
            c.on_get_reply(a.id, false, 0, None, Time::from_ms(1)),
            ReplyAction::Backoff
        );
        assert!(c.inflight_op().is_some());
        assert_eq!(
            c.on_get_reply(
                OpId {
                    client: ME,
                    client_seq: 42
                },
                true,
                1,
                None,
                Time::from_ms(2)
            ),
            ReplyAction::NotMine
        );
    }
}

//! The system-agnostic client core: closed-loop operation issue, the
//! retry/timeout engine, and completion records.
//!
//! Both systems' clients run the same loop — pop an op, stamp an
//! [`OpId`], send an attempt, arm a retry timer, classify the reply —
//! and differ only in *where* the attempt goes (NICE: reliable-UDP to a
//! vnode address; NOOB: TCP to a gateway or storage node). This module
//! owns the loop; the client adapters own the wire. Core methods return
//! small verdict enums ([`Issue`], [`ReplyAction`], [`RetryAction`])
//! instead of sending anything.

use std::collections::VecDeque;

use nice_sim::{Ipv4, Time};

use crate::error::KvError;
use crate::types::{OpId, Value};

/// Timer token for the start/idle-poll timer.
pub const TOK_START: u64 = 1;
/// Idle poll period: a drained client re-checks its queue at this rate so
/// harnesses can push more work mid-run.
pub const IDLE_POLL: Time = Time::from_ms(10);
/// Retry timers carry the op sequence in the low bits.
pub const TOK_RETRY_BASE: u64 = 1 << 32;
/// Backoff before re-asking for a key that was not found (only with
/// [`ClientCore::retry_not_found`]).
pub const NOT_FOUND_BACKOFF: Time = Time::from_ms(5);

/// One client operation.
#[derive(Debug, Clone)]
pub enum ClientOp {
    /// Write `value` under `key`.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: Value,
    },
    /// Read `key`.
    Get {
        /// The key.
        key: String,
    },
}

impl ClientOp {
    /// The key this op touches.
    pub fn key(&self) -> &str {
        match self {
            ClientOp::Put { key, .. } | ClientOp::Get { key } => key,
        }
    }
}

/// The completion record of one operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Was it a put?
    pub is_put: bool,
    /// The key.
    pub key: String,
    /// When the first attempt was issued.
    pub start: Time,
    /// When the final reply arrived.
    pub end: Time,
    /// The typed outcome: `Ok(())` on success, or the [`KvError`] that
    /// ended the operation (not found, rejected, retries exhausted).
    pub result: Result<(), KvError>,
    /// Attempts used (1 = no retries).
    pub attempts: u32,
    /// Value size moved (put: sent; get: received).
    pub size: u32,
    /// For gets: the returned bytes (tests assert on these).
    pub bytes: Option<Vec<u8>>,
}

impl OpRecord {
    /// Did the operation succeed?
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The error that ended the operation, if it failed.
    pub fn err(&self) -> Option<&KvError> {
        self.result.as_ref().err()
    }
}

/// One attempt the adapter must put on the wire (and arm
/// [`ClientCore::retry`] for, under token `TOK_RETRY_BASE |
/// id.client_seq`).
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The operation.
    pub op: ClientOp,
    /// Its id (stable across retries of the same op).
    pub id: OpId,
    /// Attempt number (1 = first try).
    pub attempts: u32,
}

/// What [`ClientCore::issue_next`] decided.
#[derive(Debug)]
pub enum Issue {
    /// Send this attempt.
    Attempt(Attempt),
    /// The queue is empty; `done_at` is set. Arm an [`IDLE_POLL`] timer
    /// to pick up work pushed later.
    Drained,
    /// An operation is already in flight; do nothing.
    Busy,
}

/// What a reply means for the in-flight operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyAction {
    /// Not for the in-flight op (stale or duplicate); ignore.
    NotMine,
    /// A failed put mid-retry-budget: keep waiting, the armed retry
    /// timer will re-attempt (the partition is healing).
    AwaitRetry,
    /// A NotFound get under `retry_not_found`: arm a short
    /// [`NOT_FOUND_BACKOFF`] timer (token `TOK_RETRY_BASE |
    /// op.client_seq`) and keep the op in flight.
    Backoff,
    /// The operation completed (recorded); issue the next one.
    Done,
}

/// What a retry-timer firing means.
#[derive(Debug)]
pub enum RetryAction {
    /// Re-send this attempt.
    Resend(Attempt),
    /// Retry budget exhausted: the op completed with
    /// [`KvError::RetriesExhausted`] (recorded); issue the next one.
    GaveUp,
    /// Stale timer for an already-completed op; ignore.
    Stale,
}

struct InFlight {
    op: ClientOp,
    id: OpId,
    start: Time,
    attempts: u32,
}

/// The shared closed-loop client state machine. The NICE and NOOB client
/// apps deref to this and translate its verdicts into their transports.
pub struct ClientCore {
    ops: VecDeque<ClientOp>,
    inflight: Option<InFlight>,
    next_seq: u64,
    max_attempts: u32,
    /// Retry period armed per attempt ("the client will retry after
    /// waiting for 2 seconds", §6.6).
    pub retry: Time,
    /// When the client starts issuing.
    pub start_at: Time,
    /// Treat a NotFound get as transient and retry with a short backoff
    /// (hot-object workloads where the reader races the first writer).
    pub retry_not_found: bool,
    /// Completed operations, in completion order.
    pub records: Vec<OpRecord>,
    /// Set once the queue drains.
    pub done_at: Option<Time>,
}

impl ClientCore {
    /// A core that runs `ops` once, starting at `start_at`, re-attempting
    /// every `retry`.
    pub fn new(ops: Vec<ClientOp>, retry: Time, start_at: Time) -> ClientCore {
        ClientCore {
            ops: ops.into(),
            inflight: None,
            next_seq: 1,
            max_attempts: 25,
            retry,
            start_at,
            retry_not_found: false,
            records: Vec::new(),
            done_at: None,
        }
    }

    /// Queue more operations (the driver may extend work mid-run); the
    /// idle poll picks them up within [`IDLE_POLL`].
    pub fn push_ops(&mut self, ops: impl IntoIterator<Item = ClientOp>) {
        self.ops.extend(ops);
        if !self.ops.is_empty() {
            self.done_at = None;
        }
    }

    /// Operations finished so far.
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Mean latency of successful ops of one kind.
    pub fn mean_latency(&self, puts: bool) -> Option<Time> {
        let lats: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.is_put == puts && r.ok())
            .map(|r| (r.end - r.start).as_ns())
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(Time(lats.iter().sum::<u64>() / lats.len() as u64))
        }
    }

    /// The in-flight operation, if any (adapters use this to size
    /// transport-level completions).
    pub fn inflight_op(&self) -> Option<(&ClientOp, OpId)> {
        self.inflight.as_ref().map(|inf| (&inf.op, inf.id))
    }

    /// Start the next queued operation, if idle.
    pub fn issue_next(&mut self, me: Ipv4, now: Time) -> Issue {
        if self.inflight.is_some() {
            return Issue::Busy;
        }
        let Some(op) = self.ops.pop_front() else {
            if self.done_at.is_none() {
                self.done_at = Some(now);
            }
            return Issue::Drained;
        };
        let id = OpId {
            client: me,
            client_seq: self.next_seq,
        };
        self.next_seq += 1;
        self.inflight = Some(InFlight {
            op: op.clone(),
            id,
            start: now,
            attempts: 1,
        });
        Issue::Attempt(Attempt {
            op,
            id,
            attempts: 1,
        })
    }

    /// Size accounted for the in-flight op when it completes (put: bytes
    /// sent; get replies carry their own size).
    fn inflight_put_size(&self) -> u32 {
        match self.inflight.as_ref().map(|inf| &inf.op) {
            Some(ClientOp::Put { value, .. }) => value.size(),
            _ => 0,
        }
    }

    /// Record the in-flight operation as completed. Most paths go
    /// through the `on_*` verdict methods; adapters with transport-level
    /// completions (quorum-mode Sent tokens) call this directly, then
    /// issue the next op.
    pub fn complete(
        &mut self,
        result: Result<(), KvError>,
        size: u32,
        bytes: Option<Vec<u8>>,
        now: Time,
    ) {
        let Some(inf) = self.inflight.take() else {
            return;
        };
        self.records.push(OpRecord {
            is_put: matches!(inf.op, ClientOp::Put { .. }),
            key: inf.op.key().to_owned(),
            start: inf.start,
            end: now,
            result,
            attempts: inf.attempts,
            size,
            bytes,
        });
    }

    /// Classify a put reply.
    pub fn on_put_reply(&mut self, op: OpId, ok: bool, now: Time) -> ReplyAction {
        let Some(inf) = self.inflight.as_ref() else {
            return ReplyAction::NotMine;
        };
        if inf.id != op {
            return ReplyAction::NotMine;
        }
        if !ok && inf.attempts < self.max_attempts {
            return ReplyAction::AwaitRetry;
        }
        let size = self.inflight_put_size();
        let result = if ok {
            Ok(())
        } else {
            Err(KvError::PutRejected {
                key: inf.op.key().to_owned(),
            })
        };
        self.complete(result, size, None, now);
        ReplyAction::Done
    }

    /// Classify a get reply.
    pub fn on_get_reply(
        &mut self,
        op: OpId,
        found: bool,
        size: u32,
        bytes: Option<Vec<u8>>,
        now: Time,
    ) -> ReplyAction {
        let Some(inf) = self.inflight.as_ref() else {
            return ReplyAction::NotMine;
        };
        if inf.id != op {
            return ReplyAction::NotMine;
        }
        if !found && self.retry_not_found && inf.attempts < self.max_attempts {
            return ReplyAction::Backoff;
        }
        let result = if found {
            Ok(())
        } else {
            Err(KvError::NotFound {
                key: inf.op.key().to_owned(),
            })
        };
        self.complete(result, size, bytes, now);
        ReplyAction::Done
    }

    /// Classify a retry-timer firing for op sequence `seq`.
    pub fn on_retry_timer(&mut self, seq: u64, now: Time) -> RetryAction {
        let Some(inf) = self.inflight.as_mut() else {
            return RetryAction::Stale;
        };
        if inf.id.client_seq != seq {
            return RetryAction::Stale; // for a completed op
        }
        if inf.attempts >= self.max_attempts {
            // Give up (keeps benchmarks bounded; the paper's clients retry
            // until the partition becomes available again).
            let err = KvError::RetriesExhausted {
                key: inf.op.key().to_owned(),
                attempts: inf.attempts,
            };
            let size = self.inflight_put_size();
            self.complete(Err(err), size, None, now);
            return RetryAction::GaveUp;
        }
        inf.attempts += 1;
        RetryAction::Resend(Attempt {
            op: inf.op.clone(),
            id: inf.id,
            attempts: inf.attempts,
        })
    }

    /// Crash: the in-flight op (and its pending timers' meaning) dies
    /// with the process.
    pub fn on_crash(&mut self) {
        self.inflight = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ME: Ipv4 = Ipv4::new(10, 0, 1, 1);

    fn core(ops: Vec<ClientOp>) -> ClientCore {
        ClientCore::new(ops, Time::from_secs(2), Time::ZERO)
    }

    fn put(key: &str, n: u32) -> ClientOp {
        ClientOp::Put {
            key: key.to_owned(),
            value: Value::synthetic(n),
        }
    }

    #[test]
    fn issues_serially_and_records_completion() {
        let mut c = core(vec![put("a", 100), ClientOp::Get { key: "a".into() }]);
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        assert_eq!(a.id.client_seq, 1);
        assert!(matches!(c.issue_next(ME, Time::ZERO), Issue::Busy));
        assert_eq!(
            c.on_put_reply(a.id, true, Time::from_ms(3)),
            ReplyAction::Done
        );
        assert_eq!(c.records[0].size, 100, "put size from the op itself");
        let Issue::Attempt(g) = c.issue_next(ME, Time::from_ms(3)) else {
            panic!("expected the get");
        };
        assert_eq!(
            c.on_get_reply(g.id, true, 7, Some(vec![1]), Time::from_ms(5)),
            ReplyAction::Done
        );
        assert!(matches!(c.issue_next(ME, Time::from_ms(5)), Issue::Drained));
        assert_eq!(c.done_at, Some(Time::from_ms(5)));
        assert_eq!(c.completed(), 2);
    }

    #[test]
    fn failed_put_waits_for_retry_timer_then_resends() {
        let mut c = core(vec![put("a", 10)]);
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        assert_eq!(
            c.on_put_reply(a.id, false, Time::from_ms(1)),
            ReplyAction::AwaitRetry,
            "mid-budget failure does not complete the op"
        );
        let RetryAction::Resend(r) = c.on_retry_timer(a.id.client_seq, Time::from_secs(2)) else {
            panic!("expected a resend");
        };
        assert_eq!(r.attempts, 2);
        assert!(matches!(
            c.on_retry_timer(999, Time::from_secs(2)),
            RetryAction::Stale
        ));
    }

    #[test]
    fn exhausted_budget_records_the_typed_error() {
        let mut c = core(vec![put("a", 10)]);
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        let mut now = Time::ZERO;
        loop {
            now += Time::from_secs(2);
            match c.on_retry_timer(a.id.client_seq, now) {
                RetryAction::Resend(_) => {}
                RetryAction::GaveUp => break,
                RetryAction::Stale => panic!("live op cannot be stale"),
            }
        }
        let r = &c.records[0];
        assert_eq!(r.attempts, 25);
        assert_eq!(r.size, 10, "gave-up puts still account their size");
        assert!(matches!(
            r.err(),
            Some(KvError::RetriesExhausted { attempts: 25, .. })
        ));
    }

    #[test]
    fn not_found_backoff_keeps_the_op_inflight() {
        let mut c = core(vec![ClientOp::Get { key: "a".into() }]);
        c.retry_not_found = true;
        let Issue::Attempt(a) = c.issue_next(ME, Time::ZERO) else {
            panic!("expected an attempt");
        };
        assert_eq!(
            c.on_get_reply(a.id, false, 0, None, Time::from_ms(1)),
            ReplyAction::Backoff
        );
        assert!(c.inflight_op().is_some());
        assert_eq!(
            c.on_get_reply(
                OpId {
                    client: ME,
                    client_seq: 42
                },
                true,
                1,
                None,
                Time::from_ms(2)
            ),
            ReplyAction::NotMine
        );
    }
}
